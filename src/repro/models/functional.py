"""Executable NumPy reference implementations of the model zoo.

These are the correctness oracle for the simulator's workload accounting
and the substance of the example applications: each function computes one
layer of the corresponding model exactly as written in the paper's
equations (Eq. 1–5).  They are deliberately simple, vectorised NumPy — the
"make it work, make it right" reference the performance models are checked
against.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graphs.csr import CSRGraph

__all__ = [
    "relu",
    "sigmoid",
    "softmax",
    "adjacency",
    "gcn_layer",
    "gin_layer",
    "sage_mean_layer",
    "commnet_layer",
    "attention_layer",
    "ggcn_layer",
    "sage_pool_layer",
    "edgeconv_layer",
    "run_layer",
]


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically-stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    e = np.exp(x[~pos])
    out[~pos] = e / (1.0 + e)
    return out


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Row-wise softmax."""
    z = x - x.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def adjacency(graph: CSRGraph) -> sp.csr_matrix:
    """SciPy CSR adjacency ``A[v, u] = 1`` for each edge ``v -> u``.

    Rows are sources; ``A @ X`` gathers *out*-neighbor features, which is
    the aggregation direction used throughout (the synthetic citation
    graphs are treated as symmetric message graphs).
    """
    n = graph.num_vertices
    data = np.ones(graph.num_edges, dtype=np.float64)
    return sp.csr_matrix((data, graph.indices, graph.indptr), shape=(n, n))


def _check_features(graph: CSRGraph, x: np.ndarray) -> None:
    if x.ndim != 2 or x.shape[0] != graph.num_vertices:
        raise ValueError(
            f"features must be (|V|, F); got {x.shape} for |V|={graph.num_vertices}"
        )


def gcn_layer(
    graph: CSRGraph,
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """One GCN layer (Eq. 1): symmetric-normalised sum + ReLU(W m + b).

    ``weight`` has shape ``(F_in, F_out)``.
    """
    _check_features(graph, x)
    adj = adjacency(graph)
    # N(v) ∪ {v}: add self loops.
    n = graph.num_vertices
    adj = adj + sp.eye(n, format="csr")
    deg = np.asarray(adj.sum(axis=1)).ravel()
    inv_sqrt = np.where(deg > 0, 1.0 / np.sqrt(deg), 0.0)
    norm = sp.diags(inv_sqrt) @ adj @ sp.diags(inv_sqrt)
    message = norm @ x
    out = message @ weight
    if bias is not None:
        out = out + bias
    return relu(out)


def gin_layer(
    graph: CSRGraph,
    x: np.ndarray,
    w1: np.ndarray,
    w2: np.ndarray,
    *,
    eps: float = 0.0,
) -> np.ndarray:
    """One GIN layer (Eq. 2): (1+eps)·x + Σ neighbors, then a 2-layer MLP."""
    _check_features(graph, x)
    adj = adjacency(graph)
    message = (1.0 + eps) * x + adj @ x
    return relu(relu(message @ w1) @ w2)


def sage_mean_layer(graph: CSRGraph, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """GraphSAGE-Mean: neighborhood mean + dense update (no activation row)."""
    _check_features(graph, x)
    adj = adjacency(graph)
    deg = np.maximum(graph.degrees, 1).astype(np.float64)
    message = (adj @ x) / deg[:, None]
    return message @ weight


def commnet_layer(graph: CSRGraph, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """CommNet-style layer: plain neighbor sum + dense update."""
    _check_features(graph, x)
    adj = adjacency(graph)
    return (adj @ x) @ weight


def attention_layer(graph: CSRGraph, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """Dot-product attention layer (Eq. 3).

    m_v = Σ_u (x_v · x_u) x_u over out-neighbors, then SoftMax(W m).
    """
    _check_features(graph, x)
    src = np.repeat(np.arange(graph.num_vertices), graph.degrees)
    dst = graph.indices
    scores = np.einsum("ef,ef->e", x[src], x[dst])  # (x_v . x_u) per edge
    weighted = scores[:, None] * x[dst]
    message = np.zeros_like(x)
    np.add.at(message, src, weighted)
    return softmax(message @ weight, axis=1)


def ggcn_layer(
    graph: CSRGraph,
    x: np.ndarray,
    w_u: np.ndarray,
    w_v: np.ndarray,
    weight: np.ndarray,
) -> np.ndarray:
    """Gated GCN layer (Eq. 4): Σ sigma(Wu xu + Wv xv) ⊙ xu, then ReLU(W m).

    ``w_u``/``w_v`` are square gate weights ``(F_in, F_in)``; ``weight`` is
    the output transform ``(F_in, F_out)``.
    """
    _check_features(graph, x)
    src = np.repeat(np.arange(graph.num_vertices), graph.degrees)
    dst = graph.indices
    xu = x @ w_u  # per-vertex transforms, reused per edge
    xv = x @ w_v
    gate = sigmoid(xu[dst] + xv[src])
    weighted = gate * x[dst]
    message = np.zeros_like(x)
    np.add.at(message, src, weighted)
    return relu(message @ weight)


def sage_pool_layer(
    graph: CSRGraph,
    x: np.ndarray,
    w_pool: np.ndarray,
    bias: np.ndarray,
    weight: np.ndarray,
    bias_out: np.ndarray | None = None,
) -> np.ndarray:
    """GraphSAGE-Pool layer (Eq. 5).

    m_v = Concat(max_u sigma(W_pl x_u + b), x_v);  x'_v = ReLU(W m_v + b').
    ``w_pool``: (F_in, F_pool); ``weight``: (F_pool + F_in, F_out).
    """
    _check_features(graph, x)
    n = graph.num_vertices
    pooled_src = sigmoid(x @ w_pool + bias)
    f_pool = pooled_src.shape[1]
    pooled = np.full((n, f_pool), -np.inf)
    src = np.repeat(np.arange(n), graph.degrees)
    dst = graph.indices
    np.maximum.at(pooled, src, pooled_src[dst])
    pooled[~np.isfinite(pooled).all(axis=1)] = 0.0  # isolated vertices
    message = np.concatenate([pooled, x], axis=1)
    out = message @ weight
    if bias_out is not None:
        out = out + bias_out
    return relu(out)


def edgeconv_layer(
    graph: CSRGraph,
    x: np.ndarray,
    weights: list[np.ndarray],
    *,
    activation: bool = False,
) -> np.ndarray:
    """EdgeConv layer: per-edge MLP over [x_u] then max aggregation.

    ``weights`` is the MLP chain (1 matrix for EdgeConv-1, 5 for
    EdgeConv-5).  No vertex update follows (Table II).
    """
    _check_features(graph, x)
    if not weights:
        raise ValueError("EdgeConv needs at least one weight matrix")
    src = np.repeat(np.arange(graph.num_vertices), graph.degrees)
    dst = graph.indices
    h = x[dst]
    for i, w in enumerate(weights):
        h = h @ w
        if activation and i < len(weights) - 1:
            h = relu(h)
    if activation:
        h = relu(h)
    out = np.full((graph.num_vertices, h.shape[1]), -np.inf)
    np.maximum.at(out, src, h)
    out[~np.isfinite(out).all(axis=1)] = 0.0
    return out


def run_layer(
    model_name: str,
    graph: CSRGraph,
    x: np.ndarray,
    rng: np.random.Generator | None = None,
    out_features: int | None = None,
) -> np.ndarray:
    """Run one layer of any zoo model with randomly initialised weights.

    A convenience driver for examples and tests; weights are drawn from a
    seeded generator so outputs are reproducible.
    """
    rng = rng or np.random.default_rng(0)
    f_in = x.shape[1]
    f_out = out_features or f_in
    scale = 1.0 / np.sqrt(f_in)
    w = rng.normal(0.0, scale, size=(f_in, f_out))
    name = model_name.lower()
    if name == "gcn":
        return gcn_layer(graph, x, w, rng.normal(0, 0.1, size=f_out))
    if name == "gin":
        w2 = rng.normal(0.0, scale, size=(f_out, f_out))
        return gin_layer(graph, x, w, w2, eps=0.1)
    if name == "graphsage-mean":
        return sage_mean_layer(graph, x, w)
    if name == "commnet":
        return commnet_layer(graph, x, w)
    if name in ("vanilla-attention", "agnn"):
        return attention_layer(graph, x, w)
    if name == "ggcn":
        wu = rng.normal(0.0, scale, size=(f_in, f_in))
        wv = rng.normal(0.0, scale, size=(f_in, f_in))
        return ggcn_layer(graph, x, wu, wv, w)
    if name == "graphsage-pool":
        wp = rng.normal(0.0, scale, size=(f_in, f_out))
        b = rng.normal(0, 0.1, size=f_out)
        w2 = rng.normal(0.0, scale, size=(f_out + f_in, f_out))
        return sage_pool_layer(graph, x, wp, b, w2)
    if name == "edgeconv-1":
        return edgeconv_layer(graph, x, [w])
    if name == "edgeconv-5":
        chain = [w] + [
            rng.normal(0.0, scale, size=(f_out, f_out)) for _ in range(4)
        ]
        return edgeconv_layer(graph, x, chain, activation=True)
    raise KeyError(f"unknown model {model_name!r}")
