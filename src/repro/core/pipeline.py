"""Two-stage pipeline timing across subgraph tiles.

Sub-accelerators A and B form a two-stage pipeline: while B runs vertex
update for tile *i*, A runs edge update + aggregation for tile *i+1*
(paper §V: "two sub-accelerators are further connected to support the
pipeline execution without the extra buffers").  DRAM prefetch of the next
tile overlaps both (§IV: "After mapping a subgraph to the PE array, the
next subgraph starts being loaded from DRAM").
"""

from __future__ import annotations

__all__ = ["pipeline_time", "overlapped_time"]


def pipeline_time(stage_a: list[float], stage_b: list[float]) -> float:
    """Makespan of a two-stage pipeline over per-tile stage times.

    Classic flow-shop recurrence: tile *i* cannot start in B before both
    B finished tile *i−1* and A finished tile *i*.
    """
    if len(stage_a) != len(stage_b):
        raise ValueError("stage lists must be the same length")
    a_done = 0.0
    b_done = 0.0
    for ta, tb in zip(stage_a, stage_b):
        if ta < 0 or tb < 0:
            raise ValueError("stage times must be non-negative")
        a_done += ta
        b_done = max(b_done, a_done) + tb
    return b_done


def overlapped_time(foreground: float, background: float) -> float:
    """Time when ``background`` (e.g. a DRAM prefetch) hides under
    ``foreground`` compute: the slower of the two."""
    if foreground < 0 or background < 0:
        raise ValueError("times must be non-negative")
    return max(foreground, background)
