"""N-Queen placement of special PEs (S_PEs).

The degree-aware mapping (paper Algorithm 1, lines 1–12) places the PEs
that will host high-degree vertices such that no two share a row, column,
or diagonal — because each row and column has exactly one physical bypass
link, and a diagonal spread keeps the express traffic of different hubs on
different wires.

``solve_n_queens`` is the classic backtracking solver ("Queen(k)" in the
paper's pseudocode); ``fixed_pattern`` is the reduced-complexity variant
the paper actually deploys (one S_PE per row, deterministic).
"""

from __future__ import annotations

import numpy as np

__all__ = ["can_place", "solve_n_queens", "fixed_pattern"]


def can_place(columns: list[int], row: int, col: int) -> bool:
    """N-Queen feasibility: ``columns[r]`` is the queen column of row r."""
    for r, c in enumerate(columns[:row]):
        if c == col:
            return False
        if abs(c - col) == abs(r - row):
            return False
    return True


def solve_n_queens(k: int) -> list[tuple[int, int]]:
    """First N-Queen solution on a k×k board as ``(row, col)`` pairs.

    Deterministic (lexicographically first solution), matching the paper's
    recursive ``Queen`` procedure.  k in {2, 3} has no solution; those
    degenerate array sizes fall back to an anti-diagonal-free greedy
    pattern from :func:`fixed_pattern`.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    columns: list[int] = []

    def backtrack(row: int) -> bool:
        if row == k:
            return True
        for col in range(k):
            if can_place(columns, row, col):
                columns.append(col)
                if backtrack(row + 1):
                    return True
                columns.pop()
        return False

    if not backtrack(0):
        return fixed_pattern(k)
    return [(r, c) for r, c in enumerate(columns)]


def fixed_pattern(k: int) -> list[tuple[int, int]]:
    """Reduced-complexity S_PE pattern: one per row, columns staggered.

    Uses the knight-step construction (col = (2·row + 1) mod k), which for
    most k yields a valid N-Queen layout in O(k) and always guarantees the
    properties that matter for the bypass wires: distinct rows and — when
    gcd(2, k) permits — distinct columns.  Falls back to a plain diagonal
    offset when k is even and small.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    cols = [(2 * r + 1) % k for r in range(k)]
    if len(set(cols)) != k:
        # Even k: 2r+1 collides; use a coprime stride instead.
        stride = 1
        for cand in range(k - 1, 0, -1):
            if np.gcd(cand, k) == 1:
                stride = cand
                break
        cols = [(r * stride) % k for r in range(k)]
    return [(r, c) for r, c in enumerate(cols)]
