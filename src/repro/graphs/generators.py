"""Deterministic synthetic graph generators.

The paper evaluates on five public graph datasets.  We cannot ship the raw
files offline, so this module generates graphs whose *structural statistics*
match the published numbers: vertex/edge counts, heavy-tailed (power-law)
degree distributions, and light community structure.  Every result in the
paper depends only on these statistics (op counts, traffic volume, degree
skew), so a matched synthetic graph exercises identical code paths.

Two generator families are provided:

* ``power_law_graph`` — preferential-attachment-style generator with an
  exact edge budget and a tunable skew exponent.  Degree skew is what the
  degree-aware mapping exploits, so the exponent is the knob that matters.
* ``rmat_graph`` — Kronecker/R-MAT generator used for scale experiments and
  property-based tests (its recursive structure creates the community +
  hub patterns typical of social graphs such as Reddit).

All generators take an integer ``seed`` and are fully deterministic.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph, from_edge_list

__all__ = [
    "power_law_graph",
    "rmat_graph",
    "uniform_random_graph",
    "grid_graph",
    "star_graph",
    "bipartite_graph",
    "near_clique_hub_graph",
    "chain_graph",
    "complete_graph",
]


def _sample_power_law_degrees(
    n: int, m: int, exponent: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``n`` degrees summing exactly to ``m`` with a Zipf-like tail.

    Draws Pareto-distributed weights, scales to the edge budget, then
    repairs rounding error by distributing the remainder over the highest-
    weight vertices (preserving the tail shape).
    """
    if exponent <= 1.0:
        raise ValueError("exponent must be > 1")
    weights = rng.pareto(exponent - 1.0, size=n) + 1.0
    weights /= weights.sum()
    degrees = np.floor(weights * m).astype(np.int64)
    deficit = m - int(degrees.sum())
    if deficit > 0:
        top = np.argsort(weights)[::-1][: max(deficit, 1)]
        # Round-robin the remainder over the heaviest vertices.
        add = np.zeros(n, dtype=np.int64)
        idx = np.resize(top, deficit)
        np.add.at(add, idx, 1)
        degrees += add
    elif deficit < 0:
        # Remove surplus from vertices that can spare it.
        surplus = -deficit
        donors = np.argsort(weights)[::-1]
        for v in donors:
            take = min(surplus, int(degrees[v]))
            degrees[v] -= take
            surplus -= take
            if surplus == 0:
                break
    # Cap degrees at n (a vertex cannot have more than n distinct targets
    # including a self-loop); redistribute overflow uniformly.
    overflow = int(np.maximum(degrees - n, 0).sum())
    degrees = np.minimum(degrees, n)
    while overflow > 0:
        room = n - degrees
        candidates = np.nonzero(room > 0)[0]
        if candidates.size == 0:  # pragma: no cover - m <= n*n guards this
            break
        pick = rng.choice(candidates, size=min(overflow, candidates.size), replace=False)
        degrees[pick] += 1
        overflow -= pick.size
    return degrees


def power_law_graph(
    num_vertices: int,
    num_edges: int,
    *,
    exponent: float = 2.1,
    locality: float = 0.0,
    locality_window: int | None = None,
    num_features: int = 16,
    feature_density: float = 1.0,
    edge_feature_dim: int = 0,
    seed: int = 0,
    name: str = "powerlaw",
) -> CSRGraph:
    """Directed graph with a power-law out-degree distribution.

    ``num_edges`` is hit exactly.  Destinations are drawn preferentially
    (proportional to the same weight vector used for the sources) so hubs
    are hubs on both sides, as in real social/citation graphs.

    ``locality`` in [0, 1) is the fraction of edges drawn from a window of
    ±``locality_window`` ids around the source instead of globally.  Real
    citation/social graphs have strong community locality when vertices
    are numbered in crawl/community order; locality-preserving mappings
    (sequential fill) exploit it, hashing mappings destroy it — which is
    part of what the paper's mapping comparison measures.
    """
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    if num_edges < 0:
        raise ValueError("num_edges must be non-negative")
    if num_edges > num_vertices * num_vertices:
        raise ValueError("edge budget exceeds |V|^2")
    if not 0.0 <= locality < 1.0:
        raise ValueError("locality must be in [0, 1)")
    rng = np.random.default_rng(seed)
    degrees = _sample_power_law_degrees(num_vertices, num_edges, exponent, rng)
    window = locality_window or max(4, num_vertices // 64)

    # Cap the tail at ~3.5·sqrt(n): real citation/social graphs have heavy
    # but bounded hubs (Cora's max degree is 168 at n=2708), while an
    # unrepaired Pareto draw can produce arbitrarily extreme outliers.
    cap = max(16, int(3.5 * np.sqrt(num_vertices)))
    excess = int(np.maximum(degrees - cap, 0).sum())
    degrees = np.minimum(degrees, cap)
    while excess > 0:
        room = np.nonzero(degrees < cap)[0]
        take = min(excess, room.size)
        picks = rng.choice(room, size=take, replace=False)
        degrees[picks] += 1
        excess -= take

    # Destination sampling weights share the tail so in-degree is skewed
    # too, with the same hub cap.
    dst_weights = rng.pareto(exponent - 1.0, size=num_vertices) + 1.0
    dst_weights = np.minimum(dst_weights, np.quantile(dst_weights, 0.999) * 2)
    dst_weights /= dst_weights.sum()
    dst_weights = np.minimum(dst_weights, cap / max(num_edges, 1))
    dst_weights /= dst_weights.sum()

    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    indices = np.empty(num_edges, dtype=np.int64)
    for v in range(num_vertices):
        d = int(degrees[v])
        if d == 0:
            continue
        if d >= num_vertices:
            nbrs = np.arange(num_vertices, dtype=np.int64)
        else:
            n_local = int(round(d * locality))
            n_global = d - n_local
            # Local edges: a window around the source id (community order).
            local = np.unique(
                (v + rng.integers(-window, window + 1, size=4 * n_local + 4))
                % num_vertices
            )
            local = rng.permutation(local)[:n_local]
            # Global edges: preferential attachment to the hubs.
            glob = np.unique(
                rng.choice(
                    num_vertices,
                    size=min(4 * n_global + 8, num_vertices * 2),
                    p=dst_weights,
                )
            )
            glob = rng.permutation(glob)[:n_global]
            nbrs = np.unique(np.concatenate((local, glob)))
            while nbrs.size < d:
                extra = rng.choice(num_vertices, size=2 * d, p=dst_weights)
                nbrs = np.unique(np.concatenate((nbrs, extra)))
            nbrs = np.sort(rng.permutation(nbrs)[:d])
        indices[indptr[v] : indptr[v + 1]] = nbrs
    return CSRGraph(
        indptr,
        indices,
        num_features=num_features,
        feature_density=feature_density,
        edge_feature_dim=edge_feature_dim,
        name=name,
    )


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    num_features: int = 16,
    feature_density: float = 1.0,
    edge_feature_dim: int = 0,
    seed: int = 0,
    name: str = "rmat",
) -> CSRGraph:
    """R-MAT (Kronecker) graph with ``2**scale`` vertices.

    Uses the classic (a, b, c, d) quadrant recursion; duplicates are
    removed, so the realised edge count is slightly below
    ``edge_factor * 2**scale``.
    """
    if scale < 1 or scale > 24:
        raise ValueError("scale must be in [1, 24]")
    d = 1.0 - a - b - c
    if d < 0 or min(a, b, c) < 0:
        raise ValueError("quadrant probabilities must be non-negative and sum <= 1")
    n = 1 << scale
    m = edge_factor * n
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        go_right = (r >= a + c) & (r < a + b + c) | (r >= a + b + c)
        go_down = (r >= a) & (r < a + c) | (r >= a + b + c)
        # quadrants: a=TL, b=TR, c=BL, d=BR
        src |= (go_down.astype(np.int64)) << bit
        dst |= (go_right.astype(np.int64)) << bit
    edges = np.unique(np.column_stack((src, dst)), axis=0)
    return from_edge_list(
        n,
        edges,
        num_features=num_features,
        feature_density=feature_density,
        edge_feature_dim=edge_feature_dim,
        name=name,
        dedup=False,
    )


def uniform_random_graph(
    num_vertices: int,
    num_edges: int,
    *,
    num_features: int = 16,
    feature_density: float = 1.0,
    edge_feature_dim: int = 0,
    seed: int = 0,
    name: str = "uniform",
) -> CSRGraph:
    """Erdős–Rényi-style directed graph (uniform degree, no hubs).

    Serves as the contrast workload for degree-aware-mapping ablations:
    with no hubs, degree-aware and hashing mapping should converge.
    """
    if num_edges > num_vertices * num_vertices:
        raise ValueError("edge budget exceeds |V|^2")
    rng = np.random.default_rng(seed)
    seen: set[int] = set()
    target = num_edges
    pairs = np.empty((0, 2), dtype=np.int64)
    while pairs.shape[0] < target:
        need = target - pairs.shape[0]
        cand = rng.integers(0, num_vertices, size=(2 * need + 16, 2), dtype=np.int64)
        keys = cand[:, 0] * num_vertices + cand[:, 1]
        fresh_mask = np.fromiter(
            (int(k) not in seen for k in keys), dtype=bool, count=keys.size
        )
        cand = cand[fresh_mask]
        keys = keys[fresh_mask]
        _, first = np.unique(keys, return_index=True)
        cand = cand[np.sort(first)][:need]
        for k in (cand[:, 0] * num_vertices + cand[:, 1]).tolist():
            seen.add(int(k))
        pairs = np.vstack((pairs, cand))
    return from_edge_list(
        num_vertices,
        pairs,
        num_features=num_features,
        feature_density=feature_density,
        edge_feature_dim=edge_feature_dim,
        name=name,
        dedup=False,
    )


def grid_graph(rows: int, cols: int, *, num_features: int = 16, name: str = "grid") -> CSRGraph:
    """4-neighbour 2-D grid (regular, mesh-friendly traffic)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    n = rows * cols
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
                edges.append((v + 1, v))
            if r + 1 < rows:
                edges.append((v, v + cols))
                edges.append((v + cols, v))
    return from_edge_list(n, edges, num_features=num_features, name=name)


def star_graph(num_leaves: int, *, num_features: int = 16, name: str = "star") -> CSRGraph:
    """One hub connected to ``num_leaves`` leaves, both directions.

    The extreme high-degree-vertex case that motivates bypass links.
    """
    if num_leaves < 1:
        raise ValueError("num_leaves must be positive")
    edges = [(0, i) for i in range(1, num_leaves + 1)]
    edges += [(i, 0) for i in range(1, num_leaves + 1)]
    return from_edge_list(num_leaves + 1, edges, num_features=num_features, name=name)


def bipartite_graph(
    num_left: int,
    num_right: int,
    num_edges: int,
    *,
    num_features: int = 16,
    feature_density: float = 1.0,
    seed: int = 0,
    name: str = "bipartite",
) -> CSRGraph:
    """Directed bipartite graph: edges only cross the left/right partition.

    Vertices ``[0, num_left)`` form the left side, the rest the right side;
    every left vertex points right and vice versa.  Bipartite traffic is
    adversarial for locality-preserving mappings (sequential fill places
    each side contiguously, so *every* edge crosses the array) while a
    hashing mapping spreads it — the opposite of the community-local case.
    """
    if num_left < 1 or num_right < 1:
        raise ValueError("partition sizes must be positive")
    max_edges = 2 * num_left * num_right
    if num_edges > max_edges:
        raise ValueError("edge budget exceeds bipartite capacity")
    rng = np.random.default_rng(seed)
    n = num_left + num_right
    n_lr = num_edges // 2
    n_rl = num_edges - n_lr
    seen: set[int] = set()
    rows: list[np.ndarray] = []
    for count, (src_lo, src_n, dst_lo, dst_n) in (
        (n_lr, (0, num_left, num_left, num_right)),
        (n_rl, (num_left, num_right, 0, num_left)),
    ):
        got = 0
        while got < count:
            need = count - got
            src = src_lo + rng.integers(0, src_n, size=2 * need + 8, dtype=np.int64)
            dst = dst_lo + rng.integers(0, dst_n, size=2 * need + 8, dtype=np.int64)
            keys = src * n + dst
            fresh = np.fromiter(
                (int(k) not in seen for k in keys), dtype=bool, count=keys.size
            )
            src, dst, keys = src[fresh], dst[fresh], keys[fresh]
            _, first = np.unique(keys, return_index=True)
            order = np.sort(first)[:need]
            for k in keys[order].tolist():
                seen.add(int(k))
            rows.append(np.column_stack((src[order], dst[order])))
            got += order.size
    edges = np.vstack(rows) if rows else np.empty((0, 2), dtype=np.int64)
    return from_edge_list(
        n,
        edges,
        num_features=num_features,
        feature_density=feature_density,
        name=name,
        dedup=False,
    )


def near_clique_hub_graph(
    num_vertices: int,
    clique_size: int,
    *,
    clique_density: float = 0.9,
    spoke_degree: int = 2,
    num_features: int = 16,
    feature_density: float = 1.0,
    seed: int = 0,
    name: str = "hubclique",
) -> CSRGraph:
    """A dense near-clique core with sparse spokes to the periphery.

    The first ``clique_size`` vertices form a near-clique (each ordered
    pair present with probability ``clique_density``); every peripheral
    vertex sends ``spoke_degree`` edges into the core and receives one
    back.  This concentrates both compute and multicast traffic on a tiny
    vertex set — the pathological hub-pressure case for PE load balance
    and for the NoC bypass-link heuristics.
    """
    if clique_size < 2 or clique_size > num_vertices:
        raise ValueError("clique_size must be in [2, num_vertices]")
    if not 0.0 < clique_density <= 1.0:
        raise ValueError("clique_density must be in (0, 1]")
    if spoke_degree < 1:
        raise ValueError("spoke_degree must be positive")
    rng = np.random.default_rng(seed)
    src, dst = np.meshgrid(
        np.arange(clique_size), np.arange(clique_size), indexing="ij"
    )
    mask = (src != dst) & (rng.random((clique_size, clique_size)) < clique_density)
    edges = [np.column_stack((src[mask], dst[mask]))]
    periphery = np.arange(clique_size, num_vertices, dtype=np.int64)
    if periphery.size:
        deg = min(spoke_degree, clique_size)
        spokes_in = np.column_stack(
            (
                np.repeat(periphery, deg),
                rng.integers(0, clique_size, size=periphery.size * deg),
            )
        )
        spokes_out = np.column_stack(
            (rng.integers(0, clique_size, size=periphery.size), periphery)
        )
        edges += [spokes_in, spokes_out]
    return from_edge_list(
        num_vertices,
        np.vstack(edges),
        num_features=num_features,
        feature_density=feature_density,
        name=name,
    )


def chain_graph(n: int, *, num_features: int = 16, name: str = "chain") -> CSRGraph:
    """Simple directed path 0 -> 1 -> ... -> n-1."""
    if n < 1:
        raise ValueError("n must be positive")
    edges = [(i, i + 1) for i in range(n - 1)]
    return from_edge_list(n, edges, num_features=num_features, name=name)


def complete_graph(n: int, *, num_features: int = 16, name: str = "complete") -> CSRGraph:
    """Complete directed graph without self-loops."""
    if n < 1:
        raise ValueError("n must be positive")
    src, dst = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    mask = src != dst
    edges = np.column_stack((src[mask], dst[mask]))
    return from_edge_list(n, edges, num_features=num_features, name=name, dedup=False)
