"""Pluggable job executors: serial, process-pool, and a scripted fake.

All executors share one contract: ``run(jobs, fn)`` applies ``fn`` (by
default :func:`repro.runtime.jobs.execute_job`) to every job and returns
one :class:`ExecutionRecord` per job, *in input order*, never raising for
a failing job — a crash, an unknown dataset, or a timeout becomes an
error record so one bad point cannot kill a thousand-point sweep.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..telemetry import TRACER
from .budget import mark_pool_worker
from .jobs import SimJob, execute_job

__all__ = [
    "CANCELLED",
    "ExecutionRecord",
    "SerialExecutor",
    "ProcessExecutor",
    "FakeExecutor",
    "get_executor",
]

JobFn = Callable[[SimJob], dict]

#: Error string reported for jobs abandoned because the caller's cancel
#: event fired.  Callers (the DSE successive-halving runner, budgeted
#: sweeps) match on it to distinguish "stopped on purpose" from a crash.
CANCELLED = "cancelled"

#: How often a cancel-aware wait re-checks the event while a pool job runs.
_CANCEL_POLL_SECONDS = 0.05


@dataclass
class ExecutionRecord:
    """Outcome of executing one job: a result payload or an error.

    ``spans`` carries the serialized telemetry spans the execution
    produced when a trace context was propagated — the return leg of
    cross-process trace propagation (:mod:`repro.telemetry.trace`).
    """

    job: SimJob
    payload: dict | None
    error: str | None = None
    seconds: float = 0.0
    spans: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None


def _invoke(
    fn: JobFn, job: SimJob, trace_ctx: dict | None = None
) -> ExecutionRecord:
    """Run one job under failure isolation (also the pool worker).

    With a ``trace_ctx`` (the caller's serialized span context), the job
    runs under an ``executor.job`` span parented to it; every span the
    execution produces is collected into the record instead of the local
    buffer, so the caller — possibly in another process — can merge one
    coherent tree.
    """
    if trace_ctx is None:
        start = time.perf_counter()
        try:
            payload = fn(job)
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            return ExecutionRecord(
                job,
                None,
                f"{type(exc).__name__}: {exc}",
                time.perf_counter() - start,
            )
        return ExecutionRecord(job, payload, None, time.perf_counter() - start)

    start = time.perf_counter()
    with TRACER.remote(trace_ctx), TRACER.collect() as collected:
        error = None
        payload = None
        try:
            with TRACER.span("executor.job", {"job": job.label()}):
                payload = fn(job)
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            error = f"{type(exc).__name__}: {exc}"
    spans = [span.to_dict() for span in collected]
    return ExecutionRecord(
        job, payload, error, time.perf_counter() - start, spans=spans
    )


class SerialExecutor:
    """Run jobs one after another in this process (the default)."""

    name = "serial"
    supports_trace_ctx = True
    supports_cancel = True

    def run(
        self,
        jobs: Sequence[SimJob],
        fn: JobFn = execute_job,
        *,
        trace_ctx: dict | None = None,
        cancel: "threading.Event | None" = None,
    ) -> list[ExecutionRecord]:
        records = []
        for job in jobs:
            if cancel is not None and cancel.is_set():
                records.append(ExecutionRecord(job, None, CANCELLED))
                continue
            records.append(_invoke(fn, job, trace_ctx))
        return records


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Kill and reap a pool whose worker blew its deadline.

    ``ProcessPoolExecutor`` has no per-future kill, so a timed-out job
    would otherwise occupy its worker slot until the simulation ends on
    its own (possibly never).  Terminating the worker processes frees
    the slots immediately; the survivors of the batch are resubmitted to
    a fresh pool by the caller.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        proc.terminate()
    for proc in processes:
        proc.join(timeout=5.0)


class ProcessExecutor:
    """Fan jobs out over a bounded ``ProcessPoolExecutor``.

    ``timeout`` bounds the wait for each job *from the moment collection
    reaches it* — earlier jobs' waits overlap later jobs' execution, so
    it is a per-job bound on observed latency, not CPU time.  A job that
    exceeds it is reported as an error record and its stuck worker is
    terminated and reaped; jobs that had not finished by then are
    resubmitted to a fresh pool, so one hung simulation never occupies a
    slot for the rest of the sweep.
    """

    name = "process"
    supports_trace_ctx = True
    supports_cancel = True

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        timeout: float | None = None,
        keep_alive: bool = False,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.timeout = timeout
        # With ``keep_alive`` the worker pool persists across run() calls
        # so process-local worker state (NoC route memos, the graph-plane
        # resolve cache) survives between batches — the substrate of the
        # zero-repickle path for successive mutation deltas.  A timed-out
        # or broken pool is still terminated and replaced.
        self.keep_alive = keep_alive
        self._pool: ProcessPoolExecutor | None = None

    def _acquire_pool(self, size: int) -> ProcessPoolExecutor:
        if not self.keep_alive:
            return ProcessPoolExecutor(
                max_workers=size, initializer=mark_pool_worker
            )
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers, initializer=mark_pool_worker
            )
        return self._pool

    def close(self) -> None:
        """Shut down a kept-alive pool (no-op otherwise)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            pass

    def run(
        self,
        jobs: Sequence[SimJob],
        fn: JobFn = execute_job,
        *,
        trace_ctx: dict | None = None,
        cancel: "threading.Event | None" = None,
    ) -> list[ExecutionRecord]:
        jobs = list(jobs)
        if not jobs:
            return []
        records: dict[int, ExecutionRecord] = {}
        pending = list(enumerate(jobs))
        while pending:
            if cancel is not None and cancel.is_set():
                for index, job in pending:
                    records[index] = ExecutionRecord(job, None, CANCELLED)
                break
            # Workers are marked so nested fan-out (e.g. tile sharding
            # inside a pooled job) degrades to serial instead of forking
            # grandchildren — see repro.runtime.budget.
            pool = self._acquire_pool(min(self.max_workers, len(pending)))
            futures = [
                (index, job, pool.submit(_invoke, fn, job, trace_ctx))
                for index, job in pending
            ]
            survivors: list[tuple[int, SimJob]] = []
            timed_out = False
            cancelled = False
            for index, job, future in futures:
                if timed_out or cancelled:
                    # A worker is being reaped: harvest whatever already
                    # finished; on timeout resubmit the rest to the next
                    # pool, on cancel abandon them.
                    if future.done() and not future.cancelled():
                        records[index] = self._harvest(job, future)
                    elif cancelled:
                        future.cancel()
                        records[index] = ExecutionRecord(job, None, CANCELLED)
                    else:
                        future.cancel()
                        survivors.append((index, job))
                    continue
                status, value = self._await_future(future, cancel)
                if status == "ok":
                    records[index] = value
                elif status == "cancelled":
                    cancelled = True
                    records[index] = ExecutionRecord(job, None, CANCELLED)
                elif status == "timeout":
                    timed_out = True
                    records[index] = ExecutionRecord(
                        job,
                        None,
                        f"timeout: exceeded {self.timeout:g}s",
                        self.timeout or 0.0,
                    )
                else:  # broken pool, pickling failure, …
                    records[index] = ExecutionRecord(job, None, value)
            if timed_out or cancelled or getattr(pool, "_broken", False):
                _terminate_pool(pool)
                if pool is self._pool:
                    self._pool = None
            elif not self.keep_alive:
                pool.shutdown()
            pending = survivors
        return [records[index] for index in range(len(jobs))]

    def _await_future(
        self, future, cancel: "threading.Event | None"
    ) -> tuple[str, ExecutionRecord | str | None]:
        """Wait for one future, re-checking ``cancel`` while blocked.

        Returns ``("ok", record)``, ``("timeout", None)``,
        ``("cancelled", None)`` or ``("error", message)``.  Without a
        cancel event this is a single blocking wait, identical to the
        pre-cancellation behaviour.
        """
        deadline = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        while True:
            if cancel is not None and cancel.is_set():
                return "cancelled", None
            if deadline is None:
                wait = _CANCEL_POLL_SECONDS if cancel is not None else None
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return "timeout", None
                wait = (
                    min(_CANCEL_POLL_SECONDS, remaining)
                    if cancel is not None
                    else remaining
                )
            try:
                return "ok", future.result(timeout=wait)
            except FutureTimeoutError:
                if cancel is None:
                    return "timeout", None
                continue
            except Exception as exc:
                return "error", f"{type(exc).__name__}: {exc}"

    @staticmethod
    def _harvest(job: SimJob, future) -> ExecutionRecord:
        try:
            return future.result(timeout=0)
        except Exception as exc:
            return ExecutionRecord(job, None, f"{type(exc).__name__}: {exc}")


class FakeExecutor:
    """Deterministic in-process executor for tests.

    Runs everything serially with ``seconds`` pinned to 0.0, records the
    jobs it was asked to run, and fails any job matching ``fail_when`` —
    letting tests script failure isolation without a real crash.
    """

    name = "fake"
    supports_trace_ctx = True
    supports_cancel = True

    def __init__(
        self,
        fn: JobFn = execute_job,
        *,
        fail_when: Callable[[SimJob], bool] | None = None,
    ) -> None:
        self.fn = fn
        self.fail_when = fail_when
        self.calls: list[SimJob] = []

    def run(
        self,
        jobs: Sequence[SimJob],
        fn: JobFn | None = None,
        *,
        trace_ctx: dict | None = None,
        cancel: "threading.Event | None" = None,
    ) -> list[ExecutionRecord]:
        fn = fn or self.fn
        records = []
        for job in jobs:
            if cancel is not None and cancel.is_set():
                records.append(ExecutionRecord(job, None, CANCELLED))
                continue
            self.calls.append(job)
            if self.fail_when is not None and self.fail_when(job):
                records.append(ExecutionRecord(job, None, "injected failure"))
                continue
            record = _invoke(fn, job, trace_ctx)
            record.seconds = 0.0
            records.append(record)
        return records


def get_executor(
    jobs: int = 1, *, timeout: float | None = None
) -> SerialExecutor | ProcessExecutor:
    """Executor for a ``--jobs N`` style request (1 → serial)."""
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if jobs == 1:
        return SerialExecutor()
    return ProcessExecutor(jobs, timeout=timeout)
