"""The unified reconfigurable processing element (paper §III-D, Fig. 5/6).

Each PE contains a distributed bank buffer, a router interface, a reuse
FIFO, a post-processing unit (PPU), and an array of flexible MAC units
whose multiplier/adder datapath is reconfigurable:

* **Fig. 6 (a)** — multipliers paired into adders, adders chained for
  accumulation: supports ``V×V``, ``M×V`` and ``V·V``.
* **Fig. 6 (b)** — a constant loaded into the multipliers, adders
  bypassed: supports ``Scalar×V`` and ``V⊙V``.
* **Fig. 6 (c)** — multipliers bypassed, adders only: supports ``ΣV``.

The cycle model charges ops at the throughput the active datapath
sustains, plus a pipeline-fill latency and a small datapath-switch
penalty on configuration changes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..config import AcceleratorConfig
from ..models.base import OpKind
from .memory import BankBuffer, ReuseFIFO

__all__ = ["PEDatapath", "datapath_for_op", "PEConfig", "PE", "PECycleModel"]


class PEDatapath(enum.Enum):
    """Datapath configurations of the flexible MAC array."""

    MAC_CHAIN = "mac_chain"  # Fig. 6 (a): V×V, M×V, V·V
    MUL_ONLY = "mul_only"  # Fig. 6 (b): Scalar×V, V⊙V
    ADD_ONLY = "add_only"  # Fig. 6 (c): ΣV (and MaxV via the same tree)
    IDLE = "idle"


_OP_TO_DATAPATH: dict[OpKind, PEDatapath] = {
    OpKind.MATRIX_VECTOR: PEDatapath.MAC_CHAIN,
    OpKind.VECTOR_VECTOR: PEDatapath.MAC_CHAIN,
    OpKind.DOT: PEDatapath.MAC_CHAIN,
    OpKind.SCALAR_VECTOR: PEDatapath.MUL_ONLY,
    OpKind.ELEMENTWISE: PEDatapath.MUL_ONLY,
    OpKind.ACCUMULATE: PEDatapath.ADD_ONLY,
    OpKind.MAX_REDUCE: PEDatapath.ADD_ONLY,
}


def datapath_for_op(kind: OpKind) -> PEDatapath:
    """The datapath configuration required by a primitive op.

    PPU ops (activation/concat) do not use the MAC array at all and map
    to ``IDLE`` from the datapath's point of view.
    """
    if kind.is_ppu or kind is OpKind.NULL:
        return PEDatapath.IDLE
    try:
        return _OP_TO_DATAPATH[kind]
    except KeyError:  # pragma: no cover - exhaustive mapping above
        raise ValueError(f"no datapath for op kind {kind}") from None


@dataclass(frozen=True)
class PEConfig:
    """A full PE configuration the configuration unit installs."""

    datapath: PEDatapath
    stationary_weight_bytes: int = 0  # weights pinned in the bank buffer

    def __post_init__(self) -> None:
        if self.stationary_weight_bytes < 0:
            raise ValueError("stationary_weight_bytes must be >= 0")


class PECycleModel:
    """Throughput/latency model of one PE under each datapath."""

    # Cycles to drain the datapath pipeline after a reconfiguration.
    PIPELINE_FILL = 4
    # Cycles to flip the reconfigurable interconnect between datapaths.
    SWITCH_PENALTY = 2

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config

    def throughput(self, datapath: PEDatapath) -> int:
        """Sustained ops/cycle of a datapath."""
        macs = self.config.macs_per_pe
        if datapath is PEDatapath.MAC_CHAIN:
            return 2 * macs  # every multiplier and adder busy
        if datapath in (PEDatapath.MUL_ONLY, PEDatapath.ADD_ONLY):
            return macs  # half the units active, the rest bypassed
        return 0

    def ppu_throughput(self) -> int:
        return self.config.ppu_lanes

    def cycles_for_ops(self, kind: OpKind, ops: int) -> int:
        """Cycles to execute ``ops`` primitive operations of one kind."""
        if ops < 0:
            raise ValueError("ops must be non-negative")
        if ops == 0:
            return 0
        if kind.is_ppu:
            rate = self.ppu_throughput()
        else:
            rate = self.throughput(datapath_for_op(kind))
        if rate == 0:
            raise ValueError(f"op kind {kind} has no execution resource")
        return self.PIPELINE_FILL + -(-ops // rate)


class PE:
    """One processing element: state + counters.

    The flit-accurate simulator instantiates a grid of these; the
    analytical tier uses only :class:`PECycleModel`.
    """

    def __init__(self, x: int, y: int, config: AcceleratorConfig) -> None:
        self.x = x
        self.y = y
        self.hw = config
        self.buffer = BankBuffer(config.pe_buffer_bytes)
        self.fifo = ReuseFIFO(config.reuse_fifo_bytes)
        self.cycle_model = PECycleModel(config)
        self.pe_config = PEConfig(PEDatapath.IDLE)
        self.busy_cycles = 0
        self.reconfig_count = 0
        self.ops_executed: dict[OpKind, int] = {}

    # ------------------------------------------------------------------
    @property
    def position(self) -> tuple[int, int]:
        return (self.x, self.y)

    def configure(self, new_config: PEConfig) -> int:
        """Install a configuration; returns the switch penalty in cycles."""
        penalty = 0
        if new_config.datapath is not self.pe_config.datapath:
            penalty = PECycleModel.SWITCH_PENALTY
            self.reconfig_count += 1
        self.pe_config = new_config
        if new_config.stationary_weight_bytes:
            self.buffer.allocate("weights", new_config.stationary_weight_bytes)
        return penalty

    def execute(self, kind: OpKind, ops: int) -> int:
        """Run ``ops`` operations of ``kind``; returns cycles consumed.

        The PE must already be configured with a compatible datapath for
        MAC-array ops; PPU ops run regardless of datapath.
        """
        if ops == 0:
            return 0
        if not kind.is_ppu:
            needed = datapath_for_op(kind)
            if self.pe_config.datapath is not needed:
                raise RuntimeError(
                    f"PE({self.x},{self.y}) configured as "
                    f"{self.pe_config.datapath.value}, op {kind.value} needs "
                    f"{needed.value}"
                )
        cycles = self.cycle_model.cycles_for_ops(kind, ops)
        self.busy_cycles += cycles
        self.ops_executed[kind] = self.ops_executed.get(kind, 0) + ops
        return cycles

    def supports(self, kind: OpKind) -> bool:
        """Whether this (unified) PE can execute the op at all.

        Always true for the defined primitives — that is the point of the
        unified PE — but exposed so baseline PEs can override."""
        return kind is not OpKind.NULL
