"""Flexible NoC: topology, routers, cycle simulator, analytical model."""

from .analytical import (
    AnalyticalNoCModel,
    AnalyticalNoCResult,
    TrafficMatrix,
    ceil_flits,
)
from .deadlock import DeadlockReport, build_channel_dependency_graph, check_deadlock_freedom
from .drain import NoCDeadlockError
from .multicast import MulticastSimulator, MulticastTree, build_tree
from .network import NoCSimulator, NoCStats
from .packet import Flit, Packet
from .router import INJECT_PORT, Router, RouterPort
from .routing import bypass_route, compute_route, ring_route, segment_usable, xy_route
from .topology import BypassSegment, FlexibleMeshTopology, RingConfig
from .vc_router import PortDir, VCNetworkSimulator, VCRouter, VirtualChannel

__all__ = [
    "FlexibleMeshTopology",
    "BypassSegment",
    "RingConfig",
    "xy_route",
    "bypass_route",
    "ring_route",
    "compute_route",
    "Packet",
    "Flit",
    "Router",
    "RouterPort",
    "INJECT_PORT",
    "NoCSimulator",
    "NoCStats",
    "NoCDeadlockError",
    "TrafficMatrix",
    "AnalyticalNoCModel",
    "AnalyticalNoCResult",
    "ceil_flits",
    "PortDir",
    "VCRouter",
    "VirtualChannel",
    "VCNetworkSimulator",
    "DeadlockReport",
    "check_deadlock_freedom",
    "build_channel_dependency_graph",
    "segment_usable",
    "MulticastSimulator",
    "MulticastTree",
    "build_tree",
]
