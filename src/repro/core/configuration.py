"""NoC and PE configuration unit (paper Fig. 3, unit 6).

Takes the partition strategy (regions) and mapping result (bypass
segments) and realises them on a :class:`FlexibleMeshTopology`, plus
derives the per-region PE datapath programs.  Reconfiguration costs
``2K−1`` cycles (63 for the 32×32 array) and overlaps with the previous
subgraph's computation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..arch.noc.topology import FlexibleMeshTopology, RingConfig
from ..arch.pe import PEConfig, PEDatapath, datapath_for_op
from ..config import AcceleratorConfig
from ..mapping.base import MappingResult, PERegion
from ..models.base import OpKind
from ..perf import PERF
from .controller import Workflow

__all__ = ["ConfigurationPlan", "ConfigurationUnit"]


@dataclass(frozen=True)
class ConfigurationPlan:
    """Everything the configuration unit installs for one tile."""

    topology: FlexibleMeshTopology
    region_a: PERegion
    region_b: PERegion | None
    pe_configs_a: tuple[PEConfig, ...]  # datapath sequence for A's phases
    pe_configs_b: tuple[PEConfig, ...]
    reconfiguration_cycles: int
    ring_rows: int  # rings configured in region B

    @property
    def num_datapath_switches(self) -> int:
        """Datapath changes a PE performs across the tile's phases."""
        switches = max(len(self.pe_configs_a) - 1, 0)
        switches += max(len(self.pe_configs_b) - 1, 0)
        return switches


def _datapath_sequence(op_kinds: tuple[OpKind, ...]) -> tuple[PEConfig, ...]:
    """Collapse a phase-op sequence into the distinct datapaths it needs."""
    configs: list[PEConfig] = []
    for kind in op_kinds:
        dp = datapath_for_op(kind)
        if dp is PEDatapath.IDLE:
            continue  # PPU ops need no MAC-array reconfiguration
        if not configs or configs[-1].datapath is not dp:
            configs.append(PEConfig(dp))
    return tuple(configs)


class ConfigurationUnit:
    """Builds :class:`ConfigurationPlan` objects from the decisions."""

    #: Bounded class-level LRU: plans are pure functions of (array
    #: geometry, workflow, the mapping's bypass segments, regions), and
    #: every consumer treats a plan — topology included — as read-only
    #: after construction, so tiles with identical shapes share one plan.
    _CACHE_MAX = 256
    _cache: "OrderedDict[tuple, ConfigurationPlan]" = OrderedDict()

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config

    def configure(
        self,
        workflow: Workflow,
        mapping: MappingResult,
        region_a: PERegion,
        region_b: PERegion | None,
    ) -> ConfigurationPlan:
        """Install bypass segments for A and rings for B on a fresh topology.

        Memoized: the plan depends on the mapping only through its bypass
        segments (the *shape* of the placement, not the per-vertex
        assignment), so repeated tiles resolve to a shared cached plan.
        """
        key = (
            self.config.array_k,
            self.config.reconfiguration_cycles,
            workflow,
            mapping.bypass_segments,
            region_a,
            region_b,
        )
        plan = self._cache.get(key)
        if plan is not None:
            self._cache.move_to_end(key)
            PERF.incr("config.plan_cache_hit")
            return plan
        PERF.incr("config.plan_cache_miss")
        plan = self._configure(workflow, mapping, region_a, region_b)
        self._cache[key] = plan
        if len(self._cache) > self._CACHE_MAX:
            self._cache.popitem(last=False)
        return plan

    def _configure(
        self,
        workflow: Workflow,
        mapping: MappingResult,
        region_a: PERegion,
        region_b: PERegion | None,
    ) -> ConfigurationPlan:
        k = self.config.array_k
        topo = FlexibleMeshTopology(k)

        # Sub-accelerator A: bypass segments from the degree-aware mapping.
        for seg in mapping.bypass_segments:
            try:
                topo.add_bypass_segment(seg)
            except ValueError:
                # A row/column wire already claimed (e.g. by a ring span) —
                # the link controller simply leaves that segment unbridged.
                continue

        # Sub-accelerator B: each row becomes a weight-stationary ring.
        ring_rows = 0
        if region_b is not None and region_b.width > 1:
            ring = RingConfig(region_b.x0, region_b.y0, region_b.x1, region_b.y1)
            try:
                topo.add_ring_region(ring)
                ring_rows = region_b.height
            except ValueError:
                ring_rows = 0  # wires unavailable; B falls back to mesh

        a_ops: tuple[OpKind, ...] = ()
        b_ops: tuple[OpKind, ...] = ()
        for step in workflow.steps:
            if step.sub_accelerator == "A":
                a_ops = a_ops + step.op_kinds
            else:
                b_ops = b_ops + step.op_kinds

        return ConfigurationPlan(
            topology=topo,
            region_a=region_a,
            region_b=region_b,
            pe_configs_a=_datapath_sequence(a_ops),
            pe_configs_b=_datapath_sequence(b_ops),
            reconfiguration_cycles=self.config.reconfiguration_cycles,
            ring_rows=ring_rows,
        )
