"""Setup shim for offline editable installs (`python setup.py develop`).

The environment has no `wheel` package, so pip's PEP-660 editable path is
unavailable; `pip install -e .` falls back to this legacy entry point.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Aurora: a versatile and flexible GNN accelerator — "
        "full-system simulator reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9", "networkx>=2.8"],
)
