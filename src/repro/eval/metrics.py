"""Metric extraction and normalisation for the evaluation figures.

The paper reports every quantitative figure *normalised to Aurora*
(Figs. 7, 9, 10) and derives headline percentages as
``1 − aurora/baseline`` averages.  These helpers implement those
conventions once, so every benchmark renders identically.
"""

from __future__ import annotations

from ..core.results import SimulationResult

__all__ = [
    "METRICS",
    "metric_value",
    "normalize_to",
    "reduction_percent",
    "average_reduction",
    "geometric_mean",
]

#: metric name -> extractor
METRICS = {
    "execution_time": lambda r: r.total_seconds,
    "dram_accesses": lambda r: float(r.dram_bytes),
    "onchip_latency": lambda r: float(r.onchip_comm_cycles),
    "energy": lambda r: r.energy.total,
}


def metric_value(result: SimulationResult, metric: str) -> float:
    """Extract a named metric from a simulation result."""
    try:
        return METRICS[metric](result)
    except KeyError:
        raise KeyError(
            f"unknown metric {metric!r}; available: {', '.join(METRICS)}"
        ) from None


def normalize_to(value: float, reference: float) -> float:
    """``value / reference`` with a zero-reference guard."""
    if reference <= 0:
        raise ValueError("reference must be positive")
    return value / reference


def reduction_percent(aurora: float, baseline: float) -> float:
    """Percent reduction Aurora achieves vs a baseline (paper convention).

    ``85`` means Aurora needs 85% less than the baseline.
    """
    if baseline <= 0:
        raise ValueError("baseline value must be positive")
    return 100.0 * (1.0 - aurora / baseline)


def average_reduction(aurora: list[float], baseline: list[float]) -> float:
    """Mean per-point reduction percentage across matched samples."""
    if len(aurora) != len(baseline) or not aurora:
        raise ValueError("need equal-length, non-empty sample lists")
    return sum(
        reduction_percent(a, b) for a, b in zip(aurora, baseline)
    ) / len(aurora)


def geometric_mean(values: list[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("need at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    log_sum = 0.0
    import math

    for v in values:
        log_sum += math.log(v)
    return math.exp(log_sum / len(values))
