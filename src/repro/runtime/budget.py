"""One shared worker budget for every parallel subsystem.

Two fan-out mechanisms can now be active at once: ``repro serve``'s
process pool (batch execution) and intra-job tile sharding
(:mod:`repro.runtime.shards`).  Each alone sizes itself to the machine;
both together would oversubscribe it — a pool of N workers, each fanning
a layer out over N more processes, lands N² processes on N cores.

:class:`WorkerBudget` arbitrates: components *lease* workers out of one
process-wide pool sized to the CPU count, and a request that arrives
while another component holds a lease only gets what is left (never less
than one — serial execution is always allowed).  Pool *worker* processes
are marked via :func:`mark_pool_worker` (installed as the
``ProcessPoolExecutor`` initializer), so nested fan-out inside a worker
degrades to serial instead of forking grandchildren.

The budget is advisory bookkeeping, not a semaphore: leases bound what a
component *asks for*, they do not block.  ``snapshot()`` is surfaced in
``repro serve``'s ``/stats`` so operators can see who holds what.
"""

from __future__ import annotations

import os
import threading

__all__ = [
    "WorkerBudget",
    "BUDGET",
    "mark_pool_worker",
    "in_pool_worker",
]

#: Set in pool worker processes; checked before any nested fan-out.
_WORKER_ENV = "REPRO_POOL_WORKER"


def mark_pool_worker() -> None:
    """Pool initializer: mark this process as a leased worker."""
    os.environ[_WORKER_ENV] = "1"


def in_pool_worker() -> bool:
    """True inside a process-pool worker (nested fan-out must go serial)."""
    return os.environ.get(_WORKER_ENV) == "1"


class WorkerBudget:
    """Advisory lease bookkeeping over one machine-wide worker pool."""

    def __init__(self, total: int | None = None) -> None:
        self.total = total or os.cpu_count() or 1
        self._leases: dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def available(self) -> int:
        with self._lock:
            return max(1, self.total - sum(self._leases.values()))

    def lease(self, component: str, want: int) -> int:
        """Grant ``component`` up to ``want`` workers from what is left.

        Inside a pool worker the grant is always 1: the parent already
        spent the machine's parallelism on the pool itself.  Re-leasing
        under the same name replaces the previous lease (components size
        per request, not cumulatively).
        """
        if want < 1:
            raise ValueError("want must be >= 1")
        if in_pool_worker():
            return 1
        with self._lock:
            others = sum(
                n for name, n in self._leases.items() if name != component
            )
            grant = max(1, min(want, self.total - others))
            self._leases[component] = grant
            return grant

    def release(self, component: str) -> None:
        with self._lock:
            self._leases.pop(component, None)

    def snapshot(self) -> dict:
        with self._lock:
            leased = sum(self._leases.values())
            return {
                "total": self.total,
                "leases": dict(self._leases),
                "leased": leased,
                "available": max(0, self.total - leased),
                "in_pool_worker": in_pool_worker(),
            }


#: Process-wide budget all components share.
BUDGET = WorkerBudget()
