"""Fan-out of observe events to live WebSocket clients.

One :class:`WebSocketBroadcaster` is an :class:`~.events.EventSink`
bridging the (any-thread) event hub onto one asyncio loop: ``emit``
trampolines through ``call_soon_threadsafe`` and every connected
client gets the event on a bounded per-client queue.  A client that
cannot keep up loses events (counted per client and globally) and is
evicted once its drop count passes ``max_drops`` — a stalled dashboard
must never back-pressure the serving path or grow memory.

The connection handler owns the full socket lifecycle after the HTTP
upgrade: hello frame, queue drain, keepalive pings on idle, pong/close
handling, and protocol-violation closes (1002).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
import time
from collections import deque

from .events import SCHEMA_VERSION, Event, EventSink
from .websocket import (
    FrameAssembler,
    WebSocketError,
    close_code,
    encode_close,
    encode_ping,
    encode_pong,
    encode_text,
    handshake_response,
    read_frame,
)

__all__ = ["WebSocketBroadcaster"]

#: Queue sentinel telling a client's sender loop to close and exit.
_EVICT = object()
#: Like ``_EVICT`` but for server shutdown: queued events still go out,
#: and the close code is 1001 (going away), not 1013 (overloaded).
_SHUTDOWN = object()


class _Client:
    """Book-keeping for one connected observer."""

    _ids = itertools.count(1)

    def __init__(self, peer: str, queue_size: int) -> None:
        self.id = next(_Client._ids)
        self.peer = peer
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self.connected_at = time.time()
        self.drops = 0
        self.sent = 0
        self.evicted = False


class WebSocketBroadcaster(EventSink):
    """Bounded fan-out of the event stream to ``GET /observe`` clients."""

    def __init__(
        self,
        *,
        queue_size: int = 512,
        max_drops: int = 64,
        ping_interval: float = 15.0,
        flush_interval: float = 0.025,
    ) -> None:
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.queue_size = queue_size
        self.max_drops = max_drops
        self.ping_interval = ping_interval
        #: Events buffer for up to this long before fanning out, so one
        #: request's burst leaves as a single write after the request —
        #: not as per-event loop wakeups racing the serving path.  0
        #: dispatches on the next loop iteration.
        self.flush_interval = flush_interval
        self._loop: asyncio.AbstractEventLoop | None = None
        self._clients: dict[int, _Client] = {}
        # Events emitted between loop iterations coalesce into one
        # cross-thread wakeup: a burst of spans from one request costs
        # one ``call_soon_threadsafe``, not one per event.
        self._pending: deque[Event] = deque()
        self._pending_lock = threading.Lock()
        self._dispatch_scheduled = False
        self.connections_total = 0
        self.peak_clients = 0
        self.events_sent = 0
        self.events_dropped = 0
        self.clients_evicted = 0
        self.protocol_errors = 0

    # -- sink side ------------------------------------------------------
    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        """Adopt the loop the connection handlers run on."""
        self._loop = loop

    def emit(self, event: Event) -> None:
        loop = self._loop
        if loop is None or loop.is_closed() or not self._clients:
            return
        with self._pending_lock:
            self._pending.append(event)
            if self._dispatch_scheduled:
                return
            self._dispatch_scheduled = True
        try:
            loop.call_soon_threadsafe(self._arm_flush)
        except RuntimeError:
            with self._pending_lock:  # loop shut down under us
                self._dispatch_scheduled = False
                self._pending.clear()

    def _arm_flush(self) -> None:
        """Loop-thread only: dispatch now or after the flush window."""
        if self.flush_interval > 0:
            self._loop.call_later(self.flush_interval, self._dispatch_pending)
        else:
            self._dispatch_pending()

    def _dispatch_pending(self) -> None:
        """Loop-thread only: drain the coalescing buffer to the queues."""
        with self._pending_lock:
            batch = list(self._pending)
            self._pending.clear()
            self._dispatch_scheduled = False
        for event in batch:
            self._dispatch(event)

    def _dispatch(self, event: Event) -> None:
        """Loop-thread only: queue the event for every client."""
        for client in list(self._clients.values()):
            if client.evicted:
                continue
            try:
                client.queue.put_nowait(event)
            except asyncio.QueueFull:
                client.drops += 1
                self.events_dropped += 1
                if client.drops > self.max_drops:
                    self._evict(client)

    def _evict(self, client: _Client) -> None:
        """Flush a stalled client's queue and schedule its close."""
        client.evicted = True
        self.clients_evicted += 1
        while True:
            try:
                client.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
        client.queue.put_nowait(_EVICT)

    def close(self) -> None:
        """Sink shutdown: ask every connected client's sender to exit."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._close_all)
        except RuntimeError:
            pass

    async def aclose(self, timeout: float = 2.0) -> None:
        """Close every connection and wait for the handlers to finish.

        Loop-thread only.  Prevents "task destroyed" noise on server
        shutdown: the close frames actually reach the wire before the
        loop goes away.
        """
        self._close_all()
        deadline = time.monotonic() + timeout
        while self._clients and time.monotonic() < deadline:
            await asyncio.sleep(0.01)

    def _close_all(self) -> None:
        self._dispatch_pending()  # don't strand a buffered tail
        for client in list(self._clients.values()):
            if client.evicted:
                continue
            client.evicted = True
            try:
                client.queue.put_nowait(_SHUTDOWN)
            except asyncio.QueueFull:
                try:  # make room for the close marker
                    client.queue.get_nowait()
                except asyncio.QueueEmpty:
                    pass
                client.queue.put_nowait(_SHUTDOWN)

    # -- connection side ------------------------------------------------
    async def handle_client(self, request, reader, writer) -> None:
        """Own one upgraded connection until either side closes.

        ``request`` is the already-parsed upgrade request; the reply —
        101 or a 400 on a malformed handshake — is written here.
        """
        try:
            reply = handshake_response(request)
        except WebSocketError as exc:
            self.protocol_errors += 1
            from ..serve.http import render_response

            writer.write(render_response(400, {"error": str(exc)}))
            await writer.drain()
            return
        writer.write(reply)
        await writer.drain()
        if self._loop is None:
            self._loop = asyncio.get_running_loop()

        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        client = _Client(peer, self.queue_size)
        self._clients[client.id] = client
        self.connections_total += 1
        self.peak_clients = max(self.peak_clients, len(self._clients))
        hello = {
            "seq": 0,
            "ts": time.time(),
            "type": "observe.hello",
            "data": {"schema": SCHEMA_VERSION, "seq": 0, "client": client.id},
        }
        try:
            writer.write(encode_text(json.dumps(hello)))
            await writer.drain()
            receiver = asyncio.create_task(self._receive(reader, writer))
            try:
                await self._send_loop(client, writer, receiver)
            finally:
                receiver.cancel()
                try:
                    await receiver
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self._clients.pop(client.id, None)

    async def _send_loop(self, client, writer, receiver) -> None:
        """Drain the client queue; ping on idle; stop when receiver ends.

        Whatever is queued when the loop wakes goes out as one write +
        one drain — per-event flushes would double the warm-path cost
        the observer is budgeted against.
        """
        while True:
            if receiver.done():
                return
            try:
                item = await asyncio.wait_for(
                    client.queue.get(), timeout=self.ping_interval
                )
            except asyncio.TimeoutError:
                writer.write(encode_ping(b"observe"))
                await writer.drain()
                continue
            closing = None
            frames: list[bytes] = []
            while True:
                if item is _EVICT:
                    closing = encode_close(1013, "slow consumer")
                    break
                if item is _SHUTDOWN:
                    closing = encode_close(1001, "server shutdown")
                    break
                frames.append(encode_text(item.to_json()))
                try:
                    item = client.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            if frames:
                writer.write(b"".join(frames))
                await writer.drain()
                client.sent += len(frames)
                self.events_sent += len(frames)
            if closing is not None:
                writer.write(closing)
                await writer.drain()
                return

    async def _receive(self, reader, writer) -> None:
        """Read client frames: answer pings, honour close, flag abuse."""
        assembler = FrameAssembler(require_mask=True)
        while True:
            try:
                frame = await read_frame(reader)
            except WebSocketError:
                self.protocol_errors += 1
                try:
                    writer.write(encode_close(1002, "protocol error"))
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
                return
            if frame is None:
                return  # peer hung up
            try:
                message = assembler.feed(frame)
            except WebSocketError:
                self.protocol_errors += 1
                try:
                    writer.write(encode_close(1002, "protocol error"))
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
                return
            if message is None:
                continue
            kind, payload = message
            if kind == "ping":
                writer.write(encode_pong(payload))
                await writer.drain()
            elif kind == "close":
                code = close_code(payload) or 1000
                try:
                    writer.write(encode_close(code))
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
                return
            # text/binary/pong from observers carry no meaning; ignored.

    # -- stats ----------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "clients": len(self._clients),
            "peak_clients": self.peak_clients,
            "connections_total": self.connections_total,
            "queue_size": self.queue_size,
            "max_drops": self.max_drops,
            "events_sent": self.events_sent,
            "events_dropped": self.events_dropped,
            "clients_evicted": self.clients_evicted,
            "protocol_errors": self.protocol_errors,
        }
