"""Sharded multi-worker serving: a consistent-hash router over replicas.

One ``repro.serve`` process saturates a core; this package scales the
service out by content hash.  A front-end router supervises N replica
subprocesses (each a full serve instance on its own port and cache
shard) and consistent-hashes canonical :class:`~repro.runtime.SimJob`
keys across them, so identical jobs always land on the same replica's
single-flight dedup and warm caches:

* :mod:`.ring` — the hash ring with virtual nodes (balance and
  minimal-disruption properties pinned by tests);
* :mod:`.wire` — the async one-shot HTTP client the router uses to
  talk to replicas;
* :mod:`.tiers` — the memory → disk-shard → peer-fetch result lookup
  chain consulted before any recompute;
* :mod:`.replica` — subprocess lifecycle: spawn, ``/healthz`` probing
  (busy vs hung), restart with backoff, operator drain;
* :mod:`.router` — the asyncio front end: placement, per-replica
  bounded in-flight with ``Retry-After`` shedding, transport-failure
  failover, fleet-wide ``/stats`` + ``/metrics``, and the
  ``cluster_forever`` / :class:`~.router.ClusterThread` hosts.

CLI: ``repro cluster --replicas N``; see ``docs/serving.md``.
"""

from .replica import ReplicaConfig, ReplicaSpawnError, ReplicaSupervisor, SubprocessReplica
from .ring import DEFAULT_VNODES, HashRing, ring_point
from .router import ClusterRouter, ClusterThread, cluster_forever
from .tiers import ResultLRU, TieredResultStore

__all__ = [
    "HashRing",
    "ring_point",
    "DEFAULT_VNODES",
    "ReplicaConfig",
    "ReplicaSpawnError",
    "ReplicaSupervisor",
    "SubprocessReplica",
    "ResultLRU",
    "TieredResultStore",
    "ClusterRouter",
    "ClusterThread",
    "cluster_forever",
]
