"""Tests for the baseline accelerator models."""

import pytest

from repro import (
    AuroraSimulator,
    BASELINE_CLASSES,
    LayerDims,
    UnsupportedModelError,
    get_model,
    make_baseline,
)
from repro.baselines import BASELINE_TRAITS, BaselineTraits
from repro.graphs import power_law_graph


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(
        500, 2500, exponent=2.0, locality=0.6, num_features=128,
        feature_density=0.1, seed=11,
    )


DIMS = LayerDims(128, 32)


class TestTraits:
    def test_five_baselines(self):
        assert len(BASELINE_CLASSES) == 5
        assert len(BASELINE_TRAITS) == 5

    def test_names_in_paper_order(self):
        assert [t.name for t in BASELINE_TRAITS] == [
            "hygcn",
            "awb-gcn",
            "gcnax",
            "regnn",
            "flowgnn",
        ]

    def test_table1_coverage_matrix(self):
        by_name = {t.name: t for t in BASELINE_TRAITS}
        # C-GNN only: HyGCN, AWB-GCN, GCNAX.
        for name in ("hygcn", "awb-gcn", "gcnax"):
            t = by_name[name]
            assert t.supports_c_gnn and not t.supports_a_gnn and not t.supports_mp_gnn
        # ReGNN: message passing without full MP-GNN coverage.
        assert by_name["regnn"].supports_a_gnn
        assert not by_name["regnn"].supports_mp_gnn
        # FlowGNN covers everything.
        assert by_name["flowgnn"].supports_mp_gnn
        # None of them has a flexible NoC (Aurora's distinguishing column).
        assert all(not t.flexible_noc for t in BASELINE_TRAITS)
        assert all(not t.flexible_pe for t in BASELINE_TRAITS)

    def test_hygcn_engine_split(self):
        hygcn = next(t for t in BASELINE_TRAITS if t.name == "hygcn")
        assert hygcn.engine_split == pytest.approx(1 / 8)  # paper's 1:7 ratio

    def test_awb_rebalancing(self):
        awb = next(t for t in BASELINE_TRAITS if t.name == "awb-gcn")
        assert awb.runtime_rebalancing

    def test_regnn_redundancy(self):
        regnn = next(t for t in BASELINE_TRAITS if t.name == "regnn")
        assert 0 < regnn.redundancy_elimination < 1


class TestFactory:
    @pytest.mark.parametrize("name", ["hygcn", "awb-gcn", "gcnax", "regnn", "flowgnn"])
    def test_make_baseline(self, name):
        assert make_baseline(name).name == name

    def test_alias(self):
        assert make_baseline("awbgcn").name == "awb-gcn"

    def test_unknown(self):
        with pytest.raises(KeyError):
            make_baseline("tpu")


class TestSupport:
    def test_strict_raises_for_unsupported(self, graph):
        hygcn = make_baseline("hygcn")
        with pytest.raises(UnsupportedModelError):
            hygcn.simulate_layer(get_model("ggcn"), graph, DIMS)

    def test_non_strict_runs_with_penalty(self, graph):
        hygcn = make_baseline("hygcn")
        gcn = hygcn.simulate_layer(get_model("gcn"), graph, DIMS)
        forced = hygcn.simulate_layer(
            get_model("ggcn"), graph, DIMS, strict=False
        )
        assert forced.total_seconds > 0

    def test_flowgnn_supports_mp(self, graph):
        r = make_baseline("flowgnn").simulate_layer(get_model("ggcn"), graph, DIMS)
        assert r.total_seconds > 0


class TestSimulation:
    @pytest.mark.parametrize("cls", BASELINE_CLASSES)
    def test_sanity(self, cls, graph):
        r = cls().simulate_layer(get_model("gcn"), graph, DIMS)
        assert r.total_seconds > 0
        assert r.dram_bytes > 0
        assert r.onchip_comm_cycles > 0
        assert r.energy.total > 0

    def test_notes_include_imbalance(self, graph):
        r = make_baseline("hygcn").simulate_layer(get_model("gcn"), graph, DIMS)
        assert r.notes["compute_imbalance"] >= 1.0
        assert r.notes["ejection_imbalance"] >= 1.0

    def test_rebalancing_lowers_imbalance(self, graph):
        hygcn = make_baseline("hygcn").simulate_layer(get_model("gcn"), graph, DIMS)
        awb = make_baseline("awb-gcn").simulate_layer(get_model("gcn"), graph, DIMS)
        assert awb.notes["compute_imbalance"] < hygcn.notes["compute_imbalance"]

    def test_multilayer(self, graph):
        r = make_baseline("gcnax").simulate(
            get_model("gcn"), graph, [DIMS, LayerDims(32, 8)]
        )
        assert r.notes["layers"] == 2

    def test_deterministic(self, graph):
        a = make_baseline("regnn").simulate_layer(get_model("gcn"), graph, DIMS)
        b = make_baseline("regnn").simulate_layer(get_model("gcn"), graph, DIMS)
        assert a.total_seconds == b.total_seconds


class TestRelativeOrdering:
    """The paper's qualitative ordering must hold on a GCN dataset workload.

    The comparison uses a paper dataset (Cora) at full scale: the models
    are calibrated for dataset-sized workloads where the phase volumes
    dominate; on micro-graphs Aurora's fixed startup costs (weight fill,
    reconfiguration) can invert the ordering, which the paper never
    evaluates.
    """

    @pytest.fixture(scope="class")
    def cora_results(self):
        from repro import load_dataset
        from repro.core.accelerator import layer_plan

        g = load_dataset("cora")
        dims = layer_plan(g, 64, 2, 7)  # the paper's 2-layer GCN inference
        out = {"aurora": AuroraSimulator().simulate(get_model("gcn"), g, dims)}
        for cls in BASELINE_CLASSES:
            dev = cls()
            out[dev.name] = dev.simulate(get_model("gcn"), g, dims, strict=False)
        return out

    def test_aurora_fastest(self, cora_results):
        aurora_t = cora_results["aurora"].total_seconds
        for name, r in cora_results.items():
            if name != "aurora":
                assert r.total_seconds > aurora_t, name

    def test_hygcn_slowest_baseline(self, cora_results):
        hygcn_t = cora_results["hygcn"].total_seconds
        for name, r in cora_results.items():
            if name not in ("hygcn",):
                assert r.total_seconds < hygcn_t, name

    def test_aurora_lowest_energy(self, cora_results):
        aurora_e = cora_results["aurora"].energy.total
        for name, r in cora_results.items():
            if name != "aurora":
                assert r.energy.total > aurora_e, name

    def test_aurora_lowest_dram(self, cora_results):
        aurora_d = cora_results["aurora"].dram_bytes
        for name in ("hygcn", "awb-gcn", "regnn"):
            assert cora_results[name].dram_bytes >= aurora_d, name


class TestTraitValidation:
    def test_custom_traits(self, graph):
        from repro.baselines import BaselineAccelerator

        traits = BaselineTraits(name="custom", comm_ports=32)
        dev = BaselineAccelerator(traits)
        r = dev.simulate_layer(get_model("gcn"), graph, DIMS)
        assert r.accelerator == "custom"

    def test_combination_first_trait(self, graph):
        from repro.baselines import BaselineAccelerator

        base = BaselineAccelerator(BaselineTraits(name="plain"))
        cf = BaselineAccelerator(
            BaselineTraits(name="cf", combination_first=True)
        )
        r_base = base.simulate_layer(get_model("gcn"), graph, DIMS)
        r_cf = cf.simulate_layer(get_model("gcn"), graph, DIMS)
        assert r_cf.notes["combination_first"] is True
        assert r_cf.total_seconds < r_base.total_seconds
