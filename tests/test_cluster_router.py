"""Router behaviour over real sockets, with in-process replicas.

The router duck-types the ``ServerThread`` service contract, so these
tests host it exactly like a single service and register replicas that
are themselves ``ServerThread``-hosted ``SimulationService`` instances
— the full proxy path runs over loopback TCP, no subprocesses.
"""

import http.client
import json
import threading
import time

import pytest

from repro.cluster import ClusterRouter
from repro.runtime import ResultCache, run_jobs
from repro.serve.client import ServeClient, ServeError, ServiceUnavailable
from repro.serve.server import ServerThread, SimulationService

SMALL = {"dataset": "cora", "scale": 0.1, "hidden": 8, "layers": 1}


def make_runner(*, delay=0.0, cache=None, release=None):
    """run_jobs wrapped with an optional fixed delay or a release event."""

    async def runner(jobs):
        import asyncio

        if release is not None:
            await asyncio.to_thread(release.wait, 10.0)
        if delay:
            await asyncio.sleep(delay)
        return await asyncio.to_thread(lambda: run_jobs(jobs, cache=cache))

    return runner


class Fleet:
    """A router plus N in-process replica servers, all socket-hosted."""

    def __init__(self, replicas=2, *, router=None, services=None):
        self.router = router or ClusterRouter()
        self.services = services or [
            SimulationService(replica_id=str(i)) for i in range(replicas)
        ]
        self.threads = []

    def __enter__(self):
        for i, service in enumerate(self.services):
            thread = ServerThread(service)
            thread.start()
            self.threads.append(thread)
            host, port = thread.address
            self.router.replica_up(str(i), host, port)
        self.router_thread = ServerThread(self.router)
        self.router_thread.start()
        self.address = self.router_thread.address
        return self

    def __exit__(self, *exc_info):
        self.router_thread.stop()
        for thread in self.threads:
            thread.stop()

    def client(self, **kwargs):
        kwargs.setdefault("timeout", 60.0)
        return ServeClient(*self.address, **kwargs)

    def raw(self, method, path, body=None):
        """One raw HTTP exchange; returns (status, headers, payload)."""
        conn = http.client.HTTPConnection(*self.address, timeout=30.0)
        try:
            conn.request(
                method,
                path,
                body=json.dumps(body) if body is not None else None,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = conn.getresponse()
            raw = response.read()
            payload = json.loads(raw) if raw else {}
            return response.status, dict(response.getheaders()), payload
        finally:
            conn.close()


class TestRouting:
    def test_affinity_and_memory_tier(self):
        with Fleet(2) as fleet:
            client = fleet.client()
            first = client.simulate(SMALL)
            assert first["cached"] is False
            assert first["replica"] in ("0", "1")
            second = client.simulate(SMALL)
            assert second["cached"] is True
            assert second["tier"] == "memory"
            assert fleet.router.counters["proxied"] == 1
            assert fleet.router.counters["tier_served"] == 1

    def test_distinct_jobs_reach_both_replicas(self):
        with Fleet(2) as fleet:
            client = fleet.client()
            replicas = {
                client.simulate({**SMALL, "seed": seed})["replica"]
                for seed in range(12)
            }
            assert replicas == {"0", "1"}

    def test_same_key_same_replica(self):
        with Fleet(2, router=ClusterRouter(lru_capacity=0)) as fleet:
            client = fleet.client()
            owners = {
                client.simulate({**SMALL, "seed": 7}).get("replica")
                for _ in range(3)
            }
            owners.discard(None)
            assert len(owners) == 1

    def test_bad_request_is_400(self):
        with Fleet(1) as fleet:
            status, _, payload = fleet.raw(
                "POST", "/simulate", {**SMALL, "scale": -1}
            )
            assert status == 400
            assert "error" in payload

    def test_no_replicas_is_503_with_retry_after(self):
        with Fleet(0) as fleet:
            status, headers, payload = fleet.raw("POST", "/simulate", SMALL)
            assert status == 503
            assert "no routable replica" in payload["error"]
            assert float(headers["Retry-After"]) > 0


class TestFailover:
    def test_dead_replica_fails_over(self):
        """Killing a replica's socket reroutes its keys, invisibly."""
        with Fleet(2, router=ClusterRouter(lru_capacity=0)) as fleet:
            client = fleet.client()
            probe = client.simulate({**SMALL, "seed": 3})
            owner = int(probe["replica"])
            fleet.threads[owner].stop()  # replica socket goes dark
            # Same key again: transport failure, then the next ring
            # candidate answers (its own cache is cold, so it computes).
            again = client.simulate({**SMALL, "seed": 3})
            assert int(again["replica"]) == 1 - owner
            assert fleet.router.counters["proxy_failovers"] >= 1

    def test_all_dead_is_503_with_attempts(self):
        with Fleet(1) as fleet:
            fleet.threads[0].stop()
            client = fleet.client(retries=0)
            with pytest.raises(ServiceUnavailable):
                client.simulate(SMALL)
            assert fleet.router.counters["no_replica"] == 1


class TestShedding:
    def test_saturated_owner_sheds_429_with_retry_after(self):
        release = threading.Event()
        service = SimulationService(runner=make_runner(release=release))
        router = ClusterRouter(max_inflight_per_replica=1, lru_capacity=0)
        with Fleet(1, router=router, services=[service]) as fleet:
            blocker = threading.Thread(
                target=lambda: fleet.client().simulate(SMALL)
            )
            blocker.start()
            try:
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if router._inflight.get("0"):
                        break
                    time.sleep(0.01)
                status, headers, payload = fleet.raw(
                    "POST", "/simulate", {**SMALL, "seed": 9}
                )
                assert status == 429
                assert "saturated" in payload["error"]
                assert float(headers["Retry-After"]) > 0
                assert router.counters["shed"] == 1
            finally:
                release.set()
                blocker.join(timeout=30.0)

    def test_draining_router_sheds_503(self):
        with Fleet(1) as fleet:
            fleet.router.begin_drain()
            status, headers, payload = fleet.raw("POST", "/simulate", SMALL)
            assert status == 503
            assert "draining" in payload["error"]
            assert "Retry-After" in headers


class TestResultEndpoint:
    def test_hit_miss_and_validation(self):
        with Fleet(1) as fleet:
            client = fleet.client()
            payload = client.simulate(SMALL)
            key = payload["key"]
            status, _, hit = fleet.raw("GET", f"/result/{key}")
            assert status == 200
            assert hit["cached"] is True
            assert hit["result"] == payload["result"]
            status, _, miss = fleet.raw("GET", "/result/" + "0" * 64)
            assert status == 404
            status, _, bad = fleet.raw("GET", "/result/not-hex!")
            assert status == 400

    def test_peer_fetch_rescues_other_shards(self, tmp_path):
        """A result only on a replica's shard is found without recompute."""
        shard = ResultCache(tmp_path)
        service = SimulationService(cache=shard)
        router = ClusterRouter(lru_capacity=4)
        with Fleet(1, router=router, services=[service]) as fleet:
            key = fleet.client().simulate(SMALL)["key"]
            assert shard.load(key) is not None
            # A second router with no tiers of its own: the peer tier
            # (GET /result/<key> against a non-owner replica) must
            # answer.  The same address joins under two names so the
            # preference list always holds a non-owner peer.
            rescue = ClusterRouter(lru_capacity=0)
            host, port = fleet.threads[0].address
            rescue.replica_up("0", host, port)
            rescue.replica_up("1", host, port)
            import asyncio

            result, tier = asyncio.run(rescue.tiers.lookup(key))
            assert tier == "peer"
            assert result is not None


class TestOps:
    def test_healthz_transitions(self):
        with Fleet(2) as fleet:
            _, _, health = fleet.raw("GET", "/healthz")
            assert health["status"] == "ok"
            assert health["replicas_up"] == 2
            fleet.router.replica_down("1")
            assert fleet.router.healthz()["status"] in ("degraded", "ok")
            fleet.router.replica_down("0")
            assert fleet.router.healthz()["status"] == "down"
            fleet.router.begin_drain()
            assert fleet.router.healthz()["status"] == "draining"

    def test_stats_aggregates_replicas(self):
        with Fleet(2) as fleet:
            client = fleet.client()
            client.simulate(SMALL)
            stats = client.stats()
            assert stats["role"] == "router"
            assert set(stats["replicas"]) == {"0", "1"}
            for replica_stats in stats["replicas"].values():
                assert "requests" in replica_stats
            router_section = stats["router"]
            assert router_section["requests"]["proxied"] == 1
            assert router_section["ring"]["nodes"] == ["0", "1"]
            assert router_section["tiers"]["disk_shards"] == 0

    def test_metrics_exported(self):
        with Fleet(1) as fleet:
            client = fleet.client()
            client.simulate(SMALL)
            text = client.metrics()
            assert "repro_cluster_requests_total" in text
            assert 'repro_cluster_routed_total{replica="0"}' in text
            assert "repro_cluster_replica_up" in text

    def test_replica_actions_require_supervisor(self):
        with Fleet(1) as fleet:
            status, _, payload = fleet.raw("POST", "/replicas/0/drain")
            assert status == 404
            assert "no supervisor" in payload["error"]

    def test_unknown_endpoint_404(self):
        with Fleet(1) as fleet:
            status, _, _ = fleet.raw("GET", "/nope")
            assert status == 404


class TestValidation:
    def test_constructor_bounds(self):
        with pytest.raises(ValueError):
            ClusterRouter(max_inflight_per_replica=0)
        with pytest.raises(ValueError):
            ClusterRouter(proxy_retries=-1)
