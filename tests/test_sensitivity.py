"""Tests for the sensitivity-analysis sweeps."""

import pytest

from repro.baselines import GCNAX_TRAITS, HYGCN_TRAITS
from repro.eval.sensitivity import NUMERIC_TRAITS, sweep_trait


@pytest.fixture(scope="module")
def hygcn_ports_sweep():
    return sweep_trait(
        HYGCN_TRAITS, "comm_ports", dataset="cora", scale=0.5, hidden=32
    )


class TestSweep:
    def test_point_per_factor(self, hygcn_ports_sweep):
        assert len(hygcn_ports_sweep.points) == 5
        assert [p.factor for p in hygcn_ports_sweep.points] == [
            0.5,
            0.75,
            1.0,
            1.25,
            1.5,
        ]

    def test_more_ports_faster_baseline(self, hygcn_ports_sweep):
        """comm_ports is bandwidth: scaling it up must not slow HyGCN."""
        vals = [p.speedup_vs_aurora for p in hygcn_ports_sweep.points]
        assert vals[0] >= vals[-1]
        assert hygcn_ports_sweep.monotonic()

    def test_aurora_wins_across_halving_and_doubling(self, hygcn_ports_sweep):
        """The headline conclusion survives a 2x calibration error."""
        assert hygcn_ports_sweep.aurora_always_wins

    def test_spread_positive(self, hygcn_ports_sweep):
        assert hygcn_ports_sweep.spread >= 1.0

    def test_service_cycles_affect_nothing_but_volume(self):
        """comm_service_cycles feeds the Fig. 8 metric, not execution time:
        exec-time speedups must be flat across the sweep."""
        rep = sweep_trait(
            HYGCN_TRAITS, "comm_service_cycles", dataset="cora", scale=0.5, hidden=32
        )
        assert rep.spread == pytest.approx(1.0, abs=1e-9)

    def test_bounded_traits_clipped(self):
        rep = sweep_trait(
            GCNAX_TRAITS,
            "feature_reuse",
            dataset="cora",
            scale=0.5,
            hidden=32,
            factors=(0.1, 1.0, 2.0),
        )
        assert all(p.trait_value <= 0.99 for p in rep.points)

    def test_unknown_trait_rejected(self):
        with pytest.raises(ValueError, match="sweepable"):
            sweep_trait(HYGCN_TRAITS, "name")

    def test_numeric_traits_are_fields(self):
        for trait in NUMERIC_TRAITS:
            assert hasattr(HYGCN_TRAITS, trait)
