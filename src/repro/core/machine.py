"""Instruction-stream interpreter: executes lowered layer programs.

The controller lowers a layer into the Opcode stream (paper §III-E step
7: "the instruction dispatcher start issuing instructions as conventional
accelerators").  This machine gives that stream operational semantics:
it walks the program against explicit device state, enforcing the
legality rules the hardware control would (no EXEC before CONFIG, no
FORWARD without a B region, weights loaded before the phases that use
them), and annotates each instruction with its timing class.

The performance numbers still come from the analytical simulator — the
machine's job is *sequencing correctness*: tests drive it with valid and
deliberately broken programs, and the accelerator facade uses it to
sanity-check every program it emits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .instructions import Instruction, Opcode

__all__ = ["MachineState", "ExecutionRecord", "IllegalProgram", "Machine"]


class IllegalProgram(RuntimeError):
    """The instruction stream violates the device's sequencing rules."""


class MachineState(enum.Enum):
    """Coarse device state the sequencing rules are written against."""

    IDLE = "idle"
    CONFIGURED_NOC = "configured_noc"
    CONFIGURED = "configured"
    LOADED = "loaded"
    EXECUTING = "executing"
    HALTED = "halted"


@dataclass
class ExecutionRecord:
    """One executed instruction with its timing annotation."""

    index: int
    instruction: Instruction
    state_after: MachineState
    overlappable: bool  # hidden under compute of the previous tile?


@dataclass
class Machine:
    """Walks an instruction program, enforcing sequencing legality.

    Rules enforced (mirroring the walk-through's ordering):

    * ``CONFIG_NOC`` then ``CONFIG_PE`` precede each tile's work;
    * ``LOAD_GRAPH`` requires configuration;
    * ``EXEC_PHASE`` requires a loaded tile, and a ``sub_accelerator``
      operand of ``"A"`` or ``"B"``;
    * B-phase execution requires a prior ``FORWARD`` for the same tile;
    * ``FORWARD`` requires at least one completed A phase for the tile;
    * ``STORE`` requires at least one executed phase;
    * ``LOAD_WEIGHTS`` is only legal before the first tile's execution;
    * nothing may follow ``HALT``.
    """

    records: list[ExecutionRecord] = field(default_factory=list)
    state: MachineState = MachineState.IDLE
    weights_loaded: bool = False
    current_tile: int | None = None
    _tile_a_done: bool = False
    _tile_forwarded: bool = False
    _tile_exec_count: int = 0
    _any_exec_happened: bool = False

    # ------------------------------------------------------------------
    def run(self, program: list[Instruction]) -> list[ExecutionRecord]:
        """Execute a whole program; raises :class:`IllegalProgram` on the
        first violation, otherwise returns the execution records."""
        for index, instr in enumerate(program):
            self.execute(index, instr)
        return self.records

    # ------------------------------------------------------------------
    def execute(self, index: int, instr: Instruction) -> ExecutionRecord:
        if self.state is MachineState.HALTED:
            raise IllegalProgram(f"@{index}: instruction after HALT")
        handler = {
            Opcode.LOAD_WEIGHTS: self._load_weights,
            Opcode.CONFIG_NOC: self._config_noc,
            Opcode.CONFIG_PE: self._config_pe,
            Opcode.LOAD_GRAPH: self._load_graph,
            Opcode.EXEC_PHASE: self._exec_phase,
            Opcode.FORWARD: self._forward,
            Opcode.STORE: self._store,
            Opcode.BARRIER: self._barrier,
            Opcode.HALT: self._halt,
        }[instr.opcode]
        overlappable = handler(index, instr)
        record = ExecutionRecord(
            index=index,
            instruction=instr,
            state_after=self.state,
            overlappable=overlappable,
        )
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    # Handlers: return True when the step overlaps previous-tile compute.
    # ------------------------------------------------------------------
    def _load_weights(self, index: int, instr: Instruction) -> bool:
        if self._any_exec_happened:
            raise IllegalProgram(
                f"@{index}: LOAD_WEIGHTS after execution started — weights "
                "are stationary for the layer and must load up front"
            )
        self.weights_loaded = True
        return False  # the first weight fill has nothing to hide under

    def _config_noc(self, index: int, instr: Instruction) -> bool:
        tile = instr.operand("tile")
        self._begin_tile(tile)
        self.state = MachineState.CONFIGURED_NOC
        return self._any_exec_happened  # overlaps previous tile's compute

    def _config_pe(self, index: int, instr: Instruction) -> bool:
        if self.state is not MachineState.CONFIGURED_NOC:
            raise IllegalProgram(
                f"@{index}: CONFIG_PE before CONFIG_NOC for the tile"
            )
        self.state = MachineState.CONFIGURED
        return self._any_exec_happened

    def _load_graph(self, index: int, instr: Instruction) -> bool:
        if self.state is not MachineState.CONFIGURED:
            raise IllegalProgram(
                f"@{index}: LOAD_GRAPH requires a configured tile"
            )
        self.state = MachineState.LOADED
        return self._any_exec_happened  # DRAM prefetch overlap

    def _exec_phase(self, index: int, instr: Instruction) -> bool:
        if self.state not in (MachineState.LOADED, MachineState.EXECUTING):
            raise IllegalProgram(
                f"@{index}: EXEC_PHASE before the tile is loaded"
            )
        sub = instr.operand("sub_accelerator")
        if sub not in ("A", "B"):
            raise IllegalProgram(
                f"@{index}: EXEC_PHASE needs sub_accelerator 'A' or 'B', "
                f"got {sub!r}"
            )
        if sub == "B" and not self._tile_forwarded:
            raise IllegalProgram(
                f"@{index}: B-phase execution before FORWARD for the tile"
            )
        if sub == "A":
            self._tile_a_done = True
        self.state = MachineState.EXECUTING
        self._tile_exec_count += 1
        self._any_exec_happened = True
        return False

    def _forward(self, index: int, instr: Instruction) -> bool:
        if not self._tile_a_done:
            raise IllegalProgram(
                f"@{index}: FORWARD before any A-phase completed for the tile"
            )
        self._tile_forwarded = True
        return True  # streaming through reuse FIFOs hides under compute

    def _store(self, index: int, instr: Instruction) -> bool:
        if self._tile_exec_count == 0:
            raise IllegalProgram(f"@{index}: STORE with no executed phase")
        return True  # write-back overlaps the next tile

    def _barrier(self, index: int, instr: Instruction) -> bool:
        self.state = MachineState.IDLE
        return False

    def _halt(self, index: int, instr: Instruction) -> bool:
        self.state = MachineState.HALTED
        return False

    # ------------------------------------------------------------------
    def _begin_tile(self, tile: int | None) -> None:
        self.current_tile = tile
        self._tile_a_done = False
        self._tile_forwarded = False
        self._tile_exec_count = 0

    # ------------------------------------------------------------------
    @property
    def executed_tiles(self) -> list[int]:
        """Tile ids in the order their configuration was issued."""
        return [
            r.instruction.operand("tile")
            for r in self.records
            if r.instruction.opcode is Opcode.CONFIG_NOC
        ]

    @property
    def overlappable_fraction(self) -> float:
        """Share of instructions hidden under previous-tile compute."""
        if not self.records:
            return 0.0
        return sum(r.overlappable for r in self.records) / len(self.records)
