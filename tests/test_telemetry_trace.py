"""Tracer core: nesting, sampling, buffering, and propagation."""

import asyncio
import threading

import pytest

from repro.runtime.executor import FakeExecutor, SerialExecutor
from repro.runtime.jobs import SimJob
from repro.runtime.runner import run_jobs
from repro.telemetry.trace import (
    TRACER,
    Span,
    SpanBuffer,
    Tracer,
    valid_trace_id,
)


def make_tracer(**kwargs) -> Tracer:
    kwargs.setdefault("enabled", True)
    return Tracer(**kwargs)


class TestSpanNesting:
    def test_root_span_gets_trace_and_span_ids(self):
        tracer = make_tracer()
        with tracer.span("root") as span:
            assert span.trace_id and span.span_id
            assert span.parent_id is None

    def test_children_inherit_trace_id_and_parent_link(self):
        tracer = make_tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
                with tracer.span("grandchild") as grand:
                    assert grand.parent_id == child.span_id

    def test_sibling_spans_share_parent(self):
        tracer = make_tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_finished_spans_land_in_buffer_children_first(self):
        tracer = make_tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        names = [s.name for s in tracer.buffer.spans()]
        assert names == ["child", "root"]

    def test_exception_marks_error_and_reraises(self):
        tracer = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("kaput")
        (span,) = tracer.buffer.spans()
        assert span.status == "error"
        assert "kaput" in span.error

    def test_duration_and_attributes_recorded(self):
        tracer = make_tracer()
        with tracer.span("stage", {"k": 1}) as span:
            span.set(extra="v")
        (got,) = tracer.buffer.spans()
        assert got.duration >= 0.0
        assert got.attributes == {"k": 1, "extra": "v"}


class TestDisabledFastPath:
    def test_disabled_tracer_yields_shared_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                assert a is b  # the shared no-op instance
        assert a.sampled is False
        assert len(tracer.buffer) == 0

    def test_noop_span_accepts_set(self):
        tracer = Tracer(enabled=False)
        with tracer.span("a") as span:
            assert span.set(anything=1) is span

    def test_global_tracer_starts_disabled(self):
        assert TRACER.enabled is False

    def test_current_context_is_none_when_disabled(self):
        tracer = Tracer(enabled=False)
        with tracer.span("a"):
            assert tracer.current_context() is None


class TestSampling:
    def test_sample_rate_zero_records_nothing(self):
        tracer = make_tracer(sample_rate=0.0)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert len(tracer.buffer) == 0

    def test_sampling_decided_at_root_inherited_by_children(self):
        import random

        tracer = make_tracer(sample_rate=0.5, rng=random.Random(42))
        for _ in range(50):
            with tracer.span("root") as root:
                with tracer.span("child") as child:
                    assert child.sampled == root.sampled
        by_trace = {}
        for span in tracer.buffer.spans():
            by_trace.setdefault(span.trace_id, []).append(span)
        # A sampled trace always keeps both members — never half a tree.
        assert all(len(members) == 2 for members in by_trace.values())
        assert 0 < len(by_trace) < 50

    def test_explicit_trace_id_forces_sampling(self):
        tracer = make_tracer(sample_rate=0.0)
        with tracer.span("root", trace_id="abc123") as span:
            assert span.sampled is True
            assert span.trace_id == "abc123"
        assert len(tracer.buffer) == 1


class TestSpanBuffer:
    def test_bounded_with_drop_accounting(self):
        buf = SpanBuffer(maxlen=3)
        for i in range(5):
            buf.add(Span(name=f"s{i}", trace_id="t", span_id=str(i)))
        assert len(buf) == 3
        assert buf.total == 5
        assert buf.dropped == 2
        assert [s.name for s in buf.spans()] == ["s2", "s3", "s4"]

    def test_trace_id_filter(self):
        buf = SpanBuffer()
        buf.add(Span(name="a", trace_id="t1", span_id="1"))
        buf.add(Span(name="b", trace_id="t2", span_id="2"))
        assert [s.name for s in buf.spans(trace_id="t2")] == ["b"]

    def test_drain_empties_and_returns(self):
        buf = SpanBuffer()
        buf.add(Span(name="a", trace_id="t", span_id="1"))
        assert [s.name for s in buf.drain()] == ["a"]
        assert len(buf) == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SpanBuffer(maxlen=0)

    def test_concurrent_adds_lose_nothing(self):
        buf = SpanBuffer(maxlen=100_000)
        n, workers = 2_000, 8

        def pump(w: int) -> None:
            for i in range(n):
                buf.add(Span(name="s", trace_id="t", span_id=f"{w}-{i}"))

        threads = [
            threading.Thread(target=pump, args=(w,)) for w in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert buf.total == n * workers
        assert len(buf) == n * workers


class TestSerialization:
    def test_round_trip(self):
        span = Span(
            name="stage",
            trace_id="t",
            span_id="s",
            parent_id="p",
            start_time=12.5,
            duration=0.25,
            attributes={"k": "v"},
            status="error",
            error="ValueError: nope",
        )
        assert Span.from_dict(span.to_dict()) == span

    def test_valid_trace_id_sanitizer(self):
        assert valid_trace_id("ABCDEF12") == "abcdef12"
        assert valid_trace_id("  deadbeef  ") == "deadbeef"
        assert valid_trace_id("") is None
        assert valid_trace_id(None) is None
        assert valid_trace_id("not-hex!") is None
        assert valid_trace_id("a" * 33) is None


class TestAsyncPropagation:
    def test_concurrent_tasks_see_their_own_ancestry(self):
        tracer = make_tracer()

        async def request(name: str) -> tuple[str, str]:
            with tracer.span(name) as root:
                await asyncio.sleep(0)
                with tracer.span(f"{name}.child") as child:
                    await asyncio.sleep(0)
                    return child.trace_id, root.trace_id

        async def main():
            return await asyncio.gather(request("r1"), request("r2"))

        (c1, r1), (c2, r2) = asyncio.run(main())
        assert c1 == r1 and c2 == r2
        assert r1 != r2

    def test_to_thread_inherits_current_span(self):
        tracer = make_tracer()

        def work() -> dict | None:
            return tracer.current_context()

        async def main():
            with tracer.span("root") as root:
                ctx = await asyncio.to_thread(work)
                return root, ctx

        root, ctx = asyncio.run(main())
        assert ctx is not None
        assert ctx["trace_id"] == root.trace_id
        assert ctx["span_id"] == root.span_id


class TestRemoteAndCollect:
    def test_collect_diverts_spans_from_buffer(self):
        tracer = make_tracer()
        with tracer.collect() as collected:
            with tracer.span("inner"):
                pass
        assert [s.name for s in collected] == ["inner"]
        assert len(tracer.buffer) == 0

    def test_remote_adopts_context_and_merge_rebuilds_tree(self):
        parent = make_tracer()
        with parent.span("run_jobs") as sweep:
            ctx = parent.current_context()
        # Simulate the worker process: a fresh, disabled tracer.
        worker = Tracer(enabled=False)
        with worker.remote(ctx), worker.collect() as collected:
            with worker.span("executor.job"):
                pass
        assert worker.enabled is False  # restored after the block
        shipped = [s.to_dict() for s in collected]
        assert parent.merge(shipped) == 1
        spans = parent.buffer.spans(trace_id=sweep.trace_id)
        job = next(s for s in spans if s.name == "executor.job")
        assert job.parent_id == sweep.span_id

    def test_merge_skips_malformed_records(self):
        tracer = make_tracer()
        good = Span(name="ok", trace_id="t", span_id="1").to_dict()
        assert tracer.merge([{"nope": 1}, good, "junk"]) == 1


class TestRunJobsIntegration:
    def job(self, seed: int = 7) -> SimJob:
        return SimJob(
            model="gcn", dataset="cora", scale=0.05, hidden=4, seed=seed
        )

    def test_run_jobs_produces_single_tree(self):
        with TRACER.session():
            with TRACER.span("request") as root:
                report = run_jobs([self.job()], executor=SerialExecutor())
            assert report.outcomes[0].ok
            spans = TRACER.buffer.spans(trace_id=root.trace_id)
        names = {s.name for s in spans}
        assert {"run_jobs", "cache.probe", "executor.job", "simulate_layer"} <= names
        ids = {s.span_id for s in spans} | {root.span_id}
        assert all(
            s.parent_id in ids for s in spans if s.parent_id is not None
        )

    def test_fake_executor_carries_trace_ctx(self):
        with TRACER.session():
            with TRACER.span("request"):
                run_jobs([self.job()], executor=FakeExecutor())
            names = {s.name for s in TRACER.buffer.spans()}
        assert "executor.job" in names

    def test_executor_without_trace_support_still_works(self):
        class BareExecutor:
            def run(self, jobs, fn=None):
                from repro.runtime.jobs import execute_job
                from repro.runtime.executor import _invoke

                return [_invoke(execute_job, job) for job in jobs]

        with TRACER.session():
            with TRACER.span("request"):
                report = run_jobs([self.job()], executor=BareExecutor())
        assert report.outcomes[0].ok

    def test_session_restores_disabled_state(self):
        assert TRACER.enabled is False
        with TRACER.session():
            assert TRACER.enabled is True
        assert TRACER.enabled is False
