"""Tests for flit-level tree multicast."""

import pytest

from repro.arch.noc import FlexibleMeshTopology, NoCSimulator
from repro.arch.noc.multicast import MulticastSimulator, build_tree


@pytest.fixture
def topo():
    return FlexibleMeshTopology(8)


class TestTree:
    def test_union_of_xy_routes_is_tree(self, topo):
        """Every non-root node has exactly one parent."""
        tree = build_tree(topo, 0, list(range(1, 64)))
        parents: dict[int, int] = {}
        for parent, kids in tree.children.items():
            for kid in kids:
                assert kid not in parents, "node has two parents"
                parents[kid] = parent
        assert set(parents) == set(range(1, 64))

    def test_edges_cover_consumers(self, topo):
        tree = build_tree(topo, 10, [3, 45, 63])
        assert tree.consumers == frozenset({3, 45, 63})
        assert tree.consumers <= tree.nodes()

    def test_source_excluded_from_consumers(self, topo):
        tree = build_tree(topo, 5, [5, 6])
        assert 5 not in tree.consumers

    def test_single_destination_is_a_path(self, topo):
        tree = build_tree(topo, 0, [63])
        assert tree.num_edges == topo.manhattan(0, 63)


class TestSimulation:
    def test_all_consumers_receive_all_flits(self, topo):
        sim = MulticastSimulator(topo)
        sim.inject(0, [7, 56, 63], 64)  # 4 flits
        stats = sim.run()
        assert stats.ejected_flits == 3 * 4

    def test_link_traversals_equal_tree_edges_times_flits(self, topo):
        sim = MulticastSimulator(topo)
        tree = sim.inject(0, list(range(1, 64)), 64)
        stats = sim.run()
        assert stats.link_traversals == tree.num_edges * 4

    def test_multicast_beats_unicast_on_fanout(self, topo):
        """Broadcasting a 4-flit payload: the tree injects once, unicast
        serialises 63 packets through the source's injection port."""
        mc = MulticastSimulator(topo)
        mc.inject(0, list(range(1, 64)), 64)
        t_mc = mc.run().cycles

        uc = NoCSimulator(topo)
        for dst in range(1, 64):
            uc.inject(0, dst, 64)
        t_uc = uc.run().cycles
        assert t_mc < t_uc / 2

    def test_fork_serialisation_counted(self, topo):
        sim = MulticastSimulator(topo)
        sim.inject(0, [1, 8], 16)  # fork right at the source
        stats = sim.run()
        assert stats.fork_serialisation_events >= 1

    def test_multiple_trees(self, topo):
        sim = MulticastSimulator(topo)
        sim.inject(0, [7, 63], 32)
        sim.inject(63, [0, 7], 32)
        stats = sim.run()
        assert stats.ejected_flits == 4 * 2  # 2 flits x 2 consumers x 2 trees

    def test_validation(self, topo):
        with pytest.raises(ValueError):
            MulticastSimulator(topo).inject(0, [1], 0)

    def test_max_cycles_guard(self, topo):
        sim = MulticastSimulator(topo)
        sim.inject(0, list(range(1, 64)), 1 << 20)
        with pytest.raises(RuntimeError, match="did not drain"):
            sim.run(max_cycles=5)


class TestAnalyticalShareFactor:
    def test_share_model_semantics(self, topo):
        """``multicast_flows`` splits the payload across destinations so
        that a source vertex's flow bytes sum to ~one payload — exact for
        the links near the source where tree paths overlap (and where the
        bottleneck sits).  The measured tree replicates the full payload
        on every tree edge; the ratio between the two is exactly the tree
        edge count over the average path length, which this test pins."""
        import numpy as np

        from repro.mapping import MappingResult, PERegion
        from repro.mapping.traffic import multicast_flows
        from repro.graphs import star_graph

        payload = 64
        g = star_graph(20, num_features=8)  # hub 0 -> 20 leaves
        region = PERegion(0, 0, 8, 8, 8)
        v2p = np.arange(21, dtype=np.int64) * 3 % 64
        mapping = MappingResult(policy="x", region=region, vertex_to_pe=v2p)
        mc = multicast_flows(g, mapping, payload)

        # (1) The hub's shared flow bytes sum to ~one payload.
        hub_flows = mc.flows[mc.flows[:, 0] == v2p[0]]
        assert hub_flows[:, 2].sum() == pytest.approx(payload, rel=0.15)

        # (2) The flit-level tree replicates the payload per tree edge.
        dsts = sorted(set(v2p[1:].tolist()) - {int(v2p[0])})
        sim = MulticastSimulator(topo)
        tree = sim.inject(int(v2p[0]), dsts, payload)
        stats = sim.run()
        flits_per_payload = -(-payload // sim.config.flit_bytes)
        assert stats.link_traversals == tree.num_edges * flits_per_payload

        # (3) Ejection is full-payload per consumer in both models.
        # (The star has edges in both directions: 20 hub->leaf messages
        # plus 20 leaf->hub messages = 40 payloads ejected overall.)
        assert stats.ejected_flits == len(dsts) * flits_per_payload
        assert int(mc.eject_bytes.sum()) == 40 * payload
