"""Tests for the power reporting model."""

import numpy as np
import pytest

from repro import AuroraSimulator, LayerDims, get_model
from repro.arch.power import PowerModel
from repro.graphs import power_law_graph


@pytest.fixture(scope="module")
def result():
    g = power_law_graph(
        300, 1500, num_features=64, feature_density=0.2, locality=0.5, seed=2
    )
    return AuroraSimulator().simulate_layer(get_model("gcn"), g, LayerDims(64, 16))


class TestPowerReport:
    def test_energy_conservation(self, result):
        """Integrated trace power equals total energy (incl. static)."""
        rep = PowerModel().report(result, bins=128)
        integrated = rep.trace_watts.sum() * rep.bin_seconds
        expected = result.energy.total * (1 + PowerModel.STATIC_FRACTION)
        assert integrated == pytest.approx(expected, rel=0.02)

    def test_peak_at_least_average(self, result):
        rep = PowerModel().report(result)
        assert rep.peak_watts >= rep.average_watts * 0.99

    def test_component_sum(self, result):
        rep = PowerModel().report(result)
        assert sum(rep.component_watts.values()) == pytest.approx(
            result.energy.total / result.total_seconds, rel=1e-6
        )

    def test_trace_shape_and_positivity(self, result):
        rep = PowerModel().report(result, bins=32)
        assert rep.trace_watts.shape == (32,)
        assert np.all(rep.trace_watts > 0)  # static floor everywhere

    def test_duration(self, result):
        rep = PowerModel().report(result, bins=10)
        assert rep.duration_seconds == pytest.approx(result.total_seconds)

    def test_bins_validation(self, result):
        with pytest.raises(ValueError):
            PowerModel().report(result, bins=0)

    def test_average_power_plausible(self, result):
        """Average power should land in accelerator-class range (< 1 kW)."""
        rep = PowerModel().report(result)
        assert 0 < rep.average_watts < 1000
