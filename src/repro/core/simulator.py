"""The Aurora accelerator simulator (analytical tier).

Reproduces the paper's simulator methodology (§VI-A): computation time
from counted arithmetic operations, on-chip communication time from the
NoC model over counted messages, off-package time from the DRAM model
over counted accesses, combined with the overlap the architecture
provides (A/B pipeline, DRAM prefetch, overlapped mapping/partition/
reconfiguration).

Per layer the simulator:

1. extracts the workload and runs the partition algorithm (Algorithm 2)
   to split the array into sub-accelerators A and B;
2. tiles the graph to the on-chip capacity of region A;
3. per tile, maps vertices (degree-aware by default, hashing for the
   ablation), configures the NoC (bypass segments + rings), and evaluates
   compute / NoC / DRAM times;
4. composes tiles through the two-stage A→B pipeline;
5. accumulates the event counters the energy model consumes.

Compute time is **imbalance-aware**: sub-accelerator A's time is governed
by its most-loaded PE (messages of the vertices it hosts), which is what
makes the mapping policy matter — exactly the paper's §VI-C argument.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import asdict
from functools import partial

import numpy as np

from ..arch.dram import AccessPattern, DRAMModel
from ..arch.energy import EnergyCounters, EnergyModel, EnergyTable
from ..arch.noc.analytical import AnalyticalNoCModel, TrafficMatrix, ceil_flits
from ..arch.pe import PECycleModel
from ..config import AcceleratorConfig, default_config
from ..graphs.csr import CSRGraph
from ..graphs.tiling import tile_graph
from ..mapping.base import MappingResult, PERegion
from ..mapping.degree_aware import ALGORITHM_CYCLES, _zorder_nodes_cached
from ..mapping.memo import map_tile
from ..mapping.traffic import aggregate_flows, batched_multicast_flows
from ..models.base import GNNModel
from ..observe.events import noc_heat_enabled
from ..perf import PERF
from ..telemetry import TRACER
from ..models.workload import (
    LayerDims,
    combination_first_eligible,
    extract_workload,
)
from ..partition.algorithm import PARTITION_CYCLES, partition
from .configuration import ConfigurationUnit
from .controller import AdaptiveWorkflowGenerator
from .pipeline import overlapped_time, pipeline_time
from .results import PhaseBreakdown, SimulationResult

__all__ = ["AuroraSimulator", "clear_partition_sample_cache"]

# Fraction of the distributed buffer usable for graph data: the other half
# backs the double buffer that lets the next tile prefetch overlap.
_BUFFER_UTIL = 0.5

#: Content-keyed placement-sample statistics for the partition scan
#: (Algorithm 2's communication-aware refinement).  Keyed by
#: ``(graph.content_key, array_k)``; a graph produced by
#: :func:`repro.graphs.delta.apply_delta` carries its parent's content
#: key, and when the row pointers are unchanged (degree-preserving
#: deltas) the per-candidate remote/hop sums are updated only at the
#: sampled positions whose destination changed — exact integer
#: adjustments, so the scan's result is bit-identical to a full pass.
_SAMPLE_STATS_MAX = 8

_SAMPLE_STATS: "OrderedDict[tuple[str, int], dict]" = OrderedDict()


def clear_partition_sample_cache() -> None:
    """Drop the partition placement-sample memo (tests, cold benches)."""
    _SAMPLE_STATS.clear()


def _placement_positions(verts: np.ndarray, k: int, n: int) -> np.ndarray:
    """PE positions of ``verts`` under every candidate A-row count.

    Returns a ``(k - 1, verts.size)`` matrix whose row ``i`` places each
    vertex on the ``(i + 1)``-row region A under the mapper's Z-order
    sequential fill — the placement model the partition scan scores.
    """
    rows_arr = np.arange(1, k, dtype=np.int64)
    a_arr = rows_arr * k
    orders = np.zeros((k - 1, k * k), dtype=np.int32)
    for i, rows in enumerate(rows_arr):
        region_rows = PERegion(0, 0, k, int(rows), k)
        orders[i, : int(rows) * k] = np.asarray(
            _zorder_nodes_cached(region_rows), dtype=np.int32
        )
    flat = orders.ravel()
    offs = (np.arange(k - 1, dtype=np.int64) * (k * k))[:, None]
    vpp = np.maximum(1, -(-n // a_arr))
    cap_idx = (a_arr - 1)[:, None]
    return flat[np.minimum(verts[None, :] // vpp[:, None], cap_idx) + offs]


def _remote_and_hops(
    ps: np.ndarray, pd: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    remote = ps != pd
    hops = np.abs(ps % k - pd % k) + np.abs(ps // k - pd // k)
    return remote, hops


def _tile_outcome(
    sub: CSRGraph,
    boundary_edges: int,
    external_vertices: int,
    mapping: MappingResult,
    mc,
    *,
    config: AcceleratorConfig,
    model: GNNModel,
    dims: LayerDims,
    policy: str,
    region_a: PERegion,
    region_b: PERegion | None,
    width_ratio: float,
    msg_width: int,
    density: float,
    workflow=None,
    cfg_unit: ConfigurationUnit | None = None,
) -> dict:
    """Evaluate one tile; returns a JSON-serializable outcome.

    This is the former ``_simulate_layer`` loop body, extracted so tiles
    can run in worker processes (:mod:`repro.runtime.shards`) and be
    cached per tile.  It is a pure function of its arguments: stateful
    models (DRAM, energy counters) are instantiated locally and their
    activity is returned as *deltas* the caller applies in tile order, so
    serial and sharded execution accumulate bit-identical results.
    """
    cfg = config
    freq = cfg.frequency_hz
    if workflow is None:
        workflow = AdaptiveWorkflowGenerator().generate(model)
    if cfg_unit is None:
        cfg_unit = ConfigurationUnit(cfg)
    dram = DRAMModel(cfg.dram)
    counters = EnergyCounters()

    with PERF.timer("compute_count"):
        wl = extract_workload(model, sub, dims)
    n_t, m_t = sub.num_vertices, sub.num_edges
    conf = cfg_unit.configure(workflow, mapping, region_a, region_b)

    # ---- Sub-accelerator A compute --------------------------------------
    if m_t > 0:
        # Source-side partials + degree-aware hub spreading keep the MAC
        # work near-balanced; the residual imbalance is policy-dependent
        # (hashing scatters hubs onto shared rows and has no partial
        # pre-reduction support).
        comm_loads = mapping.communication_loads(sub.degrees)
        active = comm_loads[comm_loads > 0]
        raw_imb = float(active.max() / active.mean()) if active.size else 1.0
        sens = 0.05 if policy == "degree-aware" else 0.5
        imb = 1.0 + (raw_imb - 1.0) * sens
        ideal = (
            wl.O_ue * width_ratio / (2 * cfg.macs_per_pe)
            + wl.O_a * width_ratio / cfg.macs_per_pe
        ) / region_a.num_pes
        a_cycles = ideal * imb
        a_cycles += wl.edge_update.ppu_ops / (cfg.ppu_lanes * region_a.num_pes)
        a_cycles += conf.num_datapath_switches * PECycleModel.SWITCH_PENALTY
        a_cycles += PECycleModel.PIPELINE_FILL
    else:
        a_cycles = 0.0

    # ---- Sub-accelerator A communication (analytical NoC) ---------------
    # Feature distribution is tree-multicast: each vertex's vector is
    # injected once and replicated toward every PE that hosts one of its
    # neighbors (reuse FIFOs forward copies).
    noc_flit_hops = 0
    if mc.flows.shape[0]:
        with TRACER.span("noc", {"edges": m_t}) as noc_span:
            with PERF.timer("traffic"):
                traffic = TrafficMatrix.from_flows(
                    aggregate_flows(mc.flows, cfg.num_pes),
                    cfg.noc.flit_bytes,
                    cfg.array_k,
                )
            if noc_heat_enabled():
                # Destination-router flit totals as a k×k row-major
                # grid: the live observer's per-tile heatmap, carried
                # home on the span (so worker-process tiles reach the
                # serving process through the span-merge path).
                heat = np.bincount(
                    traffic.dst_y * cfg.array_k + traffic.dst_x,
                    weights=traffic.flits,
                    minlength=cfg.array_k * cfg.array_k,
                )
                noc_span.set(
                    noc_heat=[int(v) for v in heat], k=cfg.array_k
                )
            noc_res = AnalyticalNoCModel.cached(
                conf.topology, cfg.noc
            ).evaluate(
                traffic,
                boost_nodes=mapping.s_pe_nodes,
                boost_factor=max(3.0, region_a.width / 2),
                # Ceil, not floor: a partial trailing flit still occupies
                # the ejection/injection port for a cycle.
                eject_flits=ceil_flits(mc.eject_bytes, cfg.noc.flit_bytes),
                inject_flits=ceil_flits(mc.inject_bytes, cfg.noc.flit_bytes),
            )
        noc_cycles = noc_res.drain_cycles
        noc_flit_hops = noc_res.total_flit_hops
        mesh_hops = noc_res.total_flit_hops - noc_res.bypass_flit_hops
        counters.link_byte_hops += mesh_hops * cfg.noc.flit_bytes
        counters.router_flits += mesh_hops
        counters.bypass_bytes += noc_res.bypass_flit_hops * cfg.noc.flit_bytes
    else:
        noc_cycles = 0

    # ---- Sub-accelerator B: balanced weight-stationary rings ------------
    if region_b is not None and wl.O_uv > 0:
        b_cycles = wl.O_uv / (region_b.num_pes * 2 * cfg.macs_per_pe)
        b_cycles += wl.vertex_update.ppu_ops / (cfg.ppu_lanes * region_b.num_pes)
        b_cycles += PECycleModel.PIPELINE_FILL
        # Ring traffic: partial outputs circulate within each row ring;
        # latency hides under the systolic schedule, energy does not.
        ring_hops = max(region_b.width - 1, 0)
        ring_bytes_hops = (
            n_t * dims.out_features * cfg.bytes_per_value * ring_hops // 2
        )
        counters.link_byte_hops += ring_bytes_hops
        counters.router_flits += ring_bytes_hops // cfg.noc.flit_bytes
        # A→B forwarding via reuse FIFOs (no DRAM round trip).
        counters.reuse_fifo_bytes += n_t * msg_width * cfg.bytes_per_value
    else:
        b_cycles = 0.0

    # ---- DRAM: tile load + boundary gathers + writeback -----------------
    dram_t0 = time.perf_counter()
    tile_dram_s = dram.access(
        int(n_t * dims.in_features * cfg.bytes_per_value * density),
        pattern=AccessPattern.SEQUENTIAL,
    )
    if external_vertices:
        # Remote-feature fetches: distinct out-of-tile neighbors are
        # pulled once *if they can be cached on chip for the tile's
        # lifetime*.  The cacheable share is bounded by the buffer
        # headroom; the rest is re-fetched per edge (this is why
        # dense-feature Reddit sees the smallest gains — paper §VI-D).
        vec_bytes = dims.in_features * cfg.bytes_per_value * density
        unique_bytes = external_vertices * vec_bytes
        cache_budget = cfg.onchip_bytes * 0.1
        cache_frac = min(1.0, cache_budget / max(unique_bytes, 1.0))
        fetch_bytes = (
            unique_bytes * cache_frac
            + boundary_edges * vec_bytes * (1.0 - cache_frac)
        )
        tile_dram_s += dram.access(int(fetch_bytes), pattern=AccessPattern.RANDOM)
    tile_dram_s += dram.access(
        n_t * dims.out_features * cfg.bytes_per_value,
        pattern=AccessPattern.SEQUENTIAL,
        write=True,
    )
    PERF.add_time("dram", time.perf_counter() - dram_t0)

    # ---- Compose the tile ------------------------------------------------
    a_seconds = max(a_cycles, noc_cycles) / freq
    # The next tile's DRAM prefetch overlaps this tile's compute; charge
    # the non-hidden remainder to stage A.
    a_seconds = overlapped_time(a_seconds, tile_dram_s)
    b_seconds = b_cycles / freq

    # ---- Event counters ---------------------------------------------------
    counters.mac_ops += int(wl.O_ue * width_ratio) + wl.O_uv
    counters.add_ops += int(wl.O_a * width_ratio)
    counters.ppu_ops += (
        wl.edge_update.ppu_ops
        + wl.aggregation.ppu_ops
        + wl.vertex_update.ppu_ops
    )
    counters.sram_bytes += (
        wl.total_mac_ops * cfg.bytes_per_value
        + n_t * dims.in_features * cfg.bytes_per_value
    )
    counters.reconfig_events_pe += cfg.num_pes

    st = dram.stats
    return {
        "a_seconds": a_seconds,
        "b_seconds": b_seconds,
        "a_cycles": a_cycles,
        "b_cycles": b_cycles,
        "noc_cycles": noc_cycles,
        "noc_flit_hops": noc_flit_hops,
        "tile_dram_seconds": tile_dram_s,
        "counters": counters.as_dict(),
        "dram": {
            "reads_bytes": st.reads_bytes,
            "writes_bytes": st.writes_bytes,
            "bursts": st.bursts,
            "row_hits": st.row_hits,
            "row_misses": st.row_misses,
            "busy_seconds": st.busy_seconds,
        },
    }


def _analytical_shard(job, **kwargs) -> dict:
    """Pool-worker entry for analytical tile shards.

    Regenerates the (deterministic) workflow and configuration unit once
    per shard instead of pickling them, then evaluates each tile.  Tile
    subgraphs may arrive as shared-memory handles published by the
    parent's :class:`~repro.runtime.graphplane.GraphPlane`; they resolve
    through the worker's content-keyed graph cache instead of the pickle
    stream.
    """
    kwargs["workflow"] = AdaptiveWorkflowGenerator().generate(kwargs["model"])
    kwargs["cfg_unit"] = ConfigurationUnit(kwargs["config"])
    tiles = []
    for sub, boundary, external, mapping, mc in job.payloads:
        if not isinstance(sub, CSRGraph):
            from ..runtime.graphplane import resolve_handle

            sub = resolve_handle(sub)
        tiles.append(
            _tile_outcome(sub, boundary, external, mapping, mc, **kwargs)
        )
    return {"tiles": tiles}


class AuroraSimulator:
    """Analytical performance/energy simulator for the Aurora accelerator."""

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        energy_table: EnergyTable | None = None,
        *,
        mapping_policy: str = "degree-aware",
        enable_combination_first: bool = False,
        tile_workers: int = 1,
        tile_cache=None,
        graph_plane=None,
    ) -> None:
        if mapping_policy not in ("degree-aware", "hashing"):
            raise ValueError("mapping_policy must be 'degree-aware' or 'hashing'")
        if tile_workers < 1:
            raise ValueError("tile_workers must be >= 1")
        self.config = config or default_config()
        self.energy_model = EnergyModel(energy_table)
        self.mapping_policy = mapping_policy
        # Intra-job parallelism: tiles of one layer fan out over this many
        # worker processes (repro.runtime.shards); with a ResultCache in
        # ``tile_cache``, per-tile results are content-addressed so a
        # dirty tile recomputes alone.  Both paths are bit-identical to
        # serial execution (tests/test_tile_fanout.py).
        self.tile_workers = tile_workers
        self.tile_cache = tile_cache
        # Optional repro.runtime.graphplane.GraphPlane: with multi-worker
        # fan-out, tile subgraph arrays ship via shared memory (published
        # once per content key) instead of the pickle stream.
        self.graph_plane = graph_plane
        # Running reuse counters (read+reset via take_tile_stats): how
        # many tile outcomes were served from the per-tile cache vs
        # recomputed since the last snapshot.
        self._tile_stats = {"tiles": 0, "reused": 0, "recomputed": 0}
        # Combination-first reordering is a valid algebraic optimisation
        # for linear C-GNN layers, but the paper scales every accelerator
        # to identical per-layer MAC counts ("the amount of MACs of each
        # layer is the same"), so the default evaluation keeps the
        # aggregation-first message-passing order; the ablation benches
        # flip this on.
        self.enable_combination_first = enable_combination_first
        self._pe_model = PECycleModel(self.config)
        # Per-instance memo of the communication-aware row split; the
        # inputs are pure values (graph content + workload + payload
        # width), so repeated layers over one graph skip the row scan.
        self._rows_cache: dict[tuple, int] = {}

    # ------------------------------------------------------------------
    def take_tile_stats(self) -> dict:
        """Snapshot and reset the per-tile reuse counters.

        ``reused`` counts tile outcomes served from ``tile_cache``;
        ``recomputed`` counts tiles actually evaluated.  Incremental
        re-simulation surfaces these as ``tiles_reused`` /
        ``tiles_recomputed`` in job and serve responses.
        """
        stats = dict(self._tile_stats)
        self._tile_stats = {"tiles": 0, "reused": 0, "recomputed": 0}
        return stats

    # ------------------------------------------------------------------
    def _map_tile(
        self, sub: CSRGraph, region: PERegion, policy: str
    ) -> MappingResult:
        return map_tile(sub, region, policy)

    def _sampled_edge_ids(self, graph: CSRGraph, limit: int = 20000):
        """A deterministic sample of (src, dst) vertex ids for hop estimates."""
        m = graph.num_edges
        if m == 0:
            return None
        step = max(1, m // limit)
        eids = np.arange(0, m, step, dtype=np.int64)
        dst = graph.indices[eids]
        src = np.searchsorted(graph.indptr, eids, side="right") - 1
        return src, dst

    def _placement_sample_stats(
        self, graph: CSRGraph, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-candidate ``(avg_hops, remote_frac)`` over the edge sample.

        The expensive part of the communication-aware scan — scoring the
        sampled edge set under every candidate placement — depends only
        on the graph and the array size, not on the layer workload, so
        it is cached by content key across layers and requests.  A graph
        derived by a row-pointer-preserving edge delta reuses its
        parent's remote/hop sums, adjusting only the sampled positions
        whose destination changed: pure integer arithmetic, so the
        resulting split is bit-identical to a from-scratch scan.
        """
        key = (graph.content_key, k)
        hit = _SAMPLE_STATS.get(key)
        if hit is not None:
            _SAMPLE_STATS.move_to_end(key)
            PERF.incr("partition.sample_cache_hit")
            return hit["avg_hops"], hit["remote_frac"]
        sample = self._sampled_edge_ids(graph)
        if sample is None:
            zeros = np.zeros(k - 1)
            return zeros, zeros
        src, dst = sample
        n = graph.num_vertices
        parent = None
        if graph.derived_from is not None:
            parent = _SAMPLE_STATS.get((graph.derived_from, k))
        if parent is not None and np.array_equal(
            parent["indptr"], graph.indptr
        ):
            PERF.incr("partition.sample_incremental")
            rcount = parent["rcount"].copy()
            hsum = parent["hsum"].copy()
            changed = np.nonzero(dst != parent["dst"])[0]
            if changed.size:
                ps = _placement_positions(src[changed], k, n)
                pd_old = _placement_positions(parent["dst"][changed], k, n)
                pd_new = _placement_positions(dst[changed], k, n)
                remote_old, hops_old = _remote_and_hops(ps, pd_old, k)
                remote_new, hops_new = _remote_and_hops(ps, pd_new, k)
                rcount += remote_new.sum(axis=1) - remote_old.sum(axis=1)
                hsum += np.where(remote_new, hops_new, 0).sum(axis=1)
                hsum -= np.where(remote_old, hops_old, 0).sum(axis=1)
        else:
            PERF.incr("partition.sample_full")
            ps = _placement_positions(src, k, n)
            pd = _placement_positions(dst, k, n)
            remote, hops = _remote_and_hops(ps, pd, k)
            rcount = remote.sum(axis=1)
            hsum = np.where(remote, hops, 0).sum(axis=1)
        avg_hops = np.where(rcount > 0, hsum / np.maximum(rcount, 1), 0.0)
        remote_frac = np.where(rcount > 0, rcount / src.size, 0.0)
        _SAMPLE_STATS[key] = {
            "indptr": graph.indptr,
            "dst": dst,
            "rcount": rcount,
            "hsum": hsum,
            "avg_hops": avg_hops,
            "remote_frac": remote_frac,
        }
        while len(_SAMPLE_STATS) > _SAMPLE_STATS_MAX:
            _SAMPLE_STATS.popitem(last=False)
        return avg_hops, remote_frac

    def _communication_aware_rows(
        self, wl, strategy, graph: CSRGraph, msg_width: int
    ) -> int:
        """Row count of region A balancing *full* phase times.

        Algorithm 2 balances op counts; sub-accelerator A's phase time is
        additionally bounded by its mesh bandwidth, so the realised split
        scans row counts and picks the one minimising the pipeline
        interval max(T_A, T_B).  Hop counts are estimated from a sampled
        edge set under the sequential-fill placement.
        """
        cfg = self.config
        k = cfg.array_k
        if strategy.b == 0 or wl.O_uv == 0:
            return k
        memo_key = (graph.content_key, wl, msg_width)
        hit = self._rows_cache.get(memo_key)
        if hit is not None:
            PERF.incr("partition.rows_cache_hit")
            return hit
        PERF.incr("partition.rows_cache_miss")
        macs = cfg.macs_per_pe
        flit_per_msg = max(
            1, -(-(msg_width * cfg.bytes_per_value) // cfg.noc.flit_bytes)
        )
        # Multicast feature distribution injects each vertex's vector once
        # and shares tree prefixes; 1.5x covers branch duplication.
        flows = int(graph.num_vertices * 1.5)
        # Hotspot margin: the most-loaded link carries roughly twice the
        # mean link load under power-law traffic (checked against the
        # analytical model's max-link output).
        hotspot = 2.0

        rows_arr = np.arange(1, k, dtype=np.int64)
        a_arr = rows_arr * k
        b_arr = (k - rows_arr) * k
        avg_hops, remote_frac = self._placement_sample_stats(graph, k)
        # Each link moves one flit per cycle; drain is bounded by total
        # flit-hops over the region's link count, with the hotspot margin.
        links = rows_arr * (k - 1) * 2 + np.maximum(rows_arr - 1, 0) * k * 2
        t_a_comm = (
            hotspot
            * flows
            * remote_frac
            * flit_per_msg
            * np.maximum(avg_hops, 1.0)
            / np.maximum(links, 1)
        )
        t_a_comp = wl.O_ue / (a_arr * 2 * macs) + wl.O_a / (a_arr * macs)
        t_a = np.maximum(t_a_comp, t_a_comm)
        t_b = wl.O_uv / (b_arr * 2 * macs)
        score = np.maximum(t_a, t_b)
        best_rows = int(rows_arr[np.argmin(score)])  # first min, like the scan
        self._rows_cache[memo_key] = best_rows
        return best_rows

    def _regions_from_rows(
        self, a_rows: int, strategy
    ) -> tuple[PERegion, PERegion | None]:
        k = self.config.array_k
        if a_rows >= k:
            return PERegion(0, 0, k, k, k), None
        return (
            PERegion(0, 0, k, a_rows, k),
            PERegion(0, a_rows, k, k, k),
        )

    # ------------------------------------------------------------------
    def _tile_outcomes(
        self,
        model: GNNModel,
        dims: LayerDims,
        policy: str,
        tiles,
        *,
        region_a: PERegion,
        region_b: PERegion | None,
        width_ratio: float,
        msg_width: int,
        density: float,
        workflow,
        cfg_unit: ConfigurationUnit,
        payload_bytes: int,
        tiling_signature: dict,
    ) -> list[dict]:
        """Per-tile outcomes in tile order: serial, sharded, or cached.

        Tile payload construction (content-memoized mapping + batched
        multicast traffic extraction) happens *after* the per-tile cache
        probe and only for cold tiles: an incremental re-simulation over
        a mostly-clean graph pays for its dirty tiles alone.  Batched
        traffic extraction over any tile subset is bit-identical to the
        per-tile path (``tests/test_traffic_batched.py``), so cold-only
        batches reproduce the full-batch results exactly.
        """
        shared = dict(
            config=self.config,
            model=model,
            dims=dims,
            policy=policy,
            region_a=region_a,
            region_b=region_b,
            width_ratio=width_ratio,
            msg_width=msg_width,
            density=density,
        )
        ship_via_plane = self.graph_plane is not None and self.tile_workers > 1

        def build_payloads(indices):
            sel = [tiles[i] for i in indices]
            with TRACER.span("mapping", {"tiles": len(sel)}):
                mappings = [
                    self._map_tile(t.subgraph, region_a, policy) for t in sel
                ]
                mcs = batched_multicast_flows(
                    [t.subgraph for t in sel], mappings, payload_bytes
                )
            return [
                (
                    self.graph_plane.publish(t.subgraph)
                    if ship_via_plane
                    else t.subgraph,
                    t.boundary_edges,
                    t.external_vertices,
                    m,
                    mc,
                )
                for t, m, mc in zip(sel, mappings, mcs)
            ]

        if self.tile_workers == 1 and self.tile_cache is None:
            payloads = build_payloads(list(range(len(tiles))))
            self._tile_stats["tiles"] += len(tiles)
            self._tile_stats["recomputed"] += len(tiles)
            return [
                _tile_outcome(
                    *payload, workflow=workflow, cfg_unit=cfg_unit, **shared
                )
                for payload in payloads
            ]

        # Deferred import: repro.runtime imports this module.
        from ..runtime.shards import run_tile_shards, tile_sub_key

        keys = None
        if self.tile_cache is not None:
            base = {
                "model": model.name,
                "dims": [dims.in_features, dims.out_features, dims.hidden],
                "config": asdict(self.config),
                "policy": policy,
                "density": density,
                "msg_width": msg_width,
                "region_a": asdict(region_a),
                "region_b": asdict(region_b) if region_b else None,
                # Partition/tiling parameters: entries cached under one
                # tiling configuration must never satisfy another.
                "tiling": tiling_signature,
            }
            keys = [
                tile_sub_key(
                    "analytical-tile",
                    {
                        **base,
                        "graph": tile.subgraph.content_key,
                        "boundary": [tile.boundary_edges, tile.external_vertices],
                    },
                )
                for tile in tiles
            ]
        fanout = run_tile_shards(
            len(tiles),
            partial(_analytical_shard, **shared),
            kind="analytical",
            tile_workers=self.tile_workers,
            costs=[max(1, t.num_edges) for t in tiles],
            tile_keys=keys,
            cache=self.tile_cache,
            payload_builder=build_payloads,
        )
        stats = fanout.stats
        self._tile_stats["tiles"] += stats["tiles"]
        self._tile_stats["reused"] += stats["cache_hits"]
        self._tile_stats["recomputed"] += stats["tiles"] - stats["cache_hits"]
        return fanout.payloads

    # ------------------------------------------------------------------
    def simulate_layer(
        self,
        model: GNNModel,
        graph: CSRGraph,
        dims: LayerDims,
        *,
        input_density: float | None = None,
        mapping_policy: str | None = None,
    ) -> SimulationResult:
        """Simulate one GNN layer end to end.

        ``input_density`` overrides the feature density of the layer input
        (1.0 for hidden layers whose inputs are dense activations);
        defaults to the graph's dataset density.
        """
        with TRACER.span(
            "simulate_layer",
            {
                "model": model.name,
                "graph": graph.name,
                "in_features": dims.in_features,
                "out_features": dims.out_features,
            },
        ):
            return self._simulate_layer(
                model,
                graph,
                dims,
                input_density=input_density,
                mapping_policy=mapping_policy,
            )

    def _simulate_layer(
        self,
        model: GNNModel,
        graph: CSRGraph,
        dims: LayerDims,
        *,
        input_density: float | None = None,
        mapping_policy: str | None = None,
    ) -> SimulationResult:
        cfg = self.config
        policy = mapping_policy or self.mapping_policy
        density = graph.feature_density if input_density is None else input_density
        freq = cfg.frequency_hz
        flops_pe_cycle = cfg.flops_per_pe_per_cycle

        workflow = AdaptiveWorkflowGenerator().generate(model)
        full_wl = extract_workload(model, graph, dims)

        # Adaptive workflow: combination-first reordering for linear
        # C-GNN layers (W Σ c_u x_u == Σ c_u W x_u) shrinks aggregated and
        # communicated vectors from F_in to F_out lanes.
        comb_first = (
            self.enable_combination_first
            and combination_first_eligible(model)
            and dims.out_features < dims.in_features
        )
        msg_width = dims.out_features if comb_first else dims.in_features
        width_ratio = msg_width / dims.in_features

        # -- Algorithm 2: partition the array -----------------------------
        with PERF.timer("partition"), TRACER.span("partition"):
            strategy = partition(
                full_wl, cfg.num_pes, flops_pe_cycle * freq
            )
            # Realise the split at row granularity, refined with the
            # phase-time estimate that includes sub-accelerator A's
            # communication: the algorithm's goal is minimal inter-phase
            # stall (§V), and A's phase time is bounded by its mesh
            # bandwidth as well as its op count.
            a_rows = self._communication_aware_rows(
                full_wl, strategy, graph, msg_width
            )
        region_a, region_b = self._regions_from_rows(a_rows, strategy)

        # -- Tile to the distributed-buffer capacity ----------------------
        # Aurora uses the *whole* array's distributed buffers for graph
        # data (the §VI-B "fully utilise the on-chip buffer capacity"
        # claim): region B's banks stage features/weights while region A
        # computes on them through the NoC.
        capacity = int(cfg.onchip_bytes * _BUFFER_UTIL)
        with TRACER.span("tiling"):
            plan = tile_graph(
                graph, capacity, bytes_per_value=cfg.bytes_per_value
            )

        dram = DRAMModel(cfg.dram)
        counters = EnergyCounters()
        cfg_unit = ConfigurationUnit(cfg)

        # Weights stream in once per layer (stationary thereafter; never
        # duplicated across PEs — each region holds one copy, §VI-B).
        weight_bytes = (
            full_wl.edge_update.weight_bytes
            + full_wl.aggregation.weight_bytes
            + full_wl.vertex_update.weight_bytes
        )
        weights_s = dram.access(weight_bytes, pattern=AccessPattern.SEQUENTIAL)

        stage_a: list[float] = []
        stage_b: list[float] = []
        noc_cycles_total = 0
        noc_volume_total = 0  # total flit-hop busy cycles (Fig. 8 metric)
        compute_s_total = 0.0
        noc_s_total = 0.0
        dram_s_total = weights_s
        payload = msg_width * cfg.bytes_per_value

        # Each tile's evaluation is a pure function of the tile
        # (see _tile_outcome), so the loop fans out over worker processes
        # when ``tile_workers`` > 1; outcomes apply in tile order either
        # way, keeping every accumulation bit-identical to serial.  Tile
        # mapping and batched traffic extraction are deferred into
        # _tile_outcomes so they run only for tiles the per-tile cache
        # cannot serve.
        tiles = list(plan)
        outcomes = self._tile_outcomes(
            model,
            dims,
            policy,
            tiles,
            region_a=region_a,
            region_b=region_b,
            width_ratio=width_ratio,
            msg_width=msg_width,
            density=density,
            workflow=workflow,
            cfg_unit=cfg_unit,
            payload_bytes=payload,
            tiling_signature={
                "capacity_bytes": plan.capacity_bytes,
                "bytes_per_value": plan.bytes_per_value,
            },
        )
        dram_stats = dram.stats
        for outcome in outcomes:
            stage_a.append(outcome["a_seconds"])
            stage_b.append(outcome["b_seconds"])
            noc_cycles_total += outcome["noc_cycles"]
            noc_volume_total += outcome["noc_flit_hops"]
            compute_s_total += (outcome["a_cycles"] + outcome["b_cycles"]) / freq
            noc_s_total += outcome["noc_cycles"] / freq
            dram_s_total += outcome["tile_dram_seconds"]
            counters = counters.merge(
                EnergyCounters.from_dict(outcome["counters"])
            )
            for name, delta in outcome["dram"].items():
                setattr(dram_stats, name, getattr(dram_stats, name) + delta)

        # -- Total time: A/B pipeline + one-time overheads -----------------
        total_s = pipeline_time(stage_a, stage_b)
        # First tile's mapping + partition + reconfiguration cannot hide
        # under previous work (there is none); later ones overlap (§VI-D).
        startup_cycles = (
            ALGORITHM_CYCLES + PARTITION_CYCLES + cfg.reconfiguration_cycles
        )
        total_s += startup_cycles / freq
        total_s += weights_s  # first weight fill precedes tile 0

        counters.dram_bytes += dram.stats.total_bytes
        counters.active_cycles += int(total_s * freq)
        energy = self.energy_model.evaluate(counters)

        return SimulationResult(
            accelerator="aurora"
            if policy == "degree-aware"
            else "aurora-hashing",
            model_name=model.name,
            graph_name=graph.name,
            total_seconds=total_s,
            breakdown=PhaseBreakdown(
                compute_seconds=compute_s_total,
                noc_seconds=noc_s_total,
                dram_seconds=dram_s_total,
            ),
            dram_bytes=dram.stats.total_bytes,
            onchip_comm_cycles=noc_volume_total,
            energy=energy,
            counters=counters,
            num_tiles=plan.num_tiles,
            frequency_hz=freq,
            notes={
                "partition_a": strategy.a,
                "partition_b": strategy.b,
                "mapping_policy": policy,
                "a_rows": a_rows,
                "combination_first": comb_first,
                "stage_a_seconds": stage_a,
                "stage_b_seconds": stage_b,
            },
        )

    # ------------------------------------------------------------------
    def simulate(
        self,
        model: GNNModel,
        graph: CSRGraph,
        layer_dims: list[LayerDims],
    ) -> SimulationResult:
        """Simulate a multi-layer model; layer 0 reads the sparse dataset
        features, later layers read dense activations."""
        if not layer_dims:
            raise ValueError("need at least one layer")
        results = []
        for i, dims in enumerate(layer_dims):
            density = graph.feature_density if i == 0 else 1.0
            results.append(
                self.simulate_layer(model, graph, dims, input_density=density)
            )
        return SimulationResult.combine(results)
