"""Exporters: Chrome trace JSON, JSONL round trip, summaries, roots."""

import json

from repro.telemetry.export import (
    format_summary,
    read_spans_jsonl,
    span_summary,
    to_chrome_trace,
    trace_roots,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.telemetry.trace import Span


def make_spans() -> list[Span]:
    return [
        Span(
            name="http",
            trace_id="t1",
            span_id="a",
            start_time=100.0,
            duration=0.5,
        ),
        Span(
            name="run_jobs",
            trace_id="t1",
            span_id="b",
            parent_id="a",
            start_time=100.1,
            duration=0.3,
            attributes={"jobs": 2},
        ),
        Span(
            name="http",
            trace_id="t2",
            span_id="c",
            start_time=100.2,
            duration=0.1,
            status="error",
            error="ValueError: boom",
        ),
    ]


class TestChromeTrace:
    def test_events_carry_relative_microseconds(self):
        doc = to_chrome_trace(make_spans())
        events = doc["traceEvents"]
        assert len(events) == 3
        first = next(e for e in events if e["args"]["span_id"] == "a")
        child = next(e for e in events if e["args"]["span_id"] == "b")
        assert first["ts"] == 0.0  # earliest span anchors t=0
        assert child["ts"] == int(0.1 * 1e6) or abs(child["ts"] - 1e5) < 1
        assert first["dur"] == 5e5
        assert first["ph"] == "X"

    def test_one_tid_row_per_trace(self):
        doc = to_chrome_trace(make_spans())
        tids = {e["args"]["trace_id"]: e["tid"] for e in doc["traceEvents"]}
        assert len(set(tids.values())) == 2

    def test_attributes_land_in_args(self):
        doc = to_chrome_trace(make_spans())
        child = next(
            e for e in doc["traceEvents"] if e["args"]["span_id"] == "b"
        )
        assert child["args"]["jobs"] == 2
        assert child["args"]["parent_id"] == "a"

    def test_accepts_plain_dicts(self):
        doc = to_chrome_trace([s.to_dict() for s in make_spans()])
        assert len(doc["traceEvents"]) == 3

    def test_validate_accepts_good_document(self):
        assert validate_chrome_trace(to_chrome_trace(make_spans())) == []

    def test_validate_flags_problems(self):
        assert validate_chrome_trace({}) == [
            "traceEvents is missing or not a list"
        ]
        bad = {"traceEvents": [{"name": 1, "ph": "X", "ts": "zero"}]}
        problems = validate_chrome_trace(bad)
        assert any("name" in p for p in problems)
        assert any("ts" in p for p in problems)
        assert any("pid" in p for p in problems)

    def test_write_produces_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, make_spans())
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []
        assert doc["displayTimeUnit"] == "ms"


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        spans = make_spans()
        assert write_spans_jsonl(path, spans) == 3
        back = read_spans_jsonl(path)
        assert back == spans

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        span = make_spans()[0]
        path.write_text(
            json.dumps(span.to_dict()) + "\n\n   \n"
        )
        assert read_spans_jsonl(path) == [span]


class TestSummary:
    def test_aggregates_sorted_by_total_desc(self):
        summary = span_summary(make_spans())
        assert [e["name"] for e in summary] == ["http", "run_jobs"]
        http = summary[0]
        assert http["calls"] == 2
        assert http["total_seconds"] == 0.6
        assert http["mean_seconds"] == 0.3
        assert http["max_seconds"] == 0.5
        assert http["errors"] == 1

    def test_format_summary_renders_table(self):
        text = format_summary(span_summary(make_spans()))
        assert "http" in text and "run_jobs" in text
        assert "1 errors" in text
        assert format_summary([]) == "(no spans)"

    def test_format_summary_limit(self):
        text = format_summary(span_summary(make_spans()), limit=1)
        assert "run_jobs" not in text


class TestTraceRoots:
    def test_groups_traces_with_roots(self):
        roots = trace_roots(make_spans())
        assert set(roots) == {"t1", "t2"}
        assert len(roots["t1"]) == 2

    def test_orphan_only_trace_excluded(self):
        orphan = Span(
            name="child", trace_id="t3", span_id="x", parent_id="missing"
        )
        # parent_id points outside the trace: still counts as a root-ish
        # entry (the tree's top is simply elsewhere), so it IS included.
        assert "t3" in trace_roots([orphan])

    def test_subtree_without_top_detected_as_complete(self):
        # Two spans whose parents are both present except the root's:
        spans = [
            Span(name="a", trace_id="t", span_id="1"),
            Span(name="b", trace_id="t", span_id="2", parent_id="1"),
        ]
        assert "t" in trace_roots(spans)
        # A pure cycle (no member without an in-trace parent) is not.
        cycle = [
            Span(name="a", trace_id="c", span_id="1", parent_id="2"),
            Span(name="b", trace_id="c", span_id="2", parent_id="1"),
        ]
        assert "c" not in trace_roots(cycle)
