"""Execution traces: per-tile pipeline timelines from a simulation result.

Turns the per-tile stage times the Aurora simulator records into an
explicit event timeline (the two-stage A→B flow-shop schedule), usable
for Gantt-style inspection, regression diffing, or export to the Chrome
``chrome://tracing`` JSON format.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

from ..core.results import SimulationResult

__all__ = ["TraceEvent", "build_trace", "to_chrome_trace", "save_chrome_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One scheduled interval on one resource lane."""

    name: str  # e.g. "tile 3"
    lane: str  # "sub-accelerator A" | "sub-accelerator B"
    start_seconds: float
    duration_seconds: float
    tile: int

    @property
    def end_seconds(self) -> float:
        return self.start_seconds + self.duration_seconds


def build_trace(result: SimulationResult) -> list[TraceEvent]:
    """Reconstruct the A/B flow-shop schedule from a layer result.

    Requires the per-tile stage times the Aurora simulator stores in
    ``result.notes`` (``stage_a_seconds`` / ``stage_b_seconds``); raises
    for results without them (e.g. baseline models).
    """
    try:
        stage_a = result.notes["stage_a_seconds"]
        stage_b = result.notes["stage_b_seconds"]
    except KeyError:
        raise ValueError(
            "result carries no per-tile stage times; traces are available "
            "for Aurora layer simulations only"
        ) from None
    if len(stage_a) != len(stage_b):
        raise ValueError("malformed stage lists")

    events: list[TraceEvent] = []
    a_done = 0.0
    b_done = 0.0
    for i, (ta, tb) in enumerate(zip(stage_a, stage_b)):
        a_start = a_done
        a_done = a_start + ta
        events.append(
            TraceEvent(
                name=f"tile {i}: edge update + aggregation",
                lane="sub-accelerator A",
                start_seconds=a_start,
                duration_seconds=ta,
                tile=i,
            )
        )
        b_start = max(b_done, a_done)
        b_done = b_start + tb
        if tb > 0:
            events.append(
                TraceEvent(
                    name=f"tile {i}: vertex update",
                    lane="sub-accelerator B",
                    start_seconds=b_start,
                    duration_seconds=tb,
                    tile=i,
                )
            )
    return events


def to_chrome_trace(events: list[TraceEvent]) -> dict:
    """Chrome tracing (``chrome://tracing`` / Perfetto) JSON object.

    Timestamps are microseconds per the format's convention.
    """
    lanes = {lane: i for i, lane in enumerate(dict.fromkeys(e.lane for e in events))}
    trace_events = []
    for lane, tid in lanes.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": lane},
            }
        )
    for e in events:
        trace_events.append(
            {
                "name": e.name,
                "ph": "X",
                "pid": 0,
                "tid": lanes[e.lane],
                "ts": e.start_seconds * 1e6,
                "dur": e.duration_seconds * 1e6,
                "args": {"tile": e.tile},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ns"}


def save_chrome_trace(events: list[TraceEvent], path) -> None:
    """Write the Chrome-tracing JSON to ``path``."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(events), fh, indent=1)
