"""Event-driven, batched cycle-level flit simulator for the flexible NoC.

Semantics are pinned by :class:`repro.arch.noc._reference.ReferenceNoCSimulator`
(the original object-graph implementation, kept verbatim): packets are
injected with a byte size, split into flits of ``flit_bytes``, routed
deterministically at injection (RC), and advanced one link hop per cycle
under credit-based backpressure and per-output round-robin arbitration.
``tests/test_noc_equivalence.py`` property-tests this engine against the
reference for bit-identical cycle counts and stats.

What changed versus the reference is purely *how* each cycle is computed:

* **Struct-of-arrays flit state** — flit position, hop, ready cycle and
  route index live in NumPy arrays; per-port FIFOs are intrusive linked
  lists over those arrays.  Python ``Packet`` objects exist only at the
  inject/eject boundary.
* **Candidate-driven, vectorised arbitration** — each cycle touches only
  the ports whose head flit is ready (``p_ready <= now``) instead of
  walking every router.  Grouping by (router, requested output) and the
  round-robin grant are computed with one packed-key sort plus
  ``searchsorted``; sequential semantics (ejections before moves, moves
  in router order, freed-slot chains) are preserved exactly.
* **Idle-cycle fast-forwarding** — :meth:`run` jumps straight to the next
  cycle at which any head flit becomes ready instead of spinning
  :meth:`step` through idle cycles (interleaved-injection workloads such
  as the latency-load sweeps spend most cycles idle).
* **O(1) drain tracking** — the shared :class:`~repro.arch.noc.drain.DrainTracker`
  counter replaces the per-cycle dict scan in ``all_delivered``.

The per-cycle ordering rules inherited from the reference, for the
record: round-robin state is untouched by single-contender grants but is
updated by multi-contender grants *even when the granted move then
stalls*; all ejections apply before any forward; forwards apply in
router-id order, so a pop can free a buffer slot only for a mover at a
higher-numbered router in the same cycle.
"""

from __future__ import annotations

import numpy as np

from ...config import NoCConfig
from .drain import DrainTracker, NoCDeadlockError
from .packet import Packet
from .routing import compute_route
from .stats import NoCStats
from .topology import FlexibleMeshTopology

__all__ = [
    "NoCStats",
    "NoCSimulator",
    "warm_route_memo",
    "export_route_memo",
    "install_route_memo",
    "memo_route",
]

_INF = 1 << 62

# Routes depend only on the topology's wiring, not on simulator state, so
# they are memoised process-wide keyed by the topology signature.  Repeated
# calibration tiles over the same configured mesh then skip route
# computation entirely (the dominant injection cost for multi-thousand
# packet tiles).
_ROUTE_MEMO: dict[tuple, tuple[int, ...]] = {}


def _clear_route_memo() -> None:
    """Test/benchmark hook: forget process-wide memoised routes."""
    _ROUTE_MEMO.clear()


def warm_route_memo(
    topology: FlexibleMeshTopology,
    pairs,
    *,
    allow_bypass: bool = True,
) -> int:
    """Precompute routes for ``(src, dst)`` pairs into the shared memo.

    Hoisted route warmup: every engine built on the same topology —
    across tiles, shards, and (via :func:`export_route_memo` /
    :func:`install_route_memo`) worker processes — then resolves routes
    with a dict hit instead of re-deriving them per tile.  Returns the
    number of routes actually computed.
    """
    sig = topology.signature()
    added = 0
    for src, dst in pairs:
        key = (sig, int(src), int(dst), allow_bypass)
        if key not in _ROUTE_MEMO:
            _ROUTE_MEMO[key] = compute_route(
                topology, int(src), int(dst), allow_bypass=allow_bypass
            )
            added += 1
    return added


def export_route_memo(topo_sig=None) -> dict[tuple, tuple[int, ...]]:
    """Snapshot the route memo (optionally one topology's slice).

    The snapshot is plain tuples — picklable, so a shard planner can ship
    it to pool workers and pay route derivation once per topology instead
    of once per process.
    """
    if topo_sig is None:
        return dict(_ROUTE_MEMO)
    return {k: v for k, v in _ROUTE_MEMO.items() if k[0] == topo_sig}


def install_route_memo(entries: dict[tuple, tuple[int, ...]]) -> int:
    """Merge exported route entries into this process's memo."""
    before = len(_ROUTE_MEMO)
    _ROUTE_MEMO.update(entries)
    return len(_ROUTE_MEMO) - before


def memo_route(
    topology: FlexibleMeshTopology,
    src: int,
    dst: int,
    *,
    allow_bypass: bool = True,
    topo_sig: tuple | None = None,
) -> tuple[int, ...]:
    """One route through the shared memo, deriving (and keeping) on miss.

    Callers that resolve many routes on one topology should pass a
    precomputed ``topo_sig`` (``topology.signature()``) to skip the
    per-call signature rebuild.
    """
    if topo_sig is None:
        topo_sig = topology.signature()
    key = (topo_sig, src, dst, allow_bypass)
    route = _ROUTE_MEMO.get(key)
    if route is None:
        route = compute_route(topology, src, dst, allow_bypass=allow_bypass)
        _ROUTE_MEMO[key] = route
    return route


class NoCSimulator(DrainTracker):
    """Flit-level network simulator over a flexible mesh (event engine)."""

    def __init__(
        self,
        topology: FlexibleMeshTopology,
        config: NoCConfig | None = None,
    ) -> None:
        self.topology = topology
        self.config = config or NoCConfig()
        self.cycle = 0
        self.stats = NoCStats()
        self._next_pid = 0
        self._drain_init()

        n = topology.num_nodes
        self._n = n
        # Upstream sort key: upstream + 1 (injection port -1 -> 0).
        self._ukb = (n + 2).bit_length()
        self._ukmask = (1 << self._ukb) - 1
        self._buf_cap = self.config.vcs_per_port * self.config.vc_depth

        # ---- port SoA (grown as ports materialise) --------------------
        cap0 = 4 * n + 8
        self._np_ports = 0
        self._p_router = np.empty(cap0, dtype=np.int64)
        self._p_ukey = np.empty(cap0, dtype=np.int64)
        self._p_cap = np.empty(cap0, dtype=np.int64)
        self._p_count = np.zeros(cap0, dtype=np.int64)
        self._p_head = np.full(cap0, -1, dtype=np.int64)
        self._p_tail = np.full(cap0, -1, dtype=np.int64)
        self._p_ready = np.full(cap0, _INF, dtype=np.int64)
        self._p_key = np.zeros(cap0, dtype=np.int64)
        self._p_target = np.zeros(cap0, dtype=np.int64)
        # Precomputed key base ((router*n) << ukb | ukey): the head key is
        # base + (target << ukb), one add instead of re-packing.
        self._p_base = np.zeros(cap0, dtype=np.int64)

        # Dense (router, upstream) -> port id and per-directed-pair hop
        # class tables; n is bounded by the cycle tier's 16x16 cap plus
        # headroom, so n*n stays small.
        self._pt = np.full(n * n, -1, dtype=np.int64)
        self._inject_port = np.empty(n, dtype=np.int64)
        self._rr = np.full(n * n, -2, dtype=np.int64)
        # Scratch scatter tables: port id -> position among this cycle's
        # movers / ejection flag (reset after each use).
        self._port_pos = np.full(cap0, -1, dtype=np.int64)
        self._port_flag = np.zeros(cap0, dtype=bool)
        self._idle = False

        # Per-packet remaining-flit tails as an array so ejections batch;
        # positions mirror pid.  DrainTracker's counters stay authoritative
        # for all_delivered()/undelivered().
        self._pkt_tails = np.empty(256, dtype=np.int64)

        # ---- flit SoA -------------------------------------------------
        self._nf = 0
        fcap = 1024
        self._f_ready = np.empty(fcap, dtype=np.int64)
        self._f_hop = np.empty(fcap, dtype=np.int64)
        self._f_pid = np.empty(fcap, dtype=np.int64)
        self._f_rid = np.empty(fcap, dtype=np.int64)
        self._f_next = np.empty(fcap, dtype=np.int64)

        # ---- routes (shared across packets) ---------------------------
        self._route_cache: dict[tuple[int, int, bool], int] = {}
        self._routes: list[tuple[int, ...]] = []
        self._route_off = np.empty(64, dtype=np.int64)
        self._route_len = np.empty(64, dtype=np.int64)
        # Derived tables for the hot path: last hop index (len - 1) and
        # offset of the second hop (off + 1).
        self._route_last = np.empty(64, dtype=np.int64)
        self._route_off1 = np.empty(64, dtype=np.int64)
        self._route_flat = np.empty(256, dtype=np.int64)
        self._flat_used = 0

        self._packets: list[Packet] = []

        for node in range(n):
            self._inject_port[node] = self._new_port(node, -1, 1 << 30)
        self.refresh_configuration()

    # ------------------------------------------------------------------
    # Configuration / topology tables
    # ------------------------------------------------------------------
    def refresh_configuration(self) -> None:
        """Re-read the topology's links and bypass segments.

        Ports for removed links are kept (in-flight flits drain through
        them at mesh latency, as the reference does); ports for new links
        are added.  Cached routes are invalidated.
        """
        n = self._n
        self._bypass = np.zeros(n * n, dtype=bool)
        for seg in self.topology.bypass_segments:
            a, b = self.topology.segment_endpoints(seg)
            self._bypass[a * n + b] = True
            self._bypass[b * n + a] = True
        for node in range(n):
            for neigh, _kind in self.topology.links_from(node):
                if self._pt[neigh * n + node] < 0:
                    self._new_port(neigh, node, self._buf_cap)
        self._lat_mesh = self.config.router_pipeline_stages + self.config.link_latency
        self._lat_byp = (
            self.config.router_pipeline_stages + self.config.bypass_segment_latency
        )
        self._topo_sig = self.topology.signature()
        self._route_cache.clear()

    def _new_port(self, router: int, upstream: int, cap: int) -> int:
        pid = self._np_ports
        if pid == self._p_router.size:
            for name in (
                "_p_router", "_p_ukey", "_p_cap", "_p_count",
                "_p_head", "_p_tail", "_p_ready", "_p_key", "_p_target",
                "_p_base",
            ):
                old = getattr(self, name)
                new = np.empty(2 * old.size, dtype=old.dtype)
                new[: old.size] = old
                setattr(self, name, new)
            self._port_pos = np.full(2 * self._port_pos.size, -1, dtype=np.int64)
            self._port_flag = np.zeros(2 * self._port_flag.size, dtype=bool)
        self._np_ports = pid + 1
        self._p_router[pid] = router
        self._p_ukey[pid] = upstream + 1
        self._p_cap[pid] = cap
        self._p_count[pid] = 0
        self._p_head[pid] = -1
        self._p_tail[pid] = -1
        self._p_ready[pid] = _INF
        self._p_base[pid] = ((router * self._n) << self._ukb) | (upstream + 1)
        if upstream >= 0:
            self._pt[router * self._n + upstream] = pid
        return pid

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def _route_id(self, src: int, dst: int, allow_bypass: bool) -> int:
        key = (src, dst, allow_bypass)
        rid = self._route_cache.get(key)
        if rid is not None:
            return rid
        memo_key = (self._topo_sig, src, dst, allow_bypass)
        route = _ROUTE_MEMO.get(memo_key)
        if route is None:
            route = compute_route(self.topology, src, dst, allow_bypass=allow_bypass)
            _ROUTE_MEMO[memo_key] = route
        rid = len(self._routes)
        self._routes.append(route)
        if rid == self._route_off.size:
            for name in ("_route_off", "_route_len", "_route_last", "_route_off1"):
                old = getattr(self, name)
                setattr(
                    self,
                    name,
                    np.concatenate([old, np.empty(old.size, dtype=np.int64)]),
                )
        # Keep one slack slot past the used region: the vectorised
        # next-hop gather reads (off + hop + 1) unmasked before the
        # at-destination select.
        need = self._flat_used + len(route) + 1
        if need > self._route_flat.size:
            grown = np.empty(max(need, 2 * self._route_flat.size), dtype=np.int64)
            grown[: self._flat_used] = self._route_flat[: self._flat_used]
            self._route_flat = grown
        self._route_off[rid] = self._flat_used
        self._route_len[rid] = len(route)
        self._route_last[rid] = len(route) - 1
        self._route_off1[rid] = self._flat_used + 1
        self._route_flat[self._flat_used : self._flat_used + len(route)] = route
        self._flat_used += len(route)
        n = self._n
        for a, b in zip(route, route[1:]):
            if self._pt[b * n + a] < 0:
                # Route over a link the port tables have not seen (e.g. a
                # segment added without refresh_configuration): create the
                # port lazily, as the reference's lazy input_port does.
                self._new_port(b, a, self._buf_cap)
        self._route_cache[key] = rid
        return rid

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def inject(
        self,
        src: int,
        dst: int,
        size_bytes: int,
        *,
        cycle: int | None = None,
        allow_bypass: bool = True,
    ) -> Packet:
        """Inject one packet at ``src`` destined for ``dst``."""
        when = self.cycle if cycle is None else cycle
        if when < self.cycle:
            raise ValueError("cannot inject in the past")
        rid = self._route_id(src, dst, allow_bypass)
        packet = Packet(
            pid=self._next_pid,
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            inject_cycle=when,
            route=self._routes[rid],
        )
        self._next_pid += 1
        nf = max(1, -(-size_bytes // self.config.flit_bytes))
        packet.num_flits = nf
        self._drain_register(packet.pid, nf)
        if packet.pid == self._pkt_tails.size:
            grown = np.empty(2 * self._pkt_tails.size, dtype=np.int64)
            grown[: packet.pid] = self._pkt_tails[: packet.pid]
            self._pkt_tails = grown
        self._pkt_tails[packet.pid] = nf
        self._packets.append(packet)

        base = self._nf
        need = base + nf
        if need > self._f_ready.size:
            grow = max(need, 2 * self._f_ready.size)
            for name in ("_f_ready", "_f_hop", "_f_pid", "_f_rid", "_f_next"):
                old = getattr(self, name)
                new = np.empty(grow, dtype=np.int64)
                new[: self._nf] = old[: self._nf]
                setattr(self, name, new)
        self._nf = need
        sl = slice(base, need)
        self._f_ready[sl] = when
        self._f_hop[sl] = 0
        self._f_pid[sl] = packet.pid
        self._f_rid[sl] = rid
        self._f_next[sl] = np.arange(base + 1, need + 1, dtype=np.int64)
        self._f_next[need - 1] = -1

        port = int(self._inject_port[src])
        if self._p_count[port] == 0:
            self._p_head[port] = base
            self._p_ready[port] = when
            target = src if len(packet.route) == 1 else packet.route[1]
            self._p_target[port] = target
            self._p_key[port] = self._p_base[port] + (target << self._ukb)
        else:
            self._f_next[self._p_tail[port]] = base
        self._p_tail[port] = need - 1
        self._p_count[port] += nf
        return packet

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the network by one cycle."""
        now = self.cycle
        p_ready = self._p_ready
        cand = (p_ready[: self._np_ports] <= now).nonzero()[0]
        self._idle = cand.size == 0
        if not self._idle:
            p_head = self._p_head
            p_tail = self._p_tail
            p_count = self._p_count
            f_next = self._f_next
            n = self._n
            ukb = self._ukb
            stats = self.stats

            keys = self._p_key[cand]
            order = np.argsort(keys)
            skeys = keys[order]
            sports = cand[order]
            groups = skeys >> ukb

            starts_mask = np.empty(groups.size, dtype=bool)
            starts_mask[0] = True
            np.not_equal(groups[1:], groups[:-1], out=starts_mask[1:])
            starts = starts_mask.nonzero()[0]
            ends = np.empty(starts.size, dtype=np.int64)
            ends[:-1] = starts[1:]
            ends[-1] = groups.size

            winner_idx = starts.copy()
            multi = ends - starts > 1
            if np.count_nonzero(multi):
                m_start = starts[multi]
                m_end = ends[multi]
                m_group = groups[m_start]
                last = self._rr[m_group]
                thresh = (m_group << ukb) | (last + 2)
                pos = np.searchsorted(skeys, thresh)
                pos = np.where(pos >= m_end, m_start, pos)
                winner_idx[multi] = pos
                # RR advances for every multi-contender grant, even when
                # the granted move stalls this cycle.
                self._rr[m_group] = (skeys[pos] & self._ukmask) - 1

            wports = sports[winner_idx]
            wtarget = self._p_target[wports]
            wrouter = self._p_router[wports]
            eject = wtarget == wrouter
            ei = eject.nonzero()[0]
            n_eject = ei.size
            n_win = wports.size

            if n_eject:
                e_ports = wports[ei]
                e_flits = p_head[e_ports]

            s_flits = s_tq = None
            if n_eject < n_win:
                mi = (~eject).nonzero()[0]
                m_ports = wports[mi]
                m_router = wrouter[mi]
                m_target = wtarget[mi]
                tq = self._pt[m_target * n + m_router]
                # Forward targets are always network input ports, which
                # share one capacity.
                success = p_count[tq] < self._buf_cap
                if n_eject:
                    # Ejections drain before forwards are considered: a
                    # full port whose head ejects this cycle still admits
                    # its mover.
                    flag = self._port_flag
                    flag[e_ports] = True
                    success |= flag[tq]
                    flag[e_ports] = False
                blocked = (~success).nonzero()[0]
                if blocked.size:
                    # A full target also admits the move if its head
                    # departs via an earlier (lower position = lower
                    # router id) successful forward — walk the blocked
                    # positions in ascending order so freed-slot chains
                    # settle in one pass (a same-router dependency would
                    # be an ejection, so dependencies point strictly
                    # down).
                    pos = self._port_pos
                    pos[m_ports] = np.arange(m_ports.size, dtype=np.int64)
                    dep = pos[tq[blocked]]
                    pos[m_ports] = -1
                    for i, j in zip(blocked.tolist(), dep.tolist()):
                        if 0 <= j < i and success[j]:
                            success[i] = True
                si = success.nonzero()[0]
                stats.stall_events += int(m_ports.size - si.size)
                if si.size:
                    s_ports = m_ports[si]
                    s_flits = p_head[s_ports]
                    s_tq = tq[si]
                    s_rt = m_router[si] * n + m_target[si]

            # ---- apply pops (ejections + successful forwards) ---------
            if n_eject and s_flits is not None:
                popped = np.concatenate([e_ports, s_ports])
                pflits = np.concatenate([e_flits, s_flits])
            elif n_eject:
                popped, pflits = e_ports, e_flits
            elif s_flits is not None:
                popped, pflits = s_ports, s_flits
            else:
                popped = None

            if popped is not None:
                nh = f_next[pflits]
                p_head[popped] = nh
                p_count[popped] -= 1
                emptied = nh < 0
                if np.count_nonzero(emptied):
                    drained = popped[emptied]
                    p_tail[drained] = -1
                    p_ready[drained] = _INF
                    touched = popped[~emptied]
                else:
                    touched = popped

                # ---- apply pushes (each port receives <= 1 flit/cycle) -
                if s_flits is not None:
                    byp = self._bypass[s_rt]
                    n_byp = int(np.count_nonzero(byp))
                    stats.bypass_flit_hops += n_byp
                    stats.mesh_flit_hops += int(byp.size - n_byp)
                    self._f_hop[s_flits] += 1
                    self._f_ready[s_flits] = np.where(
                        byp, now + self._lat_byp, now + self._lat_mesh
                    )
                    old_tail = p_tail[s_tq]
                    has_tail = old_tail >= 0
                    if np.count_nonzero(has_tail) == has_tail.size:
                        f_next[old_tail] = s_flits
                    else:
                        f_next[old_tail[has_tail]] = s_flits[has_tail]
                        was_empty = s_tq[~has_tail]
                        p_head[was_empty] = s_flits[~has_tail]
                        touched = np.concatenate([touched, was_empty])
                    f_next[s_flits] = -1
                    p_tail[s_tq] = s_flits
                    p_count[s_tq] += 1

                # ---- refresh metadata of ports whose head changed ------
                if touched.size:
                    h = p_head[touched]
                    hop = self._f_hop[h]
                    rid = self._f_rid[h]
                    at_dest = hop == self._route_last[rid]
                    # rows at destination read one slot past their route in
                    # _route_flat (still inside the +1 slack) and are then
                    # masked by the select below.
                    target = np.where(
                        at_dest,
                        self._p_router[touched],
                        self._route_flat[self._route_off1[rid] + hop],
                    )
                    self._p_target[touched] = target
                    self._p_key[touched] = self._p_base[touched] + (target << ukb)
                    p_ready[touched] = self._f_ready[h]

            # ---- delivery accounting ----------------------------------
            if n_eject:
                stats.flits_delivered += n_eject
                done = now + 1
                # At most one flit ejects per router per cycle and a packet
                # drains at a single router, so these pids are unique —
                # plain fancy-index decrement is race-free.
                pids = self._f_pid[e_flits]
                self._pkt_tails[pids] -= 1
                rem = self._pkt_tails[pids]
                self._outstanding_flits -= n_eject
                completed = pids[rem == 0]
                if completed.size:
                    self._outstanding_packets -= int(completed.size)
                    for pid in completed.tolist():
                        pkt = self._packets[pid]
                        pkt.done_cycle = done
                        latency = done - pkt.inject_cycle
                        stats.packets_delivered += 1
                        stats.total_packet_latency += latency
                        if latency > stats.max_packet_latency:
                            stats.max_packet_latency = latency

        self.cycle = now + 1
        self.stats.cycles = self.cycle

    # ------------------------------------------------------------------
    def run(self, *, max_cycles: int = 1_000_000) -> NoCStats:
        """Run until every injected packet is delivered (or the limit).

        Idle cycles — no head flit ready anywhere — are fast-forwarded:
        nothing moves, arbitration state is untouched and no stalls
        accrue in such cycles, so jumping the clock to the next ready
        time is exactly equivalent to spinning :meth:`step`.  The scan
        for the next event only happens after a step that found no ready
        head, so saturated drains never pay for it.
        """
        while not self.all_delivered():
            if self.cycle >= max_cycles:
                raise self._deadlock(
                    f"NoC did not drain within {max_cycles} cycles "
                    f"({self.undelivered()} packets outstanding)",
                    cycle=self.cycle,
                )
            self.step()
            if self._idle:
                next_ready = int(self._p_ready[: self._np_ports].min())
                if next_ready > self.cycle:
                    self.cycle = min(next_ready, max_cycles)
                    self.stats.cycles = self.cycle
        return self.stats

    def _queue_depths(self) -> dict[int, int]:
        P = self._np_ports
        depths = np.bincount(
            self._p_router[:P], weights=self._p_count[:P], minlength=self._n
        ).astype(np.int64)
        return {int(r): int(d) for r, d in enumerate(depths) if d > 0}

    def _deadlock(self, message: str, *, cycle: int) -> NoCDeadlockError:
        # `_pkt_tails` is authoritative on the hot path; re-sync the
        # DrainTracker dict so failure reports show live values.
        npkt = len(self._packets)
        self._tails_remaining = dict(
            enumerate(self._pkt_tails[:npkt].tolist())
        )
        return super()._deadlock(message, cycle=cycle)
