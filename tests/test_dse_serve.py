"""The /dse endpoints: submit, poll, cancel, caps, manager accounting."""

import pytest

from repro.dse.service import DSEManager, MAX_EVALUATIONS_CAP
from repro.runtime import ResultCache
from repro.serve.client import RequestFailed, ServeClient
from repro.serve.server import ServerThread, SimulationService

SPEC = {
    "space": "aurora-mini",
    "optimizer": "random",
    "objective": "latency",
    "seed": 7,
    "max_evaluations": 16,
    "batch": 8,
    "workload": {"dataset": "cora", "scale": 0.1, "hidden": 8, "num_layers": 1},
}


@pytest.fixture
def served(tmp_path):
    service = SimulationService(
        cache=ResultCache(tmp_path / "cache"),
        dse_artifact_dir=str(tmp_path / "artifacts"),
    )
    with ServerThread(service) as thread:
        host, port = thread.address
        yield service, ServeClient(host, port, timeout=60.0)


class TestEndpoints:
    def test_submit_poll_done(self, served):
        service, client = served
        accepted = client.dse_start(dict(SPEC))
        assert accepted["status"] == "accepted"
        assert accepted["poll"] == f"/dse/{accepted['search_id']}"

        payload = client.dse_wait(accepted["search_id"], timeout=60.0)
        assert payload["state"] == "done"
        result = payload["result"]
        assert result["evaluations"] == 16
        assert result["stopped"] == "budget"
        assert result["best_fitness"] is not None
        assert payload["trajectory_tail"]
        tail = payload["trajectory_tail"]
        assert tail[-1]["i"] == 15

    def test_search_warms_the_shared_cache(self, served):
        service, client = served
        first = client.dse_start(dict(SPEC))
        client.dse_wait(first["search_id"], timeout=60.0)
        second = client.dse_start(dict(SPEC))
        payload = client.dse_wait(second["search_id"], timeout=60.0)
        # Same seed, same spec, cache shared through the service: the
        # repeat search simulates nothing.
        assert payload["result"]["executed"] == 0
        assert payload["result"]["served"] == 16

    def test_unknown_id_is_404(self, served):
        _, client = served
        with pytest.raises(RequestFailed) as info:
            client.dse_poll("nonesuch")
        assert info.value.status == 404

    def test_over_cap_spec_is_400(self, served):
        _, client = served
        bad = {**SPEC, "max_evaluations": MAX_EVALUATIONS_CAP + 1}
        with pytest.raises(RequestFailed) as info:
            client.dse_start(bad)
        assert info.value.status == 400

    def test_unknown_spec_field_is_400(self, served):
        _, client = served
        with pytest.raises(RequestFailed) as info:
            client.dse_start({**SPEC, "nonesuch": 1})
        assert info.value.status == 400

    def test_cancel_endpoint(self, served):
        _, client = served
        big = {**SPEC, "max_evaluations": 512, "seed": 99}
        accepted = client.dse_start(big)
        status, payload = client.call(
            "POST", f"/dse/{accepted['search_id']}/cancel"
        )
        assert status == 202
        final = client.dse_wait(accepted["search_id"], timeout=60.0)
        assert final["state"] == "done"
        assert final["result"]["stopped"] in ("cancelled", "budget")

    def test_stats_carry_dse_section(self, served):
        service, client = served
        client.dse_wait(
            client.dse_start(dict(SPEC))["search_id"], timeout=60.0
        )
        stats = client.stats()
        assert stats["dse"]["started_total"] == 1


class TestManager:
    def test_caps_injected_wall_clock(self, tmp_path):
        manager = DSEManager(artifact_dir=str(tmp_path))
        spec = manager.parse_spec(dict(SPEC))
        assert spec.max_seconds is not None

    def test_rejects_when_replica_is_full(self, tmp_path):
        manager = DSEManager(artifact_dir=str(tmp_path), max_active=0)
        with pytest.raises(RuntimeError, match="too many"):
            manager.start(dict(SPEC))
        assert manager.stats()["rejected_total"] == 1

    def test_cancel_unknown_is_false(self, tmp_path):
        manager = DSEManager(artifact_dir=str(tmp_path))
        assert manager.cancel("nonesuch") is False
