"""Unit tests for the PolyBench kernel models."""

import numpy as np
import pytest

from repro.models import (
    PHASE_KERNELS,
    gemver_cost,
    gesummv_cost,
    gramschmidt_cost,
    mvt_cost,
)
from repro.models.polybench import gemver_add, gesummv_mul, gramschmidt, mvt


class TestCosts:
    def test_mvt_flops(self):
        assert mvt_cost(4, 8).flops == 64

    def test_gemver_flops(self):
        assert gemver_cost(10).flops == 10

    def test_gesummv_flops(self):
        assert gesummv_cost(10).flops == 10

    def test_gramschmidt_grows_quadratically(self):
        small = gramschmidt_cost(16, 4).flops
        big = gramschmidt_cost(16, 8).flops
        assert big > 2 * small  # projections scale with k^2

    def test_elements_touched(self):
        c = mvt_cost(3, 5)
        assert c.elements_touched == c.reads + c.writes

    @pytest.mark.parametrize(
        "fn", [lambda: mvt_cost(0, 1), lambda: gemver_cost(0), lambda: gramschmidt_cost(1, 0)]
    )
    def test_invalid_dims(self, fn):
        with pytest.raises(ValueError):
            fn()


class TestKernels:
    def test_mvt_matches_numpy(self, rng):
        a = rng.normal(size=(4, 6))
        x = rng.normal(size=6)
        assert np.allclose(mvt(a, x), a @ x)

    def test_gemver_add(self):
        assert gemver_add([1, 2], [3, 4]).tolist() == [4, 6]

    def test_gesummv_mul(self):
        assert gesummv_mul([2, 3], [4, 5]).tolist() == [8, 15]

    def test_gramschmidt_orthonormal(self, rng):
        v = rng.normal(size=(4, 8))
        q = gramschmidt(v)
        gram = q @ q.T
        assert np.allclose(gram, np.eye(4), atol=1e-8)

    def test_gramschmidt_preserves_span(self, rng):
        v = rng.normal(size=(3, 5))
        q = gramschmidt(v)
        # Each original vector is representable in the orthonormal basis.
        coeffs = v @ q.T
        assert np.allclose(coeffs @ q, v, atol=1e-8)

    def test_gramschmidt_rejects_1d(self):
        with pytest.raises(ValueError):
            gramschmidt(np.ones(4))


class TestPhaseMapping:
    def test_paper_assignment(self):
        assert "gramschmidt" in PHASE_KERNELS["edge_update"]
        assert PHASE_KERNELS["aggregation"] == ("gemver",)
        assert "mvt" in PHASE_KERNELS["vertex_update"]
        assert "relu" in PHASE_KERNELS["vertex_update"]
