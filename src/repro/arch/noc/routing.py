"""Route computation for the flexible NoC.

Baseline routing is dimension-ordered XY (deadlock-free on the mesh).
When bypass segments are configured, the route computation considers the
segments reachable from the source's row/column and takes a bypass when it
strictly shortens the path — this is how the "longest communications for
each high-degree vertex" get bridged (paper §IV).

Inside a ring region, traffic flows in the ring direction (+x with a
wrap-around), which is what the weight-stationary dataflow requires.
"""

from __future__ import annotations

from .topology import BypassSegment, FlexibleMeshTopology

__all__ = ["xy_route", "bypass_route", "ring_route", "compute_route"]


def xy_route(topo: FlexibleMeshTopology, src: int, dst: int) -> tuple[int, ...]:
    """Dimension-ordered route: x first, then y. Includes both endpoints."""
    sx, sy = topo.coords(src)
    dx, dy = topo.coords(dst)
    route = [src]
    x, y = sx, sy
    step = 1 if dx > x else -1
    while x != dx:
        x += step
        route.append(topo.node_id(x, y))
    step = 1 if dy > y else -1
    while y != dy:
        y += step
        route.append(topo.node_id(x, y))
    return tuple(route)


def _sign(v: int) -> int:
    return (v > 0) - (v < 0)


def _segment_route(
    topo: FlexibleMeshTopology, src: int, dst: int, seg: BypassSegment
) -> tuple[int, ...] | None:
    """Route src → seg entry → seg exit → dst, or None if disallowed.

    Bypass usage follows the *monotonic express-channel* discipline that
    keeps the channel-dependency graph acyclic (verified by
    :mod:`repro.arch.noc.deadlock`): the segment may only act as an
    express link inside a dimension-ordered route, never to double back.

    * Row segments: the source must sit on the segment's row, and both
      the approach and the continuation must move in the segment's
      travel direction (the whole x-phase is monotonic; y follows).
    * Column segments: the destination must sit on the segment's column
      (no x-movement after the express hop, preserving x-before-y), with
      the same monotonic-y requirement.
    """
    a, b = topo.segment_endpoints(seg)
    sx, sy = topo.coords(src)
    dx, dy = topo.coords(dst)
    best: tuple[int, ...] | None = None
    for entry, exit_ in ((a, b), (b, a)):
        ex, ey = topo.coords(entry)
        xx, xy_ = topo.coords(exit_)
        if seg.axis == "row":
            direction = _sign(xx - ex)
            if sy != ey:
                continue  # approach would need y-then-x (illegal turn)
            if _sign(ex - sx) not in (0, direction):
                continue
            if _sign(dx - xx) not in (0, direction):
                continue
        else:  # column segment
            direction = _sign(xy_ - ey)
            if dx != ex:
                continue  # continuation would need y-then-x (illegal turn)
            if _sign(ey - sy) not in (0, direction):
                continue
            if _sign(dy - xy_) not in (0, direction):
                continue
        head = xy_route(topo, src, entry)  # ends at the segment entry
        tail = xy_route(topo, exit_, dst)  # starts at the segment exit
        route = head + (exit_,) + tail[1:]
        if best is None or len(route) < len(best):
            best = route
    return best


def bypass_route(
    topo: FlexibleMeshTopology, src: int, dst: int
) -> tuple[int, ...]:
    """Shortest route considering configured bypass segments.

    Evaluates the plain XY route and every single-segment bypass route,
    returning the shortest (ties favour plain XY for determinism).  A
    single bypass per route matches the hardware: a packet may use at most
    one express segment, as segments are per-row/column resources.
    """
    base = xy_route(topo, src, dst)
    best = base
    for seg in topo.bypass_segments:
        cand = _segment_route(topo, src, dst, seg)
        if cand is not None and len(cand) < len(best):
            best = cand
    return best


def segment_usable(
    topo: FlexibleMeshTopology,
    src: int,
    dst: int,
    seg: BypassSegment,
) -> bool:
    """Whether the express-channel discipline lets (src → dst) use ``seg``."""
    return _segment_route(topo, src, dst, seg) is not None


def ring_route(topo: FlexibleMeshTopology, src: int, dst: int) -> tuple[int, ...]:
    """Route within a ring region: unidirectional +x with wrap-around.

    Both endpoints must sit on the same ring row; vertical moves fall
    back to XY (rings are per-row).
    """
    ring = topo.ring_for(src)
    if ring is None or topo.ring_for(dst) is not ring:
        raise ValueError("ring_route endpoints must share a ring region")
    sx, sy = topo.coords(src)
    dx, dy = topo.coords(dst)
    if sy != dy:
        # Move vertically first (mesh links), then ring along the row.
        mid = topo.node_id(sx, dy)
        head = xy_route(topo, src, mid)
        tail = ring_route(topo, mid, dst)
        return head + tail[1:]
    route = [src]
    x = sx
    while x != dx:
        if x + 1 < ring.x1:
            x += 1
        else:
            x = ring.x0  # wrap-around over the bypass wire
        route.append(topo.node_id(x, dy))
    return tuple(route)


def compute_route(
    topo: FlexibleMeshTopology,
    src: int,
    dst: int,
    *,
    allow_bypass: bool = True,
) -> tuple[int, ...]:
    """The RC unit: pick the route class by the current configuration."""
    if src == dst:
        return (src,)
    ring = topo.ring_for(src)
    if ring is not None and topo.ring_for(dst) is ring:
        return ring_route(topo, src, dst)
    if allow_bypass and topo.bypass_segments:
        return bypass_route(topo, src, dst)
    return xy_route(topo, src, dst)
