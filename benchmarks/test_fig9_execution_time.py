"""E5 — regenerate Fig. 9: normalized execution time per dataset.

Paper averages: Aurora reduces execution time by 85% (HyGCN), 66%
(AWB-GCN), 47% (GCNAX), 28% (ReGNN), 38% (FlowGNN); per-dataset speedups
range 5.0-37x over HyGCN down to 1.1-1.7x over FlowGNN, with Reddit the
least favourable dataset ("the performance gain on the Reddit dataset is
not so significant").
"""

from conftest import emit

from repro.eval import render_headline_summary, render_normalized_figure

# Paper speedup ranges (baseline / Aurora) per baseline.
PAPER_RANGES = {
    "hygcn": (5.0, 37.0),
    "awb-gcn": (1.6, 3.0),
    "gcnax": (1.3, 1.9),
    "regnn": (1.1, 2.4),
    "flowgnn": (1.1, 1.7),
}


def test_fig9_execution_time(benchmark, sweep):
    text = benchmark(
        render_normalized_figure,
        sweep,
        "execution_time",
        title="Fig. 9: normalized execution time (baseline / Aurora)",
    )
    emit(text)
    emit(render_headline_summary(sweep))

    grid = sweep.normalized_grid("execution_time")
    # Aurora wins everywhere.
    for ds in sweep.datasets:
        for acc in sweep.accelerators:
            if acc != "aurora":
                assert grid[ds][acc] >= 1.0, (ds, acc)
    # HyGCN is the slowest baseline on every dataset.
    for ds in sweep.datasets:
        hygcn = grid[ds]["hygcn"]
        for acc in ("awb-gcn", "gcnax", "regnn", "flowgnn"):
            assert grid[ds][acc] < hygcn, (ds, acc)
    # Reddit shows the smallest relative gains (dense features, paper §VI-D).
    reddit_avg = sweep.per_dataset_reduction("execution_time", "reddit")
    others = [
        sweep.per_dataset_reduction("execution_time", ds)
        for ds in sweep.datasets
        if ds != "reddit"
    ]
    assert reddit_avg < min(others)
    # Speedup ordering follows the paper: HyGCN >> AWB-GCN > GCNAX.
    lo_h, hi_h = sweep.speedup_range_vs("execution_time", "hygcn")
    lo_a, _ = sweep.speedup_range_vs("execution_time", "awb-gcn")
    assert hi_h >= PAPER_RANGES["hygcn"][0]
    assert lo_a >= 1.0
