"""Text renderers that regenerate the paper's tables and figures.

Each renderer turns harness output into the same rows/series the paper
plots, as aligned plain-text tables (the benches print these so a run's
output is directly comparable with the publication).
"""

from __future__ import annotations

from ..baselines import BASELINE_TRAITS
from ..models.base import Phase
from ..models.workload import LayerDims, extract_workload
from ..models.zoo import MODEL_ZOO
from .harness import ComparisonResults

__all__ = [
    "format_table",
    "render_normalized_figure",
    "render_table1_coverage",
    "render_table2_operations",
    "render_headline_summary",
]


def format_table(
    headers: list[str], rows: list[list[str]], *, title: str | None = None
) -> str:
    """Simple aligned ASCII table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_normalized_figure(
    comparison: ComparisonResults, metric: str, *, title: str
) -> str:
    """A Fig. 7/9/10-style table: rows = datasets, cols = accelerators,
    values normalised to Aurora (Aurora column = 1.00)."""
    grid = comparison.normalized_grid(metric)
    headers = ["dataset"] + list(comparison.accelerators)
    rows = []
    for ds in comparison.datasets:
        rows.append(
            [ds] + [f"{grid[ds][acc]:.2f}" for acc in comparison.accelerators]
        )
    return format_table(headers, rows, title=title)


def render_table1_coverage() -> str:
    """Table I: model coverage and architecture features per accelerator."""
    headers = [
        "accelerator",
        "C-GNN",
        "A-GNN",
        "MP-GNN",
        "flex PE",
        "flex dataflow",
        "flex NoC",
        "msg passing",
    ]

    def mark(flag: bool) -> str:
        return "yes" if flag else "no"

    rows = []
    for t in BASELINE_TRAITS:
        rows.append(
            [
                t.name,
                mark(t.supports_c_gnn),
                mark(t.supports_a_gnn),
                mark(t.supports_mp_gnn),
                mark(t.flexible_pe),
                mark(t.flexible_dataflow),
                mark(t.flexible_noc),
                mark(t.message_passing),
            ]
        )
    rows.append(["aurora"] + ["yes"] * 7)
    return format_table(headers, rows, title="Table I: GNN coverage and features")


def render_table2_operations() -> str:
    """Table II: required operations per execution phase per model."""
    headers = ["model", "category", "edge update", "aggregation", "vertex update"]
    rows = []
    for model in MODEL_ZOO.values():
        cells = []
        for phase in (Phase.EDGE_UPDATE, Phase.AGGREGATION, Phase.VERTEX_UPDATE):
            spec = model.phase_spec(phase)
            if spec.is_null:
                cells.append("Null")
            else:
                cells.append(", ".join(op.value for op in spec.op_kinds()))
        rows.append([model.name, model.category.value] + cells)
    return format_table(headers, rows, title="Table II: operations per phase")


def render_headline_summary(comparison: ComparisonResults) -> str:
    """The abstract's headline: average time/energy reduction per baseline."""
    headers = ["baseline", "time reduction %", "energy reduction %", "speedup range"]
    rows = []
    for base in comparison.accelerators:
        if base == "aurora":
            continue
        t_red = comparison.average_reduction_vs("execution_time", base)
        e_red = comparison.average_reduction_vs("energy", base)
        lo, hi = comparison.speedup_range_vs("execution_time", base)
        rows.append(
            [base, f"{t_red:.0f}", f"{e_red:.0f}", f"{lo:.1f}x - {hi:.1f}x"]
        )
    return format_table(
        headers, rows, title="Headline: Aurora reduction vs each baseline"
    )
