"""Tests for the controller front end (Fig. 3 walk-through units)."""

import pytest

from repro.core import (
    AdaptiveWorkflowGenerator,
    GNNRequest,
    InstructionBuffer,
    Opcode,
    RequestDispatcher,
    lower_layer_program,
)
from repro.config import default_config
from repro.models import LayerDims, Phase, get_model


@pytest.fixture
def gen():
    return AdaptiveWorkflowGenerator()


class TestWorkflowGenerator:
    def test_gcn_three_steps(self, gen):
        wf = gen.generate(get_model("gcn"))
        assert wf.phases() == (
            Phase.EDGE_UPDATE,
            Phase.AGGREGATION,
            Phase.VERTEX_UPDATE,
        )
        assert wf.needs_two_sub_accelerators

    def test_gin_skips_edge_update(self, gen):
        wf = gen.generate(get_model("gin"))
        assert wf.phases() == (Phase.AGGREGATION, Phase.VERTEX_UPDATE)

    def test_edgeconv_single_sub_accelerator(self, gen):
        wf = gen.generate(get_model("edgeconv-1"))
        assert wf.phases() == (Phase.EDGE_UPDATE, Phase.AGGREGATION)
        assert not wf.needs_two_sub_accelerators

    def test_sub_accelerator_assignment(self, gen):
        wf = gen.generate(get_model("gcn"))
        assign = {s.phase: s.sub_accelerator for s in wf.steps}
        assert assign[Phase.EDGE_UPDATE] == "A"
        assert assign[Phase.AGGREGATION] == "A"
        assert assign[Phase.VERTEX_UPDATE] == "B"

    def test_dataflows(self, gen):
        wf = gen.generate(get_model("gcn"))
        flows = {s.phase: s.dataflow for s in wf.steps}
        assert flows[Phase.AGGREGATION] == "message-passing"
        assert flows[Phase.VERTEX_UPDATE] == "weight-stationary"

    def test_edge_embedding_flag(self, gen):
        assert gen.generate(get_model("ggcn")).uses_edge_embeddings
        assert not gen.generate(get_model("gcn")).uses_edge_embeddings


class TestRequestDispatcher:
    def test_dispatch_returns_triple(self, medium_graph):
        disp = RequestDispatcher(default_config())
        req = GNNRequest(get_model("gcn"), medium_graph, LayerDims(32, 16))
        meta, workflow, workload = disp.dispatch(req)
        assert meta.num_vertices == medium_graph.num_vertices
        assert workflow.model_name == "gcn"
        assert workload.O_uv > 0
        assert disp.accepted == [req]

    def test_invalid_layers(self, medium_graph):
        with pytest.raises(ValueError):
            GNNRequest(get_model("gcn"), medium_graph, LayerDims(4, 2), num_layers=0)


class TestLowering:
    def _program(self, model="gcn", tiles=2, weights=True):
        wf = AdaptiveWorkflowGenerator().generate(get_model(model))
        return lower_layer_program(wf, num_tiles=tiles, needs_weights=weights)

    def test_weights_loaded_once(self):
        prog = self._program(tiles=3)
        loads = [i for i in prog if i.opcode is Opcode.LOAD_WEIGHTS]
        assert len(loads) == 1
        assert prog[0].opcode is Opcode.LOAD_WEIGHTS

    def test_per_tile_sequence(self):
        prog = self._program(tiles=1)
        ops = [i.opcode for i in prog]
        assert ops == [
            Opcode.LOAD_WEIGHTS,
            Opcode.CONFIG_NOC,
            Opcode.CONFIG_PE,
            Opcode.LOAD_GRAPH,
            Opcode.EXEC_PHASE,  # edge update on A
            Opcode.EXEC_PHASE,  # aggregation on A
            Opcode.FORWARD,
            Opcode.EXEC_PHASE,  # vertex update on B
            Opcode.STORE,
            Opcode.BARRIER,
        ]

    def test_no_forward_without_b(self):
        prog = self._program(model="edgeconv-1", weights=True)
        assert all(i.opcode is not Opcode.FORWARD for i in prog)

    def test_tile_count_scales_program(self):
        p1 = self._program(tiles=1)
        p3 = self._program(tiles=3)
        assert len(p3) > len(p1)

    def test_invalid_tiles(self):
        with pytest.raises(ValueError):
            self._program(tiles=0)


class TestInstructionBuffer:
    def test_fetch_order(self):
        from repro.core import Instruction

        buf = InstructionBuffer()
        buf.extend([Instruction(Opcode.BARRIER), Instruction(Opcode.HALT)])
        assert buf.fetch().opcode is Opcode.BARRIER
        assert buf.fetch().opcode is Opcode.HALT
        assert buf.fetch() is None

    def test_capacity(self):
        from repro.core import Instruction

        buf = InstructionBuffer(capacity=1)
        buf.push(Instruction(Opcode.HALT))
        with pytest.raises(OverflowError):
            buf.push(Instruction(Opcode.HALT))

    def test_reset(self):
        from repro.core import Instruction

        buf = InstructionBuffer()
        buf.push(Instruction(Opcode.HALT))
        buf.reset()
        assert len(buf) == 0
        assert buf.remaining() == 0

    def test_operand_access(self):
        from repro.core import Instruction

        i = Instruction(Opcode.EXEC_PHASE, {"tile": 3})
        assert i.operand("tile") == 3
        assert i.operand("missing", "dflt") == "dflt"
