"""The public Aurora accelerator façade.

Ties the front-end controllers (request dispatcher, workflow generator,
instruction lowering) to the performance simulator, presenting the
one-call API most users want:

>>> from repro import AuroraAccelerator, load_dataset, get_model, LayerDims
>>> acc = AuroraAccelerator()
>>> result = acc.run(get_model("gcn"), load_dataset("cora", scale=0.2),
...                  hidden=64, num_layers=2)
>>> result.total_seconds  # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import AcceleratorConfig, default_config
from ..graphs.csr import CSRGraph
from ..graphs.tiling import tile_graph
from ..models.base import GNNModel
from ..models.workload import LayerDims
from .controller import (
    GNNRequest,
    RequestDispatcher,
    Workflow,
    lower_layer_program,
)
from .instructions import Instruction, InstructionBuffer
from .results import SimulationResult
from .simulator import AuroraSimulator

__all__ = ["AuroraAccelerator", "layer_plan"]


def layer_plan(
    graph: CSRGraph, hidden: int, num_layers: int, num_classes: int | None = None
) -> list[LayerDims]:
    """Standard layer dimensioning: F → hidden → … → classes (or hidden)."""
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    if hidden < 1:
        raise ValueError("hidden must be >= 1")
    out_final = num_classes if num_classes is not None else hidden
    dims = []
    f_in = graph.num_features
    for layer in range(num_layers):
        f_out = out_final if layer == num_layers - 1 else hidden
        dims.append(LayerDims(in_features=f_in, out_features=f_out))
        f_in = f_out
    return dims


class AuroraAccelerator:
    """End-to-end Aurora device: controller front end + simulator back end."""

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        *,
        mapping_policy: str = "degree-aware",
    ) -> None:
        self.config = config or default_config()
        self.dispatcher = RequestDispatcher(self.config)
        self.instruction_buffer = InstructionBuffer()
        self.simulator = AuroraSimulator(
            self.config, mapping_policy=mapping_policy
        )

    # ------------------------------------------------------------------
    def prepare(self, request: GNNRequest) -> tuple[Workflow, list[Instruction]]:
        """Front-end path of the walk-through (Fig. 3): dispatch the
        request, generate the workflow, and lower + buffer the program."""
        meta, workflow, workload = self.dispatcher.dispatch(request)
        capacity = int(
            self.config.onchip_bytes * 0.5  # A-region share, double-buffered
        )
        plan = tile_graph(
            request.graph, capacity, bytes_per_value=self.config.bytes_per_value
        )
        needs_weights = (
            workload.edge_update.weight_bytes + workload.vertex_update.weight_bytes
        ) > 0
        program = lower_layer_program(
            workflow, num_tiles=plan.num_tiles, needs_weights=needs_weights
        )
        self.instruction_buffer.reset()
        self.instruction_buffer.extend(program)
        return workflow, program

    def run(
        self,
        model: GNNModel,
        graph: CSRGraph,
        *,
        hidden: int = 64,
        num_layers: int = 2,
        num_classes: int | None = None,
    ) -> SimulationResult:
        """Simulate a full multi-layer GNN inference on this device."""
        dims = layer_plan(graph, hidden, num_layers, num_classes)
        self.prepare(GNNRequest(model, graph, dims[0], num_layers=num_layers))
        return self.simulator.simulate(model, graph, dims)

    def run_layer(
        self, model: GNNModel, graph: CSRGraph, dims: LayerDims, **kw
    ) -> SimulationResult:
        """Simulate a single layer (thin wrapper over the simulator)."""
        return self.simulator.simulate_layer(model, graph, dims, **kw)
