"""Tests for SimJob specs and their canonical content hashes."""

import dataclasses
import json

import pytest

from repro.baselines import GCNAX_TRAITS, make_baseline
from repro.config import AcceleratorConfig, default_config
from repro.runtime import SimJob, job_key, run_job


class TestSpec:
    def test_frozen_and_hashable(self):
        job = SimJob()
        with pytest.raises(dataclasses.FrozenInstanceError):
            job.model = "gin"
        assert len({SimJob(), SimJob(), SimJob(model="gin")}) == 2

    def test_rejects_bad_mapping(self):
        with pytest.raises(ValueError, match="mapping"):
            SimJob(mapping="random")

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            SimJob(scale=0.0)
        with pytest.raises(ValueError, match="scale"):
            SimJob(scale=1.5)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            SimJob(hidden=0)
        with pytest.raises(ValueError):
            SimJob(num_layers=0)

    def test_label_mentions_the_point(self):
        label = SimJob(model="gin", dataset="pubmed", scale=0.5).label()
        assert "gin" in label and "pubmed" in label and "0.5" in label


class TestRoundTrip:
    def test_as_dict_is_json_encodable(self):
        job = SimJob(config=AcceleratorConfig(array_k=8), baseline_traits=GCNAX_TRAITS)
        json.dumps(job.as_dict())

    def test_from_dict_inverts_as_dict(self):
        job = SimJob(
            model="gin",
            dataset="pubmed",
            accelerator="gcnax",
            scale=0.5,
            hidden=32,
            seed=3,
            strict=True,
            scale_buffers=True,
            config=AcceleratorConfig(array_k=8, pe_buffer_bytes=16 * 1024),
            baseline_traits=GCNAX_TRAITS,
        )
        restored = SimJob.from_dict(json.loads(json.dumps(job.as_dict())))
        assert restored == job


class TestKey:
    def test_stable_across_instances(self):
        assert job_key(SimJob(dataset="pubmed")) == job_key(SimJob(dataset="pubmed"))

    def test_every_field_feeds_the_hash(self):
        base = SimJob()
        variants = [
            SimJob(model="gin"),
            SimJob(dataset="pubmed"),
            SimJob(accelerator="hygcn"),
            SimJob(scale=0.5),
            SimJob(hidden=32),
            SimJob(num_layers=3),
            SimJob(seed=8),
            SimJob(mapping="hashing"),
            SimJob(strict=True),
            SimJob(scale_buffers=True),
            SimJob(config=AcceleratorConfig(array_k=16)),
            SimJob(baseline_traits=GCNAX_TRAITS),
        ]
        keys = {job_key(v) for v in variants} | {job_key(base)}
        assert len(keys) == len(variants) + 1

    def test_key_is_hex_sha256(self):
        key = job_key(SimJob())
        assert len(key) == 64
        int(key, 16)


class TestResolvedConfig:
    def test_buffer_scaling_matches_harness_convention(self):
        cfg = default_config()
        job = SimJob(scale=0.25, scale_buffers=True)
        assert job.resolved_config().pe_buffer_bytes == max(
            1024, int(cfg.pe_buffer_bytes * 0.25)
        )

    def test_no_scaling_without_flag(self):
        assert SimJob(scale=0.25).resolved_config() == default_config()

    def test_explicit_config_passes_through(self):
        cfg = AcceleratorConfig(array_k=8)
        assert SimJob(config=cfg).resolved_config() is cfg


class TestRunJob:
    def test_aurora_job(self):
        result = run_job(SimJob(scale=0.2, hidden=16, num_layers=1))
        assert result.accelerator == "aurora"
        assert result.total_seconds > 0

    def test_hashing_mapping_changes_device_name(self):
        result = run_job(
            SimJob(scale=0.2, hidden=8, num_layers=1, mapping="hashing")
        )
        assert result.accelerator == "aurora-hashing"

    def test_baseline_job(self):
        result = run_job(
            SimJob(accelerator="gcnax", scale=0.2, hidden=16, num_layers=1)
        )
        assert result.accelerator == "gcnax"

    def test_explicit_traits_override_the_registry(self):
        slow = dataclasses.replace(GCNAX_TRAITS, traffic_factor=50.0)
        fast = run_job(
            SimJob(accelerator="gcnax", scale=0.2, hidden=16, num_layers=1)
        )
        perturbed = run_job(
            SimJob(
                accelerator="gcnax",
                baseline_traits=slow,
                scale=0.2,
                hidden=16,
                num_layers=1,
            )
        )
        assert perturbed.total_seconds > fast.total_seconds

    def test_matches_direct_device_call(self):
        from repro.core.accelerator import layer_plan
        from repro.graphs.datasets import dataset_profile, load_dataset
        from repro.models.zoo import get_model

        job = SimJob(accelerator="hygcn", scale=0.2, hidden=16, num_layers=1)
        graph = load_dataset("cora", scale=0.2, seed=7)
        dims = layer_plan(graph, 16, 1, dataset_profile("cora").num_classes)
        direct = make_baseline("hygcn", default_config()).simulate(
            get_model("gcn"), graph, dims, strict=False
        )
        assert run_job(job).to_dict() == direct.to_dict()

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            run_job(SimJob(dataset="ogbn"))


class TestFromRequest:
    """Wire-format canonicalization (`repro.serve` / `repro request`)."""

    def test_aliases_map_to_canonical_fields(self):
        job = SimJob.from_request(
            {"dataset": "cora", "layers": 3, "device": "hygcn"}
        )
        assert job.num_layers == 3
        assert job.accelerator == "hygcn"

    def test_numeric_coercion_stabilizes_the_hash(self):
        assert job_key(SimJob.from_request({"scale": 1})) == job_key(
            SimJob.from_request({"scale": 1.0})
        )
        assert job_key(SimJob.from_request({"hidden": 64.0})) == job_key(
            SimJob.from_request({"hidden": 64})
        )

    def test_unknown_field_raises(self):
        with pytest.raises(KeyError, match="typo_field"):
            SimJob.from_request({"typo_field": 1})

    def test_duplicate_after_aliasing_raises(self):
        with pytest.raises(ValueError, match="duplicate"):
            SimJob.from_request({"layers": 2, "num_layers": 2})

    def test_uncoercible_value_raises(self):
        with pytest.raises(ValueError, match="hidden"):
            SimJob.from_request({"hidden": "many"})

    def test_non_integral_float_rejected_not_truncated(self):
        # Regression: int() used to truncate 1.5 → 1 and silently
        # simulate a different job than the request asked for.
        with pytest.raises(ValueError, match="hidden"):
            SimJob.from_request({"hidden": 1.5})
        with pytest.raises(ValueError, match="layers"):
            SimJob.from_request({"layers": 2.7})

    def test_bool_rejected_for_numeric_fields(self):
        # bool subtypes int, so int(True)/float(True) would "work".
        with pytest.raises(ValueError, match="hidden"):
            SimJob.from_request({"hidden": True})
        with pytest.raises(ValueError, match="scale"):
            SimJob.from_request({"scale": False})

    def test_non_finite_scale_values_still_raise_cleanly(self):
        with pytest.raises(ValueError):
            SimJob.from_request({"hidden": float("inf")})
        with pytest.raises(ValueError):
            SimJob.from_request({"hidden": float("nan")})

    def test_non_dict_raises(self):
        with pytest.raises(TypeError):
            SimJob.from_request(["dataset", "cora"])

    def test_roundtrips_as_dict(self):
        job = SimJob(dataset="pubmed", scale=0.5, mapping="hashing")
        assert SimJob.from_request(job.as_dict()) == job
