"""End-to-end tests of the service over real sockets (in-process).

Covers the acceptance criteria that don't need a subprocess: two
concurrent identical requests collapse to one execution, the bounded
queue sheds under overload, per-request timeouts answer 504, and the
drain path completes in-flight work.
"""

import threading
import time

import pytest

from repro.runtime import ResultCache, SimJob, job_key, run_jobs
from repro.serve.client import RequestFailed, ServeClient, ServiceUnavailable
from repro.serve.server import LatencyWindow, ServerThread, SimulationService

SMALL = {"dataset": "cora", "scale": 0.1, "hidden": 8, "layers": 1}


def make_counting_runner(calls, *, delay=0.0, cache=None):
    """Wrap run_jobs, recording each batch and optionally slowing it."""

    async def runner(jobs):
        import asyncio

        calls.append(list(jobs))
        if delay:
            await asyncio.sleep(delay)
        return await asyncio.to_thread(lambda: run_jobs(jobs, cache=cache))

    return runner


@pytest.fixture
def served():
    """A running service + client; yields (service, client, calls)."""
    calls = []
    service = SimulationService(
        runner=make_counting_runner(calls, delay=0.15),
        batch_window=0.01,
        queue_depth=8,
    )
    with ServerThread(service) as thread:
        host, port = thread.address
        yield service, ServeClient(host, port, timeout=60.0), calls


class TestSingleFlight:
    def test_concurrent_identical_requests_execute_once(self, served):
        service, client, calls = served
        payloads = [None, None]

        def fire(i):
            payloads[i] = client.simulate(SMALL)

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        executed = [job for batch in calls for job in batch]
        assert len(executed) == 1  # exactly one SimJob execution
        assert payloads[0]["key"] == payloads[1]["key"]
        assert all(p["result"]["accelerator"] == "aurora" for p in payloads)
        # The second request completed via the in-flight join.
        assert sorted(p["joined"] for p in payloads) == [False, True]
        assert service.batcher.singleflight_joins == 1

    def test_warm_request_served_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        calls = []
        service = SimulationService(
            cache=cache,
            runner=make_counting_runner(calls, cache=cache),
            batch_window=0.0,
        )
        with ServerThread(service) as thread:
            client = ServeClient(*thread.address, timeout=60.0)
            cold = client.simulate(SMALL)
            warm = client.simulate(SMALL)
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert warm["key"] == cold["key"]
        assert sum(len(b) for b in calls) == 2  # both went through run_jobs
        assert cache.stats.hits == 1


class TestOverload:
    def test_bounded_queue_sheds_instead_of_queueing(self):
        calls = []
        service = SimulationService(
            runner=make_counting_runner(calls, delay=0.3),
            batch_window=0.02,
            queue_depth=2,
        )
        with ServerThread(service) as thread:
            client = ServeClient(
                *thread.address, retries=0, timeout=60.0
            )
            outcomes = []

            def fire(seed):
                try:
                    client.simulate({**SMALL, "seed": seed})
                    outcomes.append("ok")
                except ServiceUnavailable:
                    outcomes.append("shed")

            threads = [
                threading.Thread(target=fire, args=(seed,)) for seed in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert outcomes.count("shed") >= 1
        assert outcomes.count("ok") >= 1
        snap = service.admission.snapshot()
        assert snap["admitted"] + snap["shed"] == 6
        assert snap["admitted"] <= 2 + snap["completed"]

    def test_shed_request_succeeds_after_retry(self):
        calls = []
        service = SimulationService(
            runner=make_counting_runner(calls, delay=0.2),
            batch_window=0.01,
            queue_depth=1,
        )
        with ServerThread(service) as thread:
            client = ServeClient(
                *thread.address, retries=8, backoff=0.05, timeout=60.0
            )
            results = []

            def fire(seed):
                results.append(client.simulate({**SMALL, "seed": seed}))

            threads = [
                threading.Thread(target=fire, args=(seed,)) for seed in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # With a retry budget every request eventually lands.
        assert len(results) == 3


class TestTimeouts:
    def test_slow_request_gets_504(self):
        calls = []
        service = SimulationService(
            runner=make_counting_runner(calls, delay=1.0),
            batch_window=0.0,
            request_timeout=0.1,
        )
        with ServerThread(service) as thread:
            client = ServeClient(*thread.address, retries=0, timeout=60.0)
            with pytest.raises(RequestFailed) as excinfo:
                client.simulate(SMALL)
        assert excinfo.value.status == 504
        assert service.counters["timeouts"] == 1

    def test_client_deadline_header_caps_server_budget(self):
        calls = []
        service = SimulationService(
            runner=make_counting_runner(calls, delay=1.0), batch_window=0.0
        )
        with ServerThread(service) as thread:
            client = ServeClient(*thread.address, retries=0, timeout=60.0)
            with pytest.raises((RequestFailed, ServiceUnavailable)):
                client.simulate(SMALL, deadline=0.15)


class TestEndpoints:
    def test_healthz_and_stats(self, served):
        service, client, calls = served
        health = client.healthz()
        assert health["status"] == "ok"
        client.simulate(SMALL)
        stats = client.stats()
        assert stats["requests"]["completed"] == 1
        assert stats["admission"]["admitted"] == 1
        assert stats["latency"]["count"] == 1
        assert stats["latency"]["p50_seconds"] > 0

    def test_unknown_endpoint_404(self, served):
        service, client, calls = served
        status, payload = client.call("GET", "/nope")
        assert status == 404

    def test_wrong_method_405(self, served):
        service, client, calls = served
        status, _ = client.call("POST", "/healthz", {})
        assert status == 405

    def test_bad_body_400(self, served):
        service, client, calls = served
        status, payload = client.call("POST", "/simulate", {"bogus": 1})
        assert status == 400
        assert "bogus" in payload["error"]
        assert service.counters["bad_requests"] == 1


def raw_request(address, method, path, body=None):
    """One raw HTTP exchange; returns (status, headers, payload)."""
    import http.client
    import json

    conn = http.client.HTTPConnection(*address, timeout=30.0)
    try:
        conn.request(
            method,
            path,
            body=json.dumps(body) if body is not None else None,
            headers={"Content-Type": "application/json"} if body else {},
        )
        response = conn.getresponse()
        raw = response.read()
        payload = json.loads(raw) if raw else {}
        return response.status, dict(response.getheaders()), payload
    finally:
        conn.close()


class TestReplicaMode:
    """The serve-side surface the cluster router relies on."""

    def test_healthz_reports_inflight_and_uptime(self, served):
        service, client, calls = served
        health = client.healthz()
        assert health["inflight"] == 0
        assert health["in_flight"] == 0  # legacy key kept
        assert health["uptime_seconds"] >= 0
        assert "replica_id" not in health

    def test_replica_id_in_healthz_stats_and_metrics(self):
        service = SimulationService(replica_id="3")
        with ServerThread(service) as thread:
            client = ServeClient(*thread.address, timeout=60.0)
            assert client.healthz()["replica_id"] == "3"
            assert client.stats()["replica_id"] == "3"
            assert 'repro_replica_info{replica="3"}' in client.metrics()

    def test_result_endpoint_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        service = SimulationService(cache=cache, batch_window=0.0)
        with ServerThread(service) as thread:
            client = ServeClient(*thread.address, timeout=60.0)
            payload = client.simulate(SMALL)
            status, _, hit = raw_request(
                thread.address, "GET", f"/result/{payload['key']}"
            )
        assert status == 200
        assert hit == {
            "key": payload["key"],
            "cached": True,
            "result": payload["result"],
        }

    def test_result_endpoint_miss_is_404(self, tmp_path):
        service = SimulationService(cache=ResultCache(tmp_path))
        with ServerThread(service) as thread:
            status, _, payload = raw_request(
                thread.address, "GET", "/result/" + "a" * 64
            )
        assert status == 404

    def test_result_endpoint_without_cache_is_404(self, served):
        service, client, calls = served
        status, _, _ = raw_request(
            (client.host, client.port), "GET", "/result/" + "a" * 64
        )
        assert status == 404

    def test_result_endpoint_validates_key(self, served):
        service, client, calls = served
        address = (client.host, client.port)
        for bad in ("not-hex!", "A" * 64, "f" * 200):
            status, _, _ = raw_request(address, "GET", f"/result/{bad}")
            assert status == 400, bad

    def test_shed_carries_retry_after_header(self):
        calls = []
        service = SimulationService(
            runner=make_counting_runner(calls, delay=0.5),
            batch_window=0.02,
            queue_depth=1,
            retry_after_hint=0.125,
        )
        with ServerThread(service) as thread:
            address = thread.address
            fired = []

            def fire(seed):
                fired.append(
                    raw_request(address, "POST", "/simulate", {**SMALL, "seed": seed})
                )

            threads = [
                threading.Thread(target=fire, args=(seed,)) for seed in range(5)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        sheds = [
            (headers, payload)
            for status, headers, payload in fired
            if status == 429
        ]
        assert sheds  # the one-slot queue must have shed something
        for headers, _ in sheds:
            assert headers["Retry-After"] == "0.125"

    def test_draining_503_carries_retry_after_header(self):
        service = SimulationService(retry_after_hint=0.25)
        service.begin_drain()
        with ServerThread(service) as thread:
            status, headers, _ = raw_request(
                thread.address, "POST", "/simulate", SMALL
            )
        assert status == 503
        assert headers["Retry-After"] == "0.250"


class TestDrain:
    def test_drain_completes_inflight_work(self):
        calls = []
        service = SimulationService(
            runner=make_counting_runner(calls, delay=0.3), batch_window=0.0
        )
        thread = ServerThread(service)
        host, port = thread.start()
        client = ServeClient(host, port, timeout=60.0)
        payloads = []

        worker = threading.Thread(
            target=lambda: payloads.append(client.simulate(SMALL))
        )
        worker.start()
        time.sleep(0.1)  # request is now in flight
        exit_code = thread.stop()
        worker.join(timeout=10.0)

        assert exit_code == 0  # drained cleanly
        assert len(payloads) == 1  # the in-flight request completed
        assert payloads[0]["result"] is not None

    def test_draining_service_rejects_with_503(self):
        calls = []
        service = SimulationService(runner=make_counting_runner(calls))
        service.begin_drain()
        with ServerThread(service) as thread:
            client = ServeClient(*thread.address, retries=0)
            with pytest.raises(ServiceUnavailable, match="503"):
                client.simulate(SMALL)


class TestLatencyWindow:
    def test_percentiles(self):
        window = LatencyWindow(size=100)
        for value in range(1, 101):
            window.add(value / 100.0)
        assert window.percentile(0.50) == pytest.approx(0.50, abs=0.02)
        assert window.percentile(0.95) == pytest.approx(0.95, abs=0.02)

    def test_empty_window(self):
        window = LatencyWindow()
        assert window.percentile(0.5) is None
        snap = window.snapshot()
        assert snap["count"] == 0
        assert snap["p50_seconds"] is None

    def test_bounded_size(self):
        window = LatencyWindow(size=4)
        for value in range(100):
            window.add(float(value))
        snap = window.snapshot()
        assert snap["count"] == 100
        assert snap["window"] == 4
