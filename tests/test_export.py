"""Tests for result export."""

import csv
import io
import json

import pytest

from repro.eval import run_comparison
from repro.eval.export import (
    grid_to_csv,
    results_to_json,
    write_csv,
    write_json,
)


@pytest.fixture(scope="module")
def comparison():
    return run_comparison(
        model="gcn", datasets=("cora",), scales={"cora": 0.3}
    )


class TestCSV:
    def test_header_and_rows(self, comparison):
        text = grid_to_csv(comparison, "execution_time")
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["dataset", *comparison.accelerators]
        assert rows[1][0] == "cora"
        assert len(rows) == 1 + len(comparison.datasets)

    def test_values_parse_back(self, comparison):
        text = grid_to_csv(comparison, "energy")
        rows = list(csv.reader(io.StringIO(text)))
        for cell in rows[1][1:]:
            assert float(cell) > 0

    def test_write_csv(self, comparison, tmp_path):
        path = tmp_path / "grid.csv"
        write_csv(comparison, "dram_accesses", path)
        assert path.read_text().startswith("dataset,")


class TestJSON:
    def test_structure(self, comparison):
        obj = results_to_json(comparison)
        assert obj["model"] == "gcn"
        assert set(obj["metrics"]) == {
            "execution_time",
            "dram_accesses",
            "onchip_latency",
            "energy",
        }
        assert obj["normalized"]["execution_time"]["cora"]["aurora"] == 1.0

    def test_round_trips_through_json(self, comparison, tmp_path):
        path = tmp_path / "results.json"
        write_json(comparison, path)
        loaded = json.loads(path.read_text())
        assert loaded["datasets"] == ["cora"]
        assert loaded["metrics"]["energy"]["cora"]["hygcn"] > 0
