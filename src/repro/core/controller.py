"""Aurora's front-end controllers (paper Fig. 3a, §III-E).

The host sends requests to the **request dispatcher** (1) and loads
instructions into the **instruction buffer** (2).  The **adaptive workflow
generator** (3) derives the running model's workflow — which phases
execute and with which operation types; the partition algorithm (4) and
degree-aware mapping (5) consume that plus graph metadata; the NoC/PE
configuration unit (6) realises the decisions; finally the **instruction
dispatcher** issues the program (7).

This module implements the dispatcher/buffer/workflow-generator trio and
the lowering of a layer into the instruction stream.  The mapping,
partition and configuration units live in their own modules; the
:class:`AuroraController` sequences all of them the way the walk-through
describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import AcceleratorConfig
from ..graphs.csr import CSRGraph, GraphMeta
from ..models.base import GNNModel, OpKind, Phase
from ..models.workload import LayerDims, LayerWorkload, extract_workload
from .instructions import Instruction, InstructionBuffer, Opcode

__all__ = [
    "GNNRequest",
    "PhaseStep",
    "Workflow",
    "AdaptiveWorkflowGenerator",
    "RequestDispatcher",
    "lower_layer_program",
]


@dataclass(frozen=True)
class GNNRequest:
    """A host request: run ``model`` on ``graph`` with ``dims``."""

    model: GNNModel
    graph: CSRGraph
    dims: LayerDims
    num_layers: int = 1

    def __post_init__(self) -> None:
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")


@dataclass(frozen=True)
class PhaseStep:
    """One step of a workflow: a phase and its operation mix."""

    phase: Phase
    op_kinds: tuple[OpKind, ...]
    sub_accelerator: str  # "A" (edge update/aggregation) or "B" (vertex update)
    dataflow: str  # "message-passing" or "weight-stationary"


@dataclass(frozen=True)
class Workflow:
    """The adaptive workflow generator's output for one model."""

    model_name: str
    steps: tuple[PhaseStep, ...]
    needs_two_sub_accelerators: bool
    uses_edge_embeddings: bool

    def phases(self) -> tuple[Phase, ...]:
        return tuple(s.phase for s in self.steps)


class AdaptiveWorkflowGenerator:
    """Derives execution phases and operation types from the model spec.

    Edge update and aggregation share sub-accelerator A (same irregular,
    message-passing communication pattern — paper §V); vertex update runs
    on sub-accelerator B with the weight-stationary dataflow.
    """

    def generate(self, model: GNNModel) -> Workflow:
        steps: list[PhaseStep] = []
        if model.has_edge_update:
            steps.append(
                PhaseStep(
                    phase=Phase.EDGE_UPDATE,
                    op_kinds=model.edge_update.op_kinds(),
                    sub_accelerator="A",
                    dataflow="message-passing",
                )
            )
        steps.append(
            PhaseStep(
                phase=Phase.AGGREGATION,
                op_kinds=model.aggregation.op_kinds(),
                sub_accelerator="A",
                dataflow="message-passing",
            )
        )
        if model.has_vertex_update:
            steps.append(
                PhaseStep(
                    phase=Phase.VERTEX_UPDATE,
                    op_kinds=model.vertex_update.op_kinds(),
                    sub_accelerator="B",
                    dataflow="weight-stationary",
                )
            )
        return Workflow(
            model_name=model.name,
            steps=tuple(steps),
            needs_two_sub_accelerators=model.has_vertex_update,
            uses_edge_embeddings=model.uses_edge_embeddings,
        )


class RequestDispatcher:
    """Accepts host requests and produces preprocessing inputs.

    The dispatcher extracts the CSR metadata forwarded to the workflow /
    partition / mapping units and keeps a simple accepted-request log.
    """

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config
        self.accepted: list[GNNRequest] = []

    def dispatch(self, request: GNNRequest) -> tuple[GraphMeta, Workflow, LayerWorkload]:
        """Process one request: metadata + workflow + first-layer workload."""
        meta = request.graph.meta()
        workflow = AdaptiveWorkflowGenerator().generate(request.model)
        workload = extract_workload(request.model, request.graph, request.dims)
        self.accepted.append(request)
        return meta, workflow, workload


def lower_layer_program(
    workflow: Workflow,
    *,
    num_tiles: int,
    needs_weights: bool,
) -> list[Instruction]:
    """Lower one layer into the instruction stream the dispatcher issues.

    Per layer: load weights once (region B keeps them stationary across
    tiles), then per tile: configure NoC + PEs, load the tile, run the A
    phases, forward A→B (when B exists), run B, and store.  The explicit
    program is what tests assert against; the performance simulator
    accounts the same sequence analytically.
    """
    if num_tiles < 1:
        raise ValueError("num_tiles must be >= 1")
    program: list[Instruction] = []
    if needs_weights:
        program.append(Instruction(Opcode.LOAD_WEIGHTS, {"target": "B"}))
    a_steps = [s for s in workflow.steps if s.sub_accelerator == "A"]
    b_steps = [s for s in workflow.steps if s.sub_accelerator == "B"]
    for tile in range(num_tiles):
        program.append(Instruction(Opcode.CONFIG_NOC, {"tile": tile}))
        program.append(Instruction(Opcode.CONFIG_PE, {"tile": tile}))
        program.append(Instruction(Opcode.LOAD_GRAPH, {"tile": tile}))
        for step in a_steps:
            program.append(
                Instruction(
                    Opcode.EXEC_PHASE,
                    {
                        "tile": tile,
                        "phase": step.phase,
                        "sub_accelerator": "A",
                        "ops": step.op_kinds,
                    },
                )
            )
        if b_steps:
            program.append(Instruction(Opcode.FORWARD, {"tile": tile}))
            for step in b_steps:
                program.append(
                    Instruction(
                        Opcode.EXEC_PHASE,
                        {
                            "tile": tile,
                            "phase": step.phase,
                            "sub_accelerator": "B",
                            "ops": step.op_kinds,
                        },
                    )
                )
        program.append(Instruction(Opcode.STORE, {"tile": tile}))
    program.append(Instruction(Opcode.BARRIER))
    return program
