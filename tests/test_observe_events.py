"""Unit tests for the observe event model, hub, and tracer bridge."""

import json
import threading

import numpy as np
import pytest

from repro.observe.events import (
    EVENT_TYPES,
    HUB,
    SCHEMA_VERSION,
    Event,
    EventHub,
    EventSink,
    install_tracer_hook,
    noc_heat_enabled,
    span_event_data,
    validate_event,
    validate_events,
)
from repro.telemetry.trace import Span


class ListSink(EventSink):
    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


class BoomSink(EventSink):
    def emit(self, event):
        raise RuntimeError("boom")


class TestEvent:
    def test_dict_roundtrip(self):
        event = Event(seq=3, ts=12.5, type="request.received", data={"rid": "r1"})
        assert Event.from_dict(event.to_dict()) == event

    def test_to_json_is_compact_and_cached(self):
        event = Event(seq=1, ts=1.0, type="stats.tick", data={"a": 1})
        first = event.to_json()
        assert ": " not in first and ", " not in first
        assert event.to_json() is first  # cached, not re-serialized
        assert json.loads(first) == event.to_dict()

    def test_to_json_numpy_fallback(self):
        event = Event(
            seq=1,
            ts=1.0,
            type="span",
            data={"x": np.int64(3), "arr": np.array([1.0, 2.0]), "obj": object()},
        )
        decoded = json.loads(event.to_json())
        assert decoded["data"]["x"] == 3
        assert decoded["data"]["arr"] == [1.0, 2.0]
        assert isinstance(decoded["data"]["obj"], str)  # repr fallback


class TestEventHub:
    def test_emit_without_sinks_is_a_noop(self):
        hub = EventHub()
        assert hub.enabled is False
        assert hub.emit("stats.tick", {}) is None
        assert hub.events_emitted == 0

    def test_attach_detach_toggles_enabled(self):
        hub = EventHub()
        sink = hub.attach(ListSink())
        assert hub.enabled is True
        hub.detach(sink)
        assert hub.enabled is False

    def test_seq_is_contiguous_and_delivery_ordered(self):
        hub = EventHub()
        sink = hub.attach(ListSink())
        for i in range(5):
            hub.emit("stats.tick", {"i": i})
        assert [e.seq for e in sink.events] == [1, 2, 3, 4, 5]
        assert validate_events(sink.events) == []

    def test_sink_exception_is_isolated_and_counted(self):
        hub = EventHub()
        hub.attach(BoomSink())
        healthy = hub.attach(ListSink())
        event = hub.emit("stats.tick", {})
        assert event is not None
        assert hub.sink_errors == 1
        assert healthy.events == [event]

    def test_concurrent_emitters_keep_arrival_order(self):
        # The recorder depends on arrival order matching seq order even
        # when the loop thread and the batch worker emit concurrently.
        hub = EventHub()
        sink = hub.attach(ListSink())

        def pump():
            for _ in range(200):
                hub.emit("stats.tick", {})

        threads = [threading.Thread(target=pump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = [e.seq for e in sink.events]
        assert seqs == list(range(1, 801))

    def test_reset_clears_everything(self):
        hub = EventHub()
        hub.attach(ListSink())
        hub.emit("stats.tick", {})
        hub.reset()
        assert hub.enabled is False
        assert hub.snapshot() == {
            "enabled": False,
            "sinks": 0,
            "events_emitted": 0,
            "sink_errors": 0,
        }


class TestValidation:
    def test_every_declared_type_validates_with_its_keys(self):
        for etype, keys in EVENT_TYPES.items():
            data = {key: 1 for key in keys}
            record = {"seq": 1, "ts": 0.5, "type": etype, "data": data}
            assert validate_event(record) == []

    def test_missing_top_level_keys(self):
        problems = validate_event({"type": "stats.tick"})
        assert any("seq" in p for p in problems)
        assert any("ts" in p for p in problems)

    def test_unknown_type_and_missing_data_key(self):
        assert validate_event(
            {"seq": 1, "ts": 0.0, "type": "nope", "data": {}}
        ) == ["unknown event type 'nope'"]
        problems = validate_event(
            {"seq": 1, "ts": 0.0, "type": "request.received", "data": {"rid": "r"}}
        )
        assert problems == ["request.received: missing data key 'path'"]

    def test_sequence_monotonicity(self):
        events = [
            Event(seq=1, ts=0.0, type="stats.tick"),
            Event(seq=1, ts=0.0, type="stats.tick"),
        ]
        problems = validate_events(events)
        assert any("not after previous" in p for p in problems)


class FakeTracer:
    on_span = None


class TestTracerHook:
    def make_span(self, name="simulate", **attributes):
        return Span(
            name=name,
            trace_id="t" * 8,
            span_id="s" * 8,
            duration=0.01,
            attributes=attributes,
        )

    def test_span_events_flow_through_hub(self):
        hub = EventHub()
        sink = hub.attach(ListSink())
        tracer = FakeTracer()
        uninstall = install_tracer_hook(tracer, hub)
        tracer.on_span(self.make_span(rows=np.int64(7)))
        assert [e.type for e in sink.events] == ["span"]
        decoded = json.loads(sink.events[0].to_json())
        assert decoded["data"]["name"] == "simulate"
        assert decoded["data"]["attributes"]["rows"] == 7
        uninstall()
        assert tracer.on_span is None

    def test_noc_span_also_emits_tile_heat(self):
        hub = EventHub()
        sink = hub.attach(ListSink())
        tracer = FakeTracer()
        install_tracer_hook(tracer, hub)
        tracer.on_span(self.make_span(name="noc", k=2, noc_heat=np.array([1, 2])))
        assert [e.type for e in sink.events] == ["span", "noc.tile"]
        tile = sink.events[1]
        assert tile.data["k"] == 2
        assert tile.data["heat"] == [1, 2]
        assert validate_events(sink.events) == []

    def test_disabled_hub_skips_emission(self):
        hub = EventHub()
        tracer = FakeTracer()
        install_tracer_hook(tracer, hub)
        tracer.on_span(self.make_span())  # no sinks attached
        assert hub.events_emitted == 0

    def test_uninstall_leaves_foreign_hook_alone(self):
        tracer = FakeTracer()
        uninstall = install_tracer_hook(tracer, EventHub())

        def other(span):
            pass

        tracer.on_span = other
        uninstall()
        assert tracer.on_span is other


class TestNocHeatFlag:
    def test_env_flag_enables_heat(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBSERVE_NOC", raising=False)
        HUB.reset()
        assert noc_heat_enabled() is False
        monkeypatch.setenv("REPRO_OBSERVE_NOC", "1")
        assert noc_heat_enabled() is True

    def test_hub_listeners_enable_heat(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBSERVE_NOC", raising=False)
        sink = HUB.attach(ListSink())
        try:
            assert noc_heat_enabled() is True
        finally:
            HUB.detach(sink)


def test_span_event_data_passes_attributes_through():
    # Sanitization is deferred to Event.to_json; the projection itself
    # must not copy or mangle attribute values on the hot path.
    attrs = {"heat": np.array([1, 2])}
    span = Span(name="noc", trace_id="t", span_id="s", attributes=attrs)
    data = span_event_data(span)
    assert data["attributes"] is attrs
    assert data["trace_id"] == "t"
    assert "schema" not in data
