"""Behavioural baseline accelerator models.

The paper compares Aurora against five published accelerators, each scaled
to the same multiplier count, DRAM bandwidth and on-chip storage (§VI-A).
We model each baseline analytically from its *documented dataflow
properties* — the same approach the paper's own simulator takes.  A
:class:`BaselineTraits` record captures those properties; the shared
:class:`BaselineAccelerator` turns traits + workload + graph structure
into a :class:`SimulationResult` comparable with Aurora's.

What is computed from the actual graph (not a constant):

* load imbalance under hashing mapping (per-group degree sums),
* ejection hot-spotting at high-degree vertices,
* on-chip capacity fraction and the resulting DRAM gather traffic,
* tile counts and weight re-streaming.

What comes from each baseline's published design (documented per
baseline): engine splits, phase pipelining, workload rebalancing,
redundancy elimination, traffic/reuse factors of its dataflow, and its
interconnect's port/hop structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.dram import AccessPattern, DRAMModel
from ..arch.energy import EnergyCounters, EnergyModel, EnergyTable
from ..config import AcceleratorConfig, default_config
from ..core.results import PhaseBreakdown, SimulationResult
from ..graphs.csr import CSRGraph
from ..models.base import GNNModel, ModelCategory, OpKind
from ..models.workload import (
    LayerDims,
    combination_first_eligible,
    extract_workload,
)

__all__ = ["BaselineTraits", "BaselineAccelerator", "UnsupportedModelError"]


class UnsupportedModelError(RuntimeError):
    """Raised when an accelerator cannot execute the requested model."""


@dataclass(frozen=True)
class BaselineTraits:
    """Published properties of one baseline (see per-baseline modules)."""

    name: str
    # ---- Table I capability columns ----------------------------------
    supports_c_gnn: bool = True
    supports_a_gnn: bool = False
    supports_mp_gnn: bool = False
    flexible_pe: bool = False
    flexible_dataflow: bool = False
    flexible_noc: bool = False
    message_passing: bool = False
    supports_edge_update: bool = False
    # ---- compute organisation -----------------------------------------
    engine_split: float | None = None  # aggregation-engine multiplier share
    runtime_rebalancing: bool = False
    redundancy_elimination: float = 0.0  # fraction of aggregation ops removed
    phase_pipelined: bool = False
    # Combination-first matmul ordering ((X·W) before A·(XW)) — the
    # published AWB-GCN/GCNAX optimisation shrinking aggregation width.
    combination_first: bool = False
    # How strongly degree skew translates into compute imbalance: 1.0 for
    # strict per-vertex ownership, near 0 for nonzero-streaming dataflows.
    imbalance_sensitivity: float = 0.5
    # ---- memory behaviour ----------------------------------------------
    feature_reuse: float = 0.5  # fraction of ideal on-chip neighbor reuse
    weight_reload_per_tile: bool = False  # duplicated weights re-streamed
    interphase_spill: bool = False  # intermediates round-trip when large
    # Operand fetches through the monolithic global buffer, relative to
    # one fetch per MAC: <1 for dataflows with strong register/loop reuse
    # (GCNAX's fused loops), >1 for designs that re-read windows (HyGCN).
    buffer_traffic_factor: float = 1.0
    # ---- interconnect ----------------------------------------------------
    traffic_factor: float = 1.0  # on-chip message bytes vs m·F reference
    comm_ports: int = 64  # effective fabric bandwidth, flits/cycle
    comm_hops: float = 1.0  # pipeline stages per transfer
    hub_relief: float = 0.0  # mitigation of hot-vertex ejection contention
    # Busy cycles each flit spends in the fabric/buffer hierarchy (the
    # Fig. 8 volume metric): buffer read + interconnect stage(s) + write
    # back, including hashing-induced bank conflicts.
    comm_service_cycles: float = 8.0

    def supports(self, model: GNNModel) -> bool:
        if model.category is ModelCategory.C_GNN:
            return self.supports_c_gnn
        if model.category is ModelCategory.A_GNN:
            return self.supports_a_gnn
        return self.supports_mp_gnn


class BaselineAccelerator:
    """Shared analytical simulator for all baseline accelerators."""

    #: groups over which hashing mapping distributes vertices; matches
    #: Aurora's PE count so imbalance statistics are comparable.
    HASH_GROUPS = 1024

    def __init__(
        self,
        traits: BaselineTraits,
        config: AcceleratorConfig | None = None,
        energy_table: EnergyTable | None = None,
    ) -> None:
        self.traits = traits
        self.config = config or default_config()
        self.energy_model = EnergyModel(energy_table)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.traits.name

    def supports(self, model: GNNModel) -> bool:
        return self.traits.supports(model)

    # ------------------------------------------------------------------
    def _hash_imbalance(self, graph: CSRGraph) -> tuple[float, float]:
        """(compute imbalance, ejection imbalance) under hashing mapping.

        Per-group load = sum of degrees of the vertices hashed to it.
        Compute imbalance uses out-degrees (work per owner PE); ejection
        uses in-degrees (messages arriving at the hot PE).
        """
        n = graph.num_vertices
        groups = min(self.HASH_GROUPS, max(n, 1))
        ids = np.arange(n, dtype=np.int64) % groups
        out_loads = np.bincount(ids, weights=graph.degrees, minlength=groups)
        in_loads = np.bincount(ids, weights=graph.in_degrees, minlength=groups)
        out_imb = float(out_loads.max() / out_loads.mean()) if out_loads.sum() else 1.0
        in_imb = float(in_loads.max() / in_loads.mean()) if in_loads.sum() else 1.0
        return out_imb, in_imb

    def _num_tiles(
        self, graph: CSRGraph, dims: LayerDims, density: float
    ) -> int:
        """Tiles needed when the working set exceeds on-chip storage.

        Features are held compressed on chip (sparse, with index
        overhead), like Aurora's tiling, so capacity pressure is density-
        aware and comparable across accelerators.
        """
        cfg = self.config
        per_vertex = max(
            16, int(dims.in_features * cfg.bytes_per_value * density * 1.5)
        )
        working = graph.num_vertices * per_vertex + graph.num_edges * 8
        return max(1, -(-working // cfg.onchip_bytes))

    # ------------------------------------------------------------------
    def simulate_layer(
        self,
        model: GNNModel,
        graph: CSRGraph,
        dims: LayerDims,
        *,
        input_density: float | None = None,
        strict: bool = True,
    ) -> SimulationResult:
        """Simulate one layer on this baseline.

        With ``strict`` (default) an unsupported model category raises
        :class:`UnsupportedModelError` — the Table I coverage holes.
        """
        t = self.traits
        cfg = self.config
        if strict and not self.supports(model):
            raise UnsupportedModelError(
                f"{t.name} does not support {model.category.value} models "
                f"(requested: {model.name})"
            )
        density = graph.feature_density if input_density is None else input_density
        freq = cfg.frequency_hz
        wl = extract_workload(model, graph, dims)
        n, m = graph.num_vertices, graph.num_edges
        mult = cfg.total_multipliers

        # ---- compute organisation ---------------------------------------
        if t.engine_split is not None:
            agg_mult = max(1, int(mult * t.engine_split))
            comb_mult = max(1, mult - agg_mult)
        else:
            agg_mult = comb_mult = mult  # unified pool, phases sequential

        out_imb, in_imb = self._hash_imbalance(graph)
        sensitivity = t.imbalance_sensitivity
        if t.runtime_rebalancing:
            # AWB-GCN's autotuning leaves only a small residual imbalance.
            sensitivity = 0.05
        compute_imb = 1.0 + (out_imb - 1.0) * sensitivity

        # Combination-first ordering (where the design and the model allow
        # it) shrinks per-edge vectors from F_in to F_out lanes.
        comb_first = (
            t.combination_first
            and combination_first_eligible(model)
            and dims.out_features < dims.in_features
        )
        msg_width = dims.out_features if comb_first else dims.in_features
        width_ratio = msg_width / dims.in_features

        o_a_eff = wl.O_a * width_ratio * (1.0 - t.redundancy_elimination)
        # Accelerators without edge-update datapaths can still fold scalar
        # edge coefficients (GCN's degree norm) into aggregation; richer
        # per-edge ops (M×V, dot, Hadamard) must be scalarised: 4x penalty.
        non_scalar_edge = any(
            op.kind
            in (
                OpKind.MATRIX_VECTOR,
                OpKind.DOT,
                OpKind.ELEMENTWISE,
                OpKind.VECTOR_VECTOR,
            )
            for op in model.edge_update.ops
        )
        edge_penalty = (
            1.0 if (t.supports_edge_update or not non_scalar_edge) else 4.0
        )
        # Edge + aggregation run on the aggregation/message engine; adds
        # sustain 1 op/multiplier/cycle, MACs 2 ops/multiplier/cycle.
        t_edge = (
            wl.O_ue * width_ratio * edge_penalty * compute_imb / (agg_mult * 2)
        )
        t_agg = o_a_eff * compute_imb / agg_mult
        t_comb = wl.O_uv / (comb_mult * 2)
        ppu_ops = (
            wl.edge_update.ppu_ops
            + wl.aggregation.ppu_ops
            + wl.vertex_update.ppu_ops
        )
        t_ppu = ppu_ops / (cfg.ppu_lanes * cfg.num_pes)

        if t.engine_split is not None and t.phase_pipelined:
            compute_cycles = max(t_edge + t_agg, t_comb) + t_ppu
        else:
            compute_cycles = t_edge + t_agg + t_comb + t_ppu

        # ---- on-chip communication --------------------------------------
        # Only the on-chip-resident share of the gather traffic crosses
        # the fabric; gathers serviced from DRAM are charged there.
        per_vertex = max(
            16, int(dims.in_features * cfg.bytes_per_value * density * 1.5)
        )
        working_set = n * per_vertex + m * 8
        resident = min(1.0, cfg.onchip_bytes / max(working_set, 1))
        payload_ref = m * msg_width * cfg.bytes_per_value * resident
        msg_bytes = t.traffic_factor * payload_ref
        flits = msg_bytes / cfg.noc.flit_bytes
        groups = min(self.HASH_GROUPS, max(n, 1))
        # The hottest group must absorb in_imb× the mean traffic; relief
        # models rebalancing/queueing that spreads part of it.
        hot_eject = (flits / groups) * (
            in_imb * (1.0 - t.hub_relief) + t.hub_relief
        )
        comm_cycles = max(flits / t.comm_ports, hot_eject) + t.comm_hops * 4
        # Fig. 8 volume metric: total busy cycles across the buffer/fabric
        # hierarchy.  Based on the raw message traffic (m × msg_width), not
        # the dataflow-reduced transfer count: occupancy includes the
        # buffer reads a reuse-optimised dataflow serves locally.
        raw_flits = payload_ref / cfg.noc.flit_bytes
        comm_volume = raw_flits * t.comm_service_cycles
        # Engine-to-engine transfer of aggregated features (heterogeneous
        # designs move them between engines; unified pools re-read the
        # global buffer — both serialise through the same ports).
        if wl.O_uv > 0:
            transfer_flits = (
                n * msg_width * cfg.bytes_per_value / cfg.noc.flit_bytes
            )
            comm_cycles += transfer_flits / t.comm_ports

        # ---- DRAM ---------------------------------------------------------
        dram = DRAMModel(cfg.dram)
        num_tiles = self._num_tiles(graph, dims, density)
        feat_bytes = int(n * dims.in_features * cfg.bytes_per_value * density)
        dram_s = dram.access(feat_bytes, pattern=AccessPattern.SEQUENTIAL)
        capacity_frac = resident
        gather_bytes = int(
            m
            * dims.in_features
            * cfg.bytes_per_value
            * density
            * max(0.0, 1.0 - t.feature_reuse * capacity_frac)
        )
        if gather_bytes:
            dram_s += dram.access(gather_bytes, pattern=AccessPattern.RANDOM)
        weight_bytes = (
            wl.edge_update.weight_bytes
            + wl.aggregation.weight_bytes
            + wl.vertex_update.weight_bytes
        )
        weight_stream = weight_bytes * (num_tiles if t.weight_reload_per_tile else 1)
        dram_s += dram.access(weight_stream, pattern=AccessPattern.SEQUENTIAL)
        intermediate = n * msg_width * cfg.bytes_per_value
        spill = max(0, intermediate - (cfg.onchip_bytes * 3) // 4)
        if t.interphase_spill and spill:
            # Only the part of the inter-phase intermediates that does not
            # fit in the (quarter-reserved) global buffer round-trips DRAM.
            dram_s += dram.access(spill, pattern=AccessPattern.SEQUENTIAL, write=True)
            dram_s += dram.access(spill, pattern=AccessPattern.SEQUENTIAL)
        out_bytes = n * dims.out_features * cfg.bytes_per_value
        dram_s += dram.access(out_bytes, pattern=AccessPattern.SEQUENTIAL, write=True)

        # ---- compose --------------------------------------------------------
        onchip_s = (compute_cycles + comm_cycles) / freq
        # Double buffering overlaps DRAM with execution, imperfectly: the
        # slower side dominates and 10% of the hidden side leaks through.
        total_s = max(onchip_s, dram_s) + 0.1 * min(onchip_s, dram_s)

        # ---- energy counters -------------------------------------------------
        counters = EnergyCounters()
        counters.mac_ops = int(wl.O_ue * width_ratio) + wl.O_uv
        counters.add_ops = int(o_a_eff)
        counters.ppu_ops = ppu_ops
        # Monolithic global buffer: operand fetches (scaled by the
        # dataflow's register/loop reuse) plus every on-chip message.
        counters.global_buffer_bytes = int(
            wl.total_mac_ops * cfg.bytes_per_value * t.buffer_traffic_factor
            + msg_bytes
        )
        counters.link_byte_hops = int(msg_bytes * t.comm_hops)
        counters.router_flits = int(flits * t.comm_hops)
        counters.dram_bytes = dram.stats.total_bytes
        counters.active_cycles = int(total_s * freq)
        energy = self.energy_model.evaluate(counters)

        return SimulationResult(
            accelerator=t.name,
            model_name=model.name,
            graph_name=graph.name,
            total_seconds=total_s,
            breakdown=PhaseBreakdown(
                compute_seconds=compute_cycles / freq,
                noc_seconds=comm_cycles / freq,
                dram_seconds=dram_s,
            ),
            dram_bytes=dram.stats.total_bytes,
            onchip_comm_cycles=int(comm_volume),
            energy=energy,
            counters=counters,
            num_tiles=num_tiles,
            frequency_hz=freq,
            notes={
                "compute_imbalance": compute_imb,
                "ejection_imbalance": in_imb,
                "combination_first": comb_first,
            },
        )

    # ------------------------------------------------------------------
    def simulate(
        self,
        model: GNNModel,
        graph: CSRGraph,
        layer_dims: list[LayerDims],
        *,
        strict: bool = True,
    ) -> SimulationResult:
        """Multi-layer simulation; layer 0 reads sparse dataset features."""
        if not layer_dims:
            raise ValueError("need at least one layer")
        results = []
        for i, dims in enumerate(layer_dims):
            density = graph.feature_density if i == 0 else 1.0
            results.append(
                self.simulate_layer(
                    model, graph, dims, input_density=density, strict=strict
                )
            )
        return SimulationResult.combine(results)
