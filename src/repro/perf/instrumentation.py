"""Lightweight perf instrumentation: stage timers + event counters.

The analytical tier's value proposition is wall-clock speed (the paper
sweeps five datasets × five baselines × ablations through it), so the
hot path carries permanent, near-zero-cost instrumentation:

* **stage timers** — monotonic (``time.perf_counter``) accumulators per
  named stage (``mapping``, ``traffic``, ``noc``, ``compute_count``,
  ``tiling``, ``dram`` …), threaded through the simulator, the mapping
  layer, the NoC model, and the job runtime;
* **counters** — integer event counts, used for the memoization layers'
  hit/miss bookkeeping (``mapping.tile_cache_hit``,
  ``noc.model_cache_hit``, ``config.plan_cache_hit`` …).

Since the telemetry subsystem landed, :class:`PerfRegistry` is a **thin
adapter** over :mod:`repro.telemetry.metrics`: ``add_time`` observes
into the ``repro_stage_seconds`` histogram family (labelled by stage)
and ``incr`` increments ``repro_events_total`` (labelled by event) — so
every existing ``PERF`` call site also feeds the store the serve
``/metrics`` endpoint renders as Prometheus text.  The ``stages`` /
``counters`` / ``snapshot()`` views keep their historical shapes, which
the ``BENCH_*.json`` artifacts and the test-suite rely on.

Thread safety: the underlying metric children carry their own locks, so
``add_time``/``incr`` from serve's executor threads never lose updates
and ``snapshot()`` never reads a torn ``calls``/``seconds`` pair.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

from ..telemetry.metrics import METRICS, MetricsRegistry

__all__ = ["PerfRegistry", "StageStat", "PERF"]

#: Buckets for the stage-seconds histograms: per-tile stages run in the
#: 10µs–10ms range, end-to-end jobs and requests in the 10ms–60s range.
STAGE_BUCKETS: tuple[float, ...] = (
    1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 60.0,
)


@dataclass
class StageStat:
    """Accumulated wall time of one named stage."""

    calls: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict:
        return {"calls": self.calls, "seconds": self.seconds}


class PerfRegistry:
    """Stage timings and event counters, backed by the metrics registry.

    By default each instance gets a private :class:`MetricsRegistry`
    (hermetic, as tests expect); the process-global :data:`PERF` wraps
    the process-global :data:`~repro.telemetry.metrics.METRICS` so perf
    signals surface on ``/metrics`` too.
    """

    def __init__(
        self, enabled: bool = True, registry: MetricsRegistry | None = None
    ) -> None:
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        self._stages = self.registry.histogram(
            "repro_stage_seconds",
            help="Wall time per instrumented pipeline stage",
            labelnames=("stage",),
            buckets=STAGE_BUCKETS,
        )
        self._events = self.registry.counter(
            "repro_events_total",
            help="Instrumentation event counts (cache hits, sheds, …)",
            labelnames=("event",),
        )

    # -- timers --------------------------------------------------------
    @contextmanager
    def timer(self, name: str):
        """Time a ``with`` block and accumulate it under ``name``."""
        if not self.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - t0)

    def add_time(self, name: str, seconds: float) -> None:
        if not self.enabled:
            return
        self._stages.labels(stage=name).observe(seconds)

    # -- counters ------------------------------------------------------
    def incr(self, name: str, n: int = 1) -> None:
        if not self.enabled:
            return
        self._events.labels(event=name).inc(n)

    # -- views ---------------------------------------------------------
    @property
    def stages(self) -> dict[str, StageStat]:
        """Live per-stage view: ``{name: StageStat(calls, seconds)}``."""
        out = {}
        for (name,), hist in self._stages.series().items():
            state = hist.as_dict()  # lock-consistent count/sum pair
            out[name] = StageStat(calls=state["count"], seconds=state["sum"])
        return out

    @property
    def counters(self) -> dict[str, int]:
        """Live counter view: ``{name: count}`` (ints, as historically)."""
        return {
            name: int(counter.get())
            for (name,), counter in self._events.series().items()
        }

    # -- lifecycle -----------------------------------------------------
    def reset(self) -> None:
        """Clear the perf families (other families in a shared registry,
        e.g. serve request metrics, are left alone)."""
        self._stages.clear()
        self._events.clear()

    def snapshot(self) -> dict:
        """JSON-ready view: stage timings plus counters."""
        return {
            "stages": {
                name: stat.as_dict() for name, stat in sorted(self.stages.items())
            },
            "counters": dict(sorted(self.counters.items())),
        }


#: The process-global registry every instrumented module reports into,
#: sharing its backing store with the ``/metrics`` endpoint.
PERF = PerfRegistry(registry=METRICS)
