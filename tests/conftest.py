"""Shared fixtures: small graphs and configurations for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AcceleratorConfig, small_config
from repro.graphs import (
    CSRGraph,
    from_edge_list,
    power_law_graph,
    star_graph,
)


@pytest.fixture
def tiny_graph() -> CSRGraph:
    """5 vertices, hand-checkable adjacency.

    0 -> 1, 2;  1 -> 2;  2 -> 0;  3 -> 4;  4 -> (none)
    """
    return from_edge_list(
        5,
        [(0, 1), (0, 2), (1, 2), (2, 0), (3, 4)],
        num_features=4,
        name="tiny",
    )


@pytest.fixture
def hub_graph() -> CSRGraph:
    """Star with 12 leaves: one extreme hub (vertex 0)."""
    return star_graph(12, num_features=8)


@pytest.fixture
def medium_graph() -> CSRGraph:
    """Deterministic power-law graph, ~200 vertices."""
    return power_law_graph(
        200, 900, exponent=2.1, locality=0.5, num_features=32, seed=3
    )


@pytest.fixture
def cfg8() -> AcceleratorConfig:
    """8×8 array config for fast cycle-tier tests."""
    return small_config(8)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
