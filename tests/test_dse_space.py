"""Design-space declaration layer: axes, constraints, job encoding."""

import random

import pytest

from repro.dse import (
    Categorical,
    Constraint,
    DesignSpace,
    IntGrid,
    LogFloat,
    build_space,
    list_spaces,
)
from repro.runtime.jobs import SimJob, job_key


def _tiny_space(**kwargs):
    return DesignSpace(
        "tiny",
        [
            IntGrid("array_k", (8, 16, 32)),
            Categorical("mapping", ("degree-aware", "hashing")),
        ],
        **kwargs,
    )


class TestAxes:
    def test_int_grid_rejects_unsorted(self):
        with pytest.raises(ValueError):
            IntGrid("k", (16, 8))

    def test_categorical_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Categorical("m", ("a", "a"))

    def test_log_float_grid_is_geometric(self):
        axis = LogFloat("f", 1.0, 100.0, 3)
        assert axis.grid == pytest.approx((1.0, 10.0, 100.0))

    def test_log_float_index_snaps_to_nearest(self):
        axis = LogFloat("f", 1.0, 100.0, 3)
        assert axis.index(9.0) == 1
        assert axis.index(200.0) == 2


class TestGeometry:
    def test_size_is_grid_product(self):
        assert _tiny_space().size == 6

    def test_encode_decode_round_trip(self):
        space = _tiny_space()
        for a in range(3):
            for b in range(2):
                values = space.decode((a, b))
                assert space.encode(values) == (a, b)

    def test_constraints_gate_feasibility(self):
        space = _tiny_space(
            constraints=(Constraint("small", lambda v: v["array_k"] <= 16),)
        )
        assert space.is_feasible((0, 0))
        assert not space.is_feasible((2, 0))
        rng = random.Random(0)
        for _ in range(50):
            assert space.is_feasible(space.random_point(rng))

    def test_neighbors_move_one_axis(self):
        space = _tiny_space()
        nbrs = space.neighbors((1, 0))
        assert (0, 0) in nbrs and (2, 0) in nbrs  # ordered ±1
        assert (1, 1) in nbrs  # categorical flip
        assert (0, 1) not in nbrs  # two axes at once

    def test_random_point_is_seed_deterministic(self):
        space = _tiny_space()
        a = [space.random_point(random.Random(7)) for _ in range(5)]
        b = [space.random_point(random.Random(7)) for _ in range(5)]
        assert a == b


class TestJobEncoding:
    def test_axis_values_route_to_config_noc_and_job(self):
        space = DesignSpace(
            "routes",
            [
                IntGrid("array_k", (8, 16)),
                IntGrid("noc.flit_bytes", (8, 32)),
                Categorical("mapping", ("degree-aware", "hashing")),
            ],
            base_job=SimJob(dataset="cora", scale=0.5, hidden=8, num_layers=1),
        )
        job = space.job_for((1, 1, 1))
        assert job.config.array_k == 16
        assert job.config.noc.flit_bytes == 32
        assert job.mapping == "hashing"
        assert job.dataset == "cora" and job.hidden == 8

    def test_fidelity_scales_the_workload(self):
        space = _tiny_space(base_job=SimJob(scale=0.9))
        job = space.job_for((0, 0), fidelity=1.0 / 3.0)
        assert job.scale == pytest.approx(0.3)

    def test_unknown_axis_name_raises(self):
        space = DesignSpace("bad", [IntGrid("nonesuch_field", (1, 2))])
        with pytest.raises(KeyError):
            space.job_for((0,))

    def test_same_point_same_job_key(self):
        # The content-addressed identity the whole cache story rests on.
        space = build_space("aurora-mini", SimJob(scale=0.5))
        a = job_key(space.job_for((1, 2, 0, 1)))
        b = job_key(space.job_for((1, 2, 0, 1)))
        assert a == b
        assert a != job_key(space.job_for((0, 2, 0, 1)))


class TestNamedSpaces:
    def test_registry(self):
        assert list_spaces() == ["aurora-core", "aurora-noc", "aurora-mini"]
        with pytest.raises(KeyError):
            build_space("nonesuch")

    def test_mini_space_size(self):
        assert build_space("aurora-mini").size == 24

    def test_core_space_constraints_cut_the_grid(self):
        space = build_space("aurora-core")
        # The full 32x32 array with 16 MACs/PE sits on the budget edge.
        top = space.encode(
            {
                "array_k": 32,
                "macs_per_pe": 16,
                "pe_buffer_bytes": 100 * 1024,
                "frequency_hz": 1.4e9,
                "noc.flit_bytes": 32,
                "noc.vcs_per_port": 4,
                "noc.bypass_links_per_row": 2,
                "mapping": "degree-aware",
            }
        )
        assert space.is_feasible(top)

    def test_signature_tracks_space_and_workload(self):
        a = build_space("aurora-mini", SimJob(dataset="cora"))
        b = build_space("aurora-mini", SimJob(dataset="cora"))
        c = build_space("aurora-mini", SimJob(dataset="pubmed"))
        assert a.signature() == b.signature()
        assert a.signature() != c.signature()
        assert a.signature() != build_space("aurora-noc").signature()
