"""repro — Aurora: a versatile and flexible GNN accelerator, reproduced.

A full-system Python reproduction of *Aurora: A Versatile and Flexible
Accelerator for Graph Neural Networks* (Yang, Zheng, Louri — IPDPS 2024):
the reconfigurable PE array, the flexible NoC with bypass links, the
degree-aware mapping (Algorithm 1), the partition heuristic (Algorithm 2),
an analytical + cycle-level simulator, and behavioural models of the five
baseline accelerators the paper compares against.

Quickstart::

    from repro import AuroraAccelerator, get_model, load_dataset

    acc = AuroraAccelerator()
    result = acc.run(get_model("gcn"), load_dataset("cora"), hidden=64)
    print(result.total_seconds, result.energy.total)
"""

from .baselines import (
    AWBGCN,
    BASELINE_CLASSES,
    GCNAX,
    BaselineAccelerator,
    BaselineTraits,
    FlowGNN,
    HyGCN,
    ReGNN,
    UnsupportedModelError,
    make_baseline,
)
from .config import (
    AcceleratorConfig,
    DRAMConfig,
    NoCConfig,
    default_config,
    small_config,
)
from .core import (
    AuroraAccelerator,
    AuroraSimulator,
    SimulationResult,
    layer_plan,
)
from .graphs import (
    CSRGraph,
    dataset_profile,
    from_edge_list,
    list_datasets,
    load_dataset,
    power_law_graph,
    rmat_graph,
    tile_graph,
)
from .models import (
    MODEL_ZOO,
    GNNModel,
    LayerDims,
    Phase,
    extract_workload,
    get_model,
    list_models,
    run_layer,
)
from .runtime import (
    FakeExecutor,
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    SimJob,
    job_key,
    run_job,
    run_jobs,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "AcceleratorConfig",
    "NoCConfig",
    "DRAMConfig",
    "default_config",
    "small_config",
    # graphs
    "CSRGraph",
    "from_edge_list",
    "load_dataset",
    "dataset_profile",
    "list_datasets",
    "power_law_graph",
    "rmat_graph",
    "tile_graph",
    # models
    "GNNModel",
    "MODEL_ZOO",
    "get_model",
    "list_models",
    "LayerDims",
    "Phase",
    "extract_workload",
    "run_layer",
    # core
    "AuroraAccelerator",
    "AuroraSimulator",
    "SimulationResult",
    "layer_plan",
    # baselines
    "BaselineAccelerator",
    "BaselineTraits",
    "UnsupportedModelError",
    "HyGCN",
    "AWBGCN",
    "GCNAX",
    "ReGNN",
    "FlowGNN",
    "BASELINE_CLASSES",
    "make_baseline",
    # runtime (parallel sweeps + result caching)
    "SimJob",
    "job_key",
    "run_job",
    "run_jobs",
    "ResultCache",
    "SerialExecutor",
    "ProcessExecutor",
    "FakeExecutor",
]
