"""The cluster front end: consistent-hash routing over replica shards.

One asyncio process owns the client-facing socket and fans
``/simulate`` traffic out to N ``repro.serve`` replicas:

* **placement** — requests canonicalize to a :class:`SimJob` whose
  content hash lands on the :class:`~repro.cluster.ring.HashRing`;
  identical jobs always reach the same replica, so single-flight dedup
  and warm caches shard cleanly by job identity;
* **tiers before compute** — the router answers from its own
  memory/disk/peer :class:`~repro.cluster.tiers.TieredResultStore`
  before proxying, so a re-hashed key whose result an old owner already
  computed never re-simulates;
* **admission** — per-replica bounded in-flight; a saturated owner
  sheds with 429 + ``Retry-After`` instead of queueing (spilling a job
  to a cache-cold replica would trade latency for locality);
* **resilience** — a replica that fails at the transport level mid-
  proxy is retried on the next distinct ring node, so killing a
  replica under load is invisible to (retrying) clients;
* **operations** — ``/healthz``/``/stats``/``/metrics`` aggregate the
  fleet through :mod:`repro.telemetry`; ``POST /replicas/<id>/drain``
  and ``/start`` remove and restore individual replicas without
  dropping the fleet.

The router duck-types :class:`repro.serve.server.ServerThread`'s
service contract (``handle``/``begin_drain``/``drain``), so tests and
benches host it exactly like a single service.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from urllib.parse import parse_qs

from ..observe.service import ui_asset
from ..observe.websocket import (
    FrameAssembler,
    WebSocketError,
    client_handshake,
    encode_pong,
    read_frame,
)
from ..perf import PERF
from ..serve.http import (
    HTTPError,
    HTTPRequest,
    RawResponse,
    read_request,
    render_bytes,
    render_response,
    render_text,
)
from ..serve.protocol import ProtocolError, parse_simulation_request
from ..serve.server import DEADLINE_HEADER, TRACE_HEADER, LatencyWindow
from ..telemetry import METRICS
from ..telemetry.trace import valid_trace_id
from . import wire
from .replica import ReplicaSupervisor
from .ring import DEFAULT_VNODES, HashRing
from .tiers import ResultLRU, TieredResultStore

__all__ = ["ClusterRouter", "ClusterThread", "cluster_forever"]

#: Key sanity bound for /result/<key> (sha256 hex is 64 chars).
_HEX = set("0123456789abcdef")


class ClusterRouter:
    """Routes, supervises bookkeeping, and aggregates one replica fleet."""

    def __init__(
        self,
        *,
        vnodes: int = DEFAULT_VNODES,
        max_inflight_per_replica: int = 16,
        proxy_retries: int = 2,
        proxy_timeout: float = 300.0,
        tiers: TieredResultStore | None = None,
        lru_capacity: int = 1024,
        retry_after_hint: float = 0.25,
        peer_fetch_limit: int = 2,
        supervisor: ReplicaSupervisor | None = None,
        observe=None,
    ) -> None:
        if max_inflight_per_replica < 1:
            raise ValueError("max_inflight_per_replica must be >= 1")
        if proxy_retries < 0:
            raise ValueError("proxy_retries must be >= 0")
        self.ring = HashRing(vnodes=vnodes)
        self.max_inflight_per_replica = max_inflight_per_replica
        self.proxy_retries = proxy_retries
        self.proxy_timeout = proxy_timeout
        self.retry_after_hint = retry_after_hint
        self.peer_fetch_limit = peer_fetch_limit
        self.supervisor = supervisor
        self.tiers = tiers or TieredResultStore(
            lru=ResultLRU(lru_capacity) if lru_capacity > 0 else None
        )
        if self.tiers.peer_fetch is None and peer_fetch_limit > 0:
            self.tiers.peer_fetch = self._peer_fetch
        #: Optional :class:`repro.observe.ObserveState` (built around a
        #: *private* hub, never the process-global one: in-process
        #: replica services must not leak events into the fleet feed
        #: except through their relayed WebSocket streams).
        self.observe = observe
        self._relays: dict[str, asyncio.Task] = {}
        self.relay_events = 0
        self.relay_reconnects = 0
        self._addresses: dict[str, tuple[str, int]] = {}
        self._inflight: dict[str, int] = {}
        self._draining = False
        self._idle: asyncio.Event | None = None
        self.latency = LatencyWindow()
        self.counters = {
            "requests": 0,
            "completed": 0,
            "tier_served": 0,
            "proxied": 0,
            "proxy_failovers": 0,
            "shed": 0,
            "no_replica": 0,
            "bad_requests": 0,
            "errors": 0,
        }
        self._requests_total = METRICS.counter(
            "repro_cluster_requests_total",
            help="Cluster requests by response status",
            labelnames=("status",),
        )
        self._routed_total = METRICS.counter(
            "repro_cluster_routed_total",
            help="Requests proxied to each replica",
            labelnames=("replica",),
        )
        self._tier_hits_total = METRICS.counter(
            "repro_cluster_tier_hits_total",
            help="Results served from each cache tier before compute",
            labelnames=("tier",),
        )
        self._replica_up = METRICS.gauge(
            "repro_cluster_replica_up",
            help="1 while a replica is routable, 0 otherwise",
            labelnames=("replica",),
        )
        self._failovers_total = METRICS.counter(
            "repro_cluster_failovers_total",
            help="Proxy attempts re-routed after a replica transport failure",
            labelnames=("replica",),
        )
        self._request_seconds = METRICS.histogram(
            "repro_cluster_request_seconds",
            help="End-to-end /simulate latency as observed by the router",
        )
        self._started = time.monotonic()

    # -- membership (supervisor callbacks; sync, loop-thread only) ------
    def replica_up(self, replica_id: str, host: str, port: int) -> None:
        name = str(replica_id)
        self._addresses[name] = (host, port)
        self._inflight.setdefault(name, 0)
        if name not in self.ring:
            self.ring.add(name)
        self._replica_up.labels(replica=name).set(1)
        if self.observe is not None:
            self.observe.hub.emit(
                "replica.up", {"replica": name, "host": host, "port": port}
            )
            self._start_relay(name, host, port)

    def replica_down(self, replica_id: str) -> None:
        name = str(replica_id)
        self._addresses.pop(name, None)
        if name in self.ring:
            self.ring.remove(name)
        self._replica_up.labels(replica=name).set(0)
        if self.observe is not None:
            self.observe.hub.emit("replica.down", {"replica": name})
            task = self._relays.pop(name, None)
            if task is not None:
                task.cancel()

    # -- replica event relays -------------------------------------------
    def _start_relay(self, name: str, host: str, port: int) -> None:
        """Subscribe to one replica's /observe stream (loop thread only)."""
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return  # registered outside the loop (tests); no relay
        old = self._relays.pop(name, None)
        if old is not None:
            old.cancel()
        self._relays[name] = loop.create_task(
            self._relay_replica(name, host, port)
        )

    async def _relay_replica(self, name: str, host: str, port: int) -> None:
        """Pump one replica's event stream into the fleet hub, forever.

        Events are re-emitted with a ``replica`` tag and their original
        wall-clock timestamp; the fleet hub assigns a fresh sequence so
        clients see one totally ordered feed.  Connection loss retries
        with backoff for as long as the replica stays registered — a
        replica booted without ``--observe`` simply keeps refusing the
        upgrade and the relay keeps (slowly) knocking.
        """
        backoff = 0.5
        while name in self._addresses:
            writer = None
            try:
                reader, writer = await asyncio.open_connection(host, port)
                await client_handshake(
                    reader, writer, f"{host}:{port}", "/observe"
                )
                backoff = 0.5
                assembler = FrameAssembler(require_mask=False)
                while True:
                    frame = await read_frame(reader)
                    if frame is None:
                        break
                    message = assembler.feed(frame)
                    if message is None:
                        continue
                    kind, payload = message
                    if kind == "ping":
                        writer.write(encode_pong(payload, mask=True))
                        await writer.drain()
                        continue
                    if kind == "close":
                        break
                    if kind != "text":
                        continue
                    try:
                        event = json.loads(payload)
                    except json.JSONDecodeError:
                        continue
                    if (
                        not isinstance(event, dict)
                        or event.get("type") in (None, "observe.hello")
                    ):
                        continue
                    data = dict(event.get("data") or {})
                    data.setdefault("replica", name)
                    self.observe.hub.emit(
                        event["type"], data, ts=event.get("ts")
                    )
                    self.relay_events += 1
            except asyncio.CancelledError:
                return
            except (OSError, WebSocketError, ConnectionError):
                pass
            finally:
                if writer is not None:
                    writer.close()
            if name not in self._addresses:
                return
            self.relay_reconnects += 1
            try:
                await asyncio.sleep(backoff)
            except asyncio.CancelledError:
                return
            backoff = min(backoff * 2, 5.0)

    def attach_supervisor(self, supervisor: ReplicaSupervisor) -> None:
        """Wire a supervisor's callbacks into the ring."""
        self.supervisor = supervisor
        supervisor.on_up = self.replica_up
        supervisor.on_down = self.replica_down

    @property
    def routable(self) -> list[str]:
        return self.ring.nodes

    # -- connection handling (ServerThread-compatible) ------------------
    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except HTTPError as exc:
                self.counters["bad_requests"] += 1
                writer.write(render_response(400, {"error": str(exc)}))
                await writer.drain()
                return
            if request is None:
                return
            if (
                self.observe is not None
                and request.path.partition("?")[0] == "/observe"
                and "websocket" in request.headers.get("upgrade", "").lower()
            ):
                await self.observe.broadcaster.handle_client(
                    request, reader, writer
                )
                return
            try:
                reply = await self.dispatch(request)
            except Exception as exc:  # noqa: BLE001 — a handler bug must
                # not kill the connection loop silently
                self.counters["errors"] += 1
                reply = 500, {"error": f"{type(exc).__name__}: {exc}"}
            if len(reply) == 3:
                status, payload, headers = reply
                headers = dict(headers) if headers else {}
            else:
                status, payload = reply
                headers = {}
            if isinstance(payload, RawResponse):
                writer.write(
                    render_bytes(
                        status, payload.body, payload.content_type,
                        headers=headers or None,
                    )
                )
            elif isinstance(payload, str):
                writer.write(render_text(status, payload))
            else:
                writer.write(
                    render_response(status, payload, headers=headers or None)
                )
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def dispatch(self, request: HTTPRequest) -> tuple:
        path, _, _query = request.path.partition("?")
        if path == "/healthz":
            if request.method != "GET":
                return 405, {"error": "healthz is GET-only"}
            return 200, self.healthz()
        if path == "/stats":
            if request.method != "GET":
                return 405, {"error": "stats is GET-only"}
            return 200, await self.stats()
        if path == "/metrics":
            if request.method != "GET":
                return 405, {"error": "metrics is GET-only"}
            return 200, METRICS.render_prometheus()
        if path == "/trace":
            if request.method != "GET":
                return 405, {"error": "trace is GET-only"}
            return 200, await self._trace(_query)
        if path.startswith("/result/"):
            if request.method != "GET":
                return 405, {"error": "result is GET-only"}
            return await self._result(path[len("/result/"):])
        if path == "/simulate":
            if request.method != "POST":
                return 405, {"error": "simulate is POST-only"}
            return await self._simulate(request)
        if path == "/replicas":
            if request.method != "GET":
                return 405, {"error": "replicas is GET-only"}
            return 200, self._replicas_view()
        if path.startswith("/replicas/"):
            return await self._replica_action(request, path)
        if path == "/observe":
            if self.observe is None:
                return 404, {"error": "observability is off (start with --observe)"}
            return 400, {"error": "GET /observe requires a websocket upgrade"}
        if path == "/observer" or path.startswith("/observer/"):
            if self.observe is None:
                return 404, {"error": "observability is off (start with --observe)"}
            if request.method != "GET":
                return 405, {"error": "observer is GET-only"}
            asset = ui_asset(path[len("/observer"):].lstrip("/"))
            if asset is None:
                return 404, {"error": "no such asset"}
            return 200, RawResponse(asset[0], asset[1])
        return 404, {"error": f"no such endpoint: {path}"}

    # -- endpoints ------------------------------------------------------
    def healthz(self) -> dict:
        up = self.ring.nodes
        total = (
            len(self.supervisor.states()) if self.supervisor is not None else len(up)
        )
        if self._draining:
            status = "draining"
        elif up and len(up) == total:
            status = "ok"
        elif up:
            status = "degraded"
        else:
            status = "down"
        return {
            "status": status,
            "role": "router",
            "replicas_up": len(up),
            "replicas_total": total,
            "inflight": sum(self._inflight.values()),
            "uptime_seconds": time.monotonic() - self._started,
        }

    async def stats(self) -> dict:
        """Cluster aggregate: router view + every routable replica's /stats."""
        names = self.ring.nodes
        replica_stats = await asyncio.gather(
            *(self._fetch_replica_stats(name) for name in names)
        )
        aggregated = dict(zip(names, replica_stats))
        requests_by_replica = {
            name: stats.get("requests", {}).get("requests")
            for name, stats in aggregated.items()
            if isinstance(stats, dict) and "requests" in stats
        }
        return {
            "status": "draining" if self._draining else "ok",
            "role": "router",
            "uptime_seconds": time.monotonic() - self._started,
            "router": {
                "requests": dict(self.counters),
                "ring": self.ring.snapshot(),
                "tiers": self.tiers.snapshot(),
                "inflight": dict(sorted(self._inflight.items())),
                "max_inflight_per_replica": self.max_inflight_per_replica,
                "latency": self.latency.snapshot(),
                "observe": self._observe_section(),
            },
            "supervisor": (
                self.supervisor.snapshot() if self.supervisor is not None else None
            ),
            "replicas": aggregated,
            "requests_by_replica": requests_by_replica,
        }

    async def _trace(self, query: str) -> dict:
        """Fleet-wide ``GET /trace``: fan out and merge by span identity.

        A request proxied through the router leaves spans on exactly one
        replica, but a trace tree can also span replicas (retried
        failovers, peer fetches), and replicas sharing a process (tests)
        share a buffer — so spans merge by ``(trace_id, span_id)``,
        first sighting wins, ordered by start time.  The same endpoint
        shape as a single replica's, so ``repro trace export`` works
        unchanged against a cluster.
        """
        params = parse_qs(query)
        trace_id = valid_trace_id((params.get("trace_id") or [None])[0])
        try:
            limit = int((params.get("limit") or ["0"])[0])
        except ValueError:
            limit = 0
        names = self.ring.nodes
        path = "/trace" + (f"?trace_id={trace_id}" if trace_id else "")
        fetched = await asyncio.gather(
            *(self._fetch_replica_json(name, path) for name in names)
        )
        merged: dict[tuple, dict] = {}
        replicas: dict[str, dict] = {}
        for name, payload in zip(names, fetched):
            if "error" in payload and "spans" not in payload:
                replicas[name] = payload
                continue
            spans = payload.get("spans") or []
            replicas[name] = {"count": len(spans)}
            for span in spans:
                if not isinstance(span, dict):
                    continue
                key = (span.get("trace_id"), span.get("span_id"))
                merged.setdefault(key, span)
        spans = sorted(
            merged.values(), key=lambda s: s.get("start_time") or 0.0
        )
        if limit > 0:
            spans = spans[-limit:]
        return {
            "trace_id": trace_id,
            "count": len(spans),
            "spans": spans,
            "replicas": replicas,
        }

    async def _fetch_replica_json(self, name: str, path: str) -> dict:
        address = self._addresses.get(name)
        if address is None:
            return {"error": "not routable"}
        try:
            status, payload, _ = await wire.request_json(
                address[0], address[1], "GET", path, timeout=5.0
            )
        except (OSError, asyncio.TimeoutError, wire.PeerProtocolError) as exc:
            return {"error": f"{type(exc).__name__}: {exc}"}
        if status != 200:
            return {"error": f"HTTP {status}"}
        return payload

    async def _fetch_replica_stats(self, name: str) -> dict:
        address = self._addresses.get(name)
        if address is None:
            return {"error": "not routable"}
        try:
            status, payload, _ = await wire.request_json(
                address[0], address[1], "GET", "/stats", timeout=5.0
            )
        except (OSError, asyncio.TimeoutError, wire.PeerProtocolError) as exc:
            return {"error": f"{type(exc).__name__}: {exc}"}
        if status != 200:
            return {"error": f"HTTP {status}"}
        return payload

    def _replicas_view(self) -> dict:
        if self.supervisor is not None:
            view = self.supervisor.snapshot()
        else:
            view = {"replicas": {}}
        view["routable"] = self.ring.nodes
        return view

    async def _replica_action(self, request: HTTPRequest, path: str) -> tuple:
        if self.supervisor is None:
            return 404, {"error": "no supervisor attached"}
        parts = path.strip("/").split("/")
        if len(parts) != 3 or parts[2] not in ("drain", "start"):
            return 404, {"error": f"no such endpoint: {path}"}
        if request.method != "POST":
            return 405, {"error": f"{parts[2]} is POST-only"}
        _, replica_id, action = parts
        try:
            if action == "drain":
                snapshot = await self.supervisor.drain_replica(replica_id)
            else:
                snapshot = await self.supervisor.start_replica(replica_id)
        except KeyError:
            return 404, {"error": f"no such replica: {replica_id}"}
        return 200, {"action": action, "replica": snapshot}

    async def _result(self, key: str) -> tuple:
        if not key or len(key) > 128 or not set(key) <= _HEX:
            return 400, {"error": f"malformed result key: {key[:80]!r}"}
        result, tier = await self.tiers.lookup(key)
        if result is None:
            return 404, {"error": "result not cached", "key": key}
        return 200, {"key": key, "cached": True, "tier": tier, "result": result}

    # -- the hot path ---------------------------------------------------
    async def _simulate(self, request: HTTPRequest) -> tuple:
        start = time.perf_counter()
        reply = await self._simulate_inner(request, start)
        status = reply[0]
        self._requests_total.labels(status=str(status)).inc()
        self._request_seconds.observe(time.perf_counter() - start)
        return reply

    async def _simulate_inner(self, request: HTTPRequest, start: float) -> tuple:
        self.counters["requests"] += 1
        PERF.incr("cluster.request")
        if self._draining:
            return 503, {"error": "cluster is draining"}, self._retry_after()
        try:
            body = request.json()
            job = parse_simulation_request(body)
        except (HTTPError, ProtocolError) as exc:
            self.counters["bad_requests"] += 1
            return 400, {"error": str(exc)}
        key = job.key

        result, tier = await self.tiers.lookup(key)
        if result is not None:
            self.counters["tier_served"] += 1
            self.counters["completed"] += 1
            self._tier_hits_total.labels(tier=tier).inc()
            PERF.incr("cluster.tier_hit")
            latency = time.perf_counter() - start
            self.latency.add(latency)
            return 200, {
                "key": key,
                "cached": True,
                "tier": tier,
                "joined": False,
                "seconds": 0.0,
                "latency_seconds": latency,
                "result": result,
            }

        candidates = self.ring.preference(key, 1 + self.proxy_retries)
        if not candidates:
            self.counters["no_replica"] += 1
            return 503, {"error": "no routable replica"}, self._retry_after()

        forward_headers = {}
        deadline = request.headers.get(DEADLINE_HEADER)
        if deadline:
            forward_headers["X-Repro-Deadline"] = deadline
        trace_id = request.headers.get(TRACE_HEADER)
        if trace_id:
            forward_headers["X-Repro-Trace-Id"] = trace_id

        failures: list[str] = []
        for attempt, name in enumerate(candidates):
            address = self._addresses.get(name)
            if address is None:
                continue  # raced a concurrent removal; next candidate
            if self._inflight.get(name, 0) >= self.max_inflight_per_replica:
                # The owner is saturated: shed with backpressure rather
                # than spill the job to a replica whose caches are cold.
                self.counters["shed"] += 1
                PERF.incr("cluster.shed")
                return 429, {
                    "error": f"replica {name} is saturated, request shed",
                    "replica": name,
                    "max_inflight": self.max_inflight_per_replica,
                }, self._retry_after()
            if attempt > 0:
                self.counters["proxy_failovers"] += 1
                self._failovers_total.labels(replica=name).inc()
            self._inflight[name] = self._inflight.get(name, 0) + 1
            try:
                status, payload, _headers = await wire.request_json(
                    address[0], address[1], "POST", "/simulate",
                    body=job.as_dict(),
                    headers=forward_headers,
                    timeout=self.proxy_timeout,
                )
            except (OSError, asyncio.TimeoutError, wire.PeerProtocolError) as exc:
                failures.append(f"{name}: {type(exc).__name__}: {exc}")
                PERF.incr("cluster.proxy_error")
                continue
            finally:
                self._inflight[name] = max(0, self._inflight.get(name, 1) - 1)
                self._note_idle()
            self.counters["proxied"] += 1
            self._routed_total.labels(replica=name).inc()
            if isinstance(payload, dict):
                payload.setdefault("replica", name)
            if status == 200:
                self.counters["completed"] += 1
                if isinstance(payload, dict) and isinstance(
                    payload.get("result"), dict
                ):
                    self.tiers.insert(key, payload["result"])
                latency = time.perf_counter() - start
                self.latency.add(latency)
                payload["latency_seconds"] = latency
                return 200, payload
            if status in (429, 503):
                # The replica's own admission shed it; relay the
                # backpressure (with our hint) instead of stampeding
                # a cache-cold neighbour.
                self.counters["shed"] += 1
                return status, payload, self._retry_after()
            self.counters["errors"] += 1
            return status, payload
        self.counters["no_replica"] += 1
        self.counters["errors"] += 1
        return 503, {
            "error": "no replica answered",
            "attempts": failures,
        }, self._retry_after()

    def _retry_after(self) -> dict:
        return {"Retry-After": f"{self.retry_after_hint:.3f}"}

    # -- peer fetch tier -------------------------------------------------
    async def _peer_fetch(self, key: str) -> dict | None:
        """Ask non-owner replicas for a cached result before recompute.

        Useful when shard directories are not locally readable (remote
        peers) or after ring changes; bounded to ``peer_fetch_limit``
        peers so a miss costs at most a couple of loopback round trips.
        """
        preference = self.ring.preference(key)
        peers = preference[1:][: self.peer_fetch_limit]
        for name in peers:
            address = self._addresses.get(name)
            if address is None:
                continue
            try:
                status, payload, _ = await wire.request_json(
                    address[0], address[1], "GET", f"/result/{key}", timeout=5.0
                )
            except (OSError, asyncio.TimeoutError, wire.PeerProtocolError):
                continue
            if status == 200 and isinstance(payload.get("result"), dict):
                return payload["result"]
        return None

    def _observe_section(self) -> dict | None:
        if self.observe is None:
            return None
        section = self.observe.snapshot()
        section["relays"] = sorted(self._relays)
        section["relay_events"] = self.relay_events
        section["relay_reconnects"] = self.relay_reconnects
        return section

    # -- lifecycle (ServerThread-compatible) -----------------------------
    def observe_startup(self) -> None:
        """Attach the fleet observe sinks on the router loop."""
        if self.observe is not None:
            self.observe.startup(
                asyncio.get_running_loop(), stats_fn=self._observe_stats
            )
            # Replicas that came up before the loop (or before observe
            # was attached) still need their relays.
            for name, (host, port) in list(self._addresses.items()):
                if name not in self._relays:
                    self._start_relay(name, host, port)

    async def observe_shutdown(self) -> None:
        if self.observe is None:
            return
        for task in self._relays.values():
            task.cancel()
        for task in list(self._relays.values()):
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._relays.clear()
        await self.observe.shutdown()

    def _observe_stats(self) -> dict:
        return {
            "admission": {
                "in_flight": sum(self._inflight.values()),
                "max_pending": self.max_inflight_per_replica
                * max(1, len(self._addresses)),
                "shed": self.counters["shed"],
            },
            "batcher": {},
            "latency": self.latency.snapshot(),
            "replicas_up": len(self.ring.nodes),
        }

    def _note_idle(self) -> None:
        if self._idle is not None and sum(self._inflight.values()) == 0:
            self._idle.set()

    def begin_drain(self) -> None:
        self._draining = True

    async def drain(self, timeout: float | None = None) -> bool:
        """Wait for in-flight proxied requests to complete."""
        if sum(self._inflight.values()) == 0:
            return True
        self._idle = asyncio.Event()
        if sum(self._inflight.values()) == 0:
            return True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
        except asyncio.TimeoutError:
            return False
        return True


async def cluster_forever(
    router: ClusterRouter,
    supervisor: ReplicaSupervisor,
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    drain_timeout: float = 30.0,
    install_signals: bool = True,
    ready: "asyncio.Event | None" = None,
) -> int:
    """Boot the fleet, serve until SIGTERM/SIGINT, drain, exit 0.

    Replicas launch first (the router only listens once all are up), and
    teardown runs in the reverse order: stop admitting, finish in-flight
    proxies, then SIGTERM-drain every replica.
    """
    router.attach_supervisor(supervisor)
    router.observe_startup()
    await supervisor.start(wait_ready=True)
    server = await asyncio.start_server(router.handle, host, port)
    bound_host, bound_port = server.sockets[0].getsockname()[:2]
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    if install_signals:
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without signal support
    print(
        f"repro-cluster: {len(router.routable)} replica(s) up, "
        f"listening on {bound_host}:{bound_port}",
        flush=True,
    )
    if ready is not None:
        ready.set()
    await stop.wait()
    print("repro-cluster: draining", flush=True)
    router.begin_drain()
    server.close()
    await server.wait_closed()
    clean = await router.drain(timeout=drain_timeout)
    await router.observe_shutdown()
    await supervisor.stop(drain_timeout=drain_timeout)
    print(
        "repro-cluster: drained, exiting"
        if clean
        else "repro-cluster: drain timed out, exiting",
        flush=True,
    )
    return 0 if clean else 1


class ClusterThread:
    """Host a whole cluster (router + supervisor) on a background thread.

    The benches and the smoke-style tests need the full fleet — replica
    subprocesses, supervision, routing — while the driving code stays
    synchronous.  ``start`` blocks until every replica is up and the
    router is listening; ``stop`` runs the same ordered teardown the
    SIGTERM path takes.
    """

    def __init__(
        self,
        router: ClusterRouter,
        supervisor: ReplicaSupervisor,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        drain_timeout: float = 30.0,
    ) -> None:
        self.router = router
        self.supervisor = supervisor
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        self.address: tuple[str, int] | None = None
        self.exit_code: int | None = None
        self.startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._started = None

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main() -> int:
            self._stop = asyncio.Event()
            self.router.attach_supervisor(self.supervisor)
            self.router.observe_startup()
            await self.supervisor.start(wait_ready=True)
            server = await asyncio.start_server(
                self.router.handle, self.host, self.port
            )
            self.address = server.sockets[0].getsockname()[:2]
            self._started.set()
            await self._stop.wait()
            self.router.begin_drain()
            server.close()
            await server.wait_closed()
            clean = await self.router.drain(timeout=self.drain_timeout)
            await self.router.observe_shutdown()
            await self.supervisor.stop(drain_timeout=self.drain_timeout)
            return 0 if clean else 1

        try:
            self.exit_code = self._loop.run_until_complete(main())
        except BaseException as exc:  # noqa: BLE001 — surfaced by start()
            self.startup_error = exc
        finally:
            self._started.set()  # unblock start() even on a crash
            self._loop.close()

    def start(self, timeout: float = 180.0) -> tuple[str, int]:
        import threading

        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("cluster thread failed to start in time")
        if self.address is None:
            raise RuntimeError(
                f"cluster thread crashed during startup: {self.startup_error}"
            )
        return self.address

    def stop(self, timeout: float = 120.0) -> int | None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout)
        return self.exit_code

    def run_on_loop(self, coro, timeout: float = 30.0):
        """Run ``coro`` on the cluster loop (tests: drain a replica)."""
        import concurrent.futures

        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise

    def __enter__(self) -> "ClusterThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
