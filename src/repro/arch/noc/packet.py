"""Packets and flits for the flit-level NoC simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Packet", "Flit"]


@dataclass
class Packet:
    """One network packet: a message between two PEs.

    ``route`` is the precomputed sequence of node ids from source to
    destination inclusive (routing is deterministic, computed at
    injection per the paper's RC unit).
    """

    pid: int
    src: int
    dst: int
    size_bytes: int
    inject_cycle: int
    route: tuple[int, ...]
    num_flits: int = 0
    done_cycle: int | None = None
    # Input VC assigned to this packet at its source router (set by the
    # VC-level simulator so body flits follow their head's channel).
    notes_vc: int | None = None

    def __post_init__(self) -> None:
        if self.size_bytes < 1:
            raise ValueError("packet must carry at least one byte")
        if len(self.route) < 1:
            raise ValueError("route must contain at least the source node")
        if self.route[0] != self.src or self.route[-1] != self.dst:
            raise ValueError("route endpoints must match src/dst")

    @property
    def latency(self) -> int | None:
        if self.done_cycle is None:
            return None
        return self.done_cycle - self.inject_cycle

    @property
    def hops(self) -> int:
        return len(self.route) - 1


@dataclass
class Flit:
    """One flit of a packet in flight."""

    packet: Packet
    index: int  # flit index within the packet
    hop: int  # current position: index into packet.route
    ready_cycle: int  # earliest cycle this flit may be forwarded

    @property
    def is_head(self) -> bool:
        return self.index == 0

    @property
    def is_tail(self) -> bool:
        return self.index == self.packet.num_flits - 1

    @property
    def at_destination(self) -> bool:
        return self.hop == len(self.packet.route) - 1
