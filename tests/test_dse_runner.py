"""DSERunner: budgets, determinism, checkpoint/resume, grid path."""

import threading

import pytest

from repro.dse import (
    DSERunner,
    SearchSpec,
    build_grid,
    evaluate_grid,
    list_grids,
    read_trajectory,
    summarize_trajectory,
)
from repro.runtime import ProcessExecutor, ResultCache

#: Small enough that a 12-evaluation search is sub-second.
WORKLOAD = {"dataset": "cora", "scale": 0.1, "hidden": 8, "num_layers": 1}


def _spec(**overrides):
    base = dict(
        space="aurora-mini",
        optimizer="random",
        objective="latency",
        seed=7,
        max_evaluations=12,
        batch=4,
        workload=dict(WORKLOAD),
    )
    base.update(overrides)
    return SearchSpec(**base)


class TestBudgets:
    def test_stops_at_evaluation_budget(self, tmp_path):
        runner = DSERunner(
            _spec(), trajectory_path=tmp_path / "t.jsonl"
        )
        result = runner.run()
        assert result.evaluations == 12
        assert result.stopped == "budget"
        assert result.errors == 0
        assert result.best_fitness is not None

    def test_exhaustion_beats_budget(self, tmp_path):
        # Unique sampling drains the 24-point space before 200 evals.
        spec = _spec(max_evaluations=200, options={"unique": True})
        result = DSERunner(spec, trajectory_path=tmp_path / "t.jsonl").run()
        assert result.evaluations == 24
        assert result.stopped == "exhausted"

    def test_pre_set_cancel_stops_immediately(self, tmp_path):
        cancel = threading.Event()
        cancel.set()
        runner = DSERunner(
            _spec(), trajectory_path=tmp_path / "t.jsonl", cancel=cancel
        )
        result = runner.run()
        assert result.evaluations == 0
        assert result.stopped == "cancelled"

    def test_wall_clock_budget(self, tmp_path):
        spec = _spec(max_evaluations=100_000, max_seconds=0.2)
        result = DSERunner(spec, trajectory_path=tmp_path / "t.jsonl").run()
        assert result.stopped == "wall-clock"
        assert result.evaluations < 100_000


class TestTrajectory:
    def test_best_fitness_is_monotone(self, tmp_path):
        path = tmp_path / "t.jsonl"
        DSERunner(_spec(max_evaluations=24), trajectory_path=path).run()
        header, records = read_trajectory(path)
        assert header["space"] == "aurora-mini"
        assert header["optimizer"] == "random"
        assert len(records) == 24
        best = None
        for record in records:
            if record["best_fitness"] is not None:
                if best is not None:
                    assert record["best_fitness"] <= best
                best = record["best_fitness"]
        assert best is not None

    def test_summary_matches_result(self, tmp_path):
        path = tmp_path / "t.jsonl"
        result = DSERunner(_spec(), trajectory_path=path).run()
        summary = summarize_trajectory(read_trajectory(path)[1])
        assert summary["evaluations"] == result.evaluations
        assert summary["best_fitness"] == pytest.approx(result.best_fitness)


class TestDeterminism:
    def test_serial_and_process_pool_trajectories_match(self, tmp_path):
        serial_path = tmp_path / "serial.jsonl"
        DSERunner(_spec(), trajectory_path=serial_path).run()
        pool_path = tmp_path / "pool.jsonl"
        DSERunner(
            _spec(),
            trajectory_path=pool_path,
            executor=ProcessExecutor(2),
        ).run()
        assert serial_path.read_bytes() == pool_path.read_bytes()

    def test_warm_cache_trajectory_matches_cold(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold_path, warm_path = tmp_path / "cold.jsonl", tmp_path / "warm.jsonl"
        cold = DSERunner(_spec(), cache=cache, trajectory_path=cold_path).run()
        warm = DSERunner(_spec(), cache=cache, trajectory_path=warm_path).run()
        assert cold_path.read_bytes() == warm_path.read_bytes()
        # The second run is served entirely from the content-addressed
        # cache: same trajectory, zero simulations.
        assert warm.executed == 0
        assert warm.served == warm.evaluations
        assert cold.executed > 0

    @pytest.mark.parametrize("optimizer", ["random", "genetic", "sha"])
    def test_resume_continues_the_same_trajectory(self, tmp_path, optimizer):
        options = {"cohort": 9} if optimizer == "sha" else {}
        budget = 16
        straight_path = tmp_path / "straight.jsonl"
        straight = DSERunner(
            _spec(optimizer=optimizer, options=options, max_evaluations=budget),
            trajectory_path=straight_path,
        ).run()

        resumed_path = tmp_path / "resumed.jsonl"
        checkpoint = tmp_path / "ckpt.json"
        first = DSERunner(
            _spec(optimizer=optimizer, options=options, max_evaluations=8),
            trajectory_path=resumed_path,
            checkpoint_path=checkpoint,
        ).run()
        assert first.evaluations == 8
        second = DSERunner(
            _spec(optimizer=optimizer, options=options, max_evaluations=budget),
            trajectory_path=resumed_path,
            checkpoint_path=checkpoint,
            resume=True,
        ).run()
        # SHA exhausts its cohort below the budget; either way the
        # resumed search must land exactly where the straight run did.
        assert second.evaluations == straight.evaluations
        assert straight_path.read_bytes() == resumed_path.read_bytes()

    def test_resume_refuses_a_different_space(self, tmp_path):
        checkpoint = tmp_path / "ckpt.json"
        DSERunner(
            _spec(max_evaluations=4), checkpoint_path=checkpoint
        ).run()
        other = _spec(
            max_evaluations=8, workload={**WORKLOAD, "dataset": "citeseer"}
        )
        with pytest.raises(ValueError, match="different design space"):
            DSERunner(
                other, checkpoint_path=checkpoint, resume=True
            ).run()


class TestGrids:
    def test_registry(self):
        assert list_grids() == ["paper-sweep", "adversarial"]
        with pytest.raises(KeyError):
            build_grid("nonesuch")

    def test_paper_sweep_shares_the_evaluation_path(self, tmp_path):
        jobs, labels = build_grid(
            "paper-sweep",
            datasets=["cora"],
            scale=0.1,
            hidden=8,
            num_layers=1,
        )
        assert len(jobs) == len(labels) == 6  # six accelerators
        path = tmp_path / "grid.jsonl"
        result = evaluate_grid(
            jobs, objective="latency", trajectory_path=path, labels=labels
        )
        assert result.stopped == "completed"
        assert result.evaluations == 6
        assert result.best_point["accelerator"] in {
            "hygcn", "awb-gcn", "gcnax", "regnn", "flowgnn", "aurora",
        }
        _, records = read_trajectory(path)
        assert len(records) == 6

    def test_adversarial_grid_builds(self):
        jobs, labels = build_grid("adversarial", scale=0.25)
        # 3 datasets x (5 baselines + aurora with 2 mappings).
        assert len(jobs) == 3 * 7
        assert {lab["dataset"] for lab in labels} == {
            "adv-star", "adv-bipartite", "adv-hubclique",
        }

    def test_grid_cancel(self, tmp_path):
        jobs, labels = build_grid(
            "paper-sweep", datasets=["cora"], scale=0.1, hidden=8, num_layers=1
        )
        cancel = threading.Event()
        cancel.set()
        result = evaluate_grid(jobs, cancel=cancel, labels=labels)
        assert result.stopped == "cancelled"
        assert result.evaluations == 0
