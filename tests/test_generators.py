"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graphs import (
    chain_graph,
    complete_graph,
    grid_graph,
    power_law_graph,
    rmat_graph,
    star_graph,
    uniform_random_graph,
)


class TestPowerLaw:
    def test_exact_edge_count(self):
        g = power_law_graph(100, 450, seed=1)
        assert g.num_edges == 450

    def test_exact_vertex_count(self):
        g = power_law_graph(77, 300, seed=1)
        assert g.num_vertices == 77

    def test_deterministic(self):
        a = power_law_graph(60, 240, seed=5)
        b = power_law_graph(60, 240, seed=5)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.indptr, b.indptr)

    def test_seed_changes_graph(self):
        a = power_law_graph(60, 240, seed=5)
        b = power_law_graph(60, 240, seed=6)
        assert not np.array_equal(a.indices, b.indices)

    def test_degree_cap(self):
        g = power_law_graph(400, 4000, exponent=1.6, seed=2)
        cap = max(16, int(3.5 * np.sqrt(400)))
        assert g.degrees.max() <= cap

    def test_heavy_tail(self):
        g = power_law_graph(500, 2500, exponent=2.0, seed=3)
        assert g.degrees.max() > 4 * g.degrees.mean()

    def test_no_duplicate_neighbors(self):
        g = power_law_graph(80, 600, seed=4)
        for v in range(80):
            nbrs = g.neighbors(v)
            assert len(np.unique(nbrs)) == nbrs.size

    def test_locality_increases_near_edges(self):
        near_frac = []
        for loc in (0.0, 0.8):
            g = power_law_graph(
                500, 2500, locality=loc, locality_window=20, seed=7
            )
            src = np.repeat(np.arange(500), g.degrees)
            near_frac.append((np.abs(src - g.indices) <= 20).mean())
        assert near_frac[1] > near_frac[0] + 0.3

    def test_invalid_locality(self):
        with pytest.raises(ValueError, match="locality"):
            power_law_graph(10, 20, locality=1.0)

    def test_invalid_exponent(self):
        with pytest.raises(ValueError, match="exponent"):
            power_law_graph(10, 20, exponent=1.0)

    def test_invalid_edge_budget(self):
        with pytest.raises(ValueError, match="budget"):
            power_law_graph(3, 100)

    def test_attributes_forwarded(self):
        g = power_law_graph(
            20, 40, num_features=7, feature_density=0.5, edge_feature_dim=3, seed=0
        )
        assert g.num_features == 7
        assert g.feature_density == 0.5
        assert g.edge_feature_dim == 3


class TestRMAT:
    def test_vertex_count(self):
        g = rmat_graph(6, 4, seed=1)
        assert g.num_vertices == 64

    def test_edges_not_exceeding_budget(self):
        g = rmat_graph(6, 4, seed=1)
        assert 0 < g.num_edges <= 4 * 64

    def test_deterministic(self):
        a = rmat_graph(5, 8, seed=2)
        b = rmat_graph(5, 8, seed=2)
        assert np.array_equal(a.indices, b.indices)

    def test_skewed(self):
        g = rmat_graph(9, 16, seed=3)
        assert g.degrees.max() > 3 * max(g.degrees.mean(), 1)

    def test_invalid_scale(self):
        with pytest.raises(ValueError, match="scale"):
            rmat_graph(0)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError, match="probabilities"):
            rmat_graph(4, a=0.9, b=0.4, c=0.2)


class TestUniform:
    def test_exact_edges(self):
        g = uniform_random_graph(50, 300, seed=1)
        assert g.num_edges == 300

    def test_no_duplicate_edges(self):
        g = uniform_random_graph(30, 200, seed=2)
        arr = g.edge_array()
        assert np.unique(arr, axis=0).shape[0] == arr.shape[0]

    def test_low_skew(self):
        g = uniform_random_graph(400, 4000, seed=3)
        assert g.degrees.max() < 4 * g.degrees.mean()


class TestStructured:
    def test_grid_edge_count(self):
        g = grid_graph(3, 4)
        # 2*(rows*(cols-1) + (rows-1)*cols) directed edges.
        assert g.num_edges == 2 * (3 * 3 + 2 * 4)

    def test_grid_corner_degree(self):
        g = grid_graph(3, 3)
        assert g.degree(0) == 2  # corner has two neighbors

    def test_star_shape(self):
        g = star_graph(5)
        assert g.num_vertices == 6
        assert g.degree(0) == 5
        assert g.in_degrees[0] == 5

    def test_chain(self):
        g = chain_graph(4)
        assert g.num_edges == 3
        assert g.neighbors(0).tolist() == [1]
        assert g.degree(3) == 0

    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 20
        assert np.all(g.degrees == 4)

    @pytest.mark.parametrize("fn", [grid_graph, star_graph, chain_graph])
    def test_invalid_sizes(self, fn):
        with pytest.raises(ValueError):
            if fn is grid_graph:
                fn(0, 3)
            else:
                fn(0)
