"""Parallel, cached calibration sweeps for the cycle tier.

E14 validates the analytical NoC model against the flit-level engine on
matched tiles.  Each calibration point is deterministic in its spec —
synthetic-graph parameters, tile dimensioning, array size, mapping
policy, NoC engine — so, exactly like :class:`repro.runtime.jobs.SimJob`,
a point can be content-addressed and its result reused across sweeps.
This module packages one point as a frozen :class:`CalibrationJob` and
fans batches out through the existing :mod:`repro.runtime` executors
with :class:`~repro.runtime.cache.ResultCache` reuse (``run_jobs`` is
``SimJob``-specific, so the sweep loop here mirrors it for calibration
payloads).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass

from ..runtime.cache import ResultCache, as_cache
from ..runtime.executor import SerialExecutor, get_executor

__all__ = [
    "CalibrationJob",
    "CalibrationOutcome",
    "CalibrationReport",
    "run_calibration_job",
    "run_calibration_sweep",
]

#: Bump when the calibration payload or its semantics change in a way
#: that must invalidate previously cached results.
CALIBRATION_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CalibrationJob:
    """One analytical-vs-cycle calibration point, as pure data.

    The workload is a synthetic power-law tile (the same family E14
    uses); both tiers run the identical tile and the payload records
    their drain cycles plus the ratio the calibration tracks.
    """

    model: str = "gin"
    num_vertices: int = 120
    num_edges: int = 700
    exponent: float = 2.0
    locality: float = 0.5
    num_features: int = 16
    seed: int = 1
    array_k: int = 8
    in_features: int = 16
    out_features: int = 8
    mapping_policy: str = "degree-aware"
    noc_engine: str = "event"

    def __post_init__(self) -> None:
        if self.array_k < 2 or self.array_k > 16:
            raise ValueError("array_k must be in [2, 16] for the cycle tier")
        if self.num_vertices < 1 or self.num_edges < 0:
            raise ValueError("graph must have >= 1 vertex and >= 0 edges")

    def as_dict(self) -> dict:
        """Canonical JSON-encodable form (basis of :attr:`key`)."""
        return {
            "model": self.model,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "exponent": self.exponent,
            "locality": self.locality,
            "num_features": self.num_features,
            "seed": self.seed,
            "array_k": self.array_k,
            "in_features": self.in_features,
            "out_features": self.out_features,
            "mapping_policy": self.mapping_policy,
            "noc_engine": self.noc_engine,
        }

    @property
    def key(self) -> str:
        """Content hash: sha256 of the canonical sorted-key JSON form."""
        payload = {
            "version": CALIBRATION_SCHEMA_VERSION,
            "kind": "calibration",
            **self.as_dict(),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def label(self) -> str:
        return (
            f"{self.model}/v{self.num_vertices}e{self.num_edges}"
            f"/seed{self.seed}/k{self.array_k}"
        )


def run_calibration_job(job: CalibrationJob) -> dict:
    """Execute one calibration point; returns a JSON-encodable payload.

    Module-level (not a closure) so ``ProcessPoolExecutor`` workers can
    pickle it by reference.  Imports are deferred for the same reason
    worker startup should not drag the whole evaluation stack in before
    it is needed.
    """
    from ..arch.noc.analytical import AnalyticalNoCModel, TrafficMatrix
    from ..arch.noc.topology import FlexibleMeshTopology
    from ..config import small_config
    from ..core.cycle_engine import CycleTileEngine
    from ..graphs.generators import power_law_graph
    from ..mapping.base import PERegion
    from ..mapping.degree_aware import degree_aware_map
    from ..mapping.traffic import aggregate_flows, multicast_flows
    from ..models.workload import LayerDims
    from ..models.zoo import get_model

    k = job.array_k
    cfg = small_config(k)
    graph = power_law_graph(
        job.num_vertices,
        job.num_edges,
        exponent=job.exponent,
        locality=job.locality,
        num_features=job.num_features,
        seed=job.seed,
    )
    engine = CycleTileEngine(
        cfg, mapping_policy=job.mapping_policy, noc_engine=job.noc_engine
    )
    measured = engine.run_tile(
        get_model(job.model), graph, LayerDims(job.in_features, job.out_features)
    )

    region = PERegion(0, 0, k, k // 2, k)
    cap = max(1, -(-graph.num_vertices // region.num_pes))
    mapping = degree_aware_map(graph, region, pe_vertex_capacity=cap)
    mc = multicast_flows(graph, mapping, job.in_features * cfg.bytes_per_value)
    topo = FlexibleMeshTopology(k)
    for seg in mapping.bypass_segments:
        try:
            topo.add_bypass_segment(seg)
        except ValueError:
            continue
    predicted = AnalyticalNoCModel(topo, cfg.noc).evaluate(
        TrafficMatrix.from_flows(
            aggregate_flows(mc.flows, k * k), cfg.noc.flit_bytes, k
        ),
        boost_nodes=mapping.s_pe_nodes,
        boost_factor=4.0,
        eject_flits=mc.eject_bytes // cfg.noc.flit_bytes,
        inject_flits=mc.inject_bytes // cfg.noc.flit_bytes,
    ).drain_cycles

    return {
        "measured": int(measured.noc_cycles),
        "predicted": int(predicted),
        "ratio": predicted / max(measured.noc_cycles, 1),
        "packets": int(measured.packets),
        "flits": int(measured.flits),
        "stall_events": int(measured.stall_events),
        "tile_cycles": int(measured.tile_cycles),
    }


@dataclass
class CalibrationOutcome:
    """One calibration point's payload (or error) plus provenance."""

    job: CalibrationJob
    key: str
    result: dict | None
    error: str | None = None
    seconds: float = 0.0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class CalibrationReport:
    """Outcomes in request order plus sweep counters."""

    outcomes: list[CalibrationOutcome]
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_seconds: float = 0.0

    def results(self) -> list[dict | None]:
        return [o.result for o in self.outcomes]

    def raise_on_error(self) -> None:
        failed = [o for o in self.outcomes if not o.ok]
        if failed:
            lines = ", ".join(
                f"{o.job.label()}: {o.error}" for o in failed[:5]
            )
            more = f" (+{len(failed) - 5} more)" if len(failed) > 5 else ""
            raise RuntimeError(
                f"{len(failed)} calibration job(s) failed — {lines}{more}"
            )

    def summary(self) -> str:
        return (
            f"calibration: {len(self.outcomes)} points | "
            f"{self.executed} executed | "
            f"cache {self.cache_hits} hit / {self.cache_misses} miss | "
            f"wall {self.wall_seconds:.2f}s"
        )


def run_calibration_sweep(
    jobs,
    *,
    executor=None,
    jobs_n: int | None = None,
    cache: ResultCache | bool | None = None,
) -> CalibrationReport:
    """Run calibration points through cache lookup + executor fan-out.

    Identical points (same content hash) execute once; with a cache,
    warm points skip execution entirely and fresh payloads are written
    back so the next sweep starts warm.  ``jobs_n`` builds a default
    executor (serial for 1, a process pool otherwise) when ``executor``
    is not given.
    """
    start = time.perf_counter()
    job_list = list(jobs)
    if executor is None:
        executor = get_executor(jobs_n) if jobs_n else SerialExecutor()
    store = as_cache(cache)

    keys = [job.key for job in job_list]
    report = CalibrationReport(outcomes=[None] * len(job_list))  # type: ignore[list-item]

    # Cache pass + dedupe: first position per cold key executes.
    cold: dict[str, int] = {}
    for i, (job, key) in enumerate(zip(job_list, keys)):
        cached_payload = store.load(key) if store is not None else None
        if cached_payload is not None:
            report.cache_hits += 1
            report.outcomes[i] = CalibrationOutcome(
                job, key, cached_payload, cached=True
            )
        else:
            if store is not None:
                report.cache_misses += 1
            cold.setdefault(key, i)

    cold_jobs = [job_list[i] for i in cold.values()]
    records = executor.run(cold_jobs, fn=run_calibration_job) if cold_jobs else []
    by_key: dict[str, CalibrationOutcome] = {}
    for (key, _i), record in zip(cold.items(), records):
        outcome = CalibrationOutcome(
            record.job, key, record.payload, record.error, record.seconds
        )
        by_key[key] = outcome
        report.executed += 1
        if store is not None and record.ok and record.payload is not None:
            store.store(key, record.payload, job=record.job)

    for i, key in enumerate(keys):
        if report.outcomes[i] is None:
            src = by_key[key]
            report.outcomes[i] = CalibrationOutcome(
                src.job, key, src.result, src.error, src.seconds
            )

    report.wall_seconds = time.perf_counter() - start
    return report
