"""Hashing-based mapping — the CGRA-ME-style baseline.

Vertices are assigned to PEs by a modulo hash of the vertex id, with no
degree awareness.  High-degree vertices land wherever the hash puts them,
so several hubs regularly share a row or column — the contention the
degree-aware policy is designed to avoid (paper §IV, §VI-C).
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from .base import MappingResult, PERegion

__all__ = ["hashing_map"]


def hashing_map(
    graph: CSRGraph,
    region: PERegion,
    *,
    pe_vertex_capacity: int | None = None,
    stride: int = 1,
) -> MappingResult:
    """Map vertices to PEs by ``pe = (v * stride) mod num_pes``.

    ``pe_vertex_capacity`` is accepted for interface parity; a hash does
    not respect capacity, which is part of why it loses — but we do
    validate that the *average* load fits so configurations stay
    comparable with degree-aware runs.
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")
    n = graph.num_vertices
    if pe_vertex_capacity is not None and n > region.num_pes * pe_vertex_capacity:
        raise ValueError("tile exceeds region capacity")
    nodes = region.node_ids()
    if n == 0:
        v2p = np.empty(0, dtype=np.int64)
    else:
        v2p = nodes[(np.arange(n, dtype=np.int64) * stride) % region.num_pes]
    return MappingResult(
        policy="hashing",
        region=region,
        vertex_to_pe=v2p,
        algorithm_cycles=0,
    )
