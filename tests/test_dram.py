"""Unit tests for the DRAM timing model."""

import pytest

from repro.arch import AccessPattern, DRAMModel
from repro.config import DRAMConfig


class TestTiming:
    def test_large_sequential_is_bandwidth_bound(self):
        dram = DRAMModel()
        nbytes = 1 << 28  # 256 MiB
        t = dram.access(nbytes, pattern=AccessPattern.SEQUENTIAL)
        assert t == pytest.approx(
            nbytes / dram.config.bandwidth_bytes_per_sec, rel=0.01
        )

    def test_random_slower_than_sequential(self):
        dram = DRAMModel()
        nbytes = 1 << 20
        seq = dram.access(nbytes, pattern=AccessPattern.SEQUENTIAL)
        rand = dram.access(nbytes, pattern=AccessPattern.RANDOM)
        assert rand > seq

    def test_zero_bytes_zero_time(self):
        assert DRAMModel().access(0) == 0.0

    def test_burst_padding(self):
        dram = DRAMModel()
        dram.access(1)  # one byte still moves a whole burst
        assert dram.stats.reads_bytes == dram.config.burst_bytes

    def test_invalid_bytes(self):
        with pytest.raises(ValueError):
            DRAMModel().access(-1)

    def test_invalid_pattern(self):
        with pytest.raises(ValueError, match="pattern"):
            DRAMModel().access(64, pattern="strided")

    def test_bandwidth_scaling(self):
        slow = DRAMModel(DRAMConfig(bandwidth_bytes_per_sec=64e9))
        fast = DRAMModel(DRAMConfig(bandwidth_bytes_per_sec=256e9))
        nbytes = 1 << 26
        assert slow.access(nbytes) == pytest.approx(4 * fast.access(nbytes), rel=0.05)


class TestStats:
    def test_read_write_separated(self):
        dram = DRAMModel()
        dram.access(128, write=False)
        dram.access(256, write=True)
        assert dram.stats.reads_bytes == 128
        assert dram.stats.writes_bytes == 256
        assert dram.stats.total_bytes == 384

    def test_row_hit_rate_sequential_high(self):
        dram = DRAMModel()
        dram.access(1 << 20, pattern=AccessPattern.SEQUENTIAL)
        assert dram.stats.row_hit_rate > 0.9

    def test_row_hit_rate_random_low(self):
        dram = DRAMModel()
        dram.access(1 << 20, pattern=AccessPattern.RANDOM)
        assert dram.stats.row_hit_rate < 0.2

    def test_busy_time_accumulates(self):
        dram = DRAMModel()
        t1 = dram.access(1 << 20)
        t2 = dram.access(1 << 20)
        assert dram.stats.busy_seconds == pytest.approx(t1 + t2)

    def test_reset(self):
        dram = DRAMModel()
        dram.access(1024)
        dram.reset()
        assert dram.stats.total_bytes == 0

    def test_stream_time_no_side_effects(self):
        dram = DRAMModel()
        dram.stream_time(1 << 20)
        assert dram.stats.total_bytes == 0
