"""E9 — ablation: degree-aware mapping vs hashing (the CGRA-ME baseline)."""

from conftest import emit

from repro.eval import run_experiment


def test_ablation_mapping(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("E9",), rounds=1, iterations=1
    )
    emit(result.text)
    for ds, row in result.data.items():
        assert row["speedup"] > 1.0, ds  # degree-aware always wins
        assert row["degree_aware_s"] < row["hashing_s"]
