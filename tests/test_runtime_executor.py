"""Tests for the pluggable job executors."""

import threading
import time

import pytest

from repro.runtime import (
    FakeExecutor,
    ProcessExecutor,
    SerialExecutor,
    SimJob,
    get_executor,
)
from repro.runtime.executor import CANCELLED

SMALL = dict(scale=0.1, hidden=8, num_layers=1)


def _grid():
    return [
        SimJob(accelerator=acc, **SMALL)
        for acc in ("aurora", "hygcn", "gcnax", "awb-gcn")
    ]


def _echo(job):
    return {"dataset": job.dataset}


def _sleepy(job):
    time.sleep(2.0)
    return {}


def _hang_on_seed_1(job):
    """A deliberately hanging job (seed 1); everything else is instant."""
    if job.seed == 1:
        time.sleep(60.0)
    return {"dataset": job.dataset, "seed": job.seed}


class TestSerial:
    def test_records_in_input_order(self):
        jobs = _grid()
        records = SerialExecutor().run(jobs, fn=_echo)
        assert [r.job for r in records] == jobs
        assert all(r.ok and r.payload == {"dataset": "cora"} for r in records)

    def test_failure_isolation(self):
        bad = SimJob(dataset="cora", accelerator="nonesuch", **SMALL)
        records = SerialExecutor().run([bad, SimJob(**SMALL)])
        assert not records[0].ok
        assert "KeyError" in records[0].error
        assert records[1].ok

    def test_empty_batch(self):
        assert SerialExecutor().run([]) == []


class TestProcessPool:
    def test_matches_serial_results(self):
        jobs = _grid()
        serial = SerialExecutor().run(jobs)
        parallel = ProcessExecutor(2).run(jobs)
        assert [r.payload for r in parallel] == [r.payload for r in serial]

    def test_failure_isolation_across_processes(self):
        bad = SimJob(dataset="cora", accelerator="nonesuch", **SMALL)
        records = ProcessExecutor(2).run([bad, SimJob(**SMALL)])
        assert not records[0].ok and records[1].ok

    def test_timeout_becomes_error_record(self):
        records = ProcessExecutor(1, timeout=0.2).run([SimJob(**SMALL)], fn=_sleepy)
        assert not records[0].ok
        assert "timeout" in records[0].error

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ProcessExecutor(0)

    def test_empty_batch(self):
        assert ProcessExecutor(2).run([]) == []

    def test_timeout_reaps_stuck_worker(self):
        """A hung job must not occupy its pool slot for the whole sweep.

        With one worker, the hanging first job would block the second
        forever if its worker were merely abandoned; reaping the worker
        and resubmitting lets the second job complete normally.
        """
        jobs = [SimJob(seed=1, **SMALL), SimJob(seed=2, **SMALL)]
        start = time.perf_counter()
        records = ProcessExecutor(1, timeout=1.5).run(jobs, fn=_hang_on_seed_1)
        elapsed = time.perf_counter() - start
        assert not records[0].ok
        assert "timeout" in records[0].error
        assert records[1].ok
        assert records[1].payload == {"dataset": "cora", "seed": 2}
        # Far below the 60s hang: the stuck worker was killed, not awaited.
        assert elapsed < 30.0

    def test_timeout_keeps_input_order(self):
        """Records stay in input order even across a pool restart."""
        jobs = [SimJob(seed=s, **SMALL) for s in (2, 1, 3)]
        records = ProcessExecutor(2, timeout=1.5).run(jobs, fn=_hang_on_seed_1)
        assert [r.job for r in records] == jobs
        by_seed = {r.job.seed: r for r in records}
        assert not by_seed[1].ok and "timeout" in by_seed[1].error
        assert by_seed[2].ok and by_seed[3].ok


class TestFake:
    def test_deterministic_and_recording(self):
        fake = FakeExecutor(fn=_echo)
        jobs = _grid()
        records = fake.run(jobs)
        assert fake.calls == jobs
        assert all(r.seconds == 0.0 for r in records)

    def test_scripted_failures(self):
        fake = FakeExecutor(
            fn=_echo, fail_when=lambda j: j.accelerator == "gcnax"
        )
        records = fake.run(_grid())
        failed = [r for r in records if not r.ok]
        assert len(failed) == 1
        assert failed[0].error == "injected failure"
        assert failed[0].job.accelerator == "gcnax"


class TestErrorRecordOrdering:
    """Error records must sit at their job's input position, for every
    executor — `run_jobs` zips records back to jobs positionally."""

    def _mixed_grid(self):
        good = SimJob(**SMALL)
        bad = SimJob(dataset="cora", accelerator="nonesuch", **SMALL)
        return [good, bad, SimJob(seed=9, **SMALL), bad]

    def test_serial_preserves_positions(self):
        jobs = self._mixed_grid()
        records = SerialExecutor().run(jobs)
        assert [r.job for r in records] == jobs
        assert [r.ok for r in records] == [True, False, True, False]

    def test_process_preserves_positions(self):
        jobs = self._mixed_grid()
        records = ProcessExecutor(2).run(jobs)
        assert [r.job for r in records] == jobs
        assert [r.ok for r in records] == [True, False, True, False]

    def test_fake_preserves_positions(self):
        jobs = self._mixed_grid()
        fake = FakeExecutor(fail_when=lambda j: j.accelerator == "nonesuch")
        records = fake.run(jobs)
        assert [r.job for r in records] == jobs
        assert [r.ok for r in records] == [True, False, True, False]


class TestCancellation:
    """The cancel event must stop a sweep mid-flight — the mechanism
    SuccessiveHalving uses to abandon losing rungs — and every
    unfinished job must come back as a CANCELLED record at its input
    position, with its fn never called."""

    def test_serial_stops_after_cancel_set(self):
        jobs = [SimJob(seed=s, **SMALL) for s in range(4)]
        cancel = threading.Event()
        ran = []

        def fn(job):
            ran.append(job.seed)
            if job.seed == 1:
                # Models a budget expiring while the job runs.
                cancel.set()
            return {"seed": job.seed}

        records = SerialExecutor().run(jobs, fn=fn, cancel=cancel)
        assert [r.job for r in records] == jobs
        assert ran == [0, 1]
        assert records[0].ok and records[1].ok
        assert [r.error for r in records[2:]] == [CANCELLED, CANCELLED]
        assert all(r.payload is None for r in records[2:])

    def test_fake_executor_hanging_job_regression(self):
        """A 'hanging' FakeExecutor job (it sets cancel instead of
        returning promptly) must not drag the rest of the batch with
        it: later jobs are cancelled, not executed."""
        jobs = [SimJob(seed=s, **SMALL) for s in range(5)]
        cancel = threading.Event()

        def hang(job):
            if job.seed == 0:
                cancel.set()
            return {"seed": job.seed}

        fake = FakeExecutor(fn=hang)
        records = fake.run(jobs, cancel=cancel)
        # Only the hanging job reached the executor's call log.
        assert [j.seed for j in fake.calls] == [0]
        assert records[0].ok
        assert all(r.error == CANCELLED for r in records[1:])

    def test_pre_cancelled_batch_runs_nothing(self):
        cancel = threading.Event()
        cancel.set()
        fake = FakeExecutor(fn=_echo)
        records = fake.run(_grid(), cancel=cancel)
        assert fake.calls == []
        assert all(r.error == CANCELLED for r in records)
        serial = SerialExecutor().run(_grid(), fn=_echo, cancel=cancel)
        assert all(r.error == CANCELLED for r in serial)

    def test_process_pool_cancel_mid_flight(self):
        """Cancelling while a worker hangs must return promptly with
        CANCELLED records instead of waiting out the hang."""
        jobs = [SimJob(seed=1, **SMALL), SimJob(seed=2, **SMALL)]
        cancel = threading.Event()
        timer = threading.Timer(0.5, cancel.set)
        timer.start()
        try:
            start = time.perf_counter()
            records = ProcessExecutor(1, timeout=120.0).run(
                jobs, fn=_hang_on_seed_1, cancel=cancel
            )
            elapsed = time.perf_counter() - start
        finally:
            timer.cancel()
        assert [r.job for r in records] == jobs
        assert records[0].error == CANCELLED
        assert records[1].error == CANCELLED
        # Far below the 60s hang: the pool was terminated, not awaited.
        assert elapsed < 30.0

    def test_run_jobs_counts_cancelled(self):
        from repro.runtime import run_jobs
        from repro.runtime.jobs import execute_job

        jobs = [SimJob(seed=s, **SMALL) for s in range(4)]
        cancel = threading.Event()

        def fn(job):
            payload = execute_job(job)
            if job.seed == 1:
                cancel.set()
            return payload

        report = run_jobs(
            jobs,
            executor=FakeExecutor(fn=fn),
            cache=False,
            cancel=cancel,
        )
        assert report.metrics.cancelled == 2
        assert report.metrics.executed == 2
        assert report.metrics.errors == 0
        cancelled = [o for o in report.outcomes if o.error == CANCELLED]
        assert len(cancelled) == 2


class TestSelection:
    def test_one_job_is_serial(self):
        assert isinstance(get_executor(1), SerialExecutor)

    def test_many_jobs_is_process_pool(self):
        ex = get_executor(4)
        assert isinstance(ex, ProcessExecutor)
        assert ex.max_workers == 4

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            get_executor(0)
