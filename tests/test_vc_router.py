"""Tests for the detailed VC router microarchitecture."""

import pytest

from repro.arch.noc import BypassSegment, FlexibleMeshTopology, NoCSimulator
from repro.arch.noc.vc_router import (
    PortDir,
    VCNetworkSimulator,
    VCRouter,
    VirtualChannel,
)
from repro.config import NoCConfig


@pytest.fixture
def sim4():
    return VCNetworkSimulator(FlexibleMeshTopology(4))


class TestPortDir:
    def test_horizontal(self):
        assert PortDir.EAST.is_horizontal
        assert PortDir.WEST.is_horizontal
        assert not PortDir.NORTH.is_horizontal
        assert not PortDir.LOCAL.is_horizontal


class TestVirtualChannel:
    def test_capacity(self):
        vc = VirtualChannel(capacity=2)
        assert vc.has_space
        vc.flits.append("a")
        vc.flits.append("b")
        assert not vc.has_space
        assert vc.occupancy == 2

    def test_release(self):
        vc = VirtualChannel(capacity=2)
        vc.out_port = PortDir.EAST
        vc.out_vc = 1
        vc.route_ready = True
        vc.release()
        assert vc.out_port is None
        assert vc.out_vc is None
        assert not vc.route_ready


class TestVCRouterState:
    def test_free_vc_allocation(self):
        r = VCRouter(0, NoCConfig(vcs_per_port=2))
        assert r.free_input_vc(PortDir.LOCAL) == 0
        r.vcs[PortDir.LOCAL][0].out_port = PortDir.EAST
        assert r.free_input_vc(PortDir.LOCAL) == 1

    def test_credit_bookkeeping(self):
        cfg = NoCConfig(vc_depth=4)
        r = VCRouter(0, cfg)
        key = (PortDir.EAST, 0)
        assert r.credits[key] == 4
        r.credits[key] -= 1
        r.return_credit(PortDir.EAST, 0)
        assert r.credits[key] == 4


class TestDelivery:
    def test_single_packet(self, sim4):
        sim4.inject(0, 15, 64)
        cycles = sim4.run()
        assert len(sim4.delivered) == 1
        assert cycles > 6  # at least the manhattan distance

    def test_local_packet(self, sim4):
        sim4.inject(5, 5, 16)
        sim4.run()
        assert len(sim4.delivered) == 1

    def test_multiple_packets(self, sim4):
        for src, dst in [(0, 15), (3, 12), (5, 10), (15, 0)]:
            sim4.inject(src, dst, 48)
        sim4.run()
        assert len(sim4.delivered) == 4

    def test_multi_flit_wormhole_order(self, sim4):
        """Flits of one packet must eject in order (wormhole invariant)."""
        pkt = sim4.inject(0, 3, 16 * 6)
        sim4.run()
        assert pkt.done_cycle is not None
        assert pkt.num_flits == 6

    def test_latency_grows_with_distance(self):
        near = VCNetworkSimulator(FlexibleMeshTopology(8))
        near.inject(0, 1, 16)
        t_near = near.run()
        far = VCNetworkSimulator(FlexibleMeshTopology(8))
        far.inject(0, 63, 16)
        t_far = far.run()
        assert t_far > t_near

    def test_turn_costs_extra(self):
        """A route with a turn pays the second switch stage."""
        straight = VCNetworkSimulator(FlexibleMeshTopology(8))
        straight.inject(0, 3, 16)  # pure horizontal
        t_straight = straight.run()
        turned = VCNetworkSimulator(FlexibleMeshTopology(8))
        turned.inject(0, 8 * 2 + 1, 16)  # 1 east + 2 south: one turn
        t_turned = turned.run()
        assert t_turned >= t_straight

    def test_bypass_segment_used(self):
        topo = FlexibleMeshTopology(8)
        topo.add_bypass_segment(BypassSegment("row", 0, 0, 7))
        sim = VCNetworkSimulator(topo)
        sim.inject(0, 7, 16)
        cycles = sim.run()
        plain = VCNetworkSimulator(FlexibleMeshTopology(8))
        plain.inject(0, 7, 16)
        assert cycles < plain.run()

    def test_max_cycles_guard(self, sim4):
        sim4.inject(0, 15, 1 << 22)
        with pytest.raises(RuntimeError, match="did not drain"):
            sim4.run(max_cycles=20)


class TestContention:
    def test_va_or_sa_pressure_recorded(self):
        """Many packets contending for one destination stress the
        allocators; the stats must reflect it."""
        sim = VCNetworkSimulator(
            FlexibleMeshTopology(4), NoCConfig(vcs_per_port=1, vc_depth=2)
        )
        for src in (0, 3, 12, 15, 1, 2):
            sim.inject(src, 5, 96)
        sim.run()
        assert len(sim.delivered) == 6
        assert sim.total_va_stalls + sim.total_sa_conflicts > 0

    def test_more_vcs_not_slower(self):
        def drain(vcs):
            sim = VCNetworkSimulator(
                FlexibleMeshTopology(4), NoCConfig(vcs_per_port=vcs, vc_depth=2)
            )
            for src in (0, 3, 12, 15):
                sim.inject(src, 5, 64)
            return sim.run()

        assert drain(4) <= drain(1) * 1.5


class TestArbitrationFairness:
    """Separable SA round-robin must not starve any input port."""

    def test_two_inputs_share_one_output(self):
        """Two input ports streaming at the same output both make
        progress: the rotating-start arbiter grants every contender at
        least once per full rotation, so neither port ever waits more
        than ``len(PortDir)`` cycles for a grant."""
        from repro.arch.noc.packet import Flit, Packet

        cfg = NoCConfig(vcs_per_port=2, vc_depth=8)
        router = VCRouter(0, cfg)
        per_port = 12
        grants = {PortDir.NORTH: 0, PortDir.WEST: 0}
        last_grant_cycle = {PortDir.NORTH: -1, PortDir.WEST: -1}
        max_wait = {PortDir.NORTH: 0, PortDir.WEST: 0}
        rotation = len(list(PortDir))
        for port in grants:
            packet = Packet(
                pid=0 if port is PortDir.NORTH else 1,
                src=0,
                dst=1,
                size_bytes=per_port * cfg.flit_bytes,
                inject_cycle=0,
                route=(0, 1),
            )
            packet.num_flits = per_port
            vc = router.vcs[port][0]
            for i in range(per_port):
                vc.flits.append(Flit(packet=packet, index=i, hop=0, ready_cycle=0))
            vc.out_port = PortDir.EAST
            vc.route_ready = True
        router.stage_va()

        for cycle in range(per_port * rotation):
            loaded = {p for p in grants if router.vcs[p][0].occupancy > 0}
            winners = router.stage_sa()
            for port, vc_index in winners:
                _flit, out_port, out_vc, _lat = router.pop_winner(port, vc_index)
                router.return_credit(out_port, out_vc)  # infinite sink
                grants[port] += 1
                if port in loaded:
                    wait = cycle - last_grant_cycle[port]
                    max_wait[port] = max(max_wait[port], wait)
                    last_grant_cycle[port] = cycle
            if not loaded:
                break
        # Both ports drain completely and neither starves: the longest
        # grant-to-grant gap stays within one arbiter rotation.
        assert grants[PortDir.NORTH] == per_port
        assert grants[PortDir.WEST] == per_port
        assert max_wait[PortDir.NORTH] <= rotation
        assert max_wait[PortDir.WEST] <= rotation

    def test_saturating_symmetric_traffic_drains_evenly(self):
        """Every corner floods the opposite corner; nobody starves: the
        network drains and each source lands all of its packets."""
        sim = VCNetworkSimulator(
            FlexibleMeshTopology(4), NoCConfig(vcs_per_port=2, vc_depth=2)
        )
        pairs = [
            (0, 15), (15, 0), (3, 12), (12, 3),
            (1, 14), (14, 1), (2, 13), (13, 2),
        ]
        per_source = 8
        for src, dst in pairs:
            for _ in range(per_source):
                sim.inject(src, dst, 64)
        sim.run(max_cycles=50_000)
        assert len(sim.delivered) == len(pairs) * per_source
        delivered_by_src = {src: 0 for src, _ in pairs}
        for packet in sim.delivered:
            delivered_by_src[packet.src] += 1
        assert all(n == per_source for n in delivered_by_src.values())
        assert sim.total_sa_conflicts + sim.total_va_stalls > 0


class TestAgreementWithLumpedModel:
    """The detailed router should broadly agree with the lumped network
    simulator — same topology, same traffic, within ~3x on drain time."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_drain_agreement(self, seed, rng):
        import numpy as np

        rng = np.random.default_rng(seed)
        flows = []
        for _ in range(20):
            src = int(rng.integers(0, 16))
            dst = int(rng.integers(0, 16))
            if src != dst:
                flows.append((src, dst, int(rng.integers(16, 96))))

        detailed = VCNetworkSimulator(FlexibleMeshTopology(4))
        for src, dst, nbytes in flows:
            detailed.inject(src, dst, nbytes)
        t_detailed = detailed.run()

        lumped = NoCSimulator(FlexibleMeshTopology(4))
        for src, dst, nbytes in flows:
            lumped.inject(src, dst, nbytes)
        t_lumped = lumped.run().cycles

        assert t_detailed < 3 * t_lumped
        assert t_lumped < 3 * t_detailed
