"""Resource partitioning — the paper's Algorithm 2.

Splits the PE array into sub-accelerator A (edge update + aggregation;
irregular, message-passing communication) and sub-accelerator B (vertex
update; regular weight-stationary dataflow), choosing the split ``a`` that
balances their estimated execution times to maximise pipeline efficiency:

* ``T_A(a) = max(AComp1, AComp2) + AComp3`` with
  ``AComp1 = O_ue / (a·Flops)``,
  ``AComp2 = (O_a − E_f·m) / (a·Flops)``,
  ``AComp3 = E_f·m / (a·Flops)``;
* ``T_B(a) = O_uv / ((P−a)·Flops)``;
* pick ``a`` minimising ``|T_A − T_B|``.

If the model has no vertex update (EdgeConv), one accelerator is formed
(``a = P``); if it has no edge update (GIN), ``AComp1 = 0`` and execution
starts at aggregation.  The algorithm re-runs per subgraph / layer and its
~100-cycle latency overlaps with the previous subgraph's compute.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mapping.base import PERegion
from ..models.workload import LayerWorkload

__all__ = ["PartitionStrategy", "partition", "split_regions", "PARTITION_CYCLES"]

PARTITION_CYCLES = 100  # overlappable preprocessing latency (§VI-D)


@dataclass(frozen=True)
class PartitionStrategy:
    """Output of Algorithm 2: the (a, b) PE split and its time estimates."""

    a: int  # PEs for sub-accelerator A (edge update + aggregation)
    b: int  # PEs for sub-accelerator B (vertex update)
    t_a_seconds: float
    t_b_seconds: float
    single_accelerator: bool  # True when no vertex update exists

    @property
    def total_pes(self) -> int:
        return self.a + self.b

    @property
    def imbalance(self) -> float:
        """|T_A − T_B| relative to the slower side (0 = perfectly balanced)."""
        slow = max(self.t_a_seconds, self.t_b_seconds)
        if slow == 0:
            return 0.0
        return abs(self.t_a_seconds - self.t_b_seconds) / slow

    @property
    def pipeline_interval(self) -> float:
        """Steady-state initiation interval of the two-stage pipeline."""
        return max(self.t_a_seconds, self.t_b_seconds)


def _t_a(workload: LayerWorkload, a: int, flops: float) -> float:
    """T_A per Algorithm 2, lines 2–7."""
    if a == 0:
        return float("inf")
    ef_m = workload.E_f * workload.num_edges
    acomp1 = workload.O_ue / (a * flops)
    acomp2 = max(workload.O_a - ef_m, 0) / (a * flops)
    acomp3 = ef_m / (a * flops)
    return max(acomp1, acomp2) + acomp3


def _t_b(workload: LayerWorkload, b: int, flops: float) -> float:
    """T_B per Algorithm 2, lines 9–11."""
    if b == 0:
        return float("inf")
    return workload.O_uv / (b * flops)


def partition(
    workload: LayerWorkload,
    num_pes: int,
    flops_per_pe: float,
) -> PartitionStrategy:
    """Run Algorithm 2 for one layer workload.

    Parameters
    ----------
    num_pes:
        ``P`` — PEs available on the array (or the tile's region).
    flops_per_pe:
        ``Flops`` — operations per second of one PE.
    """
    if num_pes < 1:
        raise ValueError("num_pes must be >= 1")
    if flops_per_pe <= 0:
        raise ValueError("flops_per_pe must be positive")

    if workload.O_uv == 0:
        # No vertex update: only one accelerator is formed (paper §V).
        t_a = _t_a(workload, num_pes, flops_per_pe)
        return PartitionStrategy(
            a=num_pes,
            b=0,
            t_a_seconds=t_a,
            t_b_seconds=0.0,
            single_accelerator=True,
        )
    if workload.O_ue == 0 and workload.O_a == 0:
        # Degenerate: vertex update only.
        return PartitionStrategy(
            a=0,
            b=num_pes,
            t_a_seconds=0.0,
            t_b_seconds=_t_b(workload, num_pes, flops_per_pe),
            single_accelerator=True,
        )

    best_a = 1
    best_diff = float("inf")
    best_times = (0.0, 0.0)
    for a in range(1, num_pes):
        t_a = _t_a(workload, a, flops_per_pe)
        t_b = _t_b(workload, num_pes - a, flops_per_pe)
        diff = abs(t_a - t_b)
        if diff < best_diff:
            best_diff = diff
            best_a = a
            best_times = (t_a, t_b)
    return PartitionStrategy(
        a=best_a,
        b=num_pes - best_a,
        t_a_seconds=best_times[0],
        t_b_seconds=best_times[1],
        single_accelerator=False,
    )


def split_regions(
    array_k: int, strategy: PartitionStrategy
) -> tuple[PERegion, PERegion | None]:
    """Realise a partition as two horizontal bands of the K×K array.

    Sub-accelerator A takes the top rows (closest to the DRAM-interface
    crossbar feeding graph data); B takes the remainder.  Row-granular
    splitting matches the row-wise bypass wires and ring wrap-arounds.
    """
    total = array_k * array_k
    if strategy.total_pes != total:
        raise ValueError(
            f"strategy covers {strategy.total_pes} PEs, array has {total}"
        )
    if strategy.b == 0:
        return PERegion(0, 0, array_k, array_k, array_k), None
    if strategy.a == 0:
        return (
            PERegion(0, 0, array_k, array_k, array_k),
            None,
        )
    a_rows = int(round(strategy.a / array_k))
    a_rows = min(max(a_rows, 1), array_k - 1)
    region_a = PERegion(0, 0, array_k, a_rows, array_k)
    region_b = PERegion(0, a_rows, array_k, array_k, array_k)
    return region_a, region_b
