"""Instruction stream for the Aurora controller.

The walk-through in paper §III-E ends with the instruction dispatcher
issuing instructions "as conventional accelerators".  We model a compact
ISA covering what the configuration + execution flow needs; the
controller lowers a layer program into this stream and the dispatcher
replays it with simple latency accounting.  The instruction stream is also
what the tests use to check the controller sequences phases correctly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Opcode", "Instruction", "InstructionBuffer"]


class Opcode(enum.Enum):
    """Aurora controller opcodes."""

    CONFIG_NOC = "config_noc"  # install bypass segments / ring regions
    CONFIG_PE = "config_pe"  # set PE datapaths for a region
    LOAD_GRAPH = "load_graph"  # DMA a tile's CSR + features from DRAM
    LOAD_WEIGHTS = "load_weights"  # DMA stationary weights into a region
    EXEC_PHASE = "exec_phase"  # run one GNN phase on a sub-accelerator
    FORWARD = "forward"  # stream sub-accelerator A output into B
    STORE = "store"  # write output features back to DRAM
    BARRIER = "barrier"  # wait for outstanding work
    HALT = "halt"


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction with free-form operands."""

    opcode: Opcode
    operands: dict[str, Any] = field(default_factory=dict)

    def operand(self, name: str, default: Any = None) -> Any:
        return self.operands.get(name, default)


class InstructionBuffer:
    """The on-chip instruction buffer the host fills (Fig. 3, step 2)."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: list[Instruction] = []
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def push(self, instruction: Instruction) -> None:
        if self.is_full:
            raise OverflowError("instruction buffer full")
        self._entries.append(instruction)

    def extend(self, instructions: list[Instruction]) -> None:
        for instr in instructions:
            self.push(instr)

    def fetch(self) -> Instruction | None:
        """Next instruction in program order, or None at the end."""
        if self._cursor >= len(self._entries):
            return None
        instr = self._entries[self._cursor]
        self._cursor += 1
        return instr

    def reset(self) -> None:
        self._entries.clear()
        self._cursor = 0

    def remaining(self) -> int:
        return len(self._entries) - self._cursor

    def program(self) -> tuple[Instruction, ...]:
        """The full buffered program (for inspection/testing)."""
        return tuple(self._entries)
