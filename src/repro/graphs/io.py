"""Graph persistence and interchange.

Users with real datasets (the actual Cora/Reddit files, or their own
graphs) can bring them in through these loaders instead of the synthetic
registry: a compressed ``.npz`` round-trip format and a plain edge-list
text parser (the format most public graph dumps use).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from .csr import CSRGraph, from_edge_list

__all__ = ["save_npz", "load_npz", "read_edge_list_file", "write_edge_list_file"]

_FORMAT_VERSION = 1


def save_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Serialise a graph (structure + attributes) to a compressed .npz."""
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        indptr=graph.indptr,
        indices=graph.indices,
        num_features=np.int64(graph.num_features),
        feature_density=np.float64(graph.feature_density),
        edge_feature_dim=np.int64(graph.edge_feature_dim),
        name=np.str_(graph.name),
    )


def load_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph previously written by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported graph file version {version} "
                f"(this build reads version {_FORMAT_VERSION})"
            )
        return CSRGraph(
            data["indptr"],
            data["indices"],
            num_features=int(data["num_features"]),
            feature_density=float(data["feature_density"]),
            edge_feature_dim=int(data["edge_feature_dim"]),
            name=str(data["name"]),
        )


def read_edge_list_file(
    path: str | os.PathLike,
    *,
    num_vertices: int | None = None,
    num_features: int = 1,
    feature_density: float = 1.0,
    comment: str = "#",
    dedup: bool = True,
) -> CSRGraph:
    """Parse a whitespace-separated ``src dst`` edge-list text file.

    Lines starting with ``comment`` are skipped.  ``num_vertices``
    defaults to ``max(vertex id) + 1``.
    """
    path = Path(path)
    edges: list[tuple[int, int]] = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(
                    f"{path}:{lineno}: expected 'src dst', got {line!r}"
                )
            try:
                edges.append((int(parts[0]), int(parts[1])))
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{lineno}: non-integer vertex id in {line!r}"
                ) from exc
    if num_vertices is None:
        num_vertices = 1 + max(
            (max(a, b) for a, b in edges), default=-1
        )
        num_vertices = max(num_vertices, 1)
    return from_edge_list(
        num_vertices,
        edges,
        num_features=num_features,
        feature_density=feature_density,
        name=path.stem,
        dedup=dedup,
    )


def write_edge_list_file(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write the graph as ``src dst`` lines (with a header comment)."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"# {graph.name}: {graph.num_vertices} vertices, "
                 f"{graph.num_edges} edges\n")
        for src, dst in graph.edges():
            fh.write(f"{src} {dst}\n")
