#!/usr/bin/env python3
"""Regenerate every table and figure of the paper (experiments E1-E12).

This is the one-shot reproduction driver: it runs the full experiment
registry and prints each regenerated artifact next to its paper
counterpart.  Expect a few minutes of runtime — the five-dataset sweep
behind Figs. 7-10 runs once and is shared.

Run:  python examples/reproduce_paper.py
"""

import time

from repro.eval import EXPERIMENTS, run_experiment


def main() -> None:
    t0 = time.time()
    for eid in EXPERIMENTS:
        result = run_experiment(eid)
        print(f"\n{'=' * 72}\n{result.experiment_id} — {result.title}\n{'=' * 72}")
        print(result.text)
    print(f"\nAll {len(EXPERIMENTS)} experiments regenerated in "
          f"{time.time() - t0:.1f}s.")


if __name__ == "__main__":
    main()
