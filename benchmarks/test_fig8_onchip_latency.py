"""E4 — regenerate Fig. 8: on-chip communication latency.

Paper averages: Aurora reduces on-chip communication by 75% (HyGCN),
87% (AWB-GCN), 50% (GCNAX), 68% (ReGNN), 64% (FlowGNN) — i.e. baselines
carry 2-8x Aurora's communication cycles, with AWB-GCN's multi-stage
partial routing the worst and GCNAX's fused loops the closest.
"""

from conftest import emit

from repro.eval import render_normalized_figure

# Paper Fig. 8 average reductions per baseline (percent).
PAPER = {"hygcn": 75, "awb-gcn": 87, "gcnax": 50, "regnn": 68, "flowgnn": 64}


def test_fig8_onchip_latency(benchmark, sweep):
    text = benchmark(
        render_normalized_figure,
        sweep,
        "onchip_latency",
        title="Fig. 8: on-chip communication latency (baseline / Aurora)",
    )
    emit(text)
    for base, paper_red in PAPER.items():
        measured = sweep.average_reduction_vs("onchip_latency", base)
        # Shape check: within 15 percentage points of the paper's average.
        assert abs(measured - paper_red) < 15, (base, measured, paper_red)
    # Ordering: AWB-GCN worst, GCNAX best among baselines.
    reds = {
        b: sweep.average_reduction_vs("onchip_latency", b) for b in PAPER
    }
    assert max(reds, key=reds.get) == "awb-gcn"
    assert min(reds, key=reds.get) == "gcnax"
