"""Tests for the shared simulation result types."""

import pytest

from repro.arch.energy import EnergyCounters, EnergyModel
from repro.core.results import PhaseBreakdown, SimulationResult


def _result(seconds: float, mac_ops: int = 10) -> SimulationResult:
    counters = EnergyCounters(mac_ops=mac_ops, dram_bytes=100)
    return SimulationResult(
        accelerator="aurora",
        model_name="gcn",
        graph_name="g",
        total_seconds=seconds,
        breakdown=PhaseBreakdown(seconds / 2, seconds / 4, seconds / 4),
        dram_bytes=100,
        onchip_comm_cycles=50,
        energy=EnergyModel().evaluate(counters),
        counters=counters,
    )


class TestPhaseBreakdown:
    def test_serial_sum(self):
        b = PhaseBreakdown(1.0, 2.0, 3.0)
        assert b.serial_seconds == 6.0


class TestSimulationResult:
    def test_cycles(self):
        r = _result(1e-3)
        assert r.total_cycles == pytest.approx(1e-3 * 700e6)

    def test_speedup_over(self):
        fast, slow = _result(1.0), _result(2.0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)
        assert slow.speedup_over(fast) == pytest.approx(0.5)

    def test_combine_sums_time_and_bytes(self):
        c = SimulationResult.combine([_result(1.0), _result(2.0)])
        assert c.total_seconds == pytest.approx(3.0)
        assert c.dram_bytes == 200
        assert c.onchip_comm_cycles == 100
        assert c.num_tiles == 2

    def test_combine_merges_energy(self):
        c = SimulationResult.combine([_result(1.0, mac_ops=10), _result(1.0, mac_ops=20)])
        assert c.counters.mac_ops == 30
        assert c.energy.total > _result(1.0, mac_ops=10).energy.total

    def test_combine_breakdown(self):
        c = SimulationResult.combine([_result(1.0), _result(3.0)])
        assert c.breakdown.compute_seconds == pytest.approx(2.0)

    def test_combine_empty_rejected(self):
        with pytest.raises(ValueError):
            SimulationResult.combine([])

    def test_energy_joules_alias(self):
        r = _result(1.0)
        assert r.energy_joules == r.energy.total


class TestDictRoundTrip:
    """to_dict/from_dict must be lossless — the cache stores this form."""

    def test_round_trip_preserves_every_field(self):
        r = _result(1.2345)
        r.notes["stage_a_seconds"] = [0.1, 0.2]
        back = SimulationResult.from_dict(r.to_dict())
        assert back.to_dict() == r.to_dict()
        assert back.accelerator == r.accelerator
        assert back.total_seconds == r.total_seconds
        assert back.breakdown == r.breakdown
        assert back.energy == r.energy
        assert back.counters == r.counters
        assert back.notes == r.notes

    def test_survives_json_encoding(self):
        import json

        r = _result(1e-3)
        encoded = json.loads(json.dumps(r.to_dict()))
        assert SimulationResult.from_dict(encoded).to_dict() == r.to_dict()

    def test_numpy_scalars_are_coerced(self):
        import json

        import numpy as np

        r = _result(1.0)
        r.notes["hops"] = np.float64(2.5)
        r.notes["ids"] = [np.int64(3), np.int64(4)]
        d = r.to_dict()
        json.dumps(d)
        assert d["notes"]["hops"] == 2.5
        assert d["notes"]["ids"] == [3, 4]

    def test_derived_properties_survive(self):
        r = _result(2e-3)
        back = SimulationResult.from_dict(r.to_dict())
        assert back.total_cycles == r.total_cycles
        assert back.energy_joules == r.energy_joules
