"""Tests for degree-aware/hashing mapping and traffic extraction."""

import numpy as np
import pytest

from repro.graphs import from_edge_list, power_law_graph, star_graph
from repro.mapping import (
    MappingResult,
    PERegion,
    aggregate_flows,
    degree_aware_map,
    edge_flows,
    hashing_map,
)
from repro.mapping.traffic import multicast_flows


@pytest.fixture
def region():
    return PERegion(0, 0, 8, 4, 8)  # 4 rows x 8 cols of an 8x8 array


class TestPERegion:
    def test_geometry(self, region):
        assert region.width == 8
        assert region.height == 4
        assert region.num_pes == 32

    def test_node_ids_row_major(self, region):
        ids = region.node_ids()
        assert ids[0] == 0
        assert ids[8] == 8  # second row starts at node 8 in an 8-wide array

    def test_local_to_node(self, region):
        assert region.local_to_node(0) == 0
        assert region.local_to_node(9) == 9

    def test_local_out_of_range(self, region):
        with pytest.raises(IndexError):
            region.local_to_node(32)

    def test_contains(self, region):
        assert region.contains_node(0)
        assert not region.contains_node(63)

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            PERegion(0, 0, 9, 4, 8)


class TestDegreeAware:
    def test_all_vertices_mapped_in_region(self, medium_graph, region):
        cap = -(-medium_graph.num_vertices // region.num_pes)
        m = degree_aware_map(medium_graph, region, pe_vertex_capacity=cap)
        assert m.vertex_to_pe.size == medium_graph.num_vertices
        nodes = set(region.node_ids().tolist())
        assert set(np.unique(m.vertex_to_pe).tolist()) <= nodes

    def test_capacity_respected(self, medium_graph, region):
        cap = -(-medium_graph.num_vertices // region.num_pes) + 1
        m = degree_aware_map(medium_graph, region, pe_vertex_capacity=cap)
        assert m.pe_loads().max() <= cap

    def test_over_capacity_rejected(self, medium_graph, region):
        with pytest.raises(ValueError, match="capacity"):
            degree_aware_map(medium_graph, region, pe_vertex_capacity=1)

    def test_hubs_on_s_pes(self, region):
        g = star_graph(40, num_features=4)  # vertex 0 is the hub
        m = degree_aware_map(g, region, pe_vertex_capacity=3)
        assert m.vertex_to_pe[0] in m.s_pe_nodes
        assert 0 in m.high_degree_vertices

    def test_hub_selection_counts_in_degree(self, region):
        """A pure sink (no out-edges, many in-edges) must still be a hub."""
        edges = [(i, 0) for i in range(1, 30)]
        g = from_edge_list(30, edges, num_features=4)
        m = degree_aware_map(g, region, pe_vertex_capacity=2)
        assert 0 in m.high_degree_vertices

    def test_s_pes_distinct_rows_columns(self, medium_graph, region):
        cap = -(-medium_graph.num_vertices // region.num_pes)
        m = degree_aware_map(medium_graph, region, pe_vertex_capacity=cap)
        k = region.array_k
        rows = [n // k for n in m.s_pe_nodes]
        cols = [n % k for n in m.s_pe_nodes]
        assert len(set(rows)) == len(rows)
        assert len(set(cols)) == len(cols)

    def test_bypass_segments_configured(self, medium_graph, region):
        cap = -(-medium_graph.num_vertices // region.num_pes)
        m = degree_aware_map(medium_graph, region, pe_vertex_capacity=cap)
        assert len(m.bypass_segments) > 0
        # At most one row segment per row (single physical wire).
        rows = [s.line for s in m.bypass_segments if s.axis == "row"]
        assert len(rows) == len(set(rows))

    def test_deterministic(self, medium_graph, region):
        cap = -(-medium_graph.num_vertices // region.num_pes)
        a = degree_aware_map(medium_graph, region, pe_vertex_capacity=cap)
        b = degree_aware_map(medium_graph, region, pe_vertex_capacity=cap)
        assert np.array_equal(a.vertex_to_pe, b.vertex_to_pe)

    def test_id_locality_preserved(self, region):
        """Consecutive low-degree ids should land on the same or a nearby PE."""
        g = power_law_graph(120, 300, locality=0.5, seed=2)
        cap = -(-120 // region.num_pes)
        m = degree_aware_map(g, region, pe_vertex_capacity=cap)
        low = [v for v in range(120) if v not in m.high_degree_vertices]
        same_pe = sum(
            m.vertex_to_pe[a] == m.vertex_to_pe[b]
            for a, b in zip(low, low[1:])
        )
        assert same_pe > len(low) * 0.4

    def test_empty_graph(self, region):
        g = from_edge_list(0, [])
        m = degree_aware_map(g, region, pe_vertex_capacity=4)
        assert m.num_vertices == 0

    def test_backtracking_mode(self, medium_graph, region):
        cap = -(-medium_graph.num_vertices // region.num_pes)
        m = degree_aware_map(
            medium_graph, region, pe_vertex_capacity=cap, use_backtracking=True
        )
        assert m.vertex_to_pe.size == medium_graph.num_vertices

    def test_beats_hashing_on_drain(self, region):
        """Degree-aware mapping (with its bypass boost) should drain a
        hub-heavy traffic pattern faster than hashing on a plain mesh.

        Note the comparison is end-to-end: degree-aware *concentrates*
        hubs on boosted S_PEs (raw load imbalance may be higher), and the
        bypass bandwidth is what turns that into a win.
        """
        from repro.arch.noc import AnalyticalNoCModel, FlexibleMeshTopology, TrafficMatrix
        from repro.config import NoCConfig

        g = power_law_graph(180, 1400, exponent=1.8, seed=5)
        cap = -(-180 // region.num_pes)
        k = region.array_k

        def drain(mapping, boost):
            mc = multicast_flows(g, mapping, g.num_features * 8)
            topo = FlexibleMeshTopology(k)
            for seg in mapping.bypass_segments:
                try:
                    topo.add_bypass_segment(seg)
                except ValueError:
                    continue
            res = AnalyticalNoCModel(topo, NoCConfig()).evaluate(
                TrafficMatrix.from_flows(
                    aggregate_flows(mc.flows, k * k), 16, k
                ),
                boost_nodes=mapping.s_pe_nodes,
                boost_factor=boost,
                eject_flits=mc.eject_bytes // 16,
                inject_flits=mc.inject_bytes // 16,
            )
            return res.drain_cycles

        aware = degree_aware_map(g, region, pe_vertex_capacity=cap)
        hashed = hashing_map(g, region)
        assert drain(aware, boost=region.width / 2) < drain(hashed, boost=1.0)


class TestHashing:
    def test_modulo_layout(self, region):
        g = from_edge_list(5, [(0, 1)], num_features=2)
        m = hashing_map(g, region)
        nodes = region.node_ids()
        assert m.vertex_to_pe.tolist() == nodes[:5].tolist()

    def test_no_degree_awareness(self, medium_graph, region):
        m = hashing_map(medium_graph, region)
        assert m.s_pe_nodes == ()
        assert m.bypass_segments == ()

    def test_capacity_check(self, medium_graph, region):
        with pytest.raises(ValueError, match="capacity"):
            hashing_map(medium_graph, region, pe_vertex_capacity=1)

    def test_stride(self, region):
        g = from_edge_list(4, [(0, 1)], num_features=2)
        m = hashing_map(g, region, stride=3)
        nodes = region.node_ids()
        assert m.vertex_to_pe[1] == nodes[3]


class TestEdgeFlows:
    def test_local_edges_dropped(self, region):
        g = from_edge_list(2, [(0, 1)], num_features=2)
        v2p = np.array([0, 0])
        m = MappingResult(policy="x", region=region, vertex_to_pe=v2p)
        assert edge_flows(g, m, 16).shape[0] == 0

    def test_remote_edge_counted(self, region):
        g = from_edge_list(2, [(0, 1)], num_features=2)
        m = MappingResult(
            policy="x", region=region, vertex_to_pe=np.array([0, 1])
        )
        flows = edge_flows(g, m, 16)
        assert flows.tolist() == [[0, 1, 16]]

    def test_multicast_dedup(self, region):
        """Two edges from one vertex to vertices on the same PE: one message."""
        g = from_edge_list(3, [(0, 1), (0, 2)], num_features=2)
        m = MappingResult(
            policy="x", region=region, vertex_to_pe=np.array([0, 5, 5])
        )
        assert edge_flows(g, m, 16, dedup_per_pe=True).shape[0] == 1
        assert edge_flows(g, m, 16, dedup_per_pe=False).shape[0] == 2

    def test_reduction_dedup(self, region):
        """Two edges from one PE to the same destination vertex: one partial."""
        g = from_edge_list(3, [(0, 2), (1, 2)], num_features=2)
        m = MappingResult(
            policy="x", region=region, vertex_to_pe=np.array([0, 0, 5])
        )
        assert edge_flows(g, m, 16, reduction_dedup=True).shape[0] == 1

    def test_aggregate_flows(self):
        flows = np.array([[0, 1, 16], [0, 1, 16], [2, 3, 8]])
        agg = aggregate_flows(flows, 64)
        assert agg.shape[0] == 2
        assert agg[0].tolist() == [0, 1, 32]

    def test_mapping_size_mismatch(self, region):
        g = from_edge_list(3, [(0, 1)], num_features=2)
        m = MappingResult(
            policy="x", region=region, vertex_to_pe=np.array([0, 1])
        )
        with pytest.raises(ValueError, match="cover"):
            edge_flows(g, m, 16)


class TestMulticastFlows:
    def test_inject_once_per_vertex(self, region):
        """A vertex with neighbors on 3 PEs injects one payload."""
        g = from_edge_list(4, [(0, 1), (0, 2), (0, 3)], num_features=2)
        m = MappingResult(
            policy="x", region=region, vertex_to_pe=np.array([0, 1, 2, 3])
        )
        mc = multicast_flows(g, m, 100)
        assert mc.inject_bytes[0] == 100
        assert mc.inject_bytes.sum() == 100

    def test_eject_full_payload_each(self, region):
        g = from_edge_list(4, [(0, 1), (0, 2), (0, 3)], num_features=2)
        m = MappingResult(
            policy="x", region=region, vertex_to_pe=np.array([0, 1, 2, 3])
        )
        mc = multicast_flows(g, m, 100)
        assert mc.eject_bytes[1] == 100
        assert mc.eject_bytes.sum() == 300

    def test_link_bytes_tree_shared(self, region):
        g = from_edge_list(4, [(0, 1), (0, 2), (0, 3)], num_features=2)
        m = MappingResult(
            policy="x", region=region, vertex_to_pe=np.array([0, 1, 2, 3])
        )
        mc = multicast_flows(g, m, 99)
        # Payload split across the 3 destinations: 33 bytes per branch.
        assert mc.flows[:, 2].tolist() == [33, 33, 33]

    def test_empty_graph(self, region):
        g = from_edge_list(2, [])
        m = MappingResult(
            policy="x", region=region, vertex_to_pe=np.array([0, 1])
        )
        mc = multicast_flows(g, m, 10)
        assert mc.flows.shape[0] == 0
        assert mc.eject_bytes.sum() == 0
