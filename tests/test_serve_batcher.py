"""Tests for single-flight deduplication and micro-batching."""

import asyncio

import pytest

from repro.runtime import SimJob, job_key
from repro.runtime.runner import JobOutcome, SweepMetrics, SweepReport
from repro.serve.batcher import JobBatcher

SMALL = dict(scale=0.1, hidden=8, num_layers=1)


def make_runner(calls, *, delay=0.0, cached_keys=()):
    """Scripted async runner: records batches, fabricates outcomes."""

    async def runner(jobs):
        calls.append([job_key(job) for job in jobs])
        if delay:
            await asyncio.sleep(delay)
        outcomes = [
            JobOutcome(
                job,
                job_key(job),
                None,
                cached=job_key(job) in cached_keys,
            )
            for job in jobs
        ]
        return SweepReport(outcomes, SweepMetrics())

    return runner


class TestSingleFlight:
    def test_concurrent_identical_submits_execute_once(self):
        calls = []

        async def run():
            batcher = JobBatcher(
                runner=make_runner(calls, delay=0.05), batch_window=0.01
            )
            job = SimJob(**SMALL)
            results = await asyncio.gather(
                batcher.submit(job), batcher.submit(job), batcher.submit(job)
            )
            return results

        results = asyncio.run(run())
        # One execution total, every caller got the same outcome back.
        assert sum(len(batch) for batch in calls) == 1
        outcomes = [outcome for outcome, _ in results]
        assert all(outcome.key == outcomes[0].key for outcome in outcomes)
        joins = [joined for _, joined in results]
        assert joins.count(True) == 2  # two of three joined in flight
        assert joins.count(False) == 1

    def test_sequential_submits_execute_separately(self):
        calls = []

        async def run():
            batcher = JobBatcher(runner=make_runner(calls), batch_window=0.0)
            job = SimJob(**SMALL)
            await batcher.submit(job)
            await batcher.submit(job)

        asyncio.run(run())
        # No overlap → no single-flight join; each submit executes.
        assert sum(len(batch) for batch in calls) == 2

    def test_join_counter(self):
        calls = []

        async def run():
            batcher = JobBatcher(
                runner=make_runner(calls, delay=0.05), batch_window=0.01
            )
            job = SimJob(**SMALL)
            await asyncio.gather(batcher.submit(job), batcher.submit(job))
            return batcher

        batcher = asyncio.run(run())
        assert batcher.singleflight_joins == 1


class TestBatching:
    def test_window_groups_distinct_jobs(self):
        calls = []

        async def run():
            batcher = JobBatcher(
                runner=make_runner(calls), batch_window=0.03, max_batch=8
            )
            jobs = [SimJob(seed=s, **SMALL) for s in range(3)]
            await asyncio.gather(*(batcher.submit(j) for j in jobs))

        asyncio.run(run())
        assert len(calls) == 1  # one micro-batch
        assert len(calls[0]) == 3

    def test_max_batch_flushes_early(self):
        calls = []

        async def run():
            batcher = JobBatcher(
                runner=make_runner(calls), batch_window=5.0, max_batch=2
            )
            jobs = [SimJob(seed=s, **SMALL) for s in range(2)]
            # A 5s window would stall forever; max_batch must flush now.
            await asyncio.wait_for(
                asyncio.gather(*(batcher.submit(j) for j in jobs)), timeout=2.0
            )

        asyncio.run(run())
        assert len(calls) == 1
        assert len(calls[0]) == 2

    def test_cached_flag_passes_through(self):
        calls = []
        job = SimJob(**SMALL)

        async def run():
            batcher = JobBatcher(
                runner=make_runner(calls, cached_keys={job_key(job)}),
                batch_window=0.0,
            )
            outcome, _ = await batcher.submit(job)
            return outcome

        assert asyncio.run(run()).cached is True


class TestFlushRearm:
    def test_submit_during_execution_is_not_stranded(self):
        """A job submitted while a batch executes must still flush.

        Regression: the window-flush task used to take ``_pending`` once
        and exit after executing it.  A submit arriving *during* that
        execution saw the flush task as live, armed nothing, and its job
        sat in ``_pending`` forever unless more traffic happened along.
        """
        calls = []

        async def run():
            gate = asyncio.Event()
            started = asyncio.Event()

            async def gated_runner(jobs):
                calls.append([job_key(job) for job in jobs])
                if len(calls) == 1:
                    started.set()
                    await gate.wait()
                return SweepReport(
                    [JobOutcome(j, job_key(j), None) for j in jobs],
                    SweepMetrics(),
                )

            batcher = JobBatcher(runner=gated_runner, batch_window=0.001)
            task_a = asyncio.ensure_future(
                batcher.submit(SimJob(seed=1, **SMALL))
            )
            await started.wait()  # batch A is now mid-execution
            task_b = asyncio.ensure_future(
                batcher.submit(SimJob(seed=2, **SMALL))
            )
            await asyncio.sleep(0.01)  # let B land in the pending queue
            gate.set()
            # No further submits: B must resolve from the re-armed flush.
            outcome_a, _ = await asyncio.wait_for(task_a, timeout=2.0)
            outcome_b, _ = await asyncio.wait_for(task_b, timeout=2.0)
            await asyncio.wait_for(batcher.drain(), timeout=2.0)
            return outcome_a, outcome_b, batcher

        outcome_a, outcome_b, batcher = asyncio.run(run())
        assert outcome_a.ok and outcome_b.ok
        assert len(calls) == 2  # two batches, no job left behind
        assert batcher.inflight_count == 0


class TestFailureIsolation:
    def test_runner_crash_becomes_error_outcome(self):
        async def exploding_runner(jobs):
            raise RuntimeError("pool detonated")

        async def run():
            batcher = JobBatcher(runner=exploding_runner, batch_window=0.0)
            outcome, _ = await batcher.submit(SimJob(**SMALL))
            return outcome

        outcome = asyncio.run(run())
        assert not outcome.ok
        assert "pool detonated" in outcome.error

    def test_missing_outcome_becomes_error(self):
        async def forgetful_runner(jobs):
            return SweepReport([], SweepMetrics())

        async def run():
            batcher = JobBatcher(runner=forgetful_runner, batch_window=0.0)
            outcome, _ = await batcher.submit(SimJob(**SMALL))
            return outcome

        outcome = asyncio.run(run())
        assert not outcome.ok
        assert "no outcome" in outcome.error

    def test_error_does_not_poison_next_submit(self):
        flags = {"fail": True}

        async def flaky_runner(jobs):
            if flags["fail"]:
                raise RuntimeError("transient")
            return SweepReport(
                [JobOutcome(j, job_key(j), None) for j in jobs], SweepMetrics()
            )

        async def run():
            batcher = JobBatcher(runner=flaky_runner, batch_window=0.0)
            job = SimJob(**SMALL)
            first, _ = await batcher.submit(job)
            flags["fail"] = False
            second, _ = await batcher.submit(job)
            return first, second

        first, second = asyncio.run(run())
        assert not first.ok
        assert second.ok


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            JobBatcher(max_batch=0)
        with pytest.raises(ValueError):
            JobBatcher(batch_window=-1.0)


class TestDrain:
    def test_drain_waits_for_inflight(self):
        calls = []

        async def run():
            batcher = JobBatcher(
                runner=make_runner(calls, delay=0.05), batch_window=0.0
            )
            task = asyncio.ensure_future(batcher.submit(SimJob(**SMALL)))
            await asyncio.sleep(0.01)  # let the submit enter execution
            await batcher.drain()
            assert batcher.inflight_count == 0
            outcome, _ = await task
            return outcome

        assert asyncio.run(run()).ok


class TestPoolBudget:
    """The batch pool leases its workers from the shared budget, so a
    concurrent tile fan-out and the pool can't both size to the CPUs."""

    def test_pool_lease_clamps_and_restores_max_workers(self, monkeypatch):
        from repro.runtime.budget import BUDGET
        from repro.runtime.executor import ProcessExecutor

        monkeypatch.setattr(BUDGET, "total", 4)
        executor = ProcessExecutor(8)
        observed = {}

        async def runner(jobs):
            observed["during"] = executor.max_workers
            observed["budget"] = BUDGET.snapshot()["leases"].get("serve-batch")
            return SweepReport(
                [JobOutcome(job, job_key(job), None) for job in jobs],
                SweepMetrics(),
            )

        async def run():
            batcher = JobBatcher(
                executor=executor, runner=runner, batch_window=0.0
            )
            await batcher.submit(SimJob(**SMALL))
            return batcher

        batcher = asyncio.run(run())
        # While the batch ran, the pool was clamped to the budget grant;
        # afterwards the configured size (and the lease) is restored.
        assert observed["during"] == 4
        assert observed["budget"] == 4
        assert executor.max_workers == 8
        assert BUDGET.snapshot()["leases"].get("serve-batch") is None
        assert batcher.snapshot()["pool_batches_active"] == 0

    def test_no_executor_means_no_lease(self):
        from repro.runtime.budget import BUDGET

        calls = []

        async def run():
            batcher = JobBatcher(
                runner=make_runner(calls), batch_window=0.0
            )
            await batcher.submit(SimJob(**SMALL))

        asyncio.run(run())
        assert BUDGET.snapshot()["leases"].get("serve-batch") is None
