"""Flexible router microarchitecture (paper §III-C, Fig. 4).

The proposed router keeps the five classic components — route computation
(RC), VC allocation (VA), switch allocation (SA), VC buffers and crossbar —
but replaces the monolithic crossbar with a cheaper two-stage design
(horizontal + vertical switches) that can be decomposed to support ring
topology, and adds muxes at the +x/+y ports connecting to the bypassing
links.

For the cycle simulator we model the router as:

* per-input-port VC buffers of ``vcs_per_port × vc_depth`` flits with
  credit-based backpressure,
* a fixed pipeline latency of ``router_pipeline_stages`` cycles covering
  RC/VA/SA/ST (flits are stamped with an earliest-forward cycle),
* one flit per output port per cycle, round-robin switch allocation
  across the input ports contending for it.

This captures what the evaluation measures — queueing/contention latency,
hop counts, serialisation — without simulating individual allocator
wires.  Flits of different packets may interleave on a link as in a
VC-multiplexed wormhole router.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ...config import NoCConfig
from .packet import Flit

__all__ = ["RouterPort", "Router"]

INJECT_PORT = -1  # pseudo upstream id for the local injection port


@dataclass
class RouterPort:
    """One input port: a FIFO of flits with bounded capacity."""

    capacity: int
    queue: deque = field(default_factory=deque)

    @property
    def has_space(self) -> bool:
        return len(self.queue) < self.capacity

    @property
    def occupancy(self) -> int:
        return len(self.queue)


class Router:
    """Cycle-level router node."""

    def __init__(self, node_id: int, config: NoCConfig) -> None:
        self.node_id = node_id
        self.config = config
        buf = config.vcs_per_port * config.vc_depth
        self._buf_capacity = buf
        self.inputs: dict[int, RouterPort] = {}
        self._rr_state: dict[int, int] = {}  # output -> last-served index
        # Counters
        self.flits_forwarded = 0
        self.flits_ejected = 0
        self.stall_cycles = 0

    def input_port(self, upstream: int) -> RouterPort:
        """Get (lazily creating) the input port fed by ``upstream``."""
        port = self.inputs.get(upstream)
        if port is None:
            # The injection port is deep (the PE's output FIFO backs it);
            # network ports have the VC-buffer capacity.
            cap = 1 << 30 if upstream == INJECT_PORT else self._buf_capacity
            port = RouterPort(capacity=cap)
            self.inputs[upstream] = port
        return port

    def accept(self, upstream: int, flit: Flit) -> bool:
        """Try to buffer an incoming flit; False when the VC is full."""
        port = self.input_port(upstream)
        if not port.has_space:
            return False
        port.queue.append(flit)
        return True

    def heads_by_output(self, now: int) -> dict[int, list[int]]:
        """Group ready head flits by their requested next-hop node.

        Returns ``{next_node: [upstream ids with a ready head flit]}``;
        ``next_node == self.node_id`` denotes ejection.
        """
        wants: dict[int, list[int]] = {}
        for upstream, port in self.inputs.items():
            if not port.queue:
                continue
            flit = port.queue[0]
            if flit.ready_cycle > now:
                continue
            if flit.at_destination:
                target = self.node_id
            else:
                target = flit.packet.route[flit.hop + 1]
            wants.setdefault(target, []).append(upstream)
        return wants

    def arbitrate(self, output: int, contenders: list[int]) -> int:
        """Round-robin pick among contending upstream ports."""
        if len(contenders) == 1:
            return contenders[0]
        contenders = sorted(contenders)
        last = self._rr_state.get(output, -2)
        for upstream in contenders:
            if upstream > last:
                self._rr_state[output] = upstream
                return upstream
        # Wrap around.
        self._rr_state[output] = contenders[0]
        return contenders[0]

    def pop_head(self, upstream: int) -> Flit:
        return self.inputs[upstream].queue.popleft()

    @property
    def total_occupancy(self) -> int:
        return sum(p.occupancy for p in self.inputs.values())
