#!/usr/bin/env python3
"""Design-space exploration: array size, buffer capacity, mapping policy.

Sweeps the Aurora configuration knobs the paper fixes (32×32 PEs, 100 KB
per-PE buffers, degree-aware mapping) and reports how execution time and
energy respond — the kind of what-if study the simulator exists for.

Run:  python examples/design_space_exploration.py
"""

from repro import AuroraSimulator, get_model, load_dataset
from repro.config import AcceleratorConfig
from repro.core.accelerator import layer_plan
from repro.eval import format_table


def main() -> None:
    graph = load_dataset("cora")
    model = get_model("gcn")
    dims = layer_plan(graph, 64, 2, 7)

    # --- Sweep 1: PE array dimension -----------------------------------
    rows = []
    for k in (8, 16, 32):
        cfg = AcceleratorConfig(array_k=k)
        r = AuroraSimulator(cfg).simulate(model, graph, dims)
        rows.append(
            [
                f"{k}x{k}",
                f"{r.total_cycles:,.0f}",
                f"{r.energy.total * 1e3:.2f}",
                str(r.num_tiles),
            ]
        )
    print(format_table(
        ["array", "cycles", "energy mJ", "tiles"],
        rows,
        title="Sweep: PE array dimension (Cora, 2-layer GCN)",
    ))

    # --- Sweep 2: per-PE buffer capacity --------------------------------
    # Uses Pubmed: its denser features make on-chip capacity bind, so the
    # tile count (and with it the boundary DRAM traffic) responds.
    pubmed = load_dataset("pubmed", scale=0.5)
    pubmed_dims = layer_plan(pubmed, 64, 2, 3)
    rows = []
    for kib in (2, 8, 25, 50):
        cfg = AcceleratorConfig(pe_buffer_bytes=kib * 1024)
        r = AuroraSimulator(cfg).simulate(model, pubmed, pubmed_dims)
        rows.append(
            [
                f"{kib} KiB",
                f"{r.total_cycles:,.0f}",
                str(r.num_tiles),
                f"{r.dram_bytes / 1e6:.1f}",
            ]
        )
    print()
    print(format_table(
        ["PE buffer", "cycles", "tiles", "DRAM MB"],
        rows,
        title="Sweep: distributed buffer capacity (Pubmed@0.5)",
    ))

    # --- Sweep 3: mapping policy (the CGRA-ME comparison) ---------------
    rows = []
    for policy in ("degree-aware", "hashing"):
        r = AuroraSimulator(mapping_policy=policy).simulate(model, graph, dims)
        rows.append([policy, f"{r.total_cycles:,.0f}", f"{r.onchip_comm_cycles:,}"])
    print()
    print(format_table(
        ["mapping", "cycles", "on-chip comm cycles"],
        rows,
        title="Sweep: mapping policy",
    ))


if __name__ == "__main__":
    main()
