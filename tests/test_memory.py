"""Unit tests for the on-chip memory models."""

import pytest

from repro.arch import BankBuffer, GlobalBuffer, ReuseFIFO


class TestBankBuffer:
    def test_allocation(self):
        buf = BankBuffer(1000)
        spill = buf.allocate("weights", 600)
        assert spill == 0
        assert buf.used_bytes == 600
        assert buf.free_bytes == 400

    def test_spill_on_overflow(self):
        buf = BankBuffer(1000)
        spill = buf.allocate("features", 1500)
        assert spill == 500
        assert buf.used_bytes == 1000
        assert buf.stats.overflow_bytes == 500

    def test_reallocate_replaces(self):
        buf = BankBuffer(1000)
        buf.allocate("w", 600)
        buf.allocate("w", 300)
        assert buf.region_bytes("w") == 300
        assert buf.used_bytes == 300

    def test_release(self):
        buf = BankBuffer(1000)
        buf.allocate("w", 600)
        buf.release("w")
        assert buf.free_bytes == 1000

    def test_release_missing_is_noop(self):
        BankBuffer(100).release("nope")

    def test_access_counting(self):
        buf = BankBuffer(1000)
        buf.read(100)
        buf.write(50)
        assert buf.stats.reads_bytes == 100
        assert buf.stats.writes_bytes == 50
        assert buf.stats.total_bytes == 150

    def test_bank_conflicts(self):
        buf = BankBuffer(1000, banks=4)
        assert buf.bank_conflict_factor(2) == 1.0
        assert buf.bank_conflict_factor(8) == 2.0
        assert buf.bank_conflict_factor(0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BankBuffer(0)
        with pytest.raises(ValueError):
            BankBuffer(100, banks=0)
        with pytest.raises(ValueError):
            BankBuffer(100).allocate("x", -1)
        with pytest.raises(ValueError):
            BankBuffer(100).read(-1)


class TestReuseFIFO:
    def test_double_buffer_fit(self):
        fifo = ReuseFIFO(1024)
        assert fifo.half_capacity == 512
        assert fifo.push(512) is True
        assert fifo.push(513) is False  # overflows one half: producer stalls

    def test_pop_counts(self):
        fifo = ReuseFIFO(100)
        fifo.push(40)
        fifo.pop(40)
        assert fifo.stats.reads_bytes == 40
        assert fifo.stats.writes_bytes == 40

    def test_validation(self):
        with pytest.raises(ValueError):
            ReuseFIFO(1)
        with pytest.raises(ValueError):
            ReuseFIFO(64).push(-1)


class TestGlobalBuffer:
    def test_fits(self):
        g = GlobalBuffer(100)
        assert g.fits(100)
        assert not g.fits(101)

    def test_access_counting(self):
        g = GlobalBuffer(100)
        g.read(10)
        g.write(20)
        assert g.stats.total_bytes == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            GlobalBuffer(0)
        with pytest.raises(ValueError):
            GlobalBuffer(10).read(-1)
