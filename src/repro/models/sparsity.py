"""Sparse feature matrices.

Real GNN input features are sparse (Cora 1.3% dense, Citeseer 0.9%,
Nell 0.02%), and the paper's DRAM/on-chip accounting depends on that
density (Reddit's >50% is explicitly called out as the reason its gains
shrink).  This module provides a CSR feature-matrix container with the
statistics the simulators consume, a realistic sparse generator, and the
sparse×dense products the functional layers can run on top of.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..graphs.csr import CSRGraph

__all__ = [
    "SparseFeatures",
    "random_sparse_features",
    "densify",
    "sparse_dense_matmul",
]


@dataclass(frozen=True)
class SparseFeatures:
    """CSR feature matrix (|V| × F) with accounting helpers."""

    matrix: sp.csr_matrix

    def __post_init__(self) -> None:
        if not sp.issparse(self.matrix):
            raise TypeError("matrix must be a scipy sparse matrix")
        object.__setattr__(self, "matrix", self.matrix.tocsr())

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.matrix.shape[0]

    @property
    def num_features(self) -> int:
        return self.matrix.shape[1]

    @property
    def nnz(self) -> int:
        return int(self.matrix.nnz)

    @property
    def density(self) -> float:
        total = self.num_vertices * self.num_features
        return self.nnz / total if total else 0.0

    def nnz_per_vertex(self) -> np.ndarray:
        return np.diff(self.matrix.indptr)

    # ------------------------------------------------------------------
    def storage_bytes(
        self, *, value_bytes: int = 8, index_bytes: int = 4
    ) -> int:
        """Compressed footprint: values + column indices + row pointers."""
        return (
            self.nnz * (value_bytes + index_bytes)
            + (self.num_vertices + 1) * index_bytes
        )

    def dense_bytes(self, *, value_bytes: int = 8) -> int:
        return self.num_vertices * self.num_features * value_bytes

    def compression_ratio(self) -> float:
        dense = self.dense_bytes()
        stored = self.storage_bytes()
        return dense / stored if stored else 1.0

    def rows(self, vertex_ids: np.ndarray) -> "SparseFeatures":
        """Feature rows of a vertex subset (a tile's resident features)."""
        return SparseFeatures(self.matrix[np.asarray(vertex_ids)])


def random_sparse_features(
    graph: CSRGraph,
    *,
    seed: int = 0,
    density: float | None = None,
) -> SparseFeatures:
    """Sparse bag-of-words-style features matching the graph's density.

    Nonzero counts per vertex follow a clipped Poisson around the target
    density (real bag-of-words features have near-constant document
    length); values are positive (term counts/TF-IDF-like).
    """
    rng = np.random.default_rng(seed)
    n, f = graph.num_vertices, graph.num_features
    density = graph.feature_density if density is None else density
    if not 0 < density <= 1:
        raise ValueError("density must be in (0, 1]")
    target = max(1, int(round(density * f)))
    counts = np.clip(
        rng.poisson(target, size=n), 1, f
    ).astype(np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.empty(indptr[-1], dtype=np.int64)
    for v in range(n):
        indices[indptr[v] : indptr[v + 1]] = rng.choice(
            f, size=int(counts[v]), replace=False
        )
    values = rng.exponential(1.0, size=indptr[-1])
    mat = sp.csr_matrix((values, indices, indptr), shape=(n, f))
    return SparseFeatures(mat)


def densify(features: SparseFeatures) -> np.ndarray:
    """Dense ndarray view (what the PE datapaths compute on)."""
    return features.matrix.toarray()


def sparse_dense_matmul(
    features: SparseFeatures, weight: np.ndarray
) -> np.ndarray:
    """``X_sparse @ W`` with the FLOP count sparse execution would incur.

    Returns the dense product; the useful-work op count is
    ``2 · nnz · F_out`` (vs ``2 · n · F_in · F_out`` dense) — the input
    layer's compute advantage that the paper's equal-MAC accounting
    deliberately does not exploit.
    """
    if weight.ndim != 2 or weight.shape[0] != features.num_features:
        raise ValueError("weight shape must be (F_in, F_out)")
    return np.asarray(features.matrix @ weight)
