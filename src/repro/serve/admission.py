"""Admission control: a bounded in-flight budget with load shedding.

The service never queues unboundedly: each accepted request holds one
slot from admission to response, and when all ``max_pending`` slots are
taken new requests are *shed* immediately (HTTP 429) instead of piling
up RAM and latency.  Shedding is the resilient-client's cue to back off
and retry — see :mod:`repro.serve.client`.

The controller also owns the drain lifecycle: once draining, nothing new
is admitted (HTTP 503) and :meth:`wait_drained` completes when the last
in-flight request finishes — which is exactly the SIGTERM story.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

__all__ = ["AdmissionController", "AdmissionStats"]


@dataclass
class AdmissionStats:
    """Lifetime counters for one controller."""

    admitted: int = 0
    shed: int = 0
    rejected_draining: int = 0
    completed: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "admitted": self.admitted,
            "shed": self.shed,
            "rejected_draining": self.rejected_draining,
            "completed": self.completed,
        }


class AdmissionController:
    """Bounded concurrent-request budget with immediate shedding."""

    def __init__(self, max_pending: int = 64) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_pending = max_pending
        self.stats = AdmissionStats()
        self._in_flight = 0
        self._draining = False
        self._idle: asyncio.Event | None = None

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def draining(self) -> bool:
        return self._draining

    def try_acquire(self) -> bool:
        """Claim one slot; ``False`` sheds the request (429/503)."""
        if self._draining:
            self.stats.rejected_draining += 1
            return False
        if self._in_flight >= self.max_pending:
            self.stats.shed += 1
            return False
        self._in_flight += 1
        self.stats.admitted += 1
        if self._idle is not None:
            self._idle.clear()
        return True

    def release(self) -> None:
        """Return a slot claimed by :meth:`try_acquire`."""
        if self._in_flight <= 0:
            raise RuntimeError("release() without a matching try_acquire()")
        self._in_flight -= 1
        self.stats.completed += 1
        if self._in_flight == 0 and self._idle is not None:
            self._idle.set()

    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop admitting; already-admitted requests run to completion."""
        self._draining = True

    async def wait_drained(self, timeout: float | None = None) -> bool:
        """Await zero in-flight requests; ``False`` if ``timeout`` hit."""
        if self._in_flight == 0:
            return True
        if self._idle is None:
            self._idle = asyncio.Event()
        if self._in_flight == 0:  # re-check: release() may have raced
            return True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
        except asyncio.TimeoutError:
            return False
        return True

    def snapshot(self) -> dict:
        """Stats view for ``/stats``."""
        return {
            "max_pending": self.max_pending,
            "in_flight": self._in_flight,
            "draining": self._draining,
            **self.stats.as_dict(),
        }
