"""Live-feed integration tests: a real server, a real WebSocket client.

Covers the end-to-end contract: one /simulate produces the ordered
lifecycle sequence on a live ``/observe`` connection AND in the JSONL
recording; the dashboard is served; slow consumers are evicted with
1013 and shutdown closes with 1001 after delivering the queued tail.
"""

import asyncio
import http.client
import json

import pytest

from repro.observe.broadcaster import _EVICT, WebSocketBroadcaster, _Client
from repro.observe.client import ObserveClient, stream_events
from repro.observe.events import HUB, REQUEST_LIFECYCLE, Event, validate_events
from repro.observe.recorder import read_session
from repro.observe.service import ObserveState
from repro.observe.websocket import (
    OP_CLOSE,
    OP_TEXT,
    close_code,
    read_frame,
)
from repro.runtime import run_jobs
from repro.serve.server import ServerThread, SimulationService

SMALL = {"dataset": "cora", "scale": 0.1, "hidden": 8, "layers": 1}


@pytest.fixture(autouse=True)
def clean_global_hub():
    """The serve path publishes into the process-global HUB; always
    leave it empty so one test's sinks never observe another test."""
    yield
    HUB.reset()
    from repro.telemetry import TRACER

    TRACER.on_span = None


def make_runner():
    async def runner(jobs):
        return await asyncio.to_thread(lambda: run_jobs(jobs))

    return runner


@pytest.fixture
def observed(tmp_path):
    """A running service with --observe semantics + its record path."""
    record_path = tmp_path / "session.jsonl"
    service = SimulationService(
        runner=make_runner(),
        batch_window=0.01,
        observe=ObserveState(
            record_path=record_path,
            flush_interval=0.0,
            tick_interval=0.0,
            source="test",
        ),
    )
    with ServerThread(service) as thread:
        yield service, thread.address, record_path


def http_get(address, path, method="GET"):
    conn = http.client.HTTPConnection(*address, timeout=30)
    try:
        conn.request(method, path)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def collect_one_request(address):
    """Fire one /simulate while attached to /observe; return (result,
    live events)."""
    host, port = address

    async def run():
        events = []
        client = ObserveClient(host, port)
        hello = await client.connect()
        assert hello["data"]["schema"] >= 1
        request = asyncio.create_task(
            asyncio.to_thread(
                lambda: http_post_simulate(address, SMALL)
            )
        )
        try:
            while True:
                event = await asyncio.wait_for(client.next_event(), timeout=60)
                assert event is not None
                events.append(event)
                if event["type"] == "request.completed":
                    break
        finally:
            await client.close()
        return await request, events

    return asyncio.run(run())


def http_post_simulate(address, spec):
    conn = http.client.HTTPConnection(*address, timeout=60)
    try:
        conn.request(
            "POST",
            "/simulate",
            body=json.dumps(spec),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestLiveFeed:
    def test_one_request_streams_the_lifecycle_in_order(self, observed):
        _service, address, _record = observed
        (status, result), events = collect_one_request(address)
        assert status == 200
        assert result["result"]["accelerator"] == "aurora"

        types = [e["type"] for e in events]
        positions = [types.index(t) for t in REQUEST_LIFECYCLE]
        assert positions == sorted(positions), types
        assert validate_events(events) == []
        rids = {e["data"]["rid"] for e in events if "rid" in e["data"]}
        assert len(rids) == 1

    def test_recording_replays_the_live_sequence(self, observed):
        _service, address, record_path = observed
        _result, live = collect_one_request(address)

        # Recorder runs on the same hub: after shutdown the JSONL holds
        # (at least) everything the live client saw, byte-identical.
        _service.observe.recorder.flush()
        recorded, info = read_session(record_path)
        assert info["skipped"] == 0
        assert validate_events(recorded) == []
        by_seq = {e.seq: e for e in recorded}
        for event in live:
            match = by_seq[event["seq"]]
            assert match.to_dict() == event

    def test_stats_exposes_the_observe_section(self, observed):
        _service, address, record_path = observed
        collect_one_request(address)
        status, _headers, body = http_get(address, "/stats")
        assert status == 200
        observe = json.loads(body)["observe"]
        assert observe["enabled"] is True
        assert observe["hub"]["events_emitted"] > 0
        assert observe["broadcaster"]["connections_total"] == 1
        assert observe["recorder"]["path"] == str(record_path)


class TestDashboard:
    def test_dashboard_and_assets_are_served(self, observed):
        _service, address, _record = observed
        status, headers, body = http_get(address, "/observer")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        assert b"/observe" in body  # the page self-connects

        for asset, content_type in (
            ("/observer/observer.js", "application/javascript"),
            ("/observer/observer.css", "text/css"),
        ):
            status, headers, _body = http_get(address, asset)
            assert status == 200
            assert headers["Content-Type"].startswith(content_type)

    def test_unknown_asset_is_404_and_post_is_405(self, observed):
        _service, address, _record = observed
        assert http_get(address, "/observer/../secrets")[0] == 404
        assert http_get(address, "/observer/nope.js")[0] == 404
        assert http_get(address, "/observer", method="POST")[0] == 405

    def test_observe_without_upgrade_is_400(self, observed):
        _service, address, _record = observed
        status, _headers, body = http_get(address, "/observe")
        assert status == 400
        assert b"upgrade" in body.lower()

    def test_everything_404s_when_observe_is_off(self):
        service = SimulationService(runner=make_runner())
        with ServerThread(service) as thread:
            assert http_get(thread.address, "/observe")[0] == 404
            assert http_get(thread.address, "/observer")[0] == 404
            _status, _headers, body = http_get(thread.address, "/stats")
            assert json.loads(body)["observe"] is None


def make_event(seq):
    return Event(seq=seq, ts=float(seq), type="stats.tick", data={})


class TestSlowConsumer:
    def test_queue_overflow_drops_then_evicts(self):
        broadcaster = WebSocketBroadcaster(
            queue_size=2, max_drops=1, flush_interval=0.0
        )
        client = _Client("test", 2)
        broadcaster._clients[client.id] = client

        for seq in range(1, 4):  # fills the queue, then one tolerated drop
            broadcaster._dispatch(make_event(seq))
        assert client.drops == 1 and not client.evicted

        broadcaster._dispatch(make_event(4))  # drops > max_drops → evict
        assert client.evicted
        assert broadcaster.clients_evicted == 1
        assert broadcaster.events_dropped == 2
        # The stalled queue was flushed down to the eviction marker.
        assert client.queue.get_nowait() is _EVICT

        broadcaster._dispatch(make_event(5))  # evicted clients are skipped
        assert broadcaster.events_dropped == 2

    def run_send_loop(self, prepare):
        """Drive _send_loop against a real socket; return decoded frames."""

        async def run():
            ends = {}
            ready = asyncio.Event()

            async def handler(reader, writer):
                ends["writer"] = writer
                ready.set()
                await asyncio.sleep(30)

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            reader, cwriter = await asyncio.open_connection(host, port)
            await ready.wait()

            broadcaster = WebSocketBroadcaster(queue_size=8, flush_interval=0.0)
            broadcaster.bind(asyncio.get_running_loop())
            client = _Client("test", 8)
            broadcaster._clients[client.id] = client
            prepare(broadcaster, client)

            receiver = asyncio.get_running_loop().create_future()
            try:
                await asyncio.wait_for(
                    broadcaster._send_loop(client, ends["writer"], receiver),
                    timeout=30,
                )
            finally:
                receiver.cancel()
            frames = []
            while True:
                frame = await asyncio.wait_for(read_frame(reader), timeout=30)
                frames.append(frame)
                if frame.opcode == OP_CLOSE:
                    break
            cwriter.close()
            server.close()
            await server.wait_closed()
            return frames

        return asyncio.run(run())

    def test_eviction_closes_1013_without_the_stale_tail(self):
        def prepare(broadcaster, client):
            client.queue.put_nowait(make_event(1))
            broadcaster._evict(client)

        frames = self.run_send_loop(prepare)
        assert [f.opcode for f in frames] == [OP_CLOSE]
        assert close_code(frames[0].payload) == 1013
        assert b"slow consumer" in frames[0].payload

    def test_shutdown_delivers_the_tail_then_closes_1001(self):
        def prepare(broadcaster, client):
            client.queue.put_nowait(make_event(1))
            client.queue.put_nowait(make_event(2))
            broadcaster._close_all()

        frames = self.run_send_loop(prepare)
        assert [f.opcode for f in frames] == [OP_TEXT, OP_TEXT, OP_CLOSE]
        assert [json.loads(f.payload)["seq"] for f in frames[:2]] == [1, 2]
        assert close_code(frames[2].payload) == 1001


class TestStreamHelper:
    def test_stream_events_honours_max_events(self, observed):
        _service, address, _record = observed
        host, port = address

        async def run():
            collected = []

            async def drain():
                async for event in stream_events(
                    host, port, max_events=3, duration=60
                ):
                    collected.append(event)

            drainer = asyncio.create_task(drain())
            await asyncio.sleep(0.1)
            await asyncio.to_thread(http_post_simulate, address, SMALL)
            await asyncio.wait_for(drainer, timeout=60)
            return collected

        events = asyncio.run(run())
        assert len(events) == 3
        assert all("type" in e for e in events)
