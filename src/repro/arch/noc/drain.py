"""Shared drain tracking and structured deadlock reporting.

Both flit-level simulators (:class:`~repro.arch.noc.network.NoCSimulator`
and :class:`~repro.arch.noc.vc_router.VCNetworkSimulator`) historically
answered "has every packet drained?" by rescanning a ``pid → remaining
flits`` dict every cycle — an O(packets) cost on the innermost loop.
:class:`DrainTracker` keeps the same dict for reporting but maintains two
counters alongside it, so the per-cycle check is O(1), and both
simulators share one implementation of the bookkeeping.

When a run fails to drain, the simulators raise
:class:`NoCDeadlockError` instead of a bare ``RuntimeError`` — the
message keeps the historical "did not drain" phrasing, but the exception
also carries the cycle, the outstanding packet count, and the per-router
queue depths at the point of failure, which is what you need to tell a
true routing deadlock (a cyclic channel dependency holding buffers full)
from an undersized ``max_cycles``.
"""

from __future__ import annotations

__all__ = ["NoCDeadlockError", "DrainTracker"]


class NoCDeadlockError(RuntimeError):
    """A NoC run hit ``max_cycles`` with traffic still outstanding.

    Subclasses ``RuntimeError`` so existing ``except RuntimeError`` /
    ``pytest.raises(RuntimeError, match="did not drain")`` call sites
    keep working.

    Attributes:
        cycle: simulator cycle at which the run gave up.
        outstanding_packets: packets injected but not fully ejected.
        queue_depths: ``{router id: resident flits}`` for routers with a
            non-empty input queue when the run stopped.
        context: optional caller-supplied mapping (e.g. the tile and
            mapping the :class:`~repro.core.cycle_engine.CycleTileEngine`
            was executing).
    """

    def __init__(
        self,
        message: str,
        *,
        cycle: int,
        outstanding_packets: int,
        queue_depths: dict[int, int],
        context: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.cycle = cycle
        self.outstanding_packets = outstanding_packets
        self.queue_depths = queue_depths
        self.context = dict(context) if context else {}

    def with_context(self, **context) -> "NoCDeadlockError":
        """A copy carrying extra caller context (tile, mapping, ...)."""
        merged = {**self.context, **context}
        err = NoCDeadlockError(
            str(self.args[0]) if self.args else "NoC did not drain",
            cycle=self.cycle,
            outstanding_packets=self.outstanding_packets,
            queue_depths=self.queue_depths,
            context=merged,
        )
        return err


class DrainTracker:
    """O(1) drain accounting shared by the flit-level simulators.

    Mix in (or embed) and call :meth:`_drain_register` at injection and
    :meth:`_drain_eject` per ejected flit.  ``_tails_remaining`` keeps the
    historical per-packet map for debugging/reporting; the hot-path
    queries read the two counters only.
    """

    def _drain_init(self) -> None:
        self._tails_remaining: dict[int, int] = {}  # pid -> flits not ejected
        self._outstanding_flits = 0
        self._outstanding_packets = 0

    def _drain_register(self, pid: int, num_flits: int) -> None:
        self._tails_remaining[pid] = num_flits
        self._outstanding_flits += num_flits
        self._outstanding_packets += 1

    def _drain_eject(self, pid: int) -> bool:
        """Account one ejected flit; True when the packet completed."""
        remaining = self._tails_remaining[pid] - 1
        self._tails_remaining[pid] = remaining
        self._outstanding_flits -= 1
        if remaining == 0:
            self._outstanding_packets -= 1
            return True
        return False

    # -- O(1) replacements for the historical dict scans ----------------
    def all_delivered(self) -> bool:
        return self._outstanding_flits == 0

    def undelivered(self) -> int:
        return self._outstanding_packets

    # -- structured failure ---------------------------------------------
    def _deadlock(self, message: str, *, cycle: int) -> NoCDeadlockError:
        return NoCDeadlockError(
            message,
            cycle=cycle,
            outstanding_packets=self._outstanding_packets,
            queue_depths=self._queue_depths(),
        )

    def _queue_depths(self) -> dict[int, int]:  # pragma: no cover - abstract
        """Per-router resident flit counts; overridden by each simulator."""
        return {}
