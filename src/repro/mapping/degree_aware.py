"""Degree-aware mapping — the paper's Algorithm 1.

Procedure:

1. **S_PE identification** — choose PE positions for high-degree vertices
   under the N-Queen constraint (no shared row/column/diagonal), one per
   row of the region (:mod:`repro.mapping.nqueen`).
2. **High-degree vertex identification** — ``N_HN = (K−1) × C_PE`` top
   vertices by degree (``C_PE`` = per-PE vertex capacity).
3. **Placement** — sorted high-degree vertices go round-robin onto the
   S_PEs (hashing over the S_PE sequence); low-degree vertices fill the
   remaining PEs sequentially by available capacity.
4. **Bypass configuration** — each S_PE's row and column bypass link is
   segmented to bridge that hub's longest communications (full-span
   segment anchored at the S_PE).

Complexity is ``N·log N + N`` (the degree sort plus a linear placement
pass), and the run is charged ≈100 overlappable cycles (paper §VI-D).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..arch.noc.topology import BypassSegment
from ..graphs.csr import CSRGraph
from .base import MappingResult, PERegion
from .nqueen import fixed_pattern, solve_n_queens

__all__ = ["degree_aware_map", "ALGORITHM_CYCLES"]

# Mapping + partition decisions complete in ~100 cycles and overlap with
# the previous subgraph's computation (paper §VI-D).
ALGORITHM_CYCLES = 100


def _spread_bits(v: np.ndarray) -> np.ndarray:
    """Spread the low 16 bits of each value: bit i moves to bit 2i.

    The classic constant-time interleave ladder — replaces the former
    bit-serial loop with five shift/mask passes over the whole array.
    """
    v = v & np.int64(0xFFFF)
    v = (v | (v << 8)) & np.int64(0x00FF00FF)
    v = (v | (v << 4)) & np.int64(0x0F0F0F0F)
    v = (v | (v << 2)) & np.int64(0x33333333)
    v = (v | (v << 1)) & np.int64(0x55555555)
    return v


def _morton(x: np.ndarray, y: np.ndarray, bits: int = 8) -> np.ndarray:
    """Interleave the low ``bits`` of x and y into a Morton (Z-order) code."""
    if bits > 16:
        raise ValueError("morton interleave supports at most 16 bits per axis")
    mask = np.int64((1 << bits) - 1)
    return _spread_bits(x & mask) | (_spread_bits(y & mask) << 1)


def _zorder_nodes(region: PERegion) -> list[int]:
    """Region PE node ids ordered along a Z-order space-filling curve."""
    return list(_zorder_nodes_cached(region))


@lru_cache(maxsize=256)
def _zorder_nodes_cached(region: PERegion) -> tuple[int, ...]:
    nodes = region.node_ids()
    k = region.array_k
    x = nodes % k - region.x0
    y = nodes // k - region.y0
    order = np.argsort(_morton(x, y), kind="stable")
    return tuple(int(n) for n in nodes[order])


def _select_s_pes(region: PERegion, use_backtracking: bool) -> list[int]:
    """S_PE node ids for the region via the N-Queen pattern."""
    k = min(region.width, region.height)
    pattern = solve_n_queens(k) if use_backtracking else fixed_pattern(k)
    nodes = []
    for row, col in pattern:
        if row < region.height and col < region.width:
            nodes.append(region.local_to_node(row * region.width + col))
    return nodes


def degree_aware_map(
    graph: CSRGraph,
    region: PERegion,
    *,
    pe_vertex_capacity: int,
    use_backtracking: bool = False,
) -> MappingResult:
    """Map a subgraph tile onto ``region`` per Algorithm 1.

    Parameters
    ----------
    pe_vertex_capacity:
        ``C_PE`` — vertices one PE's bank buffer can hold for this layer.
    use_backtracking:
        Use the full backtracking N-Queen solver instead of the
        reduced-complexity fixed pattern (the paper's default).
    """
    if pe_vertex_capacity < 1:
        raise ValueError("pe_vertex_capacity must be >= 1")
    n = graph.num_vertices
    if n == 0:
        return MappingResult(
            policy="degree-aware",
            region=region,
            vertex_to_pe=np.empty(0, dtype=np.int64),
        )
    total_capacity = region.num_pes * pe_vertex_capacity
    if n > total_capacity:
        raise ValueError(
            f"tile has {n} vertices but region capacity is {total_capacity}; "
            "tile the graph with a smaller on-chip budget"
        )

    # -- Step 1: S_PE identification (lines 1-12) -----------------------
    s_pe_nodes = _select_s_pes(region, use_backtracking)

    # -- Step 2: high-degree vertex identification (lines 13-25) --------
    k_eff = min(region.width, region.height)
    n_hn = min((k_eff - 1) * pe_vertex_capacity, n, len(s_pe_nodes) * pe_vertex_capacity)
    # "Degree" counts both directions: a vertex is communication-hot when
    # it fans messages out (out-degree) or absorbs them (in-degree).
    degrees = graph.degrees + graph.in_degrees
    # Sort by degree desc, vertex id asc for determinism.
    order = np.lexsort((np.arange(n), -degrees))
    high = order[:n_hn]
    # Low-degree vertices fill sequentially *in id order* — consecutive
    # vertices share a PE, preserving the community locality of the CSR
    # numbering (which hashing destroys).
    mask = np.ones(n, dtype=bool)
    mask[high] = False
    low = np.nonzero(mask)[0].astype(np.int64, copy=False)

    vertex_to_pe = np.empty(n, dtype=np.int64)

    # -- Step 3a: hash the sorted hubs over the S_PEs -------------------
    remaining = np.zeros(region.array_k * region.array_k, dtype=np.int64)
    remaining[region.node_ids()] = pe_vertex_capacity
    if len(s_pe_nodes):
        s_pe_arr = np.asarray(s_pe_nodes, dtype=np.int64)
        hub_nodes = s_pe_arr[np.arange(high.size) % s_pe_arr.size]
        vertex_to_pe[high] = hub_nodes
        np.subtract.at(remaining, hub_nodes, 1)
    else:  # pragma: no cover - regions always have >= 1 row
        low = order

    # -- Step 3b: fill low-degree vertices sequentially -----------------
    # Consecutive vertex ids share a PE, and PEs are visited in Z-order
    # (Morton curve) so id-adjacent vertices land in a compact 2-D block:
    # the community locality of the CSR numbering becomes short Manhattan
    # distances instead of long same-row walks.  Capacity only shrinks,
    # so the former cyclic-cursor walk reduces to one forward pass:
    # each fill node absorbs its leftover capacity in id order.
    fill_nodes = np.asarray(_zorder_nodes_cached(region), dtype=np.int64)
    slots = np.repeat(fill_nodes, np.maximum(remaining[fill_nodes], 0))
    vertex_to_pe[low] = slots[: low.size]

    # -- Step 4: bypass segments bridging hub traffic -------------------
    segments: list[BypassSegment] = []
    k = region.array_k
    used_rows: set[int] = set()
    used_cols: set[int] = set()
    for node in s_pe_nodes:
        x, y = node % k, node // k
        if y not in used_rows and region.width > 1:
            segments.append(BypassSegment("row", y, region.x0, region.x1 - 1))
            used_rows.add(y)
        if x not in used_cols and region.height > 1:
            segments.append(BypassSegment("col", x, region.y0, region.y1 - 1))
            used_cols.add(x)

    return MappingResult(
        policy="degree-aware",
        region=region,
        vertex_to_pe=vertex_to_pe,
        s_pe_nodes=tuple(s_pe_nodes),
        high_degree_vertices=tuple(int(v) for v in high),
        bypass_segments=tuple(segments),
        algorithm_cycles=ALGORITHM_CYCLES,
    )
