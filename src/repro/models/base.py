"""GNN execution-model abstractions.

The paper abstracts every GNN layer into three message-passing stages
(§II, Fig. 1):

* **Edge Update** — per-edge function ψ over the adjacent vertex features
  and the previous edge feature;
* **Aggregation** — per-vertex reduction ⊕ of neighbor/edge messages;
* **Vertex Update** — per-vertex function φ of the aggregated message and
  the weight matrix.

Each stage decomposes into the primitive operations of Table II
(``Scalar×V``, ``V·V``, ``M×V``, ``V⊙V``, ``ΣV``, activation ``α``,
concatenation ``||``), which are exactly the configurations the unified PE
supports (Fig. 6).  A :class:`GNNModel` is a declarative description of a
model's stages in terms of these primitives; the workload extractor turns
it into per-layer operation counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "OpKind",
    "Phase",
    "ModelCategory",
    "PhaseOp",
    "PhaseSpec",
    "GNNModel",
]


class OpKind(enum.Enum):
    """Primitive operations of Table II / Fig. 6."""

    MATRIX_VECTOR = "MxV"  # weight-matrix × feature-vector
    VECTOR_VECTOR = "VxV"  # element-wise vector multiply (V×V)
    DOT = "V.V"  # vector dot product
    SCALAR_VECTOR = "SxV"  # scalar coefficient × vector
    ELEMENTWISE = "V(.)V"  # element-wise (Hadamard) product V⊙V
    ACCUMULATE = "SumV"  # ΣV reduction
    MAX_REDUCE = "MaxV"  # element-wise max reduction (pooling aggregators)
    ACTIVATION = "alpha"  # non-linear activation in the PPU
    CONCAT = "concat"  # vector concatenation in the PPU
    NULL = "null"  # phase not present for this model

    @property
    def is_ppu(self) -> bool:
        """Whether the op runs in the post-processing unit, not the MACs."""
        return self in (OpKind.ACTIVATION, OpKind.CONCAT)

    @property
    def is_reduction(self) -> bool:
        return self in (OpKind.ACCUMULATE, OpKind.MAX_REDUCE)


class Phase(enum.Enum):
    """The three GNN execution stages."""

    EDGE_UPDATE = "edge_update"
    AGGREGATION = "aggregation"
    VERTEX_UPDATE = "vertex_update"


class ModelCategory(enum.Enum):
    """Taxonomy of §II: fixed-scalar, learned-scalar, learned-vector ψ."""

    C_GNN = "C-GNN"
    A_GNN = "A-GNN"
    MP_GNN = "MP-GNN"


@dataclass(frozen=True)
class PhaseOp:
    """One primitive op inside a phase.

    ``per`` states the iteration domain: ``"edge"`` ops run once per edge,
    ``"vertex"`` ops once per destination vertex.  ``weight_cols`` scales
    matrix ops (an ``M×V`` with an ``F_out × F_in`` weight does
    ``F_out * F_in`` multiplies per application; vector ops touch ``F_in``
    lanes).  ``repeat`` covers models applying the same primitive more than
    once per element (e.g. G-GCN's two weight transforms).
    """

    kind: OpKind
    per: str = "edge"  # "edge" | "vertex"
    repeat: int = 1
    uses_output_dim: bool = False  # vector ops over F_out instead of F_in

    def __post_init__(self) -> None:
        if self.per not in ("edge", "vertex"):
            raise ValueError("per must be 'edge' or 'vertex'")
        if self.repeat < 1:
            raise ValueError("repeat must be >= 1")


@dataclass(frozen=True)
class PhaseSpec:
    """A phase as a sequence of primitive ops (empty = Null in Table II)."""

    phase: Phase
    ops: tuple[PhaseOp, ...] = ()

    @property
    def is_null(self) -> bool:
        return len(self.ops) == 0

    def op_kinds(self) -> tuple[OpKind, ...]:
        return tuple(op.kind for op in self.ops)


@dataclass(frozen=True)
class GNNModel:
    """Declarative description of one GNN model (one row of Table II)."""

    name: str
    category: ModelCategory
    edge_update: PhaseSpec
    aggregation: PhaseSpec
    vertex_update: PhaseSpec
    uses_edge_embeddings: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if self.edge_update.phase is not Phase.EDGE_UPDATE:
            raise ValueError("edge_update spec must carry Phase.EDGE_UPDATE")
        if self.aggregation.phase is not Phase.AGGREGATION:
            raise ValueError("aggregation spec must carry Phase.AGGREGATION")
        if self.vertex_update.phase is not Phase.VERTEX_UPDATE:
            raise ValueError("vertex_update spec must carry Phase.VERTEX_UPDATE")
        if self.aggregation.is_null:
            raise ValueError("every message-passing model aggregates")

    @property
    def has_edge_update(self) -> bool:
        return not self.edge_update.is_null

    @property
    def has_vertex_update(self) -> bool:
        return not self.vertex_update.is_null

    def phase_spec(self, phase: Phase) -> PhaseSpec:
        return {
            Phase.EDGE_UPDATE: self.edge_update,
            Phase.AGGREGATION: self.aggregation,
            Phase.VERTEX_UPDATE: self.vertex_update,
        }[phase]

    def active_phases(self) -> tuple[Phase, ...]:
        """Phases with work, in execution order."""
        out = []
        if self.has_edge_update:
            out.append(Phase.EDGE_UPDATE)
        out.append(Phase.AGGREGATION)
        if self.has_vertex_update:
            out.append(Phase.VERTEX_UPDATE)
        return tuple(out)

    def required_op_kinds(self) -> frozenset[OpKind]:
        """Union of primitive ops across phases — what a PE must support."""
        kinds: set[OpKind] = set()
        for spec in (self.edge_update, self.aggregation, self.vertex_update):
            kinds.update(spec.op_kinds())
        return frozenset(kinds)
