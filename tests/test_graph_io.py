"""Tests for graph persistence and interchange."""

import numpy as np
import pytest

from repro.graphs import (
    load_npz,
    read_edge_list_file,
    save_npz,
    write_edge_list_file,
)


class TestNpzRoundTrip:
    def test_structure_preserved(self, medium_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(medium_graph, path)
        loaded = load_npz(path)
        assert np.array_equal(loaded.indptr, medium_graph.indptr)
        assert np.array_equal(loaded.indices, medium_graph.indices)

    def test_attributes_preserved(self, tiny_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(tiny_graph, path)
        loaded = load_npz(path)
        assert loaded.num_features == tiny_graph.num_features
        assert loaded.feature_density == tiny_graph.feature_density
        assert loaded.name == tiny_graph.name

    def test_version_check(self, tiny_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(tiny_graph, path)
        # Corrupt the version field.
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["version"] = np.int64(99)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_npz(path)


class TestEdgeListFiles:
    def test_round_trip(self, tiny_graph, tmp_path):
        path = tmp_path / "edges.txt"
        write_edge_list_file(tiny_graph, path)
        loaded = read_edge_list_file(path, num_vertices=5)
        assert sorted(loaded.edges()) == sorted(tiny_graph.edges())

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# header\n\n0 1\n# mid comment\n1 2\n")
        g = read_edge_list_file(path)
        assert g.num_edges == 2
        assert g.num_vertices == 3

    def test_infers_vertex_count(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 7\n")
        assert read_edge_list_file(path).num_vertices == 8

    def test_name_from_stem(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        path.write_text("0 1\n")
        assert read_edge_list_file(path).name == "mygraph"

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="expected"):
            read_edge_list_file(path)

    def test_non_integer(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(ValueError, match="non-integer"):
            read_edge_list_file(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        g = read_edge_list_file(path)
        assert g.num_vertices == 1
        assert g.num_edges == 0

    def test_attributes_forwarded(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n")
        g = read_edge_list_file(path, num_features=7, feature_density=0.5)
        assert g.num_features == 7
        assert g.feature_density == 0.5
