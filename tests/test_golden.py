"""Golden-number regression: the calibrated reproduction must not drift."""

import pytest

from repro.eval.golden import compute_golden_metrics, load_goldens


@pytest.fixture(scope="module")
def fresh():
    return compute_golden_metrics()


@pytest.fixture(scope="module")
def pinned():
    return load_goldens()


class TestGoldenRegression:
    def test_average_reductions_pinned(self, fresh, pinned):
        for metric, rows in pinned["average_reduction_percent"].items():
            for base, expected in rows.items():
                measured = fresh["average_reduction_percent"][metric][base]
                assert measured == pytest.approx(expected, abs=1.0), (
                    metric,
                    base,
                )

    def test_normalized_time_grid_pinned(self, fresh, pinned):
        for ds, row in pinned["normalized_execution_time"].items():
            for acc, expected in row.items():
                measured = fresh["normalized_execution_time"][ds][acc]
                assert measured == pytest.approx(expected, rel=0.02), (ds, acc)

    def test_goldens_cover_every_cell(self, pinned):
        assert set(pinned["average_reduction_percent"]) == {
            "execution_time",
            "dram_accesses",
            "onchip_latency",
            "energy",
        }
        assert set(pinned["normalized_execution_time"]) == {
            "cora",
            "citeseer",
            "pubmed",
            "nell",
            "reddit",
        }
