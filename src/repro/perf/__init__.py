"""Perf instrumentation and benchmarking for the analytical tier.

* :mod:`.instrumentation` — the process-global :data:`~.instrumentation.PERF`
  registry of stage timers and cache counters;
* :mod:`.bench` — the standard layer benchmarks behind ``repro bench``
  and the ``BENCH_*.json`` snapshot format.
"""

from .instrumentation import PERF, PerfRegistry, StageStat

__all__ = ["PERF", "PerfRegistry", "StageStat"]
