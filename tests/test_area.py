"""Area model tests against the paper's §VI-F breakdown."""

import pytest

from repro.arch import AreaModel
from repro.config import default_config, small_config


class TestPEBreakdown:
    def test_mac_fraction_near_paper(self):
        pe = AreaModel().pe_breakdown(default_config())
        assert pe.fraction("mac_array") == pytest.approx(0.071, abs=0.02)

    def test_memory_dominates(self):
        pe = AreaModel().pe_breakdown(default_config())
        assert pe.fraction("memory") == pytest.approx(0.829, abs=0.06)

    def test_control_small(self):
        pe = AreaModel().pe_breakdown(default_config())
        assert pe.fraction("control_and_switches") < 0.06

    def test_total_is_sum(self):
        pe = AreaModel().pe_breakdown(default_config())
        total = (
            pe.mac_array
            + pe.memory
            + pe.control_and_switches
            + pe.ppu
            + pe.reuse_fifo
            + pe.router_interface
        )
        assert pe.total == pytest.approx(total)


class TestChipBreakdown:
    def test_pe_array_fraction_near_paper(self):
        chip = AreaModel().chip_breakdown(default_config())
        assert chip.fraction("pe_array") == pytest.approx(0.6274, abs=0.05)

    def test_flexible_interconnect_fraction(self):
        chip = AreaModel().chip_breakdown(default_config())
        assert chip.fraction("flexible_interconnect") == pytest.approx(
            0.052, abs=0.015
        )

    def test_controller_negligible(self):
        chip = AreaModel().chip_breakdown(default_config())
        assert chip.fraction("controller") == pytest.approx(0.009, abs=0.006)

    def test_scales_with_array(self):
        big = AreaModel().chip_breakdown(default_config())
        small = AreaModel().chip_breakdown(small_config(8))
        assert big.total > 10 * small.total

    def test_as_dict(self):
        d = AreaModel().chip_breakdown(default_config()).as_dict()
        assert d["total"] == pytest.approx(sum(v for k, v in d.items() if k != "total"))
