"""Cycle-tier tile execution engine.

The analytical simulator (:mod:`repro.core.simulator`) *counts*; this
engine *executes*: it instantiates the PE grid, installs the
configuration plan on a real :class:`FlexibleMeshTopology`, injects the
tile's aggregation traffic into the flit-level :class:`NoCSimulator`
packet by packet, and runs each PE's datapath through
:meth:`PE.execute`.  It is the microarchitectural ground truth the
analytical tier is calibrated against (see
``tests/test_cycle_engine.py`` and experiment E14).

Scope: one tile, one layer, practical sizes (≤16×16 arrays, thousands of
packets).  The full-dataset sweeps stay on the analytical tier — the
same trade the paper makes by deriving time from counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arch.noc._reference import ReferenceNoCSimulator
from ..arch.noc.drain import NoCDeadlockError
from ..arch.noc.fused import FusedNoCSimulator, NumbaNoCSimulator
from ..arch.noc.network import NoCSimulator, warm_route_memo
from ..arch.pe import PE, PEConfig, PEDatapath, datapath_for_op
from ..config import AcceleratorConfig
from ..graphs.csr import CSRGraph
from ..mapping.base import MappingResult, PERegion
from ..mapping.memo import map_tile
from ..mapping.traffic import multicast_flows
from ..models.base import GNNModel, OpKind, Phase
from ..models.workload import LayerDims, extract_workload
from ..perf import PERF
from ..telemetry import TRACER
from .configuration import ConfigurationUnit
from .controller import AdaptiveWorkflowGenerator

__all__ = ["CycleTileResult", "CycleTileEngine"]


@dataclass
class CycleTileResult:
    """Measured execution of one tile at cycle granularity."""

    noc_cycles: int
    compute_cycles_a: int  # max over region-A PEs (edge update + aggregation)
    compute_cycles_b: int  # max over region-B PEs (vertex update)
    reconfig_cycles: int
    packets: int
    flits: int
    avg_packet_latency: float
    mesh_flit_hops: int
    bypass_flit_hops: int
    pe_busy_cycles: np.ndarray  # per-PE busy histogram
    stall_events: int

    @property
    def tile_cycles(self) -> int:
        """Tile latency: communication overlaps A compute; B follows in the
        pipeline, so the tile interval is the slowest stage."""
        stage_a = max(self.noc_cycles, self.compute_cycles_a)
        return max(stage_a, self.compute_cycles_b) + self.reconfig_cycles

    @property
    def busy_imbalance(self) -> float:
        busy = self.pe_busy_cycles[self.pe_busy_cycles > 0]
        if busy.size == 0:
            return 1.0
        return float(busy.max() / busy.mean())

    # JSON round-trip: the layer runner caches per-tile results on disk
    # and ships them across process boundaries (repro.core.cycle_layer).
    def to_payload(self) -> dict:
        return {
            "noc_cycles": self.noc_cycles,
            "compute_cycles_a": self.compute_cycles_a,
            "compute_cycles_b": self.compute_cycles_b,
            "reconfig_cycles": self.reconfig_cycles,
            "packets": self.packets,
            "flits": self.flits,
            "avg_packet_latency": self.avg_packet_latency,
            "mesh_flit_hops": self.mesh_flit_hops,
            "bypass_flit_hops": self.bypass_flit_hops,
            "pe_busy_cycles": [int(v) for v in self.pe_busy_cycles],
            "stall_events": self.stall_events,
        }

    @staticmethod
    def from_payload(data: dict) -> "CycleTileResult":
        return CycleTileResult(
            noc_cycles=int(data["noc_cycles"]),
            compute_cycles_a=int(data["compute_cycles_a"]),
            compute_cycles_b=int(data["compute_cycles_b"]),
            reconfig_cycles=int(data["reconfig_cycles"]),
            packets=int(data["packets"]),
            flits=int(data["flits"]),
            avg_packet_latency=float(data["avg_packet_latency"]),
            mesh_flit_hops=int(data["mesh_flit_hops"]),
            bypass_flit_hops=int(data["bypass_flit_hops"]),
            pe_busy_cycles=np.asarray(data["pe_busy_cycles"], dtype=np.int64),
            stall_events=int(data["stall_events"]),
        )


class CycleTileEngine:
    """Executes one tile of one layer at flit/PE cycle granularity."""

    #: Cap on injected packets per run; beyond this the flit simulation
    #: stops being the right tool (use the analytical tier).
    MAX_PACKETS = 200_000

    #: Selectable flit simulators: the batched event engine (default),
    #: the retained original implementation it is property-tested
    #: against, the fused multi-cycle drain loop, and the scalar-kernel
    #: engine that numba JITs when installed (falling back to the fused
    #: loop when it is not).  All four are pinned bit-identical by
    #: ``tests/test_noc_equivalence.py``.
    NOC_ENGINES = {
        "event": NoCSimulator,
        "reference": ReferenceNoCSimulator,
        "fused": FusedNoCSimulator,
        "numba": NumbaNoCSimulator,
    }

    #: Engine picked by ``noc_engine="auto"``: the scalar-kernel engine
    #: compiles when numba is present and falls back to the fused NumPy
    #: loop otherwise, so "numba" is safe to prefer unconditionally.
    AUTO_ENGINE = "numba"

    def __init__(
        self,
        config: AcceleratorConfig,
        *,
        mapping_policy: str = "degree-aware",
        noc_engine: str = "event",
    ) -> None:
        if config.array_k > 16:
            raise ValueError(
                "cycle tier supports arrays up to 16x16; use the analytical "
                "tier (AuroraSimulator) for larger configurations"
            )
        if mapping_policy not in ("degree-aware", "hashing"):
            raise ValueError("mapping_policy must be 'degree-aware' or 'hashing'")
        if noc_engine == "auto":
            noc_engine = self.AUTO_ENGINE
        if noc_engine not in self.NOC_ENGINES:
            raise ValueError(
                f"noc_engine must be one of {sorted(self.NOC_ENGINES)} or 'auto'"
            )
        self.config = config
        self.mapping_policy = mapping_policy
        self.noc_engine = noc_engine

    # ------------------------------------------------------------------
    def _build_pes(self) -> list[PE]:
        k = self.config.array_k
        return [PE(n % k, n // k, self.config) for n in range(k * k)]

    def _map(self, sub: CSRGraph, region: PERegion) -> MappingResult:
        # Shared content-keyed memo: calibration runs replay the same
        # tiles the analytical tier maps, so both tiers hit one cache.
        return map_tile(sub, region, self.mapping_policy)

    # ------------------------------------------------------------------
    def run_tile(
        self,
        model: GNNModel,
        sub: CSRGraph,
        dims: LayerDims,
        *,
        region_a: PERegion | None = None,
        region_b: PERegion | None = None,
    ) -> CycleTileResult:
        """Execute one tile: map, configure, inject, run, execute.

        ``region_a`` defaults to the top half of the array and
        ``region_b`` to the bottom half (models with no vertex update get
        the whole array as A).
        """
        with TRACER.span(
            "cycle.run_tile",
            {
                "model": model.name,
                "vertices": sub.num_vertices,
                "edges": sub.num_edges,
                "noc_engine": self.noc_engine,
            },
        ):
            return self._run_tile(
                model, sub, dims, region_a=region_a, region_b=region_b
            )

    def _run_tile(
        self,
        model: GNNModel,
        sub: CSRGraph,
        dims: LayerDims,
        *,
        region_a: PERegion | None = None,
        region_b: PERegion | None = None,
    ) -> CycleTileResult:
        cfg = self.config
        k = cfg.array_k
        workflow = AdaptiveWorkflowGenerator().generate(model)
        wl = extract_workload(model, sub, dims)

        if region_a is None:
            if model.has_vertex_update:
                region_a = PERegion(0, 0, k, k // 2, k)
                region_b = PERegion(0, k // 2, k, k, k)
            else:
                region_a = PERegion(0, 0, k, k, k)
                region_b = None

        with PERF.timer("cycle.map"), TRACER.span("cycle.map"):
            mapping = self._map(sub, region_a)
        with PERF.timer("cycle.configure"), TRACER.span("cycle.configure"):
            plan = ConfigurationUnit(cfg).configure(
                workflow, mapping, region_a, region_b
            )

        # ---- PE configuration ------------------------------------------
        pes = self._build_pes()
        reconfig_cycles = plan.reconfiguration_cycles
        for node in region_a.node_ids():
            for pe_cfg in plan.pe_configs_a[:1] or (PEConfig(PEDatapath.ADD_ONLY),):
                pes[node].configure(pe_cfg)
        if region_b is not None:
            for node in region_b.node_ids():
                for pe_cfg in plan.pe_configs_b[:1] or (
                    PEConfig(PEDatapath.MAC_CHAIN),
                ):
                    pes[node].configure(pe_cfg)

        # ---- NoC: inject the aggregation feature distribution -----------
        payload = dims.in_features * cfg.bytes_per_value
        mc = multicast_flows(sub, mapping, payload)
        sim = self.NOC_ENGINES[self.noc_engine](plan.topology, cfg.noc)
        n_packets = mc.flows.shape[0]
        if n_packets > self.MAX_PACKETS:
            raise ValueError(
                f"tile generates {n_packets} packets; exceed the cycle-tier "
                f"budget of {self.MAX_PACKETS} — shrink the tile or use the "
                "analytical tier"
            )
        # Route derivation is hoisted out of the inject loop: one pass
        # over the *unique* flow pairs fills the process-wide memo, which
        # every later tile (and every sibling shard on this topology)
        # then hits instead of re-deriving routes per packet.
        if n_packets:
            with PERF.timer("cycle.routes"):
                warm_route_memo(
                    plan.topology, np.unique(mc.flows[:, :2], axis=0)
                )
        # Spread injections over time at each source's injection rate so
        # the warm-up transient resembles steady pipelined operation.
        per_source_next: dict[int, int] = {}
        with PERF.timer("cycle.inject"):
            for src, dst, nbytes in mc.flows.tolist():
                when = per_source_next.get(src, 0)
                sim.inject(int(src), int(dst), int(nbytes), cycle=None)
                per_source_next[src] = when + 1
        try:
            with PERF.timer("cycle.noc"), TRACER.span(
                "cycle.noc", {"packets": n_packets}
            ):
                stats = sim.run(max_cycles=5_000_000) if n_packets else sim.stats
        except NoCDeadlockError as err:
            raise err.with_context(
                tile_nodes=sub.num_vertices,
                tile_edges=sub.num_edges,
                array_k=k,
                mapping_policy=self.mapping_policy,
                noc_engine=self.noc_engine,
                packets_injected=n_packets,
            ) from err

        # ---- PE execution ------------------------------------------------
        # Region A: per-PE work proportional to the messages it handles
        # (source sends + received merges), charged through PE.execute so
        # datapath legality and throughput are enforced.
        if sub.num_edges:
            per_edge_ue = wl.O_ue / sub.num_edges
            per_edge_agg = wl.O_a / sub.num_edges
        else:
            per_edge_ue = per_edge_agg = 0.0
        with PERF.timer("cycle.pe"):
            loads = mapping.communication_loads(sub.degrees)
            for node in region_a.node_ids():
                edges_here = int(loads[node])
                if edges_here == 0:
                    continue
                pe = pes[node]
                for spec in (model.edge_update, model.aggregation):
                    for op in spec.ops:
                        if op.kind.is_ppu:
                            continue
                        ops = int(
                            edges_here
                            * (per_edge_ue if spec.phase is Phase.EDGE_UPDATE else per_edge_agg)
                        )
                        if ops <= 0:
                            continue
                        pe.configure(PEConfig(datapath_for_op(op.kind)))
                        pe.execute(op.kind, ops)
                        break  # charge the phase once at its dominant op

            compute_a = max(
                (pes[n].busy_cycles for n in region_a.node_ids()), default=0
            )

            compute_b = 0
            if region_b is not None and wl.O_uv > 0:
                per_pe_ops = -(-wl.O_uv // region_b.num_pes)
                for node in region_b.node_ids():
                    pe = pes[node]
                    pe.configure(PEConfig(PEDatapath.MAC_CHAIN))
                    pe.execute(OpKind.MATRIX_VECTOR, per_pe_ops)
                compute_b = max(pes[n].busy_cycles for n in region_b.node_ids())

        busy = np.array([pe.busy_cycles for pe in pes], dtype=np.int64)
        return CycleTileResult(
            noc_cycles=stats.cycles,
            compute_cycles_a=int(compute_a),
            compute_cycles_b=int(compute_b),
            reconfig_cycles=reconfig_cycles,
            packets=stats.packets_delivered,
            flits=stats.flits_delivered,
            avg_packet_latency=stats.avg_packet_latency,
            mesh_flit_hops=stats.mesh_flit_hops,
            bypass_flit_hops=stats.bypass_flit_hops,
            pe_busy_cycles=busy,
            stall_events=stats.stall_events,
        )
