"""Hand-rolled RFC 6455 (WebSocket) on asyncio streams — stdlib only.

Just enough of the protocol for the observe push channel, in the same
spirit as :mod:`repro.serve.http`: a server-side upgrade handshake, a
frame codec with extended lengths and client-frame unmasking, a
reassembler that enforces the fragmentation and masking rules, and a
client handshake for the router's replica relays and the CLI tooling.

Anything a peer does that the spec forbids raises
:class:`WebSocketError`; the connection owner answers with a protocol
close (1002) and hangs up.  No extensions, no subprotocols, no
permessage-deflate — every frame carries plain JSON text.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os
import struct
from dataclasses import dataclass

__all__ = [
    "GUID",
    "OP_CONT",
    "OP_TEXT",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "WebSocketError",
    "Frame",
    "accept_key",
    "handshake_response",
    "encode_frame",
    "encode_text",
    "encode_close",
    "encode_ping",
    "encode_pong",
    "read_frame",
    "close_code",
    "FrameAssembler",
    "client_handshake",
]

#: The protocol-mandated key-derivation GUID (RFC 6455 §1.3).
GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_DATA_OPCODES = {OP_CONT, OP_TEXT, OP_BINARY}
_CONTROL_OPCODES = {OP_CLOSE, OP_PING, OP_PONG}

#: Upper bound on a single frame and on a reassembled message; observe
#: events are a few KB, so anything near this is hostile or broken.
MAX_FRAME_BYTES = 1 << 20
MAX_MESSAGE_BYTES = 1 << 20


class WebSocketError(ValueError):
    """A frame or handshake the protocol layer refuses (close 1002)."""


@dataclass
class Frame:
    """One wire frame, unmasked."""

    fin: bool
    opcode: int
    payload: bytes
    masked: bool


def accept_key(key: str) -> str:
    """``Sec-WebSocket-Accept`` for a client's ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((key + GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def handshake_response(request) -> bytes:
    """Validate an upgrade request and render the 101 reply.

    ``request`` is a :class:`repro.serve.http.HTTPRequest` (lower-cased
    header names).  Raises :class:`WebSocketError` on anything other
    than a well-formed RFC 6455 opening handshake.
    """
    if request.method != "GET":
        raise WebSocketError("websocket upgrade must be GET")
    if "websocket" not in request.headers.get("upgrade", "").lower():
        raise WebSocketError("missing 'Upgrade: websocket' header")
    connection = request.headers.get("connection", "").lower()
    if "upgrade" not in connection:
        raise WebSocketError("missing 'Connection: Upgrade' header")
    key = request.headers.get("sec-websocket-key", "")
    if not key:
        raise WebSocketError("missing Sec-WebSocket-Key header")
    version = request.headers.get("sec-websocket-version")
    if version is not None and version.strip() != "13":
        raise WebSocketError(f"unsupported websocket version: {version}")
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {accept_key(key)}\r\n"
        "\r\n"
    ).encode("latin-1")


def _mask_payload(payload: bytes, key: bytes) -> bytes:
    # XOR with the 4-byte key cycled over the payload; int.from_bytes
    # over repeated key beats a per-byte python loop by ~30x.
    if not payload:
        return payload
    repeated = key * (len(payload) // 4 + 1)
    return (
        int.from_bytes(payload, "big")
        ^ int.from_bytes(repeated[: len(payload)], "big")
    ).to_bytes(len(payload), "big")


def encode_frame(
    opcode: int, payload: bytes = b"", *, fin: bool = True, mask: bool = False
) -> bytes:
    """Render one frame; ``mask=True`` for client→server frames."""
    header = bytearray([(0x80 if fin else 0x00) | (opcode & 0x0F)])
    mask_bit = 0x80 if mask else 0x00
    length = len(payload)
    if length < 126:
        header.append(mask_bit | length)
    elif length < (1 << 16):
        header.append(mask_bit | 126)
        header += struct.pack("!H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack("!Q", length)
    if mask:
        key = os.urandom(4)
        return bytes(header) + key + _mask_payload(payload, key)
    return bytes(header) + payload


def encode_text(text: str, *, mask: bool = False) -> bytes:
    return encode_frame(OP_TEXT, text.encode("utf-8"), mask=mask)


def encode_close(code: int = 1000, reason: str = "", *, mask: bool = False) -> bytes:
    payload = struct.pack("!H", code) + reason.encode("utf-8")[:123]
    return encode_frame(OP_CLOSE, payload, mask=mask)


def encode_ping(payload: bytes = b"", *, mask: bool = False) -> bytes:
    return encode_frame(OP_PING, payload, mask=mask)


def encode_pong(payload: bytes = b"", *, mask: bool = False) -> bytes:
    return encode_frame(OP_PONG, payload, mask=mask)


def close_code(payload: bytes) -> int | None:
    """The status code of a close frame's payload (``None`` if absent)."""
    if len(payload) < 2:
        return None
    return struct.unpack("!H", payload[:2])[0]


async def read_frame(reader: asyncio.StreamReader) -> Frame | None:
    """Parse one frame; ``None`` on a clean EOF at a frame boundary."""
    try:
        head = await reader.readexactly(2)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WebSocketError("connection closed mid-frame") from None
    except ConnectionError:
        return None
    b1, b2 = head
    if b1 & 0x70:
        raise WebSocketError("reserved bits set without a negotiated extension")
    fin = bool(b1 & 0x80)
    opcode = b1 & 0x0F
    if opcode not in _DATA_OPCODES and opcode not in _CONTROL_OPCODES:
        raise WebSocketError(f"reserved opcode 0x{opcode:x}")
    masked = bool(b2 & 0x80)
    length = b2 & 0x7F
    try:
        if length == 126:
            length = struct.unpack("!H", await reader.readexactly(2))[0]
        elif length == 127:
            length = struct.unpack("!Q", await reader.readexactly(8))[0]
        if length > MAX_FRAME_BYTES:
            raise WebSocketError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
        key = await reader.readexactly(4) if masked else b""
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError:
        raise WebSocketError("connection closed mid-frame") from None
    if masked:
        payload = _mask_payload(payload, key)
    return Frame(fin=fin, opcode=opcode, payload=payload, masked=masked)


class FrameAssembler:
    """Reassemble messages and enforce the masking/fragmentation rules.

    ``require_mask=True`` is the server side (client frames MUST be
    masked); ``require_mask=False`` is the client side (server frames
    MUST NOT be masked).  :meth:`feed` yields zero or one completed
    ``(kind, payload)`` message per frame — ``kind`` is one of
    ``"text"``, ``"binary"``, ``"ping"``, ``"pong"``, ``"close"`` —
    and raises :class:`WebSocketError` on violations.
    """

    def __init__(
        self, *, require_mask: bool, max_message_bytes: int = MAX_MESSAGE_BYTES
    ) -> None:
        self.require_mask = require_mask
        self.max_message_bytes = max_message_bytes
        self._fragments: list[bytes] = []
        self._fragment_opcode: int | None = None

    def feed(self, frame: Frame) -> tuple[str, bytes] | None:
        if self.require_mask and not frame.masked:
            raise WebSocketError("client frames must be masked")
        if not self.require_mask and frame.masked:
            raise WebSocketError("server frames must not be masked")

        if frame.opcode in _CONTROL_OPCODES:
            # Control frames may interleave a fragmented message but may
            # not themselves be fragmented or oversized (RFC 6455 §5.5).
            if not frame.fin:
                raise WebSocketError("control frames must not be fragmented")
            if len(frame.payload) > 125:
                raise WebSocketError("control frame payload exceeds 125 bytes")
            kind = {OP_CLOSE: "close", OP_PING: "ping", OP_PONG: "pong"}
            return kind[frame.opcode], frame.payload

        if frame.opcode == OP_CONT:
            if self._fragment_opcode is None:
                raise WebSocketError("continuation frame without a message start")
            self._fragments.append(frame.payload)
        else:  # TEXT / BINARY
            if self._fragment_opcode is not None:
                raise WebSocketError(
                    "new data frame while a fragmented message is open"
                )
            self._fragment_opcode = frame.opcode
            self._fragments = [frame.payload]
        if sum(len(part) for part in self._fragments) > self.max_message_bytes:
            raise WebSocketError(
                f"message exceeds {self.max_message_bytes} bytes"
            )
        if not frame.fin:
            return None
        opcode = self._fragment_opcode
        payload = b"".join(self._fragments)
        self._fragments = []
        self._fragment_opcode = None
        if opcode == OP_TEXT:
            try:
                payload.decode("utf-8")
            except UnicodeDecodeError:
                raise WebSocketError("text message is not valid UTF-8") from None
            return "text", payload
        return "binary", payload


async def client_handshake(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    host: str,
    path: str = "/observe",
) -> None:
    """Perform the client side of the opening handshake on open streams.

    Raises :class:`WebSocketError` unless the peer answers 101 with the
    key-derived ``Sec-WebSocket-Accept``.
    """
    key = base64.b64encode(os.urandom(16)).decode("ascii")
    writer.write(
        (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n"
            "\r\n"
        ).encode("latin-1")
    )
    await writer.drain()
    status_line = await reader.readline()
    parts = status_line.decode("latin-1", "replace").split()
    if len(parts) < 2 or parts[1] != "101":
        raise WebSocketError(
            f"upgrade refused: {status_line.decode('latin-1', 'replace').strip()!r}"
        )
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise WebSocketError("connection closed mid-handshake")
        name, sep, value = raw.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    if headers.get("sec-websocket-accept") != accept_key(key):
        raise WebSocketError("Sec-WebSocket-Accept mismatch")
