/* repro observer: one WebSocket, a few canvases, zero dependencies.
 *
 * Connects to ws(s)://<host>/observe and renders the event stream:
 * request lifecycle feed, latency sparkline, admission/batcher gauges
 * (from stats.tick), per-stage span aggregates, and the per-tile NoC
 * traffic heatmap (noc.tile events). Reconnects with backoff so a
 * replica restart does not require a page reload.
 */
(function () {
  "use strict";

  var FEED_ROWS = 40;
  var LATENCY_POINTS = 120;

  var conn = document.getElementById("conn");
  var totals = document.getElementById("totals");
  var feedBody = document.querySelector("#feed tbody");
  var spansBody = document.querySelector("#spans tbody");

  var latencies = [];
  var stages = {}; // name -> {count, sum, last}
  var eventsSeen = 0;
  var backoff = 500;

  function fmt(n, digits) {
    return typeof n === "number" ? n.toFixed(digits === undefined ? 1 : digits) : "–";
  }

  function setGauge(id, value) {
    var el = document.getElementById(id);
    if (el) el.textContent = value === undefined || value === null ? "–" : value;
  }

  function addFeedRow(ev) {
    var row = document.createElement("tr");
    var kind = ev.type.split(".").pop();
    var detail = "";
    var d = ev.data || {};
    if (ev.type === "request.completed")
      detail = fmt(1000 * d.latency_seconds) + " ms" +
        (d.cached ? " · cached" : "") + (d.joined ? " · joined" : "");
    else if (ev.type === "request.shed") detail = "HTTP " + d.status;
    else if (ev.type === "request.error") detail = d.error || "";
    else if (ev.type === "request.timeout") detail = fmt(d.timeout_seconds, 2) + " s budget";
    else if (ev.type === "request.admitted") detail = "in flight " + d.in_flight;
    else if (ev.type === "batch.flush") detail = d.jobs + " job(s), batch #" + d.batches_run;
    row.innerHTML =
      "<td>" + ev.seq + "</td>" +
      "<td>" + new Date(ev.ts * 1000).toLocaleTimeString() + "</td>" +
      '<td class="evt-' + kind + '">' + ev.type + "</td>" +
      "<td>" + (d.rid || "") + "</td>" +
      "<td>" + detail + "</td>";
    feedBody.insertBefore(row, feedBody.firstChild);
    while (feedBody.children.length > FEED_ROWS) feedBody.removeChild(feedBody.lastChild);
  }

  function drawLatency() {
    var canvas = document.getElementById("latency");
    var ctx = canvas.getContext("2d");
    ctx.clearRect(0, 0, canvas.width, canvas.height);
    if (!latencies.length) return;
    var max = Math.max.apply(null, latencies);
    var w = canvas.width / LATENCY_POINTS;
    ctx.fillStyle = "#5cc8ff";
    latencies.forEach(function (v, i) {
      var h = Math.max(2, (v / max) * (canvas.height - 6));
      ctx.fillRect(i * w, canvas.height - h, Math.max(1, w - 1), h);
    });
    var sum = latencies.reduce(function (a, b) { return a + b; }, 0);
    document.getElementById("latency-stats").textContent =
      "n=" + latencies.length + "  mean=" + fmt(1000 * sum / latencies.length) +
      " ms  max=" + fmt(1000 * max) + " ms";
  }

  function drawHeat(k, heat) {
    var canvas = document.getElementById("heatmap");
    var ctx = canvas.getContext("2d");
    ctx.clearRect(0, 0, canvas.width, canvas.height);
    if (!k || !heat || !heat.length) return;
    var cell = Math.floor(canvas.width / k);
    var max = Math.max.apply(null, heat) || 1;
    for (var y = 0; y < k; y++) {
      for (var x = 0; x < k; x++) {
        var v = heat[y * k + x] / max;
        // cold steel-blue -> hot amber ramp
        var r = Math.round(30 + 225 * v);
        var g = Math.round(40 + 120 * v);
        var b = Math.round(70 + 60 * (1 - v));
        ctx.fillStyle = "rgb(" + r + "," + g + "," + b + ")";
        ctx.fillRect(x * cell, y * cell, cell - 1, cell - 1);
      }
    }
    document.getElementById("heat-stats").textContent =
      k + "×" + k + " mesh · max " + Math.round(max) + " flits";
  }

  function updateSpans(d) {
    var s = stages[d.name] || { count: 0, sum: 0, last: 0 };
    s.count += 1;
    s.sum += d.duration || 0;
    s.last = d.duration || 0;
    stages[d.name] = s;
    var names = Object.keys(stages).sort();
    spansBody.innerHTML = names.map(function (name) {
      var st = stages[name];
      return "<tr><td>" + name + "</td><td>" + st.count + "</td><td>" +
        fmt(1000 * st.last, 2) + "</td><td>" +
        fmt(1000 * (st.sum / st.count), 2) + "</td></tr>";
    }).join("");
  }

  function onStats(d) {
    var adm = d.admission || {};
    var bat = d.batcher || {};
    setGauge("g-inflight", adm.in_flight);
    setGauge("g-depth", adm.max_pending);
    setGauge("g-shed", adm.shed);
    setGauge("g-batches", bat.batches_run);
    setGauge("g-jobs", bat.jobs_run);
    setGauge("g-joins", bat.singleflight_joins);
  }

  function onEvent(ev) {
    eventsSeen += 1;
    totals.textContent = eventsSeen + " events";
    if (ev.type.indexOf("request.") === 0 || ev.type === "batch.flush") {
      addFeedRow(ev);
      if (ev.type === "request.completed" && ev.data.latency_seconds != null) {
        latencies.push(ev.data.latency_seconds);
        if (latencies.length > LATENCY_POINTS) latencies.shift();
        drawLatency();
      }
    } else if (ev.type === "span") {
      updateSpans(ev.data);
    } else if (ev.type === "noc.tile") {
      drawHeat(ev.data.k, ev.data.heat);
    } else if (ev.type === "stats.tick") {
      onStats(ev.data);
    } else if (ev.type === "observe.hello") {
      totals.textContent = "schema v" + ev.data.schema;
    }
  }

  function connect() {
    var proto = location.protocol === "https:" ? "wss://" : "ws://";
    var ws = new WebSocket(proto + location.host + "/observe");
    ws.onopen = function () {
      conn.textContent = "live";
      conn.className = "badge up";
      backoff = 500;
    };
    ws.onmessage = function (msg) {
      try {
        onEvent(JSON.parse(msg.data));
      } catch (err) { /* tolerate one bad frame */ }
    };
    ws.onclose = function () {
      conn.textContent = "disconnected — retrying";
      conn.className = "badge down";
      setTimeout(connect, backoff);
      backoff = Math.min(backoff * 2, 10000);
    };
    ws.onerror = function () { ws.close(); };
  }

  connect();
})();
