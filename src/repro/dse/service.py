"""Async search management for the serving layer.

``POST /dse`` cannot block a request thread for a whole search, so the
:class:`DSEManager` runs each accepted search on a daemon thread and
hands back a search id; ``GET /dse/<id>`` polls a thread-safe snapshot
(state, evaluation count, running best, trajectory tail).  Searches
share the server's :class:`ResultCache`, so a search warms the cache
for the serving path and vice versa — one content-addressed store under
everything.

Budgets are clamped server-side (``MAX_EVALUATIONS_CAP``,
``MAX_SECONDS_CAP``, bounded concurrent searches) so one client cannot
wedge a replica with an unbounded search.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time

from .artifacts import read_trajectory
from .runner import DSERunner, SearchSpec

__all__ = ["DSEManager", "MAX_EVALUATIONS_CAP", "MAX_SECONDS_CAP"]

#: Hard server-side caps on a single ``POST /dse`` request.
MAX_EVALUATIONS_CAP = 512
MAX_SECONDS_CAP = 300.0
MAX_BATCH_CAP = 32

#: Finished searches kept for polling before eviction (FIFO).
KEEP_FINISHED = 32


class _Search:
    """One accepted search: its runner, thread, and final result."""

    def __init__(self, search_id: str, runner: DSERunner) -> None:
        self.id = search_id
        self.runner = runner
        self.result = None
        self.error: str | None = None
        self.created = time.time()
        self.thread = threading.Thread(
            target=self._run, name=f"dse-{search_id}", daemon=True
        )

    def _run(self) -> None:
        try:
            self.result = self.runner.run()
        except Exception as exc:  # noqa: BLE001 — surfaced via polling
            self.error = f"{type(exc).__name__}: {exc}"

    @property
    def state(self) -> str:
        if self.error is not None:
            return "error"
        if self.thread.is_alive():
            return "running"
        if self.result is not None:
            return "done"
        return "pending"


class DSEManager:
    """Accept, run and expose budgeted searches for one server replica."""

    def __init__(
        self,
        *,
        cache=None,
        executor=None,
        artifact_dir=None,
        max_active: int = 2,
        replica_id: str = "0",
    ) -> None:
        self.cache = cache
        self.executor = executor
        self.artifact_dir = artifact_dir
        self.max_active = max_active
        self.replica_id = replica_id
        self._searches: dict[str, _Search] = {}
        self._lock = threading.Lock()
        self._counter = itertools.count()
        self.started_total = 0
        self.rejected_total = 0

    # -- admission -----------------------------------------------------
    def _next_id(self, spec: SearchSpec) -> str:
        seq = next(self._counter)
        blob = f"{self.replica_id}:{seq}:{spec.as_dict()}:{time.time_ns()}"
        return hashlib.sha256(blob.encode()).hexdigest()[:12]

    def _active_count(self) -> int:
        return sum(
            1 for s in self._searches.values() if s.thread.is_alive()
        )

    def parse_spec(self, body: dict) -> SearchSpec:
        """Validate a request body into a clamped :class:`SearchSpec`.

        Raises ``ValueError`` with a client-presentable message for any
        malformed or over-budget field.
        """
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        spec = SearchSpec.from_dict(body)
        if spec.max_evaluations > MAX_EVALUATIONS_CAP:
            raise ValueError(
                f"max_evaluations exceeds server cap ({MAX_EVALUATIONS_CAP})"
            )
        if spec.max_seconds is not None and spec.max_seconds > MAX_SECONDS_CAP:
            raise ValueError(
                f"max_seconds exceeds server cap ({MAX_SECONDS_CAP:g})"
            )
        if spec.batch > MAX_BATCH_CAP:
            raise ValueError(f"batch exceeds server cap ({MAX_BATCH_CAP})")
        if spec.max_seconds is None:
            # Every hosted search gets a wall-clock bound even if the
            # client didn't ask for one.
            spec = SearchSpec.from_dict(
                {**spec.as_dict(), "max_seconds": MAX_SECONDS_CAP}
            )
        return spec

    def start(self, body: dict) -> dict:
        """Accept a search request; returns the poll handle.

        Raises ``ValueError`` for bad specs and ``RuntimeError`` when the
        replica is already running its maximum concurrent searches.
        """
        spec = self.parse_spec(body)
        with self._lock:
            if self._active_count() >= self.max_active:
                self.rejected_total += 1
                raise RuntimeError("too many concurrent searches")
            search_id = self._next_id(spec)
            if self.artifact_dir is None:
                import tempfile

                self.artifact_dir = tempfile.mkdtemp(prefix="repro-dse-")
            from pathlib import Path

            trajectory_path = Path(self.artifact_dir) / f"dse_{search_id}.jsonl"
            runner = DSERunner(
                spec,
                cache=self.cache,
                executor=self.executor,
                trajectory_path=trajectory_path,
            )
            search = _Search(search_id, runner)
            self._searches[search_id] = search
            self.started_total += 1
            self._evict_finished()
        search.thread.start()
        return {
            "search_id": search_id,
            "status": "accepted",
            "poll": f"/dse/{search_id}",
            "spec": spec.as_dict(),
        }

    def _evict_finished(self) -> None:
        finished = [
            sid
            for sid, s in self._searches.items()
            if not s.thread.is_alive() and s.thread.ident is not None
        ]
        while len(finished) > KEEP_FINISHED:
            self._searches.pop(finished.pop(0), None)

    # -- polling -------------------------------------------------------
    def status(self, search_id: str, *, tail: int = 5) -> dict | None:
        """Poll snapshot for one search (None for unknown ids)."""
        with self._lock:
            search = self._searches.get(search_id)
        if search is None:
            return None
        snapshot = search.runner.snapshot()
        payload = {
            "search_id": search_id,
            "state": search.state,
            "spec": search.runner.spec.as_dict(),
            **snapshot,
        }
        if search.error is not None:
            payload["error"] = search.error
        if search.result is not None:
            payload["result"] = search.result.as_dict()
        trajectory_path = search.runner.trajectory_path
        if trajectory_path is not None and trajectory_path.exists():
            try:
                _, records = read_trajectory(trajectory_path)
                payload["trajectory_tail"] = records[-tail:]
            except Exception:  # noqa: BLE001 — partial write mid-poll
                pass
        return payload

    def cancel(self, search_id: str) -> bool:
        """Request cooperative cancellation of a running search."""
        with self._lock:
            search = self._searches.get(search_id)
        if search is None:
            return False
        search.runner.cancel.set()
        return True

    def stats(self) -> dict:
        with self._lock:
            return {
                "active": self._active_count(),
                "tracked": len(self._searches),
                "started_total": self.started_total,
                "rejected_total": self.rejected_total,
            }
