"""Zero-repickle graph plane: shared-memory CSR shipping for fan-out.

Shipping a tile subgraph to a pool worker normally pickles its CSR
arrays into the pool's pipe — per shard, per request, even when the
arrays have not changed since the last request.  The graph plane removes
that cost:

* the parent :class:`GraphPlane` publishes a graph's arrays into one
  ``multiprocessing.shared_memory`` segment per *content key* (a second
  publish of the same content is a dict hit, not a copy);
* the shard payload then carries a tiny :class:`GraphHandle` instead of
  the arrays;
* workers call :func:`resolve_handle`, which serves repeats from a
  process-local content-keyed cache and otherwise attaches the segment,
  copies the arrays out, and detaches immediately.

Across successive mutation deltas only dirty tiles are ever shipped at
all (clean tiles resolve from the per-tile result cache), and with a
kept-alive pool (``ProcessExecutor(keep_alive=True)``) a re-dirtied
tile whose content key a worker has already seen costs no array traffic
at all.

Crash safety: ownership is strictly parental.  Workers never create or
unlink segments — they even unregister their attachments from the
``multiprocessing.resource_tracker`` (which would otherwise unlink the
parent's segments when a worker exits, CPython's bpo-38119 behaviour) —
so a crashed worker can never leak or destroy a segment.  The parent
unlinks everything in :meth:`GraphPlane.close`, which runs from context
exit, ``atexit``, and the finalizer; the leak test kills a worker
mid-resolve and asserts every segment is gone after close.
"""

from __future__ import annotations

import atexit
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from ..perf import PERF

try:  # pragma: no cover - exercised only where shm is unavailable
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None

__all__ = [
    "GraphHandle",
    "GraphPlane",
    "resolve_handle",
    "clear_resolve_cache",
    "plane_available",
]

#: Worker-side resolve cache bound: tiles are small, but a long-lived
#: worker serving many graphs must not grow without limit.
RESOLVE_CACHE_MAX = 256

_RESOLVED: "OrderedDict[str, CSRGraph]" = OrderedDict()

#: Segment names created by a GraphPlane in *this* process.  Resolving a
#: handle locally (serial fallback, tests) must not unregister the
#: owner's resource-tracker entry.
_OWNED: set[str] = set()


def plane_available() -> bool:
    """Whether shared-memory shipping is usable on this platform."""
    return shared_memory is not None


@dataclass(frozen=True)
class GraphHandle:
    """Picklable pointer to a published graph: metadata, not arrays."""

    key: str
    shm_name: str
    num_vertices: int
    num_edges: int
    num_features: int
    feature_density: float
    edge_feature_dim: int
    name: str


def _detach(shm) -> None:
    """Close an attachment without unlinking, leaving ownership intact.

    Attaching registers the segment with the resource tracker, which
    would unlink it when *this* process exits — destroying the parent's
    segment.  Unregister first; the parent remains the sole owner.  When
    the attachment lives in the owning process itself, the registration
    belongs to the creator and must stay.
    """
    if shm.name not in _OWNED:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    shm.close()


class GraphPlane:
    """Parent-side registry of published (content key → segment) graphs."""

    def __init__(self) -> None:
        if shared_memory is None:  # pragma: no cover
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        self._segments: dict[str, tuple[GraphHandle, object]] = {}
        self._closed = False
        self.stats = {"published": 0, "reused": 0, "bytes": 0}
        atexit.register(self.close)

    def publish(self, graph: CSRGraph) -> GraphHandle:
        """Copy ``graph``'s CSR arrays into shared memory, memoized.

        The first publish of a content key pays one memcpy; repeats
        return the existing handle.  Mutated graphs share nothing with
        their parents here — but their *clean tiles* are never published
        at all, because the per-tile cache already served them.
        """
        if self._closed:
            raise RuntimeError("graph plane is closed")
        key = graph.content_key
        hit = self._segments.get(key)
        if hit is not None:
            self.stats["reused"] += 1
            PERF.incr("graphplane.reused")
            return hit[0]
        nbytes = graph.indptr.nbytes + graph.indices.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        buf = np.frombuffer(shm.buf, dtype=np.int64, count=nbytes // 8)
        buf[: graph.indptr.size] = graph.indptr
        buf[graph.indptr.size :] = graph.indices
        handle = GraphHandle(
            key=key,
            shm_name=shm.name,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            num_features=graph.num_features,
            feature_density=graph.feature_density,
            edge_feature_dim=graph.edge_feature_dim,
            name=graph.name,
        )
        self._segments[key] = (handle, shm)
        _OWNED.add(shm.name)
        self.stats["published"] += 1
        self.stats["bytes"] += nbytes
        PERF.incr("graphplane.published")
        return handle

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    def close(self) -> None:
        """Unlink every published segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for _, shm in self._segments.values():
            _OWNED.discard(shm.name)
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover
            pass

    def __enter__(self) -> "GraphPlane":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass


def resolve_handle(handle: GraphHandle) -> CSRGraph:
    """Materialize a published graph in this process, content-cached.

    The arrays are copied out of the segment and the attachment closed
    immediately, so worker lifetime never pins parent segments.  The
    resolved graph's ``content_key`` is trusted from the handle (the
    parent computed it), so workers skip re-hashing.
    """
    cached = _RESOLVED.get(handle.key)
    if cached is not None:
        _RESOLVED.move_to_end(handle.key)
        PERF.incr("graphplane.resolve_hit")
        return cached
    PERF.incr("graphplane.resolve_miss")
    if shared_memory is None:  # pragma: no cover
        raise RuntimeError("multiprocessing.shared_memory unavailable")
    shm = shared_memory.SharedMemory(name=handle.shm_name)
    try:
        total = handle.num_vertices + 1 + handle.num_edges
        buf = np.frombuffer(shm.buf, dtype=np.int64, count=total)
        indptr = np.array(buf[: handle.num_vertices + 1], copy=True)
        indices = np.array(buf[handle.num_vertices + 1 :], copy=True)
        del buf  # release the buffer export before detaching
    finally:
        _detach(shm)
    graph = CSRGraph(
        indptr,
        indices,
        num_features=handle.num_features,
        feature_density=handle.feature_density,
        edge_feature_dim=handle.edge_feature_dim,
        name=handle.name,
    )
    graph._content_key = handle.key
    _RESOLVED[handle.key] = graph
    while len(_RESOLVED) > RESOLVE_CACHE_MAX:
        _RESOLVED.popitem(last=False)
    return graph


def clear_resolve_cache() -> None:
    """Drop the process-local resolved-graph cache (tests)."""
    _RESOLVED.clear()
