"""End-to-end observability: tracing, metrics, and exporters.

Three pieces, one story — *where did the time go for this request*:

* :mod:`.trace` — spans with trace/parent links and contextvar-carried
  ancestry (asyncio-safe), a bounded :class:`~.trace.SpanBuffer`, and
  cross-process propagation through the executor record path.  The
  process-global tracer is :data:`TRACER` (disabled by default; the
  serve CLI and benches turn it on).
* :mod:`.metrics` — thread-safe counters / gauges / fixed-bucket
  histograms in the process-global :data:`METRICS` registry, rendered
  by the serve ``/metrics`` endpoint as Prometheus text.  The legacy
  ``repro.perf`` ``PERF`` registry is an adapter over this store.
* :mod:`.export` — Chrome/Perfetto ``trace.json``, JSONL span logs, and
  per-stage summaries (``repro trace export|summary``).

See ``docs/observability.md`` for the span model and a worked trace.
"""

from .metrics import METRICS, MetricsRegistry
from .trace import TRACER, Span, SpanBuffer, Tracer

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "TRACER",
    "Span",
    "SpanBuffer",
    "Tracer",
]
