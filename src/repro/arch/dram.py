"""Off-package DRAM timing model (DRAMSim2 substitute).

The paper obtains off-package communication time from DRAMSim2.  The
simulator only consumes two things from it: the *time* a request stream
takes and the *byte volume* (for energy).  This model reproduces the
first-order DRAMSim2 behaviours that matter to a streaming accelerator:

* bandwidth-limited transfer for large sequential streams,
* row-buffer locality: sequential streams hit open rows, random (gather)
  streams pay activate/precharge on nearly every burst,
* bank-level parallelism hides part of the random-access latency.

Every request is accounted in whole bursts, matching DDR burst framing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import DRAMConfig

__all__ = ["AccessPattern", "DRAMStats", "DRAMModel"]


class AccessPattern:
    """Request-stream classification."""

    SEQUENTIAL = "sequential"
    RANDOM = "random"


@dataclass
class DRAMStats:
    """Accumulated DRAM activity of a run."""

    reads_bytes: int = 0
    writes_bytes: int = 0
    bursts: int = 0
    row_hits: int = 0
    row_misses: int = 0
    busy_seconds: float = 0.0

    @property
    def total_bytes(self) -> int:
        return self.reads_bytes + self.writes_bytes

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


class DRAMModel:
    """Stateless-per-request banked DRAM timing model.

    ``access`` returns the service time in seconds for the given stream
    and accumulates stats.  Sequential streams pay one row miss per row
    buffer's worth of data; random streams pay a miss on (almost) every
    burst, amortised across the bank/channel parallelism.
    """

    def __init__(self, config: DRAMConfig | None = None) -> None:
        self.config = config or DRAMConfig()
        self.stats = DRAMStats()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.stats = DRAMStats()

    def access(
        self,
        num_bytes: int,
        *,
        pattern: str = AccessPattern.SEQUENTIAL,
        write: bool = False,
    ) -> float:
        """Service ``num_bytes`` and return the stream's service time (s)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if pattern not in (AccessPattern.SEQUENTIAL, AccessPattern.RANDOM):
            raise ValueError(f"unknown access pattern {pattern!r}")
        if num_bytes == 0:
            return 0.0
        cfg = self.config
        bursts = -(-num_bytes // cfg.burst_bytes)  # ceil division
        padded = bursts * cfg.burst_bytes

        if pattern == AccessPattern.SEQUENTIAL:
            rows_touched = -(-padded // cfg.row_buffer_bytes)
            hits = bursts - rows_touched
            misses = rows_touched
        else:
            # Random gathers: ~1 miss per burst, softened by residual
            # locality (two gathers occasionally land in the same row).
            misses = max(1, int(round(bursts * 0.9)))
            hits = bursts - misses

        # Latency component: misses pay t_row_miss, hits t_row_hit, spread
        # across the banks that can work in parallel.
        parallel_banks = cfg.channels * cfg.banks_per_channel
        latency_s = (
            misses * cfg.t_row_miss_ns + hits * cfg.t_row_hit_ns
        ) * 1e-9 / parallel_banks
        # Bandwidth component: the bus must move every padded byte.
        bandwidth_s = padded / cfg.bandwidth_bytes_per_sec
        service = max(latency_s, bandwidth_s)

        st = self.stats
        if write:
            st.writes_bytes += padded
        else:
            st.reads_bytes += padded
        st.bursts += bursts
        st.row_hits += hits
        st.row_misses += misses
        st.busy_seconds += service
        return service

    # ------------------------------------------------------------------
    def stream_time(self, num_bytes: int) -> float:
        """Pure-bandwidth time for ``num_bytes`` (no stats side effects)."""
        return num_bytes / self.config.bandwidth_bytes_per_sec
