#!/usr/bin/env python3
"""Citation-network inference: functional GCN forward + accelerator sweep.

Runs the *executable* NumPy GCN (the correctness reference) over a
citation graph, then simulates the same workload on Aurora and every
baseline — the paper's vertex-classification motivating scenario.

Run:  python examples/citation_networks.py
"""

import numpy as np

from repro import AuroraSimulator, get_model, load_dataset
from repro.baselines import BASELINE_CLASSES
from repro.core.accelerator import layer_plan
from repro.eval import format_table
from repro.graphs.datasets import dataset_profile
from repro.models import gcn_layer


def functional_forward(graph, hidden: int, num_classes: int, seed: int = 0):
    """Two GCN layers end to end in NumPy (features -> class scores)."""
    rng = np.random.default_rng(seed)
    n, f = graph.num_vertices, graph.num_features
    # Sparse random features matching the dataset's density.
    x = rng.normal(size=(n, f)) * (rng.random((n, f)) < graph.feature_density)
    w1 = rng.normal(0, 1 / np.sqrt(f), size=(f, hidden))
    w2 = rng.normal(0, 1 / np.sqrt(hidden), size=(hidden, num_classes))
    h = gcn_layer(graph, x, w1)
    scores = gcn_layer(graph, h, w2)
    return scores


def main() -> None:
    model = get_model("gcn")
    rows = []
    for name, scale in (("cora", 1.0), ("citeseer", 1.0), ("pubmed", 0.25)):
        graph = load_dataset(name, scale=scale)
        prof = dataset_profile(name)

        scores = functional_forward(graph, hidden=64, num_classes=prof.num_classes)
        predicted = scores.argmax(axis=1)
        print(
            f"{name}: functional 2-layer GCN produced class scores "
            f"{scores.shape}, predicted class histogram "
            f"{np.bincount(predicted, minlength=prof.num_classes).tolist()}"
        )

        dims = layer_plan(graph, 64, 2, prof.num_classes)
        aurora = AuroraSimulator().simulate(model, graph, dims)
        cells = [name, f"{aurora.total_seconds * 1e6:.1f}"]
        for cls in BASELINE_CLASSES:
            base = cls().simulate(model, graph, dims, strict=False)
            cells.append(f"{base.total_seconds / aurora.total_seconds:.2f}x")
        rows.append(cells)

    headers = ["dataset", "aurora us"] + [cls().name for cls in BASELINE_CLASSES]
    print()
    print(
        format_table(
            headers, rows, title="Baseline execution time relative to Aurora"
        )
    )


if __name__ == "__main__":
    main()
