"""HyGCN (Yan et al., HPCA 2020) baseline model.

HyGCN is a tandem-engine GCN accelerator: SIMD cores handle aggregation
and a systolic array handles combination, with multipliers split 1:7
between the two engines (the ratio the paper preserves when scaling,
§VI-A).  Published properties this model encodes:

* **Tandem heterogeneous engines** — ``engine_split = 1/8`` for the
  aggregation SIMD; the engines pipeline coarsely through an inter-engine
  buffer, and when phase loads mismatch one engine idles (the paper's
  §VI-D: "disjoint compute engines result in communication overheads
  between the aggregation and update phases").
* **No edge-update support, C-GCN only** (Table I) — GCN computations are
  abstracted as matrix operations.
* **Window sliding/shrinking** gives partial but incomplete feature reuse
  (``feature_reuse = 0.4``; §VI-B: "HyGCN ... fail[s] to fully harness
  on-chip data reuse opportunities").
* **Static per-vertex SIMD assignment** makes it sensitive to degree skew
  (``imbalance_sensitivity = 0.6``), with no hub mitigation.
* **Crossbar interconnect** between engines with limited port count
  (``comm_ports = 32``, single-stage).
* Intermediate aggregation results spill through the buffer hierarchy
  between engines (``interphase_spill``).
"""

from __future__ import annotations

from .base import BaselineAccelerator, BaselineTraits

__all__ = ["HYGCN_TRAITS", "HyGCN"]

HYGCN_TRAITS = BaselineTraits(
    name="hygcn",
    supports_c_gnn=True,
    supports_a_gnn=False,
    supports_mp_gnn=False,
    flexible_pe=False,
    flexible_dataflow=True,  # Table I: partial (window-based) dataflow
    flexible_noc=False,
    message_passing=False,
    supports_edge_update=False,
    engine_split=1.0 / 8.0,
    runtime_rebalancing=False,
    redundancy_elimination=0.0,
    phase_pipelined=True,
    imbalance_sensitivity=0.5,
    feature_reuse=0.25,
    weight_reload_per_tile=False,
    interphase_spill=True,
    buffer_traffic_factor=2.0,
    traffic_factor=1.0,
    comm_ports=48,
    comm_hops=1.0,
    hub_relief=0.0,
    comm_service_cycles=5.8,
)


class HyGCN(BaselineAccelerator):
    """HyGCN scaled to Aurora's multiplier/bandwidth/storage budget."""

    def __init__(self, config=None, energy_table=None) -> None:
        super().__init__(HYGCN_TRAITS, config, energy_table)
