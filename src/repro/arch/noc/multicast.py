"""Flit-level tree multicast.

The analytical tier models the aggregation feature distribution as tree
multicast (inject once, replicate toward every consumer — see
``mapping.traffic.multicast_flows``).  This module *executes* that
distribution at flit level: the union of XY routes from one source forms
a tree (XY paths from a common source share prefixes and never rejoin
after diverging), flits flow down the tree, and a fork router serialises
the per-child replication through its crossbar one copy per cycle.

Used by tests to validate the analytical approximation: total link
traversals equal tree-edges × flits (vs Σ path-lengths × flits for
unicast), and hub fan-out drains far faster than per-destination
unicast.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ...config import NoCConfig
from .routing import xy_route
from .topology import FlexibleMeshTopology

__all__ = ["MulticastTree", "build_tree", "MulticastSimulator"]


@dataclass(frozen=True)
class MulticastTree:
    """Source-rooted replication tree."""

    source: int
    children: dict[int, tuple[int, ...]]  # node -> downstream nodes
    consumers: frozenset[int]  # nodes that eject the payload

    @property
    def num_edges(self) -> int:
        return sum(len(c) for c in self.children.values())

    def nodes(self) -> set[int]:
        out = {self.source}
        for parent, kids in self.children.items():
            out.add(parent)
            out.update(kids)
        return out


def build_tree(
    topo: FlexibleMeshTopology, source: int, destinations: list[int]
) -> MulticastTree:
    """Union of XY routes from ``source`` — a tree by construction."""
    children: dict[int, set[int]] = {}
    consumers = set()
    for dst in destinations:
        if dst == source:
            continue
        consumers.add(dst)
        route = xy_route(topo, source, dst)
        for a, b in zip(route, route[1:]):
            children.setdefault(a, set()).add(b)
    return MulticastTree(
        source=source,
        children={k: tuple(sorted(v)) for k, v in children.items()},
        consumers=frozenset(consumers),
    )


@dataclass
class _TreeFlit:
    """One flit copy heading into the subtree rooted at ``node``."""

    index: int  # flit index within the payload
    node: int  # current node
    remaining_children: tuple[int, ...]  # children still to be served
    ready_cycle: int
    tree: "MulticastTree" = None  # type: ignore[assignment]
    ejected: bool = False


@dataclass
class _McStats:
    cycles: int = 0
    link_traversals: int = 0
    ejected_flits: int = 0
    fork_serialisation_events: int = 0


class MulticastSimulator:
    """Cycle simulation of one or more multicast trees over a mesh.

    Per cycle, each directed link moves at most one flit and each router
    forwards at most one copy per output (fork replication serialises);
    ejection consumes one flit per node per cycle.
    """

    def __init__(
        self, topology: FlexibleMeshTopology, config: NoCConfig | None = None
    ) -> None:
        self.topology = topology
        self.config = config or NoCConfig()
        self.cycle = 0
        self.stats = _McStats()
        # Per-node queue of tree flits awaiting forwarding/ejection.
        self._queues: dict[int, deque] = {}
        self._pending_ejects: dict[int, int] = {}  # node -> flits still due
        self._trees: list[tuple[MulticastTree, int]] = []  # (tree, num_flits)

    # ------------------------------------------------------------------
    def inject(
        self, source: int, destinations: list[int], size_bytes: int
    ) -> MulticastTree:
        if size_bytes < 1:
            raise ValueError("size_bytes must be >= 1")
        tree = build_tree(self.topology, source, destinations)
        num_flits = max(1, -(-size_bytes // self.config.flit_bytes))
        self._trees.append((tree, num_flits))
        queue = self._queues.setdefault(source, deque())
        for i in range(num_flits):
            queue.append(
                _TreeFlit(
                    index=i,
                    node=source,
                    remaining_children=tree.children.get(source, ()),
                    ready_cycle=self.cycle,
                    tree=tree,
                )
            )
        for dst in tree.consumers:
            self._pending_ejects[dst] = (
                self._pending_ejects.get(dst, 0) + num_flits
            )
        return tree

    # ------------------------------------------------------------------
    def step(self) -> None:
        now = self.cycle
        per_hop = self.config.router_pipeline_stages + self.config.link_latency
        # Per-cycle resource budgets.
        link_busy: set[tuple[int, int]] = set()
        eject_busy: set[int] = set()
        arrivals: list[tuple[int, _TreeFlit]] = []

        for node, queue in self._queues.items():
            if not queue:
                continue
            flit = queue[0]
            if flit.ready_cycle > now:
                continue
            tree = flit.tree
            # Ejection first (the local port is separate from the links).
            if (
                node in tree.consumers
                and not flit.ejected
                and node not in eject_busy
            ):
                eject_busy.add(node)
                flit.ejected = True
                self.stats.ejected_flits += 1
                self._pending_ejects[node] -= 1
            # Forward toward the next unserved child, one per cycle.
            if flit.remaining_children:
                child = flit.remaining_children[0]
                if (node, child) not in link_busy:
                    link_busy.add((node, child))
                    self.stats.link_traversals += 1
                    rest = flit.remaining_children[1:]
                    if rest:
                        self.stats.fork_serialisation_events += 1
                    clone = _TreeFlit(
                        index=flit.index,
                        node=child,
                        remaining_children=tree.children.get(child, ()),
                        ready_cycle=now + per_hop,
                        tree=tree,
                    )
                    arrivals.append((child, clone))
                    if rest:
                        flit.remaining_children = rest  # stay for next child
                    else:
                        queue.popleft()
            elif flit.ejected or node not in tree.consumers:
                queue.popleft()

        for node, clone in arrivals:
            self._queues.setdefault(node, deque()).append(clone)

        self.cycle += 1
        self.stats.cycles = self.cycle

    # ------------------------------------------------------------------
    def done(self) -> bool:
        return all(v == 0 for v in self._pending_ejects.values()) and not any(
            self._queues.values()
        )

    def run(self, *, max_cycles: int = 200_000) -> _McStats:
        while not self.done():
            if self.cycle >= max_cycles:
                raise RuntimeError(
                    f"multicast did not drain within {max_cycles} cycles"
                )
            self.step()
        return self.stats
