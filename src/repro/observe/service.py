"""Wiring: one object that turns observability on for a server.

:class:`ObserveState` bundles the sinks (WebSocket broadcaster,
optional JSONL recorder), attaches them to an event hub, installs the
tracer bridge, and runs a periodic ``stats.tick`` emitter — then tears
all of it down symmetrically on drain.  Both the single-process
service (``repro serve --observe``) and the cluster router hold one.

The static dashboard lives next to this module in ``ui/`` and is
served byte-for-byte from disk — no templating, no build step.
"""

from __future__ import annotations

import asyncio
import os
from pathlib import Path

from .broadcaster import WebSocketBroadcaster
from .events import HUB, NOC_HEAT_ENV, EventHub, install_tracer_hook
from .recorder import SessionRecorder

__all__ = ["ObserveState", "ui_asset"]

#: Whitelisted dashboard assets (request name → file, content type).
UI_DIR = Path(__file__).parent / "ui"
UI_ASSETS = {
    "": ("index.html", "text/html; charset=utf-8"),
    "index.html": ("index.html", "text/html; charset=utf-8"),
    "observer.js": ("observer.js", "application/javascript; charset=utf-8"),
    "observer.css": ("observer.css", "text/css; charset=utf-8"),
}


def ui_asset(name: str) -> tuple[bytes, str] | None:
    """Dashboard asset bytes + content type, ``None`` for unknown names."""
    entry = UI_ASSETS.get(name)
    if entry is None:
        return None
    filename, content_type = entry
    try:
        return (UI_DIR / filename).read_bytes(), content_type
    except OSError:
        return None


class ObserveState:
    """Everything ``--observe`` turns on, with a symmetric shutdown."""

    def __init__(
        self,
        *,
        record_path=None,
        record_max_bytes: int = 32 << 20,
        record_max_segments: int = 3,
        queue_size: int = 512,
        max_drops: int = 64,
        flush_interval: float = 0.025,
        tick_interval: float = 1.0,
        hub: EventHub | None = None,
        tracer=None,
        source: str = "serve",
        install_hook: bool = True,
    ) -> None:
        self.hub = hub if hub is not None else HUB
        self.tick_interval = tick_interval
        self.source = source
        self.broadcaster = WebSocketBroadcaster(
            queue_size=queue_size,
            max_drops=max_drops,
            flush_interval=flush_interval,
        )
        self.recorder = (
            SessionRecorder(
                record_path,
                max_bytes=record_max_bytes,
                max_segments=record_max_segments,
                source=source,
            )
            if record_path
            else None
        )
        self._tracer = tracer
        #: False for consumers that only relay (the cluster router):
        #: no tracer bridge, no NoC-heat env flag — spans arrive on the
        #: wire from replicas instead of from a local tracer.
        self.install_hook = install_hook
        self._uninstall_hook = None
        self._ticker: asyncio.Task | None = None
        self._stats_fn = None
        self._noc_env_set = False
        self._running = False

    # -- lifecycle ------------------------------------------------------
    def startup(self, loop: asyncio.AbstractEventLoop, *, stats_fn=None) -> None:
        """Attach sinks and start the ticker on ``loop`` (idempotent)."""
        if self._running:
            return
        self._running = True
        self.broadcaster.bind(loop)
        self.hub.attach(self.broadcaster)
        if self.recorder is not None:
            self.hub.attach(self.recorder)
        if self.install_hook:
            self._uninstall_hook = install_tracer_hook(self._tracer, self.hub)
            # Executor worker processes inherit the environment, so
            # spans they compute also carry the NoC heat summary home.
            if os.environ.get(NOC_HEAT_ENV) != "1":
                os.environ[NOC_HEAT_ENV] = "1"
                self._noc_env_set = True
        self._stats_fn = stats_fn
        if stats_fn is not None and self.tick_interval > 0:
            self._ticker = loop.create_task(self._tick_forever())

    async def _tick_forever(self) -> None:
        while True:
            await asyncio.sleep(self.tick_interval)
            try:
                self.hub.emit("stats.tick", self._stats_fn())
            except Exception:  # noqa: BLE001 — a stats bug must not
                # kill the ticker
                pass

    async def shutdown(self) -> None:
        """Detach sinks, stop the ticker, close the recorder."""
        if not self._running:
            return
        self._running = False
        if self._ticker is not None:
            self._ticker.cancel()
            try:
                await self._ticker
            except asyncio.CancelledError:
                pass
            self._ticker = None
        if self._uninstall_hook is not None:
            self._uninstall_hook()
            self._uninstall_hook = None
        self.hub.detach(self.broadcaster)
        await self.broadcaster.aclose()
        if self.recorder is not None:
            self.hub.detach(self.recorder)
            self.recorder.close()
        if self._noc_env_set:
            os.environ.pop(NOC_HEAT_ENV, None)
            self._noc_env_set = False

    # -- stats ----------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "enabled": True,
            "hub": self.hub.snapshot(),
            "broadcaster": self.broadcaster.snapshot(),
            "recorder": (
                self.recorder.snapshot() if self.recorder is not None else None
            ),
            "tick_interval_seconds": self.tick_interval,
        }
