"""Optimizer strategies: determinism, promotion, exhaustion."""

import math

import pytest

from repro.dse import (
    Candidate,
    GeneticAlgorithm,
    HillClimb,
    RandomSearch,
    SuccessiveHalving,
    build_optimizer,
    build_space,
    list_optimizers,
)
from repro.runtime.jobs import SimJob


def _space():
    return build_space("aurora-mini", SimJob(scale=0.5))


def _fitness(indices):
    """A deterministic synthetic objective with a unique optimum at 0."""
    return float(sum(i * (pos + 1) for pos, i in enumerate(indices)))


def _drive(optimizer, budget, batch=4):
    """Run a full synthetic search; returns evaluated (indices, rung)."""
    seen = []
    while len(seen) < budget and not optimizer.done():
        candidates = optimizer.ask(min(batch, budget - len(seen)))
        if not candidates:
            break
        optimizer.tell(
            [(c, _fitness(c.indices)) for c in candidates]
        )
        seen.extend((c.indices, c.rung) for c in candidates)
    return seen


class TestRegistry:
    def test_names(self):
        assert list_optimizers() == ["random", "hillclimb", "genetic", "sha"]

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            build_optimizer("nonesuch", _space())


@pytest.mark.parametrize("name", ["random", "hillclimb", "genetic", "sha"])
class TestDeterminism:
    def test_same_seed_same_proposals(self, name):
        a = _drive(build_optimizer(name, _space(), seed=11), 40)
        b = _drive(build_optimizer(name, _space(), seed=11), 40)
        assert a == b

    def test_different_seed_different_proposals(self, name):
        a = _drive(build_optimizer(name, _space(), seed=11), 40)
        b = _drive(build_optimizer(name, _space(), seed=12), 40)
        assert a != b

    def test_batch_size_does_not_change_the_sequence(self, name):
        a = _drive(build_optimizer(name, _space(), seed=3), 24, batch=4)
        b = _drive(build_optimizer(name, _space(), seed=3), 24, batch=8)
        # Same ask/tell cadence overall; hillclimb reacts to tell
        # timing, so only the strictly sequential strategies must agree.
        if name in ("random", "sha"):
            assert a == b


class TestRandomSearch:
    def test_samples_with_replacement_by_default(self):
        # 200 draws from a 24-point space must repeat — the repeats are
        # what the content-addressed cache serves for free.
        space = _space()
        opt = RandomSearch(space, seed=0)
        points = [c.indices for c in opt.ask(200)]
        assert len(set(points)) < len(points)
        assert not opt.done()

    def test_unique_mode_exhausts_the_space(self):
        space = _space()
        opt = RandomSearch(space, seed=0, unique=True)
        seen = []
        while not opt.done():
            got = opt.ask(8)
            if not got:
                break
            seen.extend(c.indices for c in got)
        assert len(set(seen)) == len(seen) == space.size


class TestHillClimb:
    def test_descends_to_the_optimum(self):
        opt = HillClimb(_space(), seed=1, restarts=4)
        seen = _drive(opt, 200, batch=4)
        best = min(_fitness(p) for p, _ in seen)
        assert best == 0.0  # (0,0,0,0) is the unique optimum

    def test_exhausts_after_restart_budget(self):
        opt = HillClimb(_space(), seed=1, restarts=1)
        _drive(opt, 10_000, batch=8)
        assert opt.done()


class TestGeneticAlgorithm:
    def test_population_is_bounded(self):
        opt = GeneticAlgorithm(_space(), seed=2, population=8)
        _drive(opt, 80, batch=8)
        assert len(opt._scored) <= 8

    def test_failed_evaluations_lose_selection(self):
        opt = GeneticAlgorithm(_space(), seed=2, population=4)
        candidates = opt.ask(4)
        opt.tell(
            [
                (c, math.inf if i < 3 else 1.0)
                for i, c in enumerate(candidates)
            ]
        )
        assert opt._scored[0][1] == 1.0


class TestSuccessiveHalving:
    def test_rung_fractions_are_eta_spaced(self):
        opt = SuccessiveHalving(_space(), seed=0, cohort=9, eta=3, rungs=3)
        assert opt.rung_fractions == pytest.approx((1 / 9, 1 / 3, 1.0))
        assert opt.fidelity(Candidate((0, 0, 0, 0), rung=0)) == pytest.approx(1 / 9)
        assert opt.fidelity(Candidate((0, 0, 0, 0), rung=2)) == 1.0

    def test_promotes_top_fraction_each_rung(self):
        opt = SuccessiveHalving(_space(), seed=0, cohort=9, eta=3, rungs=3)
        seen = _drive(opt, 10_000, batch=4)
        by_rung: dict[int, list] = {}
        for indices, rung in seen:
            by_rung.setdefault(rung, []).append(indices)
        assert len(by_rung[0]) == 9
        assert len(by_rung[1]) == 3
        assert len(by_rung[2]) == 1
        assert opt.done()
        # The sole finalist is the best of rung 1's survivors.
        assert by_rung[2][0] == min(by_rung[1], key=_fitness)

    def test_single_rung_is_plain_selection(self):
        opt = SuccessiveHalving(_space(), seed=0, cohort=4, eta=2, rungs=1)
        seen = _drive(opt, 100, batch=4)
        assert all(rung == 0 for _, rung in seen)
        assert opt.fidelity(Candidate((0, 0, 0, 0), rung=0)) == 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SuccessiveHalving(_space(), eta=1)
        with pytest.raises(ValueError):
            SuccessiveHalving(_space(), rungs=0)
