"""Area model reproducing the paper's §VI-F breakdown.

The paper synthesised the RTL with the TSMC 40 nm library and reports
percentage breakdowns rather than absolute mm²:

* within a PE: MAC array 7.1 %, memory hierarchy (SMB + IDMB/ODMB) 82.9 %,
  control + reconfigurable switches 3.7 % (remainder: router interface,
  PPU, FIFO);
* chip level: the 1024-PE array is 62.74 % of chip area, the controller
  0.9 %, and the flexible-interconnect additions (flexible routers,
  reconfigurable links, switches, muxes) 5.2 %.

We model per-unit areas (µm² at 40 nm) chosen so the synthesised
percentages fall out of the component counts, then expose the same
breakdown queries the paper reports.  This is the substitution for Design
Compiler: the simulator consumes the breakdown, not the netlist.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import AcceleratorConfig

__all__ = ["AreaParameters", "PEAreaBreakdown", "ChipAreaBreakdown", "AreaModel"]


@dataclass(frozen=True)
class AreaParameters:
    """Per-unit areas in µm² (40 nm-class standard-cell estimates)."""

    mac_um2: float = 1600.0  # one fp64 multiplier + adder
    sram_um2_per_byte: float = 2.95  # 6T SRAM + periphery
    pe_control_um2: float = 7000.0  # PE control unit + config switches
    ppu_um2: float = 6000.0  # activation/concat unit
    reuse_fifo_um2_per_byte: float = 3.2
    router_interface_um2: float = 5000.0
    base_router_um2: float = 150000.0  # conventional 5-port VC router w/ buffers
    flexible_router_extra_um2: float = 24000.0  # 2-stage switch + bypass muxes
    bypass_link_um2_per_segment: float = 2500.0  # wire + link switches
    controller_um2: float = 5.2e6  # dispatchers, workflow/mapping/partition units
    crossbar_dram_um2: float = 15.0e6  # DRAM-interface crossbar


@dataclass(frozen=True)
class PEAreaBreakdown:
    """Area of one PE by component, in µm²."""

    mac_array: float
    memory: float  # distributed bank buffer (SMB + IDMB/ODMB)
    control_and_switches: float
    ppu: float
    reuse_fifo: float
    router_interface: float

    @property
    def total(self) -> float:
        return (
            self.mac_array
            + self.memory
            + self.control_and_switches
            + self.ppu
            + self.reuse_fifo
            + self.router_interface
        )

    def fraction(self, component: str) -> float:
        return getattr(self, component) / self.total


@dataclass(frozen=True)
class ChipAreaBreakdown:
    """Chip-level area by component, in µm²."""

    pe_array: float
    routers_base: float
    flexible_interconnect: float  # flexible-router extras + bypass links
    controller: float
    dram_crossbar: float

    @property
    def total(self) -> float:
        return (
            self.pe_array
            + self.routers_base
            + self.flexible_interconnect
            + self.controller
            + self.dram_crossbar
        )

    def fraction(self, component: str) -> float:
        return getattr(self, component) / self.total

    def as_dict(self) -> dict[str, float]:
        return {
            "pe_array": self.pe_array,
            "routers_base": self.routers_base,
            "flexible_interconnect": self.flexible_interconnect,
            "controller": self.controller,
            "dram_crossbar": self.dram_crossbar,
            "total": self.total,
        }


class AreaModel:
    """Computes PE and chip breakdowns for a given configuration."""

    def __init__(self, params: AreaParameters | None = None) -> None:
        self.params = params or AreaParameters()

    def pe_breakdown(self, config: AcceleratorConfig) -> PEAreaBreakdown:
        p = self.params
        return PEAreaBreakdown(
            mac_array=p.mac_um2 * config.macs_per_pe,
            memory=p.sram_um2_per_byte * config.pe_buffer_bytes,
            control_and_switches=p.pe_control_um2,
            ppu=p.ppu_um2,
            reuse_fifo=p.reuse_fifo_um2_per_byte * config.reuse_fifo_bytes,
            router_interface=p.router_interface_um2,
        )

    def chip_breakdown(self, config: AcceleratorConfig) -> ChipAreaBreakdown:
        p = self.params
        k = config.array_k
        n_pe = config.num_pes
        pe = self.pe_breakdown(config)
        # One bypass link per row and per column, each spanning K segments.
        n_bypass_segments = (
            k * config.noc.bypass_links_per_row + k * config.noc.bypass_links_per_col
        ) * k
        flexible = (
            n_pe * p.flexible_router_extra_um2
            + n_bypass_segments * p.bypass_link_um2_per_segment
        )
        return ChipAreaBreakdown(
            pe_array=pe.total * n_pe,
            routers_base=p.base_router_um2 * n_pe,
            flexible_interconnect=flexible,
            controller=p.controller_um2,
            dram_crossbar=p.crossbar_dram_um2,
        )
