"""Experiment harness: run the paper's accelerator × dataset grids.

``run_comparison`` executes one model on every (dataset, accelerator)
pair — Aurora plus the five baselines — and returns a
:class:`ComparisonResults` that the figure benchmarks normalise and
render.  Dataset scale factors keep full sweeps tractable; because every
accelerator sees the *same* generated graph (dataset generation is a
deterministic function of ``(name, scale, seed)``), normalised results
are scale-consistent.

The grid is expressed as :class:`repro.runtime.SimJob` specs and drained
through :func:`repro.runtime.run_jobs`, so sweeps parallelise
(``jobs=N``) and memoise (``cache=True`` or a :class:`ResultCache`)
without changing a single result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import AcceleratorConfig
from ..core.results import SimulationResult
from ..graphs.datasets import list_datasets
from ..runtime import ResultCache, SimJob, SweepMetrics, run_jobs
from .metrics import metric_value, reduction_percent

__all__ = [
    "ComparisonResults",
    "run_comparison",
    "comparison_jobs",
    "DEFAULT_SCALES",
    "ACCELERATOR_ORDER",
]

#: Paper comparison order: baselines first, Aurora last.
ACCELERATOR_ORDER = ("hygcn", "awb-gcn", "gcnax", "regnn", "flowgnn", "aurora")

#: Scale factors keeping the full five-dataset sweep tractable in pure
#: Python while preserving degree skew and feature statistics.  All
#: accelerators see identical graphs, so normalised figures are unchanged.
DEFAULT_SCALES = {
    "cora": 1.0,
    "citeseer": 1.0,
    "pubmed": 0.5,
    "nell": 0.1,
    "reddit": 0.01,
}


@dataclass
class ComparisonResults:
    """Grid of simulation results keyed by (dataset, accelerator)."""

    model_name: str
    datasets: tuple[str, ...]
    accelerators: tuple[str, ...]
    results: dict[tuple[str, str], SimulationResult] = field(default_factory=dict)
    #: Sweep accounting (cache hits, wall time, …) when run via the runtime.
    metrics: SweepMetrics | None = None

    def get(self, dataset: str, accelerator: str) -> SimulationResult:
        return self.results[(dataset, accelerator)]

    def metric_grid(self, metric: str) -> dict[str, dict[str, float]]:
        """{dataset: {accelerator: value}} for one metric."""
        return {
            ds: {
                acc: metric_value(self.results[(ds, acc)], metric)
                for acc in self.accelerators
            }
            for ds in self.datasets
        }

    def normalized_grid(
        self, metric: str, reference: str = "aurora"
    ) -> dict[str, dict[str, float]]:
        """Values normalised to ``reference`` per dataset (paper figures)."""
        grid = self.metric_grid(metric)
        out: dict[str, dict[str, float]] = {}
        for ds, row in grid.items():
            ref = row[reference]
            out[ds] = {acc: v / ref for acc, v in row.items()}
        return out

    def average_reduction_vs(self, metric: str, baseline: str) -> float:
        """Mean % reduction of Aurora vs one baseline across datasets."""
        grid = self.metric_grid(metric)
        reductions = [
            reduction_percent(grid[ds]["aurora"], grid[ds][baseline])
            for ds in self.datasets
        ]
        return sum(reductions) / len(reductions)

    def per_dataset_reduction(self, metric: str, dataset: str) -> float:
        """Mean % reduction of Aurora vs all baselines on one dataset."""
        grid = self.metric_grid(metric)[dataset]
        baselines = [a for a in self.accelerators if a != "aurora"]
        reductions = [
            reduction_percent(grid["aurora"], grid[b]) for b in baselines
        ]
        return sum(reductions) / len(reductions)

    def speedup_range_vs(self, metric: str, baseline: str) -> tuple[float, float]:
        """(min, max) ratio baseline/aurora across datasets."""
        grid = self.metric_grid(metric)
        ratios = [grid[ds][baseline] / grid[ds]["aurora"] for ds in self.datasets]
        return min(ratios), max(ratios)


def comparison_jobs(
    *,
    model: str = "gcn",
    datasets: tuple[str, ...] | None = None,
    hidden: int = 64,
    num_layers: int = 2,
    scales: dict[str, float] | None = None,
    config: AcceleratorConfig | None = None,
    seed: int = 7,
) -> list[SimJob]:
    """The comparison grid as job specs, one per (dataset, accelerator).

    ``scale_buffers`` is set so scaled-down datasets also scale the
    on-chip buffers, keeping tiling pressure (tiles per layer, boundary
    traffic, capacity fraction) representative of the full-size dataset;
    every accelerator sees the same scaled device.  Baselines run
    non-strict so models outside their Table-I coverage execute with the
    documented fallback penalty rather than aborting the sweep.
    """
    datasets = tuple(datasets or list_datasets())
    merged_scales = {**DEFAULT_SCALES, **(scales or {})}
    return [
        SimJob(
            model=model,
            dataset=ds,
            accelerator=acc,
            scale=merged_scales.get(ds, 1.0),
            hidden=hidden,
            num_layers=num_layers,
            seed=seed,
            strict=False,
            scale_buffers=True,
            config=config,
        )
        for ds in datasets
        for acc in ACCELERATOR_ORDER
    ]


def run_comparison(
    *,
    model: str = "gcn",
    datasets: tuple[str, ...] | None = None,
    hidden: int = 64,
    num_layers: int = 2,
    scales: dict[str, float] | None = None,
    config: AcceleratorConfig | None = None,
    seed: int = 7,
    jobs: int = 1,
    cache: ResultCache | bool | None = None,
    executor=None,
) -> ComparisonResults:
    """Run the full accelerator comparison for one GNN model.

    ``jobs`` > 1 fans the grid out over a process pool; ``cache=True``
    (or an explicit :class:`ResultCache`) serves previously simulated
    points from disk.  Both are pure execution-layer choices — the
    returned results are identical to a serial, uncached run.
    """
    datasets = tuple(datasets or list_datasets())
    job_list = comparison_jobs(
        model=model,
        datasets=datasets,
        hidden=hidden,
        num_layers=num_layers,
        scales=scales,
        config=config,
        seed=seed,
    )
    report = run_jobs(job_list, executor=executor, cache=cache, jobs_n=jobs)
    report.raise_on_error()

    out = ComparisonResults(
        model_name=model,
        datasets=datasets,
        accelerators=ACCELERATOR_ORDER,
        metrics=report.metrics,
    )
    for job, outcome in zip(job_list, report.outcomes):
        out.results[(job.dataset, job.accelerator)] = outcome.result
    return out
