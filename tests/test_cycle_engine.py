"""Tests for the cycle-tier tile engine and its analytical agreement."""

import numpy as np
import pytest

from repro import LayerDims, get_model
from repro.config import small_config
from repro.core.cycle_engine import CycleTileEngine
from repro.graphs import power_law_graph, star_graph


@pytest.fixture(scope="module")
def tile():
    return power_law_graph(
        100, 500, exponent=2.0, locality=0.5, num_features=16, seed=3
    )


@pytest.fixture(scope="module")
def engine():
    return CycleTileEngine(small_config(8))


class TestRunTile:
    def test_gcn_tile(self, engine, tile):
        r = engine.run_tile(get_model("gcn"), tile, LayerDims(16, 8))
        assert r.noc_cycles > 0
        assert r.compute_cycles_a > 0
        assert r.compute_cycles_b > 0
        assert r.tile_cycles >= max(r.noc_cycles, r.compute_cycles_b)

    def test_all_packets_delivered(self, engine, tile):
        r = engine.run_tile(get_model("gcn"), tile, LayerDims(16, 8))
        assert r.packets > 0
        assert r.flits >= r.packets

    def test_reconfig_cycles_2k_minus_1(self, engine, tile):
        r = engine.run_tile(get_model("gcn"), tile, LayerDims(16, 8))
        assert r.reconfig_cycles == 2 * 8 - 1

    def test_edgeconv_no_b_compute(self, engine, tile):
        r = engine.run_tile(get_model("edgeconv-1"), tile, LayerDims(16, 8))
        assert r.compute_cycles_b == 0

    def test_busy_histogram(self, engine, tile):
        r = engine.run_tile(get_model("gcn"), tile, LayerDims(16, 8))
        assert r.pe_busy_cycles.shape == (64,)
        assert r.pe_busy_cycles.sum() > 0
        assert r.busy_imbalance >= 1.0

    def test_bypass_used_for_hubs(self, engine):
        g = star_graph(60, num_features=16)
        r = engine.run_tile(get_model("gin"), g, LayerDims(16, 8))
        assert r.bypass_flit_hops > 0

    def test_deterministic(self, engine, tile):
        a = engine.run_tile(get_model("gcn"), tile, LayerDims(16, 8))
        b = engine.run_tile(get_model("gcn"), tile, LayerDims(16, 8))
        assert a.noc_cycles == b.noc_cycles
        assert np.array_equal(a.pe_busy_cycles, b.pe_busy_cycles)

    def test_rejects_large_arrays(self):
        from repro.config import AcceleratorConfig

        with pytest.raises(ValueError, match="16x16"):
            CycleTileEngine(AcceleratorConfig(array_k=32))

    def test_invalid_policy(self):
        with pytest.raises(ValueError, match="mapping_policy"):
            CycleTileEngine(small_config(8), mapping_policy="round-robin")


class TestMappingPolicyEffect:
    def test_degree_aware_drains_faster_on_hubs(self):
        g = power_law_graph(
            150, 1200, exponent=1.8, locality=0.4, num_features=16, seed=7
        )
        aware = CycleTileEngine(small_config(8)).run_tile(
            get_model("gin"), g, LayerDims(16, 8)
        )
        hashed = CycleTileEngine(
            small_config(8), mapping_policy="hashing"
        ).run_tile(get_model("gin"), g, LayerDims(16, 8))
        # Within-noise tolerance: at this tiny scale the two policies can
        # tie; degree-aware must never be meaningfully slower.
        assert aware.noc_cycles <= hashed.noc_cycles * 1.1


class TestAnalyticalAgreement:
    """The analytical NoC drain must track the measured flit-sim drain."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_drain_within_3x(self, seed):
        from repro.arch.noc import AnalyticalNoCModel, TrafficMatrix
        from repro.arch.noc.topology import FlexibleMeshTopology
        from repro.mapping import PERegion, aggregate_flows, degree_aware_map
        from repro.mapping.traffic import multicast_flows

        cfg = small_config(8)
        g = power_law_graph(
            120, 700, exponent=2.0, locality=0.5, num_features=16, seed=seed
        )
        engine = CycleTileEngine(cfg)
        measured = engine.run_tile(get_model("gin"), g, LayerDims(16, 8))

        region = PERegion(0, 0, 8, 4, 8)
        cap = max(1, -(-g.num_vertices // region.num_pes))
        mapping = degree_aware_map(g, region, pe_vertex_capacity=cap)
        mc = multicast_flows(g, mapping, 16 * 8)
        topo = FlexibleMeshTopology(8)
        for seg in mapping.bypass_segments:
            try:
                topo.add_bypass_segment(seg)
            except ValueError:
                continue
        predicted = AnalyticalNoCModel(topo, cfg.noc).evaluate(
            TrafficMatrix.from_flows(aggregate_flows(mc.flows, 64), cfg.noc.flit_bytes, 8),
            boost_nodes=mapping.s_pe_nodes,
            boost_factor=4.0,
            eject_flits=mc.eject_bytes // cfg.noc.flit_bytes,
            inject_flits=mc.inject_bytes // cfg.noc.flit_bytes,
        ).drain_cycles
        assert predicted < 3 * measured.noc_cycles
        assert measured.noc_cycles < 3 * predicted


class TestNoCEngineSelection:
    """run_tile can execute on the event engine or the retained reference."""

    def test_engines_bit_identical(self, tile):
        dims = LayerDims(16, 8)
        event = CycleTileEngine(small_config(8), noc_engine="event")
        reference = CycleTileEngine(small_config(8), noc_engine="reference")
        a = event.run_tile(get_model("gcn"), tile, dims)
        b = reference.run_tile(get_model("gcn"), tile, dims)
        assert (a.noc_cycles, a.stall_events, a.mesh_flit_hops) == (
            b.noc_cycles,
            b.stall_events,
            b.mesh_flit_hops,
        )
        assert (a.packets, a.flits, a.avg_packet_latency) == (
            b.packets,
            b.flits,
            b.avg_packet_latency,
        )

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="noc_engine"):
            CycleTileEngine(small_config(8), noc_engine="warp-drive")


class TestMaxPacketsCap:
    def test_cap_error_names_analytical_fallback(self, engine, tile, monkeypatch):
        """Beyond MAX_PACKETS the error must point at the analytical tier."""
        monkeypatch.setattr(CycleTileEngine, "MAX_PACKETS", 10)
        with pytest.raises(ValueError, match="analytical tier"):
            engine.run_tile(get_model("gcn"), tile, LayerDims(16, 8))

    def test_cap_error_reports_packet_count(self, engine, tile, monkeypatch):
        monkeypatch.setattr(CycleTileEngine, "MAX_PACKETS", 10)
        with pytest.raises(ValueError, match=r"\d+ packets"):
            engine.run_tile(get_model("gcn"), tile, LayerDims(16, 8))


class TestDeadlockContext:
    def test_run_tile_attaches_tile_context(self, tile, monkeypatch):
        """A NoC deadlock surfaces with the tile/mapping context attached."""
        from repro.arch.noc import NoCDeadlockError
        from repro.arch.noc.network import NoCSimulator

        class WedgedSimulator(NoCSimulator):
            def run(self, *, max_cycles=1_000_000):
                raise self._deadlock(
                    "NoC did not drain within 1 cycles (simulated wedge)",
                    cycle=1,
                )

        engine = CycleTileEngine(small_config(8))
        monkeypatch.setitem(
            CycleTileEngine.NOC_ENGINES, "event", WedgedSimulator
        )
        with pytest.raises(NoCDeadlockError, match="did not drain") as info:
            engine.run_tile(get_model("gcn"), tile, LayerDims(16, 8))
        err = info.value
        assert err.context["tile_nodes"] == tile.num_vertices
        assert err.context["tile_edges"] == tile.num_edges
        assert err.context["array_k"] == 8
        assert err.context["mapping_policy"] == "degree-aware"
        assert err.context["noc_engine"] == "event"
        assert err.context["packets_injected"] > 0
        assert err.cycle == 1
