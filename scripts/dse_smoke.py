"""CI smoke test for the design-space-exploration service.

Boots the real server as a subprocess and runs a 30-candidate seeded
search through ``POST /dse`` end to end: the accept payload must be
pollable, the finished search must report a monotone best-fitness
trajectory with cache-served evaluations (the content-addressed cache
is the whole point of the subsystem), a repeat of the same spec must be
served entirely from cache, and over-budget specs must be rejected.
The final search status is written to DSE_SMOKE.json for upload as a
CI artifact.

Run from the repo root:

    PYTHONPATH=src python scripts/dse_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import RequestFailed, ServeClient  # noqa: E402

SPEC = {
    "space": "aurora-mini",
    "optimizer": "random",
    "objective": "latency",
    "seed": 7,
    "max_evaluations": 30,
    "batch": 8,
    "workload": {
        "dataset": "cora",
        "scale": 0.2,
        "hidden": 16,
        "num_layers": 1,
    },
}


def check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"dse-smoke: {label}: {status}", flush=True)
    if not condition:
        raise SystemExit(f"dse-smoke check failed: {label}")


def boot(cache_dir: str) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env["REPRO_CACHE_DIR"] = cache_dir
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--queue-depth", "16"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise SystemExit("dse-smoke: server died during startup")
        if "listening on" in line:
            return process, int(line.rsplit(":", 1)[1])
    raise SystemExit("dse-smoke: server never reported its port")


def run_search(client: ServeClient) -> dict:
    accepted = client.dse_start(dict(SPEC))
    check(accepted["status"] == "accepted", "search accepted")
    check("search_id" in accepted and accepted["poll"].startswith("/dse/"),
          "accept payload carries a pollable id")

    # The id must be pollable while running and after completion.
    payload = client.dse_poll(accepted["search_id"])
    check(payload["state"] in ("pending", "running", "done"),
          "search id polls while in flight")
    final = client.dse_wait(accepted["search_id"], timeout=120.0)
    check(final["state"] == "done", "search finished")
    return final


def main() -> int:
    with tempfile.TemporaryDirectory() as cache_dir:
        process, port = boot(cache_dir)
        try:
            client = ServeClient("127.0.0.1", port, timeout=60.0)
            check(client.healthz()["status"] == "ok", "healthz")

            final = run_search(client)
            result = final["result"]
            check(result["evaluations"] == SPEC["max_evaluations"],
                  f"ran all {SPEC['max_evaluations']} evaluations")
            check(result["errors"] == 0, "no failed evaluations")
            check(result["best_fitness"] is not None, "found a best design")

            # Monotone best fitness along the trajectory tail.
            tail = final.get("trajectory_tail", [])
            check(len(tail) > 0, "status carries a trajectory tail")
            bests = [r["best_fitness"] for r in tail
                     if r.get("best_fitness") is not None]
            check(all(a >= b for a, b in zip(bests, bests[1:])),
                  "best fitness is monotone non-increasing")
            check(bests and bests[-1] == result["best_fitness"],
                  "trajectory best matches the reported best")

            # Cache amplification: random search over a 24-point space
            # revisits designs, so some evaluations must be served.
            check(result["served"] > 0,
                  f"cache/dedup served {result['served']} evaluations")

            # A repeat of the same spec rides the warmed shared cache.
            repeat = run_search(client)["result"]
            check(repeat["executed"] == 0, "repeat search simulated nothing")
            check(repeat["served"] == repeat["evaluations"],
                  "repeat search fully cache-served")
            check(repeat["best_fitness"] == result["best_fitness"],
                  "repeat search reproduced the best fitness")

            # Over-budget specs are rejected with a client error.
            try:
                client.dse_start({**SPEC, "max_evaluations": 100_000})
                check(False, "over-budget spec rejected")
            except RequestFailed as exc:
                check(exc.status == 400, "over-budget spec rejected with 400")

            stats = client.stats()
            check(stats["dse"]["started_total"] == 2, "stats count searches")

            Path("DSE_SMOKE.json").write_text(
                json.dumps(final, indent=2, sort_keys=True) + "\n"
            )
            print("dse-smoke: wrote DSE_SMOKE.json", flush=True)
        finally:
            if process.poll() is None:
                process.kill()
            process.stdout.close()
            process.wait()
    print("dse-smoke: all checks passed", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
