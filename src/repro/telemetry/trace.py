"""Structured tracing: spans, context propagation, and a bounded buffer.

One request through the stack (serve → runtime → simulator) produces a
*trace*: a tree of :class:`Span` records sharing a ``trace_id``, each
span naming one stage (``http``, ``admission``, ``batcher``,
``run_jobs``, ``executor.job``, ``simulate_layer``, ``mapping`` …) with
a wall-clock start, a monotonic duration, and free-form attributes.

Design constraints, in order:

* **negligible cost when off** — the process-global :data:`TRACER`
  starts disabled; :meth:`Tracer.span` then yields a shared no-op span
  without allocating, so permanently instrumented hot paths stay hot;
* **asyncio-safe context** — the current span lives in a
  :mod:`contextvars` variable, so concurrent requests on one event loop
  each see their own ancestry, and ``asyncio.to_thread`` /
  ``loop.create_task`` propagate it for free;
* **process-boundary propagation** — a span context serializes to a
  plain dict (:meth:`Tracer.current_context`); a worker process
  re-activates it with :meth:`Tracer.remote` + :meth:`Tracer.collect`,
  and the finished child spans travel back inside the executor's
  :class:`~repro.runtime.executor.ExecutionRecord` to be merged into
  the parent's buffer (:meth:`Tracer.merge`) — yielding one tree;
* **bounded memory** — finished spans land in a ring
  (:class:`SpanBuffer`); overflow drops the oldest and counts the drop.
"""

from __future__ import annotations

import contextvars
import os
import random
import re
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

from .metrics import METRICS

__all__ = ["Span", "SpanBuffer", "Tracer", "TRACER"]

#: Span accounting exposed on /metrics (the buffer keeps the same
#: numbers for /stats).  Module-level handles survive METRICS.reset()
#: because the registry re-seeds families instead of dropping them.
_SPANS_TOTAL = METRICS.counter(
    "repro_spans_total",
    help="Spans recorded into the tracer buffer (local + merged)",
)
_SPANS_DROPPED = METRICS.counter(
    "repro_spans_dropped_total",
    help="Spans evicted from the tracer ring buffer by overflow",
)
_SAMPLE_RATE = METRICS.gauge(
    "repro_trace_sample_rate",
    help="Configured head-sampling rate of the tracer",
)

#: Context variable holding the innermost active span (or ``None``).
_CURRENT: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_current_span", default=None
)
#: When set, finished spans append here instead of the tracer buffer —
#: the executor uses this to ship a job's spans across the process gap.
_COLLECTOR: contextvars.ContextVar["list[Span] | None"] = contextvars.ContextVar(
    "repro_span_collector", default=None
)

_TRACE_ID_RE = re.compile(r"[0-9a-f]{1,32}")


def _new_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


def valid_trace_id(value: str | None) -> str | None:
    """Sanitize an externally supplied trace id (header) or ``None``."""
    if not value:
        return None
    value = value.strip().lower()
    return value if _TRACE_ID_RE.fullmatch(value) else None


@dataclass
class Span:
    """One timed stage of a trace.

    ``start_time`` is epoch seconds (comparable across processes on one
    machine); ``duration`` comes from ``perf_counter`` deltas so it is
    immune to wall-clock steps.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    start_time: float = 0.0
    duration: float | None = None
    attributes: dict = field(default_factory=dict)
    status: str = "ok"
    error: str | None = None
    sampled: bool = True
    _t0: float | None = field(default=None, repr=False, compare=False)

    def set(self, **attributes) -> "Span":
        """Attach attributes after the span started (fluent)."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "duration": self.duration,
            "attributes": self.attributes,
            "status": self.status,
        }
        if self.error is not None:
            data["error"] = self.error
        return data

    @staticmethod
    def from_dict(data: dict) -> "Span":
        return Span(
            name=data["name"],
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start_time=data.get("start_time", 0.0),
            duration=data.get("duration"),
            attributes=dict(data.get("attributes") or {}),
            status=data.get("status", "ok"),
            error=data.get("error"),
        )


class _NoopSpan:
    """Shared inert span the disabled fast path yields."""

    __slots__ = ()
    name = ""
    trace_id = None
    span_id = None
    parent_id = None
    sampled = False
    attributes: dict = {}

    def set(self, **attributes) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class SpanBuffer:
    """Bounded, thread-safe ring of finished spans."""

    def __init__(self, maxlen: int = 4096) -> None:
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self.maxlen = maxlen
        self._spans: deque[Span] = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self.total = 0  # spans ever recorded
        self.dropped = 0  # spans evicted by overflow

    def add(self, span: Span) -> bool:
        """Append one span; ``True`` when an old span was evicted."""
        with self._lock:
            dropped = len(self._spans) == self.maxlen
            if dropped:
                self.dropped += 1
            self._spans.append(span)
            self.total += 1
        return dropped

    def add_many(self, spans: "list[Span]") -> None:
        for span in spans:
            self.add(span)

    def spans(self, *, trace_id: str | None = None) -> list[Span]:
        """A snapshot list, optionally filtered to one trace."""
        with self._lock:
            items = list(self._spans)
        if trace_id is not None:
            items = [s for s in items if s.trace_id == trace_id]
        return items

    def drain(self) -> list[Span]:
        with self._lock:
            items = list(self._spans)
            self._spans.clear()
        return items

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.total = 0
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def stats(self) -> dict:
        with self._lock:
            return {
                "buffered": len(self._spans),
                "capacity": self.maxlen,
                "total": self.total,
                "dropped": self.dropped,
            }


class Tracer:
    """Creates spans, owns the buffer, and carries context across gaps."""

    def __init__(
        self,
        *,
        enabled: bool = False,
        sample_rate: float = 1.0,
        buffer_size: int = 4096,
        rng: random.Random | None = None,
    ) -> None:
        self.enabled = enabled
        self.sample_rate = sample_rate
        self.buffer = SpanBuffer(buffer_size)
        self._rng = rng or random.Random()
        #: Optional callable fired with every span that lands in the
        #: buffer (locally finished or merged from a worker) — the
        #: bridge ``repro.observe`` uses for its push channel.  Must
        #: never raise; exceptions are swallowed so observability can
        #: never break the traced path.
        self.on_span = None

    # -- configuration --------------------------------------------------
    def configure(
        self,
        *,
        enabled: bool | None = None,
        sample_rate: float | None = None,
        buffer_size: int | None = None,
    ) -> None:
        if enabled is not None:
            self.enabled = enabled
        if sample_rate is not None:
            if not (0.0 <= sample_rate <= 1.0):
                raise ValueError("sample_rate must be in [0, 1]")
            self.sample_rate = sample_rate
            _SAMPLE_RATE.set(sample_rate)
        if buffer_size is not None and buffer_size != self.buffer.maxlen:
            self.buffer = SpanBuffer(buffer_size)

    @contextmanager
    def session(self, *, enabled: bool = True, sample_rate: float = 1.0):
        """Temporarily reconfigure (benches, tests); restores on exit.

        The buffer is cleared on entry so the session sees only its own
        spans; contents survive exit for the caller to snapshot.
        """
        saved = (self.enabled, self.sample_rate)
        self.buffer.clear()
        self.enabled = enabled
        self.sample_rate = sample_rate
        try:
            yield self
        finally:
            self.enabled, self.sample_rate = saved

    def snapshot(self) -> dict:
        """Config + buffer stats for ``/stats`` and bench snapshots."""
        return {
            "enabled": self.enabled,
            "sample_rate": self.sample_rate,
            **self.buffer.stats(),
        }

    # -- span lifecycle --------------------------------------------------
    def current_span(self) -> "Span | None":
        return _CURRENT.get()

    def current_context(self) -> dict | None:
        """The active span as a serializable context, ``None`` if absent
        or unsampled (nothing downstream would record anyway)."""
        span = _CURRENT.get()
        if span is None or not span.sampled or span.trace_id is None:
            return None
        return {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "sampled": True,
        }

    @contextmanager
    def span(
        self,
        name: str,
        attributes: dict | None = None,
        *,
        trace_id: str | None = None,
    ):
        """Open one span under the current context.

        Roots (no active parent) draw a fresh ``trace_id`` — or adopt the
        supplied one — and make the sampling decision for the whole
        trace; children inherit both.  Exceptions mark the span
        ``status="error"`` and re-raise.
        """
        if not self.enabled:
            yield _NOOP
            return
        parent = _CURRENT.get()
        if parent is None or parent.trace_id is None:
            tid = trace_id or _new_id(16)
            parent_id = None
            sampled = (
                True
                if trace_id is not None
                else self.sample_rate >= 1.0
                or self._rng.random() < self.sample_rate
            )
        else:
            tid = parent.trace_id
            parent_id = parent.span_id
            sampled = parent.sampled
        span = Span(
            name=name,
            trace_id=tid,
            span_id=_new_id(8),
            parent_id=parent_id,
            start_time=time.time(),
            attributes=dict(attributes) if attributes else {},
            sampled=sampled,
            _t0=time.perf_counter(),
        )
        token = _CURRENT.set(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            _CURRENT.reset(token)
            span.duration = time.perf_counter() - (span._t0 or 0.0)
            if span.sampled:
                self._record(span)

    def _record(self, span: Span) -> None:
        collector = _COLLECTOR.get()
        if collector is not None:
            # Diverted spans ship to the parent process and re-enter
            # through merge(); counting or hooking them here would
            # double-report.
            collector.append(span)
            return
        self._buffer_span(span)

    def _buffer_span(self, span: Span) -> None:
        _SPANS_TOTAL.inc()
        if self.buffer.add(span):
            _SPANS_DROPPED.inc()
        hook = self.on_span
        if hook is not None:
            try:
                hook(span)
            except Exception:  # noqa: BLE001 — observers must not
                # break the traced path
                pass

    # -- cross-boundary propagation --------------------------------------
    @contextmanager
    def remote(self, ctx: dict):
        """Adopt a serialized parent context (worker-process side).

        Re-enables the tracer for the block if needed — a fresh worker
        process starts with tracing off, but a context only exists
        because the parent *is* tracing.
        """
        marker = Span(
            name="<remote-parent>",
            trace_id=ctx["trace_id"],
            span_id=ctx["span_id"],
            sampled=bool(ctx.get("sampled", True)),
        )
        saved_enabled = self.enabled
        self.enabled = True
        token = _CURRENT.set(marker)
        try:
            yield
        finally:
            _CURRENT.reset(token)
            self.enabled = saved_enabled

    @contextmanager
    def collect(self):
        """Divert spans finished in this context into a local list."""
        spans: list[Span] = []
        token = _COLLECTOR.set(spans)
        try:
            yield spans
        finally:
            _COLLECTOR.reset(token)

    def merge(self, span_dicts: "list[dict]") -> int:
        """Fold serialized child spans into this tracer's buffer."""
        if not self.enabled or not span_dicts:
            return 0
        merged = 0
        for data in span_dicts:
            try:
                span = Span.from_dict(data)
            except (KeyError, TypeError):
                continue  # a malformed record must not kill the sweep
            self._buffer_span(span)
            merged += 1
        return merged


#: The process-global tracer every instrumented module reports into.
TRACER = Tracer()
