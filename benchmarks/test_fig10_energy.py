"""E6 — regenerate Fig. 10: normalized energy consumption.

Paper averages: Aurora reduces energy by 89% (HyGCN), 77% (AWB-GCN),
42% (GCNAX), 69% (ReGNN), 71% (FlowGNN), driven by reduced DRAM traffic,
distributed (small-bank) buffering, and reduced on-chip communication.
"""

from conftest import emit

from repro.eval import render_normalized_figure

PAPER = {"hygcn": 89, "awb-gcn": 77, "gcnax": 42, "regnn": 69, "flowgnn": 71}


def test_fig10_energy(benchmark, sweep):
    text = benchmark(
        render_normalized_figure,
        sweep,
        "energy",
        title="Fig. 10: normalized energy (baseline / Aurora)",
    )
    emit(text)
    grid = sweep.normalized_grid("energy")
    for ds in sweep.datasets:
        for acc in sweep.accelerators:
            if acc != "aurora":
                assert grid[ds][acc] > 1.0, (ds, acc)
    for base, paper_red in PAPER.items():
        measured = sweep.average_reduction_vs("energy", base)
        assert abs(measured - paper_red) < 15, (base, measured, paper_red)
    # GCNAX (fused-loop buffer reuse) is the most energy-efficient baseline.
    reds = {b: sweep.average_reduction_vs("energy", b) for b in PAPER}
    assert min(reds, key=reds.get) == "gcnax"
    assert max(reds, key=reds.get) == "hygcn"
