"""Analytical (counting-based) NoC performance model.

The paper's simulator derives on-chip communication time from counted
accesses; this module is that counting model for the NoC.  Given a traffic
matrix between PE grid positions, it computes:

* hop counts per flow under XY routing, optionally improved by configured
  bypass segments (vectorised over all flows × segments),
* per-link loads (the drain time of a network is bounded below by its
  most-loaded link and its hottest ejection port),
* a drain-time estimate combining the bottleneck load with the average
  pipeline + serialisation latency.

The estimate is calibrated against the flit-level simulator (tests assert
agreement on matched traffic), and scales to millions of flows because
everything is NumPy array math.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ...config import NoCConfig
from ...perf import PERF
from .topology import FlexibleMeshTopology

__all__ = [
    "TrafficMatrix",
    "AnalyticalNoCResult",
    "AnalyticalNoCModel",
    "ceil_flits",
]


def ceil_flits(nbytes, flit_bytes: int):
    """Bytes → flits with ceiling division.

    A partial flit still occupies a link/port slot for a full cycle, so
    sub-flit payload remainders must round *up* — floor division would
    silently drop them (e.g. Cora's 1433-feature messages are not a
    multiple of the 16-byte flit width).
    """
    if flit_bytes < 1:
        raise ValueError("flit_bytes must be >= 1")
    return -(-np.asarray(nbytes) // flit_bytes)


@dataclass(frozen=True)
class TrafficMatrix:
    """Aggregated flows: parallel arrays of grid coords and flit counts."""

    src_x: np.ndarray
    src_y: np.ndarray
    dst_x: np.ndarray
    dst_y: np.ndarray
    flits: np.ndarray

    def __post_init__(self) -> None:
        sizes = {
            self.src_x.size,
            self.src_y.size,
            self.dst_x.size,
            self.dst_y.size,
            self.flits.size,
        }
        if len(sizes) != 1:
            raise ValueError("all traffic arrays must have equal length")

    @property
    def num_flows(self) -> int:
        return int(self.src_x.size)

    @property
    def total_flits(self) -> int:
        return int(self.flits.sum())

    @staticmethod
    def from_flows(
        flows: np.ndarray, flit_bytes: int, k: int
    ) -> "TrafficMatrix":
        """Build from an ``(n, 3)`` array of ``(src_node, dst_node, bytes)``.

        Flows between identical nodes are dropped (local traffic stays in
        the PE's own buffer).  Duplicate (src, dst) pairs are merged.
        """
        flows = np.asarray(flows, dtype=np.int64)
        if flows.size == 0:
            z = np.zeros(0, dtype=np.int64)
            return TrafficMatrix(z, z, z, z, z)
        if flows.ndim != 2 or flows.shape[1] != 3:
            raise ValueError("flows must be (n, 3): src, dst, bytes")
        mask = flows[:, 0] != flows[:, 1]
        flows = flows[mask]
        if flows.shape[0] == 0:
            z = np.zeros(0, dtype=np.int64)
            return TrafficMatrix(z, z, z, z, z)
        key = flows[:, 0] * (k * k) + flows[:, 1]
        order = np.argsort(key, kind="stable")
        key = key[order]
        byts = flows[order, 2]
        uniq, starts = np.unique(key, return_index=True)
        sums = np.add.reduceat(byts, starts)
        src = uniq // (k * k)
        dst = uniq % (k * k)
        flits = np.maximum(1, -(-sums // flit_bytes))
        return TrafficMatrix(
            src_x=(src % k).astype(np.int64),
            src_y=(src // k).astype(np.int64),
            dst_x=(dst % k).astype(np.int64),
            dst_y=(dst // k).astype(np.int64),
            flits=flits.astype(np.int64),
        )


@dataclass(frozen=True)
class AnalyticalNoCResult:
    """Outputs of the analytical model."""

    drain_cycles: int
    total_flit_hops: int
    bypass_flit_hops: int
    avg_hops: float
    max_link_load: int
    max_ejection_load: int
    total_flits: int

    @property
    def avg_latency(self) -> float:
        """Mean uncontended per-packet latency component."""
        return self.avg_hops  # one flit-hop per cycle per hop, pre-pipeline


class AnalyticalNoCModel:
    """Counting model over a :class:`FlexibleMeshTopology` configuration.

    Instances precompute per-line bypass-segment tables once (the
    topology is immutable for the model's lifetime); reuse across tiles
    goes through :meth:`cached`, keyed by the topology's routing
    :meth:`~repro.arch.noc.topology.FlexibleMeshTopology.signature`.
    """

    #: Bounded LRU of models keyed by (topology signature, NoC config).
    _CACHE_MAX = 128
    _cache: "OrderedDict[tuple, AnalyticalNoCModel]" = OrderedDict()

    def __init__(
        self,
        topology: FlexibleMeshTopology,
        config: NoCConfig | None = None,
    ) -> None:
        self.topology = topology
        self.config = config or NoCConfig()
        # Per-line segment tables: row segments grouped by their row,
        # column segments by their column — the express-channel
        # discipline only admits flows sourced in the segment's row
        # (resp. destined to its column), so each flow consults at most
        # the few segments on its own line.
        self._row_segments_by_line: dict[int, list[tuple[int, int]]] = {}
        self._col_segments_by_line: dict[int, list[tuple[int, int]]] = {}
        for seg in topology.bypass_segments:
            table = (
                self._row_segments_by_line
                if seg.axis == "row"
                else self._col_segments_by_line
            )
            table.setdefault(seg.line, []).append((seg.start, seg.end))

    @classmethod
    def cached(
        cls, topology: FlexibleMeshTopology, config: NoCConfig | None = None
    ) -> "AnalyticalNoCModel":
        """Memoized constructor: one model per routing-equivalent topology.

        Safe because the model never mutates its topology and two equal
        signatures route identically; the win is skipping the
        segment-table rebuild for every tile of every layer.
        """
        key = (topology.signature(), config)
        model = cls._cache.get(key)
        if model is not None:
            cls._cache.move_to_end(key)
            PERF.incr("noc.model_cache_hit")
            return model
        PERF.incr("noc.model_cache_miss")
        model = cls(topology, config)
        cls._cache[key] = model
        if len(cls._cache) > cls._CACHE_MAX:
            cls._cache.popitem(last=False)
        return model

    # ------------------------------------------------------------------
    def _hops_with_bypass(
        self, traffic: TrafficMatrix
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-flow hop counts and per-flow bypass-hop indicator.

        For each configured segment, the candidate route is
        src → entry (XY) → exit (one bypass hop) → dst (XY); a flow takes
        the best single-segment improvement, under ``bypass_route``'s
        monotonic express-channel discipline (deadlock-safe usage only).

        Vectorised by line: a row segment only admits flows sourced in
        its own row and a column segment only flows destined to its own
        column, so flows are bucketed by source row / destination column
        once and each segment evaluates only its bucket with plain
        comparisons (the former per-segment full-array ``np.isin`` scans
        dominated the simulator profile).
        """
        sx, sy = traffic.src_x, traffic.src_y
        dx, dy = traffic.dst_x, traffic.dst_y
        base = (np.abs(sx - dx) + np.abs(sy - dy)).astype(np.int64)
        best = base.copy()

        if self._row_segments_by_line:
            order = np.argsort(sy, kind="stable")
            lines = sy[order]
            for line, segs in self._row_segments_by_line.items():
                lo = np.searchsorted(lines, line, side="left")
                hi = np.searchsorted(lines, line, side="right")
                if lo == hi:
                    continue
                idx = order[lo:hi]
                bsx, bdx, bdy = sx[idx], dx[idx], dy[idx]
                cur = best[idx]
                dyterm = np.abs(line - bdy)
                for start, end in segs:
                    # entry=start → exit=end (direction +1)
                    cand = (start - bsx) + 1 + (bdx - end) + dyterm
                    ok = (bsx <= start) & (bdx >= end) & (cand < cur)
                    cur = np.where(ok, cand, cur)
                    # entry=end → exit=start (direction -1)
                    cand = (bsx - end) + 1 + (start - bdx) + dyterm
                    ok = (bsx >= end) & (bdx <= start) & (cand < cur)
                    cur = np.where(ok, cand, cur)
                best[idx] = cur

        if self._col_segments_by_line:
            order = np.argsort(dx, kind="stable")
            lines = dx[order]
            for line, segs in self._col_segments_by_line.items():
                lo = np.searchsorted(lines, line, side="left")
                hi = np.searchsorted(lines, line, side="right")
                if lo == hi:
                    continue
                idx = order[lo:hi]
                bsx, bsy, bdy = sx[idx], sy[idx], dy[idx]
                cur = best[idx]
                dxterm = np.abs(bsx - line)
                for start, end in segs:
                    # entry=start → exit=end (direction +1)
                    cand = dxterm + (start - bsy) + 1 + (bdy - end)
                    ok = (bsy <= start) & (bdy >= end) & (cand < cur)
                    cur = np.where(ok, cand, cur)
                    # entry=end → exit=start (direction -1)
                    cand = dxterm + (bsy - end) + 1 + (start - bdy)
                    ok = (bsy >= end) & (bdy <= start) & (cand < cur)
                    cur = np.where(ok, cand, cur)
                best[idx] = cur

        used_bypass = best < base
        return best, used_bypass

    def _link_loads(
        self,
        traffic: TrafficMatrix,
        boost_nodes: tuple[int, ...] = (),
        boost_factor: float = 3.0,
    ) -> tuple[int, int]:
        """(max mesh-link load, max ejection load) in flits, XY routing.

        Nodes in ``boost_nodes`` have their bypass-link endpoints usable
        as additional ejection lanes, and their row mates pre-merge
        partial reductions through their reuse FIFOs (the paper's extra
        injection/ejection bandwidth for high-degree vertices), so their
        ejection load is divided by ``boost_factor``.

        Horizontal crossings happen in the source row; vertical crossings
        in the destination column.  Range accumulation uses the standard
        difference-array trick per row/column.
        """
        k = self.topology.k
        sx, sy = traffic.src_x, traffic.src_y
        dx, dy = traffic.dst_x, traffic.dst_y
        fl = traffic.flits

        # Horizontal links: K rows × (K-1) boundaries.
        h = np.zeros((k, k), dtype=np.int64)  # diff array per row
        lo = np.minimum(sx, dx)
        hi = np.maximum(sx, dx)
        horiz = hi > lo
        if np.any(horiz):
            np.add.at(h, (sy[horiz], lo[horiz]), fl[horiz])
            np.subtract.at(h, (sy[horiz], hi[horiz]), fl[horiz])
        h_loads = np.cumsum(h, axis=1)[:, : k - 1]

        v = np.zeros((k, k), dtype=np.int64)  # diff array per column
        lo = np.minimum(sy, dy)
        hi = np.maximum(sy, dy)
        vert = hi > lo
        if np.any(vert):
            np.add.at(v, (dx[vert], lo[vert]), fl[vert])
            np.subtract.at(v, (dx[vert], hi[vert]), fl[vert])
        v_loads = np.cumsum(v, axis=1)[:, : k - 1]

        eject = np.zeros(k * k, dtype=np.float64)
        np.add.at(eject, dy * k + dx, fl)
        if boost_nodes:
            idx = np.asarray(boost_nodes, dtype=np.int64)
            eject[idx] /= max(boost_factor, 1.0)

        max_link = int(max(h_loads.max(initial=0), v_loads.max(initial=0)))
        return max_link, int(eject.max(initial=0.0))

    @staticmethod
    def _boosted_max(
        loads_flits: np.ndarray,
        boost_nodes: tuple[int, ...],
        boost_factor: float,
    ) -> int:
        """Max per-node load after dividing boosted nodes' load."""
        loads = np.asarray(loads_flits, dtype=np.float64).copy()
        if boost_nodes:
            idx = np.asarray(boost_nodes, dtype=np.int64)
            loads[idx] /= max(boost_factor, 1.0)
        return int(loads.max(initial=0.0))

    # ------------------------------------------------------------------
    def evaluate(
        self,
        traffic: TrafficMatrix,
        *,
        boost_nodes: tuple[int, ...] = (),
        boost_factor: float = 3.0,
        eject_flits: np.ndarray | None = None,
        inject_flits: np.ndarray | None = None,
    ) -> AnalyticalNoCResult:
        """Estimate drain time and hop statistics for a traffic matrix.

        ``boost_nodes`` are PEs whose bypass endpoints add ejection and
        injection bandwidth (the degree-aware mapping's S_PEs).

        For multicast traffic the per-flow flits in ``traffic`` carry the
        tree-shared link volume; pass the *full* per-node ejection (and
        injection) loads in flits via ``eject_flits``/``inject_flits`` so
        the port bottlenecks are not undercounted.
        """
        if traffic.num_flows == 0:
            return AnalyticalNoCResult(0, 0, 0, 0.0, 0, 0, 0)
        with PERF.timer("noc"):
            return self._evaluate(
                traffic,
                boost_nodes=boost_nodes,
                boost_factor=boost_factor,
                eject_flits=eject_flits,
                inject_flits=inject_flits,
            )

    def _evaluate(
        self,
        traffic: TrafficMatrix,
        *,
        boost_nodes: tuple[int, ...],
        boost_factor: float,
        eject_flits: np.ndarray | None,
        inject_flits: np.ndarray | None,
    ) -> AnalyticalNoCResult:
        hops, used_bypass = self._hops_with_bypass(traffic)
        flit_hops = int((hops * traffic.flits).sum())
        bypass_hops = int(traffic.flits[used_bypass].sum())
        max_link, max_eject = self._link_loads(traffic, boost_nodes, boost_factor)
        if eject_flits is not None:
            max_eject = self._boosted_max(eject_flits, boost_nodes, boost_factor)
        max_inject = 0
        if inject_flits is not None:
            max_inject = self._boosted_max(inject_flits, boost_nodes, boost_factor)
        # Bypass segments relieve the most-loaded links: flows that take a
        # segment stop crossing the congested span. First-order correction:
        # subtract the bypassed flits from the bottleneck, floored at 30%
        # of the original load (a segment is itself a single-flit-per-cycle
        # wire and cannot erase a hotspot entirely).
        relieved = max(max_link - bypass_hops, int(0.3 * max_link))
        bottleneck = max(relieved, max_eject, max_inject)
        per_hop = self.config.router_pipeline_stages + self.config.link_latency
        avg_hops = float((hops * traffic.flits).sum() / traffic.total_flits)
        avg_base_latency = avg_hops * per_hop
        drain = int(round(bottleneck + avg_base_latency)) + per_hop
        return AnalyticalNoCResult(
            drain_cycles=drain,
            total_flit_hops=flit_hops,
            bypass_flit_hops=bypass_hops,
            avg_hops=avg_hops,
            max_link_load=max_link,
            max_ejection_load=max_eject,
            total_flits=traffic.total_flits,
        )
