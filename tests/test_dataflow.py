"""Tests for the weight-stationary ring dataflow schedule."""

import pytest

from repro.arch.dataflow import plan_ring_dataflow
from repro.config import default_config

CFG = default_config()


class TestPlan:
    def test_slice_partition_covers_inputs(self):
        s = plan_ring_dataflow(CFG, ring_width=8, in_features=100, out_features=64)
        assert s.slice_in * s.ring_width >= s.in_features

    def test_weight_fits_slice(self):
        s = plan_ring_dataflow(CFG, ring_width=8, in_features=64, out_features=64)
        assert s.weight_bytes_per_pe == 8 * 64 * 8  # slice_in * F_out * fp64

    def test_single_pe_ring(self):
        s = plan_ring_dataflow(CFG, ring_width=1, in_features=32, out_features=32)
        assert s.slice_in == 32
        assert s.vertex_latency == s.compute_per_stop

    def test_tall_weights_stay_compute_bound(self):
        """The reduction-dimension partition keeps GNN input layers
        (F_in >> F_out) compute-bound."""
        s = plan_ring_dataflow(CFG, 32, 1433, 64)
        assert s.is_compute_bound

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_ring_dataflow(CFG, 0, 8, 8)
        with pytest.raises(ValueError):
            plan_ring_dataflow(CFG, 4, 0, 8)


class TestSchedule:
    def test_zero_vertices(self):
        s = plan_ring_dataflow(CFG, 4, 64, 64)
        assert s.total_cycles(0) == 0
        assert s.utilization(0) == 0.0

    def test_negative_rejected(self):
        s = plan_ring_dataflow(CFG, 4, 64, 64)
        with pytest.raises(ValueError):
            s.total_cycles(-1)

    def test_fill_then_steady_state(self):
        s = plan_ring_dataflow(CFG, 4, 64, 64)
        one = s.total_cycles(1)
        two = s.total_cycles(2)
        many = s.total_cycles(100)
        assert one == s.vertex_latency
        assert two - one == s.stage_interval
        assert many == one + 99 * s.stage_interval

    def test_wider_ring_higher_throughput(self):
        """More ring PEs shrink the per-stop compute, so steady-state
        throughput (vertices/cycle) cannot drop."""
        narrow = plan_ring_dataflow(CFG, 2, 512, 512)
        wide = plan_ring_dataflow(CFG, 16, 512, 512)
        assert wide.stage_interval <= narrow.stage_interval

    def test_utilization_improves_with_batch(self):
        s = plan_ring_dataflow(CFG, 8, 128, 128)
        assert s.utilization(1000) > s.utilization(2)
        assert 0 < s.utilization(1000) <= 1.0

    def test_link_traffic_is_fout_wide(self):
        s = plan_ring_dataflow(CFG, 4, 256, 64)
        assert s.link_byte_hops(10, 8) == 10 * 3 * 64 * 8

    def test_agrees_with_simulator_formula(self):
        """In steady state the schedule's throughput matches the lumped
        O_uv / (PEs × rate) formula within the fill/imbalance slack."""
        n, f_in, f_out, width = 2000, 512, 64, 32
        s = plan_ring_dataflow(CFG, width, f_in, f_out)
        measured = s.total_cycles(n)
        o_uv = 2 * f_in * f_out * n
        lumped = o_uv / (width * 2 * CFG.macs_per_pe)
        assert measured == pytest.approx(lumped, rel=0.6)
        assert measured >= lumped * 0.99  # the schedule can't beat ideal
