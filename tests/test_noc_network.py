"""Tests for the flit-level NoC simulator."""

import pytest

from repro.arch.noc import (
    BypassSegment,
    FlexibleMeshTopology,
    NoCSimulator,
)
from repro.config import NoCConfig


@pytest.fixture
def sim4():
    return NoCSimulator(FlexibleMeshTopology(4))


class TestSinglePacket:
    def test_delivery(self, sim4):
        sim4.inject(0, 15, 16)
        stats = sim4.run()
        assert stats.packets_delivered == 1
        assert stats.flits_delivered == 1

    def test_latency_includes_hops_and_pipeline(self, sim4):
        cfg = sim4.config
        sim4.inject(0, 15, cfg.flit_bytes)
        stats = sim4.run()
        hops = 6  # manhattan distance in a 4x4 mesh corner to corner
        min_latency = hops * (cfg.router_pipeline_stages + cfg.link_latency)
        assert stats.max_packet_latency >= min_latency

    def test_multi_flit_serialisation(self, sim4):
        one = NoCSimulator(FlexibleMeshTopology(4))
        one.inject(0, 3, one.config.flit_bytes)
        lat1 = one.run().max_packet_latency

        many = NoCSimulator(FlexibleMeshTopology(4))
        many.inject(0, 3, 8 * many.config.flit_bytes)
        lat8 = many.run().max_packet_latency
        assert lat8 >= lat1 + 7  # tail flit trails by >= 7 cycles

    def test_local_packet(self, sim4):
        sim4.inject(5, 5, 16)
        stats = sim4.run()
        assert stats.packets_delivered == 1
        assert stats.total_flit_hops == 0  # never left the node

    def test_flit_hops_counted(self, sim4):
        sim4.inject(0, 3, sim4.config.flit_bytes)  # 3 hops along row
        stats = sim4.run()
        assert stats.mesh_flit_hops == 3

    def test_invalid_injection(self, sim4):
        with pytest.raises(ValueError):
            sim4.inject(0, 3, 0)
        sim4.step()
        with pytest.raises(ValueError, match="past"):
            sim4.inject(0, 3, 16, cycle=0)


class TestContention:
    def test_converging_traffic_serialises(self):
        """Two packets to the same destination share its ejection port."""
        solo = NoCSimulator(FlexibleMeshTopology(4))
        solo.inject(0, 5, solo.config.flit_bytes * 4)
        t_solo = solo.run().cycles

        pair = NoCSimulator(FlexibleMeshTopology(4))
        pair.inject(0, 5, pair.config.flit_bytes * 4)
        pair.inject(10, 5, pair.config.flit_bytes * 4)
        t_pair = pair.run().cycles
        assert t_pair > t_solo

    def test_disjoint_traffic_parallel(self):
        """Flows on disjoint rows should not slow each other down much."""
        solo = NoCSimulator(FlexibleMeshTopology(4))
        solo.inject(0, 3, solo.config.flit_bytes * 8)
        t_solo = solo.run().cycles

        pair = NoCSimulator(FlexibleMeshTopology(4))
        pair.inject(0, 3, pair.config.flit_bytes * 8)
        pair.inject(12, 15, pair.config.flit_bytes * 8)
        t_pair = pair.run().cycles
        assert t_pair <= t_solo + 2

    def test_backpressure_counted(self):
        sim = NoCSimulator(
            FlexibleMeshTopology(4), NoCConfig(vcs_per_port=1, vc_depth=1)
        )
        for src in (0, 4, 8, 12):
            sim.inject(src, 3, sim.config.flit_bytes * 16)
        stats = sim.run()
        assert stats.packets_delivered == 4
        assert stats.stall_events > 0

    def test_many_packets_all_delivered(self, rng):
        sim = NoCSimulator(FlexibleMeshTopology(4))
        n = 40
        for i in range(n):
            src = int(rng.integers(0, 16))
            dst = int(rng.integers(0, 16))
            sim.inject(src, dst, int(rng.integers(1, 64)))
        stats = sim.run()
        assert stats.packets_delivered == n


class TestBypassInSim:
    def test_bypass_reduces_latency(self):
        plain = NoCSimulator(FlexibleMeshTopology(8))
        plain.inject(0, 7, plain.config.flit_bytes * 4)
        t_plain = plain.run().max_packet_latency

        topo = FlexibleMeshTopology(8)
        topo.add_bypass_segment(BypassSegment("row", 0, 0, 7))
        fast = NoCSimulator(topo)
        fast.inject(0, 7, fast.config.flit_bytes * 4)
        stats = fast.run()
        assert stats.max_packet_latency < t_plain
        assert stats.bypass_flit_hops > 0

    def test_refresh_configuration(self):
        topo = FlexibleMeshTopology(8)
        sim = NoCSimulator(topo)
        topo.add_bypass_segment(BypassSegment("row", 0, 0, 7))
        sim.refresh_configuration()
        sim.inject(0, 7, sim.config.flit_bytes)
        assert sim.run().bypass_flit_hops == 1


class TestLimits:
    def test_max_cycles_guard(self, sim4):
        sim4.inject(0, 15, 1 << 20)  # enormous packet
        with pytest.raises(RuntimeError, match="did not drain"):
            sim4.run(max_cycles=10)

    def test_undelivered_count(self, sim4):
        sim4.inject(0, 15, 16)
        assert sim4.undelivered() == 1
        sim4.run()
        assert sim4.undelivered() == 0
