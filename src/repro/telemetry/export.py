"""Span exporters: Chrome/Perfetto trace JSON, JSONL logs, summaries.

The Chrome trace event format (``chrome://tracing`` / Perfetto) renders
each trace as one timeline row of nested "X" (complete) events — which
is exactly a span tree laid on its side.  JSONL is the archival form:
one serialized span per line, append-friendly, and re-importable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from .trace import Span

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "span_summary",
    "format_summary",
    "trace_roots",
]


def _as_span(item: "Span | dict") -> Span:
    return item if isinstance(item, Span) else Span.from_dict(item)


def to_chrome_trace(spans: Iterable["Span | dict"]) -> dict:
    """Spans → a Chrome trace-event JSON object.

    Timestamps are microseconds relative to the earliest span so the
    viewer opens at t=0; each distinct ``trace_id`` gets its own ``tid``
    row, making one request tree one visual track.
    """
    items = [_as_span(s) for s in spans]
    base = min((s.start_time for s in items), default=0.0)
    tids: dict[str, int] = {}
    events = []
    for span in items:
        tid = tids.setdefault(span.trace_id, len(tids) + 1)
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.start_time - base) * 1e6,
                "dur": (span.duration or 0.0) * 1e6,
                "pid": 1,
                "tid": tid,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "status": span.status,
                    **span.attributes,
                },
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {"format": "repro.telemetry", "trace_count": len(tids)},
    }


def write_chrome_trace(path: "str | Path", spans: Iterable["Span | dict"]) -> dict:
    """Write ``trace.json``; returns the document for inspection."""
    doc = to_chrome_trace(spans)
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def validate_chrome_trace(doc: dict) -> list[str]:
    """Structural checks on a Chrome trace document; returns problems.

    Used by CI to assert an exported ``trace.json`` actually loads in a
    trace viewer: a ``traceEvents`` list whose events carry ``name``,
    ``ph``, numeric ``ts``/``dur``, and ``pid``/``tid``.
    """
    problems: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        for field in ("name", "ph"):
            if not isinstance(event.get(field), str):
                problems.append(f"event {i} has no string {field!r}")
        for field in ("ts", "dur"):
            if not isinstance(event.get(field), (int, float)):
                problems.append(f"event {i} has no numeric {field!r}")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"event {i} has no integer {field!r}")
    return problems


def write_spans_jsonl(path: "str | Path", spans: Iterable["Span | dict"]) -> int:
    """One serialized span per line; returns the number written."""
    items = [_as_span(s) for s in spans]
    with open(path, "w", encoding="utf-8") as fh:
        for span in items:
            fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
    return len(items)


def read_spans_jsonl(path: "str | Path") -> list[Span]:
    spans = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


def span_summary(spans: Iterable["Span | dict"]) -> list[dict]:
    """Per-stage aggregate, sorted by cumulative time (desc).

    Each entry: ``{name, calls, total_seconds, mean_seconds,
    max_seconds, errors}`` — the "top stages" view bench snapshots embed
    and ``repro trace summary`` prints.
    """
    agg: dict[str, dict] = {}
    for item in spans:
        span = _as_span(item)
        entry = agg.setdefault(
            span.name,
            {
                "name": span.name,
                "calls": 0,
                "total_seconds": 0.0,
                "max_seconds": 0.0,
                "errors": 0,
            },
        )
        dur = span.duration or 0.0
        entry["calls"] += 1
        entry["total_seconds"] += dur
        entry["max_seconds"] = max(entry["max_seconds"], dur)
        if span.status != "ok":
            entry["errors"] += 1
    out = sorted(agg.values(), key=lambda e: -e["total_seconds"])
    for entry in out:
        entry["mean_seconds"] = entry["total_seconds"] / entry["calls"]
    return out


def format_summary(summary: list[dict], *, limit: int | None = None) -> str:
    """Render a span summary as an aligned text table."""
    rows = summary[:limit] if limit else summary
    if not rows:
        return "(no spans)"
    width = max(len(r["name"]) for r in rows)
    lines = [
        f"{'stage':<{width}}  {'calls':>6}  {'total':>10}  {'mean':>10}  "
        f"{'max':>10}"
    ]
    for r in rows:
        lines.append(
            f"{r['name']:<{width}}  {r['calls']:>6}  "
            f"{r['total_seconds'] * 1e3:>8.2f}ms  "
            f"{r['mean_seconds'] * 1e3:>8.2f}ms  "
            f"{r['max_seconds'] * 1e3:>8.2f}ms"
            + (f"  ({r['errors']} errors)" if r["errors"] else "")
        )
    return "\n".join(lines)


def trace_roots(spans: Iterable["Span | dict"]) -> dict[str, list[Span]]:
    """Group spans by trace and return only traces with a root span.

    A *root* has no parent within the trace — one HTTP request tree.
    The CI smoke check uses this to assert an export holds at least one
    complete request tree.
    """
    by_trace: dict[str, list[Span]] = {}
    for item in spans:
        span = _as_span(item)
        by_trace.setdefault(span.trace_id, []).append(span)
    complete = {}
    for trace_id, members in by_trace.items():
        ids = {s.span_id for s in members}
        if any(s.parent_id is None or s.parent_id not in ids for s in members):
            complete[trace_id] = members
    return complete
