"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.model == "gcn"
        assert args.dataset == "cora"
        assert args.device == "aurora"

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--model", "bert"])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--dataset", "ogbn"])

    def test_compare_runtime_flags_default_off(self):
        args = build_parser().parse_args(["compare"])
        assert args.jobs == 1
        assert args.cache is False

    def test_sweep_cache_defaults_on(self):
        args = build_parser().parse_args(["sweep"])
        assert args.cache is True
        args = build_parser().parse_args(["sweep", "--no-cache", "--jobs", "4"])
        assert args.cache is False
        assert args.jobs == 4

    def test_experiment_accepts_jobs_flag(self):
        args = build_parser().parse_args(["experiment", "E1", "--jobs", "2"])
        assert args.jobs == 2

    def test_rejects_nonpositive_jobs(self):
        for bad in ("0", "-1"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["sweep", "--jobs", bad])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.queue_depth == 64
        assert args.cache is True
        assert args.jobs == 1

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--queue-depth", "4", "--no-cache",
             "--batch-window", "0.05", "--max-batch", "8"]
        )
        assert args.port == 0
        assert args.queue_depth == 4
        assert args.cache is False
        assert args.batch_window == 0.05
        assert args.max_batch == 8

    def test_request_defaults(self):
        args = build_parser().parse_args(["request"])
        assert args.model == "gcn"
        assert args.port == 8765
        assert args.deadline is None

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])

    def test_cache_prune_requires_a_bound(self, capsys):
        # Both bounds are optional flags; giving neither is a usage error.
        args = build_parser().parse_args(["cache", "prune"])
        assert args.max_age is None
        assert args.max_bytes is None
        assert main(["cache", "prune"]) == 2
        assert "--max-age and/or --max-bytes" in capsys.readouterr().err

    def test_bench_serve_tier(self):
        args = build_parser().parse_args(["bench", "--tier", "serve"])
        assert args.tier == "serve"

    def test_bench_cluster_tier(self):
        args = build_parser().parse_args(["bench", "--tier", "cluster"])
        assert args.tier == "cluster"

    def test_bench_fanout_tier_knobs(self):
        args = build_parser().parse_args(
            ["bench", "--tier", "fanout", "--tile-workers", "4",
             "--noc-engine", "numba"]
        )
        assert args.tier == "fanout"
        assert args.tile_workers == 4
        assert args.noc_engine == "numba"
        # Defaults: the case's own settings apply.
        args = build_parser().parse_args(["bench", "--tier", "fanout"])
        assert args.tile_workers is None
        assert args.noc_engine is None

    def test_simulate_tile_workers(self):
        args = build_parser().parse_args(
            ["simulate", "--tile-workers", "3"]
        )
        assert args.tile_workers == 3
        assert build_parser().parse_args(["simulate"]).tile_workers == 1

    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.replicas == 2
        assert args.vnodes == 64
        assert args.max_inflight == 16
        assert args.port == 8765

    def test_serve_replica_id(self):
        args = build_parser().parse_args(["serve", "--replica-id", "3"])
        assert args.replica_id == "3"


class TestParseAge:
    def test_units(self):
        from repro.cli import parse_age

        assert parse_age("900") == 900.0
        assert parse_age("30m") == 1800.0
        assert parse_age("36h") == 36 * 3600.0
        assert parse_age("7d") == 7 * 86400.0
        assert parse_age("1.5h") == 5400.0

    def test_rejects_garbage(self):
        from repro.cli import parse_age

        for bad in ("soon", "h", "-1d"):
            with pytest.raises(ValueError):
                parse_age(bad)


class TestParseSize:
    def test_units(self):
        from repro.cli import parse_size

        assert parse_size("50000000") == 50_000_000
        assert parse_size("64k") == 64 * 1024
        assert parse_size("100m") == 100 * (1 << 20)
        assert parse_size("2g") == 2 * (1 << 30)
        assert parse_size("1.5K") == 1536

    def test_rejects_garbage(self):
        from repro.cli import parse_size

        for bad in ("big", "k", "-1m"):
            with pytest.raises(ValueError):
                parse_size(bad)


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("cora", "citeseer", "pubmed", "nell", "reddit"):
            assert name in out
        assert "2,708" in out  # Cora's published vertex count

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "gcn" in out and "edgeconv-5" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "32x32" in out
        assert "700 MHz" in out
        assert "63 cycles" in out

    def test_simulate_aurora(self, capsys):
        rc = main(["simulate", "--dataset", "cora", "--scale", "0.2",
                   "--hidden", "16", "--layers", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "device          : aurora" in out
        assert "execution time" in out

    def test_simulate_baseline(self, capsys):
        rc = main(["simulate", "--dataset", "cora", "--scale", "0.2",
                   "--device", "gcnax", "--hidden", "16", "--layers", "1"])
        assert rc == 0
        assert "gcnax" in capsys.readouterr().out

    def test_simulate_unsupported_warns(self, capsys):
        rc = main(["simulate", "--dataset", "cora", "--scale", "0.2",
                   "--device", "hygcn", "--model", "ggcn",
                   "--hidden", "8", "--layers", "1"])
        assert rc == 0
        assert "does not support" in capsys.readouterr().err

    def test_simulate_hashing_mapping(self, capsys):
        rc = main(["simulate", "--dataset", "cora", "--scale", "0.2",
                   "--mapping", "hashing", "--hidden", "8", "--layers", "1"])
        assert rc == 0
        assert "aurora-hashing" in capsys.readouterr().out

    def test_compare(self, capsys):
        rc = main(["compare", "--datasets", "cora", "--metric", "energy"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "aurora" in out and "hygcn" in out

    def test_sweep_cold_then_warm(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["sweep", "--datasets", "cora", "--metric", "energy"]) == 0
        out = capsys.readouterr().out
        assert "aurora" in out
        assert "6 executed" in out
        assert "cache 0 hit / 6 miss" in out
        # Warm rerun: every grid point served from the cache.
        assert main(["sweep", "--datasets", "cora", "--metric", "energy"]) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out
        assert "cache 6 hit / 0 miss" in out

    def test_sweep_no_cache(self, capsys):
        rc = main(["sweep", "--datasets", "cora", "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "6 executed" in out
        assert "cache 0 hit / 0 miss" in out

    def test_compare_with_jobs_flag(self, capsys):
        rc = main(["compare", "--datasets", "cora", "--jobs", "2",
                   "--metric", "energy"])
        assert rc == 0
        assert "aurora" in capsys.readouterr().out

    def test_experiment(self, capsys):
        assert main(["experiment", "E1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_experiment_with_runtime_flags(self, capsys):
        assert main(["experiment", "E1", "--jobs", "1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "E99"]) == 2
        assert "error" in capsys.readouterr().err


class TestCacheCommand:
    def test_stats_empty(self, capsys, tmp_path):
        assert main(["cache", "--dir", str(tmp_path), "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries     : 0" in out
        assert str(tmp_path) in out

    def test_stats_clear_roundtrip(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert main(["sweep", "--datasets", "cora", "--metric", "energy"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        assert "entries     : 6" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert "removed 6" in capsys.readouterr().out
        assert main(["cache", "stats"]) == 0
        assert "entries     : 0" in capsys.readouterr().out

    def test_prune_by_age(self, capsys, tmp_path):
        import os
        import time

        from repro.runtime import ResultCache

        cache = ResultCache(tmp_path)
        cache.store("ab" + "0" * 62, {"x": 1})
        cache.store("cd" + "0" * 62, {"x": 2})
        old = time.time() - 3 * 86400
        os.utime(cache.path_for("ab" + "0" * 62), (old, old))
        assert main(["cache", "--dir", str(tmp_path), "prune",
                     "--max-age", "1d"]) == 0
        assert "pruned 1" in capsys.readouterr().out
        assert len(cache) == 1

    def test_prune_rejects_bad_age(self, capsys, tmp_path):
        assert main(["cache", "--dir", str(tmp_path), "prune",
                     "--max-age", "soon"]) == 2
        assert "invalid age" in capsys.readouterr().err

    def test_prune_by_bytes(self, capsys, tmp_path):
        import os
        import time

        from repro.runtime import ResultCache

        cache = ResultCache(tmp_path)
        for i, key in enumerate(("ab" + "0" * 62, "cd" + "0" * 62)):
            cache.store(key, {"x": i, "pad": "y" * 200})
            # Distinct mtimes make the oldest-first order deterministic.
            stamp = time.time() - (10 - i)
            os.utime(cache.path_for(key), (stamp, stamp))
        budget = cache.path_for("cd" + "0" * 62).stat().st_size
        assert main(["cache", "--dir", str(tmp_path), "prune",
                     "--max-bytes", str(budget)]) == 0
        assert "evicted 1" in capsys.readouterr().out
        assert len(cache) == 1
        assert cache.load("cd" + "0" * 62) is not None  # newest survived

    def test_prune_by_age_and_bytes_together(self, capsys, tmp_path):
        from repro.runtime import ResultCache

        cache = ResultCache(tmp_path)
        cache.store("ab" + "0" * 62, {"x": 1})
        assert main(["cache", "--dir", str(tmp_path), "prune",
                     "--max-age", "1d", "--max-bytes", "1g"]) == 0
        out = capsys.readouterr().out
        assert "pruned 0" in out
        assert "evicted 0" in out
        assert len(cache) == 1

    def test_prune_rejects_bad_size(self, capsys, tmp_path):
        assert main(["cache", "--dir", str(tmp_path), "prune",
                     "--max-bytes", "big"]) == 2
        assert "invalid size" in capsys.readouterr().err

    def test_request_against_dead_server_fails_cleanly(self, capsys):
        # Port 1 is never listening; the client retries then reports.
        assert main(["request", "--port", "1", "--retries", "0",
                     "--dataset", "cora"]) == 1
        assert "error" in capsys.readouterr().err


class TestDSECommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["dse"])
        assert args.space == "aurora-core"
        assert args.optimizer == "random"
        assert args.objective == "latency"
        assert args.budget == 200
        assert args.cache is True

    def test_parser_rejects_unknown_space(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dse", "--space", "nonesuch"])

    def test_parser_accepts_adversarial_dataset(self):
        args = build_parser().parse_args(["dse", "--dataset", "adv-star"])
        assert args.dataset == "adv-star"

    def test_search_writes_trajectory(self, capsys, tmp_path):
        rc = main([
            "dse", "--space", "aurora-mini", "--budget", "8", "--batch", "4",
            "--dataset", "cora", "--scale", "0.1", "--hidden", "8",
            "--layers", "1", "--no-cache",
            "--trajectory", str(tmp_path / "t.jsonl"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "8 evaluations" in out
        assert "best latency" in out
        assert (tmp_path / "t.jsonl").exists()

    def test_malformed_option_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="malformed"):
            main([
                "dse", "--space", "aurora-mini", "--budget", "4",
                "--option", "oops",
                "--trajectory", str(tmp_path / "t.jsonl"),
            ])

    def test_paper_sweep_grid(self, capsys, tmp_path):
        rc = main([
            "dse", "--grid", "paper-sweep", "--datasets", "cora",
            "--scale", "0.1", "--hidden", "8", "--layers", "1", "--no-cache",
            "--trajectory", str(tmp_path / "grid.jsonl"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "6 evaluations" in out
        assert "accelerator" in out

    def test_json_output(self, capsys, tmp_path):
        import json

        rc = main([
            "dse", "--space", "aurora-mini", "--budget", "4", "--batch", "4",
            "--dataset", "cora", "--scale", "0.1", "--hidden", "8",
            "--layers", "1", "--no-cache", "--json",
            "--trajectory", str(tmp_path / "t.jsonl"),
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["evaluations"] == 4
        assert payload["spec"]["space"] == "aurora-mini"
