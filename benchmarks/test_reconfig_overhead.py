"""E8 — regenerate the §VI-D reconfiguration/mapping overhead numbers."""

from conftest import emit

from repro.eval import run_experiment


def test_reconfig_overhead(benchmark):
    result = benchmark(run_experiment, "E8")
    emit(result.text)
    # 2K-1 = 63 cycles for the 32x32 array; mapping/partition ~100 cycles.
    assert result.data["reconfiguration_cycles"] == 63
    strat = result.data["partition"]
    assert strat.a + strat.b == 1024
