"""Unit tests for graph statistics."""

import numpy as np
import pytest

from repro.graphs import (
    communication_imbalance,
    degree_histogram,
    degree_summary,
    gini_coefficient,
    power_law_exponent,
    power_law_graph,
    top_degree_vertices,
    uniform_random_graph,
)


class TestGini:
    def test_equal_values_zero(self):
        assert gini_coefficient(np.full(10, 5.0)) == pytest.approx(0.0, abs=1e-9)

    def test_single_owner_near_one(self):
        v = np.zeros(100)
        v[0] = 1.0
        assert gini_coefficient(v) > 0.95

    def test_empty(self):
        assert gini_coefficient(np.array([])) == 0.0

    def test_all_zero(self):
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            gini_coefficient(np.array([1.0, -1.0]))

    def test_scale_invariant(self, rng):
        v = rng.random(50)
        assert gini_coefficient(v) == pytest.approx(gini_coefficient(10 * v))


class TestPowerLawFit:
    def test_power_law_graph_has_tail(self):
        g = power_law_graph(2000, 10000, exponent=2.2, seed=1)
        alpha = power_law_exponent(g)
        assert 1.5 < alpha < 4.0

    def test_power_law_more_skewed_than_uniform(self):
        pl = power_law_graph(2000, 10000, exponent=2.0, seed=1)
        uni = uniform_random_graph(2000, 10000, seed=1)
        assert gini_coefficient(pl.degrees.astype(float)) > gini_coefficient(
            uni.degrees.astype(float)
        )

    def test_degenerate_returns_nan(self):
        from repro.graphs import chain_graph

        g = chain_graph(3)
        assert np.isnan(power_law_exponent(g, dmin=5))


class TestTopDegree:
    def test_selects_hub(self, hub_graph):
        top = top_degree_vertices(hub_graph, 1)
        assert top.tolist() == [0]

    def test_sorted_descending(self, medium_graph):
        top = top_degree_vertices(medium_graph, 10)
        degs = medium_graph.degrees[top]
        assert np.all(np.diff(degs) <= 0)

    def test_ties_broken_by_id(self):
        from repro.graphs import from_edge_list

        g = from_edge_list(4, [(0, 1), (2, 3)])  # vertices 0 and 2 tie
        top = top_degree_vertices(g, 2)
        assert top.tolist() == [0, 2]

    def test_k_larger_than_n(self, tiny_graph):
        top = top_degree_vertices(tiny_graph, 100)
        assert top.size == 5

    def test_k_zero(self, tiny_graph):
        assert top_degree_vertices(tiny_graph, 0).size == 0

    def test_negative_k(self, tiny_graph):
        with pytest.raises(ValueError):
            top_degree_vertices(tiny_graph, -1)

    def test_in_degree_mode(self, tiny_graph):
        top = top_degree_vertices(tiny_graph, 1, use_in_degrees=True)
        assert top.tolist() == [2]  # in-degree 2


class TestImbalance:
    def test_balanced(self):
        assert communication_imbalance(np.full(8, 3.0)) == pytest.approx(1.0)

    def test_skewed(self):
        loads = np.ones(8)
        loads[0] = 8
        assert communication_imbalance(loads) > 4

    def test_empty_and_zero(self):
        assert communication_imbalance(np.array([])) == 1.0
        assert communication_imbalance(np.zeros(4)) == 1.0


class TestSummary:
    def test_histogram_sums_to_n(self, medium_graph):
        hist = degree_histogram(medium_graph)
        assert hist.sum() == medium_graph.num_vertices

    def test_histogram_in_degrees(self, tiny_graph):
        hist = degree_histogram(tiny_graph, use_in_degrees=True)
        assert hist.sum() == 5

    def test_summary_fields(self, medium_graph):
        s = degree_summary(medium_graph)
        assert s.maximum >= s.p99 >= s.p90 >= s.p50
        assert s.mean == pytest.approx(medium_graph.degrees.mean())
        assert 0 <= s.gini <= 1
