"""Tests for request canonicalization and response encoding."""

import pytest

from repro.runtime import SimJob, job_key
from repro.runtime.runner import JobOutcome
from repro.serve.protocol import (
    ProtocolError,
    encode_outcome,
    parse_simulation_request,
)


class TestParse:
    def test_minimal_request_gets_defaults(self):
        job = parse_simulation_request({"dataset": "cora"})
        assert job == SimJob(dataset="cora")

    def test_cli_aliases(self):
        job = parse_simulation_request(
            {"dataset": "cora", "layers": 3, "device": "gcnax"}
        )
        assert job.num_layers == 3
        assert job.accelerator == "gcnax"

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="bogus"):
            parse_simulation_request({"dataset": "cora", "bogus": 1})

    def test_alias_duplicate_rejected(self):
        with pytest.raises(ProtocolError, match="duplicate"):
            parse_simulation_request({"num_layers": 2, "layers": 2})

    def test_unsupported_tier_rejected(self):
        with pytest.raises(ProtocolError, match="tier"):
            parse_simulation_request({"dataset": "cora", "tier": "cycle"})

    def test_analytical_tier_accepted(self):
        job = parse_simulation_request({"dataset": "cora", "tier": "analytical"})
        assert job.dataset == "cora"

    def test_range_validation_propagates(self):
        with pytest.raises(ProtocolError):
            parse_simulation_request({"dataset": "cora", "scale": 2.0})

    def test_bad_type_rejected(self):
        with pytest.raises(ProtocolError, match="hidden"):
            parse_simulation_request({"dataset": "cora", "hidden": "many"})

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            parse_simulation_request([1, 2])  # type: ignore[arg-type]


class TestCanonicalization:
    def test_equivalent_spellings_hash_identically(self):
        """JSON ``1`` vs ``1.0`` must land on the same cache entry."""
        a = parse_simulation_request({"dataset": "cora", "scale": 1})
        b = parse_simulation_request({"dataset": "cora", "scale": 1.0})
        assert job_key(a) == job_key(b)

    def test_alias_and_canonical_name_hash_identically(self):
        a = parse_simulation_request({"dataset": "cora", "layers": 3})
        b = parse_simulation_request({"dataset": "cora", "num_layers": 3})
        assert job_key(a) == job_key(b)

    def test_roundtrips_simjob_wire_form(self):
        job = SimJob(dataset="pubmed", scale=0.5, hidden=32)
        assert parse_simulation_request(job.as_dict()) == job


class TestEncode:
    def test_encodes_error_free_outcome_without_result(self):
        job = SimJob(dataset="cora")
        outcome = JobOutcome(job, job_key(job), None, cached=True, seconds=0.5)
        payload = encode_outcome(outcome, joined=True, latency_seconds=0.25)
        assert payload["cached"] is True
        assert payload["joined"] is True
        assert payload["seconds"] == 0.5
        assert payload["latency_seconds"] == 0.25
        assert payload["result"] is None
        assert payload["key"] == job_key(job)
