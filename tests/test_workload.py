"""Unit tests for workload extraction (Algorithm 2 inputs)."""

import pytest

from repro.graphs import from_edge_list
from repro.models import LayerDims, extract_workload, get_model
from repro.models.workload import combination_first_eligible, source_reducible


@pytest.fixture
def square_graph():
    """4 vertices, 6 edges — small enough to hand-count."""
    return from_edge_list(
        4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 0)], num_features=8
    )


class TestLayerDims:
    def test_validation(self):
        with pytest.raises(ValueError):
            LayerDims(0, 4)
        with pytest.raises(ValueError):
            LayerDims(4, 4, hidden=0)

    def test_hidden_default(self):
        assert LayerDims(8, 4).hidden_width == 4
        assert LayerDims(8, 4, hidden=16).hidden_width == 16


class TestGCNCounts:
    """Hand-computed op counts for GCN on the square graph.

    n=4, m=6, F_in=8, F_out=4.
    Edge update (Scalar×V per edge): 6·8 = 48 ops.
    Aggregation (ΣV per edge): 6·8 = 48 ops.
    Vertex update (M×V per vertex): 4·(2·8·4) = 256 ops; ReLU 4·4=16 PPU.
    """

    def test_counts(self, square_graph):
        wl = extract_workload(get_model("gcn"), square_graph, LayerDims(8, 4))
        assert wl.O_ue == 48
        assert wl.O_a == 48
        assert wl.O_uv == 256
        assert wl.vertex_update.ppu_ops == 16

    def test_aliases(self, square_graph):
        wl = extract_workload(get_model("gcn"), square_graph, LayerDims(8, 4))
        assert wl.total_mac_ops == 48 + 48 + 256
        assert wl.total_ops == wl.total_mac_ops + 16

    def test_no_edge_embeddings(self, square_graph):
        wl = extract_workload(get_model("gcn"), square_graph, LayerDims(8, 4))
        assert wl.E_f == 0


class TestOtherModels:
    def test_gin_null_edge(self, square_graph):
        wl = extract_workload(get_model("gin"), square_graph, LayerDims(8, 4))
        assert wl.O_ue == 0
        # 2-layer MLP: 2·8·4 + 2·4·4 per vertex = 96 → 384 total.
        assert wl.O_uv == 4 * (2 * 8 * 4 + 2 * 4 * 4)

    def test_edgeconv_no_vertex_update(self, square_graph):
        wl = extract_workload(get_model("edgeconv-1"), square_graph, LayerDims(8, 4))
        assert wl.O_uv == 0
        # M×V per edge: 6·(2·8·4) = 384.
        assert wl.O_ue == 384

    def test_attention_dot_products(self, square_graph):
        wl = extract_workload(
            get_model("vanilla-attention"), square_graph, LayerDims(8, 4)
        )
        # Dot per edge 2·8 + Scalar×V per edge 8 → 6·24 = 144.
        assert wl.O_ue == 144
        assert wl.E_f == 8  # edge embeddings carry F_in

    def test_ggcn_edge_transforms(self, square_graph):
        wl = extract_workload(get_model("ggcn"), square_graph, LayerDims(8, 4))
        # repeat=2 M×V chain per edge: 2·8·4 + 2·4·4 = 96, ⊙ adds 8.
        assert wl.O_ue == 6 * (96 + 8)

    def test_sage_pool_concat_ppu(self, square_graph):
        wl = extract_workload(
            get_model("graphsage-pool"), square_graph, LayerDims(8, 4)
        )
        # Concat per vertex costs F_in+F_out = 12 PPU ops + ReLU 4.
        assert wl.vertex_update.ppu_ops == 4 * (12 + 4)

    def test_edgeconv5_deeper(self, square_graph):
        e1 = extract_workload(get_model("edgeconv-1"), square_graph, LayerDims(8, 8))
        e5 = extract_workload(get_model("edgeconv-5"), square_graph, LayerDims(8, 8))
        assert e5.O_ue > 3 * e1.O_ue


class TestTrafficCounts:
    def test_messages_per_edge(self, square_graph):
        wl = extract_workload(get_model("gcn"), square_graph, LayerDims(8, 4))
        assert wl.aggregation.messages == 6
        assert wl.aggregation.message_bytes == 6 * 8 * 8

    def test_vertex_update_messages(self, square_graph):
        wl = extract_workload(get_model("gcn"), square_graph, LayerDims(8, 4))
        assert wl.vertex_update.messages == 4
        assert wl.vertex_update.message_bytes == 4 * 4 * 8

    def test_weight_bytes(self, square_graph):
        wl = extract_workload(get_model("gcn"), square_graph, LayerDims(8, 4))
        assert wl.vertex_update.weight_bytes == 8 * 4 * 8
        assert wl.edge_update.weight_bytes == 0

    def test_ggcn_edge_weights(self, square_graph):
        wl = extract_workload(get_model("ggcn"), square_graph, LayerDims(8, 4))
        assert wl.edge_update.weight_bytes > 0

    def test_null_phase_zero(self, square_graph):
        wl = extract_workload(get_model("gin"), square_graph, LayerDims(8, 4))
        assert wl.edge_update.messages == 0
        assert wl.edge_update.message_bytes == 0


class TestPredicates:
    @pytest.mark.parametrize(
        "name,eligible",
        [
            ("gcn", True),
            ("graphsage-mean", True),
            ("commnet", True),
            ("gin", False),  # MLP does not commute with the sum
            ("vanilla-attention", False),
            ("ggcn", False),
            ("graphsage-pool", False),
            ("edgeconv-1", False),
        ],
    )
    def test_combination_first(self, name, eligible):
        assert combination_first_eligible(get_model(name)) is eligible

    @pytest.mark.parametrize(
        "name,reducible",
        [
            ("gcn", True),  # scalar coefficient commutes with the sum
            ("gin", True),
            ("graphsage-mean", True),
            ("vanilla-attention", False),  # per-edge dot products
            ("ggcn", False),  # vector-valued gates
            ("edgeconv-1", False),  # per-edge MLP messages
        ],
    )
    def test_source_reducible(self, name, reducible):
        assert source_reducible(get_model(name)) is reducible
