"""Unit tests for the dataset registry."""

import pytest

from repro.graphs import (
    DATASETS,
    dataset_profile,
    list_datasets,
    load_dataset,
)


class TestRegistry:
    def test_paper_datasets_present(self):
        assert list_datasets() == ["cora", "citeseer", "pubmed", "nell", "reddit"]

    def test_profile_lookup_case_insensitive(self):
        assert dataset_profile("CORA").name == "cora"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            dataset_profile("ogbn-arxiv")

    def test_published_statistics(self):
        cora = dataset_profile("cora")
        assert cora.num_vertices == 2708
        assert cora.num_features == 1433
        assert cora.num_classes == 7
        reddit = dataset_profile("reddit")
        assert reddit.num_vertices == 232965
        assert reddit.feature_density > 0.5  # paper: density > 50%

    def test_mean_degree(self):
        prof = dataset_profile("reddit")
        assert prof.mean_degree == pytest.approx(
            prof.num_edges / prof.num_vertices
        )

    def test_all_profiles_valid(self):
        for prof in DATASETS.values():
            assert prof.num_vertices > 0
            assert prof.num_edges > 0
            assert 0 < prof.feature_density <= 1
            assert prof.degree_exponent > 1
            assert 0 <= prof.locality < 1


class TestLoading:
    def test_full_scale_counts(self):
        g = load_dataset("cora")
        assert g.num_vertices == 2708
        assert g.num_edges == 10556
        assert g.num_features == 1433

    def test_scaled_counts(self):
        g = load_dataset("pubmed", scale=0.1)
        prof = dataset_profile("pubmed")
        assert g.num_vertices == pytest.approx(prof.num_vertices * 0.1, rel=0.05)
        assert g.num_edges == pytest.approx(prof.num_edges * 0.1, rel=0.05)
        assert g.num_features == prof.num_features  # width preserved

    def test_scale_preserves_density(self):
        g = load_dataset("reddit", scale=0.005)
        assert g.feature_density == dataset_profile("reddit").feature_density

    def test_deterministic(self):
        import numpy as np

        a = load_dataset("citeseer", scale=0.2)
        b = load_dataset("citeseer", scale=0.2)
        assert np.array_equal(a.indices, b.indices)

    def test_name_encodes_scale(self):
        assert load_dataset("cora", scale=0.5).name == "cora@0.5"
        assert load_dataset("cora").name == "cora"

    def test_invalid_scale(self):
        with pytest.raises(ValueError, match="scale"):
            load_dataset("cora", scale=0.0)
        with pytest.raises(ValueError, match="scale"):
            load_dataset("cora", scale=1.5)

    def test_minimum_size_floor(self):
        g = load_dataset("cora", scale=0.001)
        assert g.num_vertices >= 16
