"""GCNAX (Li et al., HPCA 2021) baseline model.

GCNAX is a flexible-dataflow GCN accelerator built around loop
optimisation (reordering, fusion, tiling) of the two-matmul GCN kernel.
Published properties this model encodes:

* **Flexible tiled dataflow** — the best DRAM behaviour among the
  baselines: loop fusion and outer-product tiling give high feature reuse
  (``feature_reuse = 0.9``) and low on-chip traffic
  (``traffic_factor = 0.25``).  §VI-D: "GCNAX can reduce DRAM access by
  supporting multiple tiling strategies."
* **Single unified engine, strictly sequential phases** — no inter-phase
  pipeline (``phase_pipelined = False``); that serialisation is the
  headroom Aurora's partition algorithm exploits.
* **Nonzero-streaming execution** is largely insensitive to degree skew
  (``imbalance_sensitivity = 0.1``) but has no hub-ejection mitigation.
* **No edge-update / C-GCN only** (Table I); weights duplicated across
  the PE groups and re-streamed per tile (§VI-B).
* Simple bus/switch interconnect (``comm_ports = 64``, one stage).
"""

from __future__ import annotations

from .base import BaselineAccelerator, BaselineTraits

__all__ = ["GCNAX_TRAITS", "GCNAX"]

GCNAX_TRAITS = BaselineTraits(
    name="gcnax",
    supports_c_gnn=True,
    supports_a_gnn=False,
    supports_mp_gnn=False,
    flexible_pe=False,
    flexible_dataflow=True,
    flexible_noc=False,
    message_passing=False,
    supports_edge_update=False,
    engine_split=None,
    runtime_rebalancing=False,
    redundancy_elimination=0.0,
    phase_pipelined=False,
    imbalance_sensitivity=0.1,
    feature_reuse=0.9,
    weight_reload_per_tile=True,
    interphase_spill=False,
    buffer_traffic_factor=0.35,
    traffic_factor=0.25,
    comm_ports=60,
    comm_hops=1.0,
    hub_relief=0.2,
    comm_service_cycles=3.1,
)


class GCNAX(BaselineAccelerator):
    """GCNAX scaled to Aurora's multiplier/bandwidth/storage budget."""

    def __init__(self, config=None, energy_table=None) -> None:
        super().__init__(GCNAX_TRAITS, config, energy_table)
