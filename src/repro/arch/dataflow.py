"""Weight-stationary ring dataflow for the vertex-update phase.

Sub-accelerator B executes ``x' = Wᵀ · m`` with the weight matrix
partitioned across the PEs of each row ring (paper Fig. 2(d): "multiple
rings could be configured to support weight-stationary dataflow").  The
partition is along the *input* (reduction) dimension: ring PE *i* pins
the ``F_in / W`` input rows of ``W`` it owns, receives the matching slice
of each aggregated vector directly from sub-accelerator A's forwarding,
and the ``F_out``-wide partial accumulator circulates the ring, each PE
adding its contribution as it passes (the feature vectors "accumulated
across multiple PEs" of paper §III-B).

Partitioning along the reduction dimension keeps the circulating payload
``F_out`` wide — narrow — so the ring stays compute-bound for the tall
weights GNN input layers have (F_in ≫ F_out); partitioning the output
dimension instead would circulate the full ``F_in`` vector and leave the
MAC arrays idle behind a link bottleneck.

This module computes the exact systolic schedule — fill, steady-state
initiation interval, drain — rather than the lumped throughput formula
the analytical simulator uses, and the tests check the two agree in
steady state.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import AcceleratorConfig

__all__ = ["RingSchedule", "plan_ring_dataflow"]


@dataclass(frozen=True)
class RingSchedule:
    """Systolic schedule of one weight-stationary ring."""

    ring_width: int  # PEs in the ring (W)
    in_features: int
    out_features: int
    slice_in: int  # input rows of the weight per PE (ceil(F_in / W))
    compute_per_stop: int  # cycles each PE spends per vector
    hop_cycles: int  # circulating the F_out partial to the next PE
    weight_bytes_per_pe: int

    # ------------------------------------------------------------------
    @property
    def stage_interval(self) -> int:
        """Cycles between consecutive vectors completing in steady state:
        the slower of the per-stop compute and the partial-sum hop."""
        return max(self.compute_per_stop, self.hop_cycles)

    @property
    def vertex_latency(self) -> int:
        """Latency of one vector's partial through the whole ring."""
        return self.ring_width * self.compute_per_stop + (
            self.ring_width - 1
        ) * self.hop_cycles

    def total_cycles(self, num_vertices: int) -> int:
        """Makespan for ``num_vertices`` vectors through one ring.

        Classic systolic formula: fill with the first vector, then one
        vector completes every ``stage_interval``.
        """
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        if num_vertices == 0:
            return 0
        return self.vertex_latency + (num_vertices - 1) * self.stage_interval

    def link_byte_hops(self, num_vertices: int, bytes_per_value: int) -> int:
        """Ring traffic: each partial traverses W−1 links at F_out width."""
        return (
            num_vertices
            * (self.ring_width - 1)
            * self.out_features
            * bytes_per_value
        )

    def utilization(self, num_vertices: int) -> float:
        """Fraction of PE-cycles doing useful MACs over the makespan."""
        if num_vertices == 0:
            return 0.0
        useful = num_vertices * self.ring_width * self.compute_per_stop
        total = self.total_cycles(num_vertices) * self.ring_width
        return min(1.0, useful / total)

    @property
    def is_compute_bound(self) -> bool:
        return self.compute_per_stop >= self.hop_cycles


def plan_ring_dataflow(
    config: AcceleratorConfig,
    ring_width: int,
    in_features: int,
    out_features: int,
) -> RingSchedule:
    """Partition a vertex-update weight across a ring and schedule it.

    Each PE owns ``ceil(F_in / W)`` input rows of the weight; the
    per-stop compute is the MACs for that slice at the PE's MAC-chain
    throughput; the hop streams the ``F_out``-wide partial accumulator.
    """
    if ring_width < 1:
        raise ValueError("ring_width must be >= 1")
    if in_features < 1 or out_features < 1:
        raise ValueError("feature dims must be >= 1")
    slice_in = -(-in_features // ring_width)
    macs_per_cycle = 2 * config.macs_per_pe
    compute_per_stop = max(
        1, -(-2 * slice_in * out_features // macs_per_cycle)
    )
    # The hop streams the F_out partial at one flit per cycle.
    hop_cycles = max(
        1, -(-out_features * config.bytes_per_value // config.noc.flit_bytes)
    )
    weight_bytes = slice_in * out_features * config.bytes_per_value
    return RingSchedule(
        ring_width=ring_width,
        in_features=in_features,
        out_features=out_features,
        slice_in=slice_in,
        compute_per_stop=compute_per_stop,
        hop_cycles=hop_cycles,
        weight_bytes_per_pe=weight_bytes,
    )
