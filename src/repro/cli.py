"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the dataset registry with published statistics.
``models``
    Print the model zoo (the paper's Table II).
``simulate``
    Simulate a model × dataset on Aurora (or a named baseline).
``compare``
    Run the accelerator comparison and print one normalized figure.
``sweep``
    The comparison grid through the parallel/cached job runner, with a
    sweep summary (jobs executed, cache hits/misses, wall time).
``experiment``
    Regenerate a registered paper experiment (E1–E12, or ``all``).
``info``
    Show the hardware configuration and derived parameters.
``mutate``
    Generate a degree-preserving edge-mutation batch over a dataset
    snapshot — the ``{base, mutations}`` payload ``/simulate`` accepts
    for incremental re-simulation.
``bench``
    Run the standard layer benchmarks (cold + warm) and write a
    ``BENCH_*.json`` snapshot with per-stage timings and cache counters.
``serve``
    Run the long-lived simulation service (asyncio HTTP, single-flight
    dedup, micro-batching, admission control; drains on SIGTERM).
``cluster``
    Run the sharded fleet: N replica subprocesses behind a
    consistent-hash router with supervision, tiered caching, and
    per-replica drain/restart endpoints.
``request``
    Fire one simulation request at a running service through the
    retrying client (``--trace`` prints the request's span tree).
``trace``
    Export a running server's span buffer as a Chrome ``trace.json``
    (``trace export``) or print a per-stage summary (``trace summary``);
    both also read span JSONL files offline via ``--input``.
``cache``
    Inspect / manage the on-disk result cache (stats, clear, prune).

``compare``/``sweep``/``experiment`` accept ``--jobs N`` (process-pool
fan-out) and ``--cache/--no-cache`` (content-addressed result cache in
``$REPRO_CACHE_DIR`` or ``.repro_cache``); both only change execution,
never results.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .baselines import make_baseline
from .config import default_config
from .core.accelerator import layer_plan
from .core.simulator import AuroraSimulator
from .graphs.datasets import (
    ADVERSARIAL_DATASETS,
    DATASETS,
    dataset_profile,
    load_dataset,
)
from .models.zoo import get_model, list_models

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Aurora GNN accelerator — simulator and paper reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the dataset registry")
    sub.add_parser("models", help="print the model zoo (Table II)")
    sub.add_parser("info", help="show the hardware configuration")

    p_sim = sub.add_parser("simulate", help="simulate one model x dataset")
    p_sim.add_argument("--model", default="gcn", choices=list_models())
    p_sim.add_argument("--dataset", default="cora", choices=list(DATASETS))
    p_sim.add_argument("--scale", type=float, default=1.0)
    p_sim.add_argument("--hidden", type=int, default=64)
    p_sim.add_argument("--layers", type=int, default=2)
    p_sim.add_argument(
        "--device",
        default="aurora",
        choices=("aurora", "hygcn", "awb-gcn", "gcnax", "regnn", "flowgnn"),
    )
    p_sim.add_argument(
        "--mapping", default="degree-aware", choices=("degree-aware", "hashing")
    )
    p_sim.add_argument(
        "--tile-workers",
        type=int,
        default=1,
        metavar="N",
        help="fan a layer's independent tiles out over N worker "
        "processes (1 = serial; aurora device only)",
    )

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
        return value

    def add_runtime_flags(p: argparse.ArgumentParser, *, cache_default: bool) -> None:
        p.add_argument(
            "--jobs",
            type=positive_int,
            default=1,
            metavar="N",
            help="parallel worker processes (1 = serial)",
        )
        p.add_argument(
            "--cache",
            action=argparse.BooleanOptionalAction,
            default=cache_default,
            help="reuse simulation results from the on-disk cache",
        )

    def add_observe_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--observe",
            action="store_true",
            help="stream live telemetry events over ws://HOST:PORT/observe "
            "and serve the browser dashboard at GET /observer",
        )
        p.add_argument(
            "--observe-record",
            default=None,
            metavar="PATH",
            help="also record the event stream as schema-versioned JSONL "
            "(rotated; replay with `repro observe replay`)",
        )
        p.add_argument(
            "--observe-queue",
            type=positive_int,
            default=512,
            metavar="N",
            help="per-client outbound event queue depth (default: 512)",
        )
        p.add_argument(
            "--observe-max-drops",
            type=positive_int,
            default=64,
            metavar="N",
            help="dropped events before a slow client is evicted "
            "with close code 1013 (default: 64)",
        )

    p_cmp = sub.add_parser("compare", help="accelerator comparison figure")
    p_cmp.add_argument("--model", default="gcn", choices=list_models())
    p_cmp.add_argument(
        "--metric",
        default="execution_time",
        choices=("execution_time", "dram_accesses", "onchip_latency", "energy"),
    )
    p_cmp.add_argument(
        "--datasets", nargs="+", default=None, choices=list(DATASETS)
    )
    add_runtime_flags(p_cmp, cache_default=False)

    p_swp = sub.add_parser(
        "sweep", help="comparison grid via the parallel/cached job runner"
    )
    p_swp.add_argument("--model", default="gcn", choices=list_models())
    p_swp.add_argument(
        "--metric",
        default="execution_time",
        choices=("execution_time", "dram_accesses", "onchip_latency", "energy"),
    )
    p_swp.add_argument(
        "--datasets", nargs="+", default=None, choices=list(DATASETS)
    )
    add_runtime_flags(p_swp, cache_default=True)

    p_exp = sub.add_parser("experiment", help="regenerate a paper experiment")
    p_exp.add_argument("experiment_id", help="E1..E12, or 'all'")
    add_runtime_flags(p_exp, cache_default=False)

    p_mut = sub.add_parser(
        "mutate",
        help="generate an edge-mutation batch for incremental re-simulation",
    )
    p_mut.add_argument("--dataset", default="cora", choices=list(DATASETS))
    p_mut.add_argument("--scale", type=float, default=1.0)
    p_mut.add_argument(
        "--seed", type=int, default=7, help="dataset synthesis seed"
    )
    p_mut.add_argument(
        "--rewire-seed",
        type=int,
        default=0,
        metavar="S",
        help="RNG seed for the degree-preserving rewire",
    )
    p_mut.add_argument(
        "--dirty-fraction",
        type=float,
        default=0.1,
        metavar="F",
        help="fraction of tiles to dirty (0..1, default 0.1)",
    )
    p_mut.add_argument(
        "--rows-per-tile",
        type=int,
        default=8,
        metavar="N",
        help="rows to rewire inside each dirty tile (default 8)",
    )
    p_mut.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the {base, mutations} request payload to PATH",
    )
    p_mut.add_argument(
        "--json",
        action="store_true",
        help="print the request payload as JSON instead of a summary",
    )

    p_dse = sub.add_parser(
        "dse",
        help="design-space exploration over the content-addressed job cache",
    )
    p_dse.add_argument(
        "--space",
        default="aurora-core",
        choices=("aurora-core", "aurora-noc", "aurora-mini"),
        help="named design space to search",
    )
    p_dse.add_argument(
        "--optimizer",
        default="random",
        choices=("random", "hillclimb", "genetic", "sha"),
        help="search strategy (sha = successive halving over fidelity rungs)",
    )
    p_dse.add_argument(
        "--objective",
        default="latency",
        choices=("latency", "energy", "edp", "dram", "comm"),
        help="fitness objective (minimised)",
    )
    p_dse.add_argument(
        "--grid",
        default=None,
        choices=("paper-sweep", "adversarial"),
        help="evaluate a named fixed grid through the DSE path instead "
        "of searching (paper-sweep = the E1-E12 comparison grid)",
    )
    p_dse.add_argument(
        "--budget",
        type=positive_int,
        default=200,
        metavar="N",
        help="evaluation budget (default 200)",
    )
    p_dse.add_argument(
        "--batch", type=positive_int, default=8, metavar="N",
        help="candidates per optimizer ask/tell round (default 8)",
    )
    p_dse.add_argument(
        "--seed", type=int, default=0, help="search seed (optimizer RNG)"
    )
    p_dse.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget; in-flight batches are cancelled at expiry",
    )
    p_dse.add_argument(
        "--dataset",
        default="cora",
        choices=(*DATASETS, *ADVERSARIAL_DATASETS),
        help="base workload dataset (adv-* = adversarial synthetic)",
    )
    p_dse.add_argument(
        "--datasets",
        nargs="+",
        default=None,
        choices=(*DATASETS, *ADVERSARIAL_DATASETS),
        help="grid mode: restrict the named grid to these datasets",
    )
    p_dse.add_argument("--model", default="gcn", choices=list_models())
    p_dse.add_argument(
        "--scale", type=float, default=None,
        help="base workload dataset scale (default 1.0)",
    )
    p_dse.add_argument("--hidden", type=positive_int, default=64)
    p_dse.add_argument("--layers", type=positive_int, default=2)
    p_dse.add_argument(
        "--workload-seed", type=int, default=7,
        help="dataset synthesis seed of the base workload",
    )
    p_dse.add_argument(
        "--option",
        action="append",
        default=[],
        metavar="K=V",
        help="optimizer option (repeatable), e.g. cohort=27 eta=3",
    )
    p_dse.add_argument(
        "--trajectory",
        default="dse_trajectory.jsonl",
        metavar="PATH",
        help="fitness-trajectory JSONL destination",
    )
    p_dse.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="search-state checkpoint (enables --resume)",
    )
    p_dse.add_argument(
        "--resume",
        action="store_true",
        help="replay the checkpoint and continue the same trajectory",
    )
    p_dse.add_argument(
        "--show-trajectory",
        action="store_true",
        help="print the running-best trajectory table",
    )
    p_dse.add_argument(
        "--json",
        action="store_true",
        help="print the result summary as JSON",
    )
    add_runtime_flags(p_dse, cache_default=True)

    p_bench = sub.add_parser(
        "bench", help="run the standard layer benches; write a BENCH json"
    )
    p_bench.add_argument(
        "--tier",
        choices=(
            "analytical", "cycle", "serve", "cluster", "fanout", "delta",
            "dse", "observe",
        ),
        default="analytical",
        help="which tier to bench: analytical layer sweep (BENCH_2), "
        "flit-level cycle tile (BENCH_3), the end-to-end simulation "
        "service (BENCH_4), the sharded cluster at 1/2/4 replicas "
        "(BENCH_6), intra-job tile fan-out on a multi-tile job "
        "(BENCH_7), incremental re-simulation under mutation "
        "streams at 1/10/50% dirty tiles (BENCH_8), cache-amplified "
        "design-space search throughput (BENCH_9), or the serve path "
        "with the live observer on vs off (BENCH_10)",
    )
    p_bench.add_argument(
        "--tile-workers",
        type=positive_int,
        default=None,
        metavar="N",
        help="fan-out tier: worker processes for tile sharding "
        "(default: the case's setting, bounded by the shared budget)",
    )
    p_bench.add_argument(
        "--noc-engine",
        choices=("auto", "event", "fused", "numba", "reference"),
        default=None,
        help="fan-out tier: flit engine for the measured path "
        "(default auto = numba kernel with interpreted fallback)",
    )
    p_bench.add_argument(
        "--repeat",
        type=positive_int,
        default=None,
        metavar="N",
        help="warm repetitions per bench after one cold call "
        "(default: 5 analytical, 3 cycle)",
    )
    p_bench.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="snapshot destination (default: BENCH_2.json analytical, "
        "BENCH_3.json cycle, BENCH_4.json serve)",
    )
    p_bench.add_argument(
        "--telemetry",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run traced and embed span counts + top stages in the snapshot",
    )

    p_srv = sub.add_parser(
        "serve", help="run the long-lived simulation service"
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument(
        "--port", type=int, default=8765, help="0 picks an ephemeral port"
    )
    p_srv.add_argument(
        "--queue-depth",
        type=positive_int,
        default=64,
        metavar="N",
        help="max in-flight requests before shedding with 429",
    )
    p_srv.add_argument(
        "--batch-window",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help="micro-batch accumulation window",
    )
    p_srv.add_argument(
        "--max-batch",
        type=positive_int,
        default=16,
        metavar="N",
        help="flush a batch early once it holds N unique jobs",
    )
    p_srv.add_argument(
        "--jobs",
        type=positive_int,
        default=1,
        metavar="N",
        help="worker processes per batch (1 = serial, in-thread)",
    )
    p_srv.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request budget (default: none)",
    )
    p_srv.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="SIGTERM grace period for in-flight work",
    )
    p_srv.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve repeated jobs from the on-disk result cache",
    )
    p_srv.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="cache root (default: $REPRO_CACHE_DIR or .repro_cache)",
    )
    p_srv.add_argument(
        "--trace",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="record request traces (GET /trace, X-Repro-Trace-Id)",
    )
    p_srv.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="fraction of traces to record, 0..1 (default: 1.0)",
    )
    p_srv.add_argument(
        "--trace-buffer",
        type=positive_int,
        default=4096,
        metavar="N",
        help="span ring-buffer capacity (default: 4096)",
    )
    p_srv.add_argument(
        "--replica-id",
        default=None,
        metavar="ID",
        help="identify this process as a cluster replica (adds the id "
        "to /healthz, /stats, and a repro_replica_info metric)",
    )
    add_observe_flags(p_srv)

    p_cluster = sub.add_parser(
        "cluster", help="run the sharded replica fleet behind the router"
    )
    p_cluster.add_argument("--host", default="127.0.0.1")
    p_cluster.add_argument(
        "--port", type=int, default=8765, help="0 picks an ephemeral port"
    )
    p_cluster.add_argument(
        "--replicas",
        type=positive_int,
        default=2,
        metavar="N",
        help="replica subprocesses to spawn and supervise",
    )
    p_cluster.add_argument(
        "--vnodes",
        type=positive_int,
        default=64,
        metavar="N",
        help="virtual nodes per replica on the hash ring",
    )
    p_cluster.add_argument(
        "--max-inflight",
        type=positive_int,
        default=16,
        metavar="N",
        help="per-replica proxied requests in flight before shedding 429",
    )
    p_cluster.add_argument(
        "--lru-capacity",
        type=int,
        default=1024,
        metavar="N",
        help="router in-process result LRU entries (0 disables the tier)",
    )
    p_cluster.add_argument(
        "--queue-depth",
        type=positive_int,
        default=64,
        metavar="N",
        help="per-replica admission queue depth",
    )
    p_cluster.add_argument(
        "--jobs",
        type=positive_int,
        default=1,
        metavar="N",
        help="worker processes per replica batch (1 = serial, in-thread)",
    )
    p_cluster.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="base directory for per-replica cache shards "
        "(default: $REPRO_CACHE_DIR or .repro_cache, shard-<i> inside)",
    )
    p_cluster.add_argument(
        "--probe-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="health-probe period per replica",
    )
    p_cluster.add_argument(
        "--fail-threshold",
        type=positive_int,
        default=3,
        metavar="N",
        help="consecutive silent probes before a replica is restarted",
    )
    p_cluster.add_argument(
        "--proxy-timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="per-proxy budget for one replica to answer /simulate",
    )
    p_cluster.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="SIGTERM grace period for in-flight work, router and replicas",
    )
    add_observe_flags(p_cluster)

    p_req = sub.add_parser(
        "request", help="fire one request at a running service"
    )
    p_req.add_argument("--host", default="127.0.0.1")
    p_req.add_argument("--port", type=int, default=8765)
    p_req.add_argument("--model", default="gcn", choices=list_models())
    p_req.add_argument("--dataset", default="cora", choices=list(DATASETS))
    p_req.add_argument("--scale", type=float, default=1.0)
    p_req.add_argument("--hidden", type=int, default=64)
    p_req.add_argument("--layers", type=int, default=2)
    p_req.add_argument("--seed", type=int, default=7)
    p_req.add_argument(
        "--device",
        default="aurora",
        choices=("aurora", "hygcn", "awb-gcn", "gcnax", "regnn", "flowgnn"),
    )
    p_req.add_argument(
        "--mapping", default="degree-aware", choices=("degree-aware", "hashing")
    )
    p_req.add_argument(
        "--retries", type=int, default=4, help="retry budget for 429/503"
    )
    p_req.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="total budget across retries, propagated to the server",
    )
    p_req.add_argument(
        "--json", action="store_true", help="print the raw response payload"
    )
    p_req.add_argument(
        "--trace",
        action="store_true",
        help="print the server-side trace id and per-stage timing summary",
    )

    p_trace = sub.add_parser(
        "trace", help="export or summarize recorded spans"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    def add_trace_source(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=8765)
        p.add_argument(
            "--input",
            default=None,
            metavar="PATH",
            help="read spans from a JSONL file instead of a server",
        )
        p.add_argument(
            "--trace-id",
            default=None,
            metavar="ID",
            help="restrict to one trace",
        )

    t_exp = trace_sub.add_parser(
        "export", help="write spans as Chrome/Perfetto trace.json"
    )
    add_trace_source(t_exp)
    t_exp.add_argument(
        "--output",
        default="trace.json",
        metavar="PATH",
        help="destination (default: trace.json)",
    )
    t_exp.add_argument(
        "--jsonl",
        default=None,
        metavar="PATH",
        help="also write the raw spans as JSONL",
    )
    t_sum = trace_sub.add_parser(
        "summary", help="print a per-stage timing summary"
    )
    add_trace_source(t_sum)

    p_cache = sub.add_parser(
        "cache", help="inspect / manage the on-disk result cache"
    )
    p_cache.add_argument(
        "--dir",
        default=None,
        metavar="PATH",
        help="cache root (default: $REPRO_CACHE_DIR or .repro_cache)",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser(
        "stats",
        help="entry count, bytes, fingerprint (plus the per-tile "
        "sub-cache under <root>/tiles when present)",
    )
    cache_sub.add_parser("clear", help="delete every cached result")
    c_prune = cache_sub.add_parser(
        "prune", help="delete results by age and/or total size"
    )
    c_prune.add_argument(
        "--max-age",
        default=None,
        metavar="AGE",
        help="age limit, e.g. 900 (seconds), 30m, 36h, 7d",
    )
    c_prune.add_argument(
        "--max-bytes",
        default=None,
        metavar="SIZE",
        help="on-disk budget, e.g. 50000000, 64k, 100m, 2g; oldest "
        "results are evicted first until the cache fits",
    )

    p_obs = sub.add_parser(
        "observe", help="record, tail, or replay the live event stream"
    )
    obs_sub = p_obs.add_subparsers(dest="observe_command", required=True)

    def add_observe_source(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument(
            "--port",
            type=int,
            default=8765,
            help="server started with --observe",
        )

    o_rec = obs_sub.add_parser(
        "record", help="attach to ws://HOST:PORT/observe and write JSONL"
    )
    add_observe_source(o_rec)
    o_rec.add_argument(
        "--output",
        default="observe.jsonl",
        metavar="PATH",
        help="recording destination (default: observe.jsonl)",
    )
    o_rec.add_argument(
        "--max-events",
        type=positive_int,
        default=None,
        metavar="N",
        help="stop after N events (default: until the stream closes)",
    )
    o_rec.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop after this long (default: until the stream closes)",
    )

    o_tail = obs_sub.add_parser(
        "tail", help="attach to ws://HOST:PORT/observe and print JSONL"
    )
    add_observe_source(o_tail)
    o_tail.add_argument(
        "--max-events",
        type=positive_int,
        default=None,
        metavar="N",
        help="stop after N events (default: until the stream closes)",
    )
    o_tail.add_argument(
        "--types",
        nargs="+",
        default=None,
        metavar="TYPE",
        help="only print these event types (e.g. request.completed span)",
    )

    o_rep = obs_sub.add_parser(
        "replay", help="re-drive a recorded session at recorded speed"
    )
    o_rep.add_argument("input", metavar="PATH", help="JSONL recording")
    o_rep.add_argument(
        "--speed",
        type=float,
        default=1.0,
        metavar="X",
        help="time acceleration; 0 replays flat-out (default: 1.0)",
    )
    o_rep.add_argument(
        "--port",
        type=int,
        default=None,
        help="serve the replay over ws://127.0.0.1:PORT/observe with the "
        "dashboard at /observer instead of printing to stdout",
    )
    o_rep.add_argument("--host", default="127.0.0.1")
    o_rep.add_argument(
        "--loop",
        action="store_true",
        help="with --port: restart the session when it ends",
    )

    return parser


def parse_age(text: str) -> float:
    """``900`` / ``30m`` / ``36h`` / ``7d`` → seconds."""
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    scale = 1.0
    if text and text[-1].lower() in units:
        scale = units[text[-1].lower()]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ValueError(
            f"invalid age {text!r} (expected e.g. 900, 30m, 36h, 7d)"
        ) from None
    if value < 0:
        raise ValueError("age must be >= 0")
    return value * scale


def parse_size(text: str) -> int:
    """``50000000`` / ``64k`` / ``100m`` / ``2g`` → bytes."""
    units = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}
    scale = 1
    if text and text[-1].lower() in units:
        scale = units[text[-1].lower()]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ValueError(
            f"invalid size {text!r} (expected e.g. 50000000, 64k, 100m, 2g)"
        ) from None
    if value < 0:
        raise ValueError("size must be >= 0")
    return int(value * scale)


def _cmd_datasets() -> int:
    from .eval.report import format_table

    rows = []
    for name in DATASETS:
        p = dataset_profile(name)
        rows.append(
            [
                p.name,
                f"{p.num_vertices:,}",
                f"{p.num_edges:,}",
                str(p.num_features),
                str(p.num_classes),
                f"{p.feature_density:.4f}",
            ]
        )
    print(
        format_table(
            ["dataset", "|V|", "|E|", "features", "classes", "density"],
            rows,
            title="Dataset registry (published statistics)",
        )
    )
    return 0


def _cmd_models() -> int:
    from .eval.report import render_table2_operations

    print(render_table2_operations())
    return 0


def _cmd_info() -> int:
    cfg = default_config()
    print("Aurora hardware configuration (paper §VI-A)")
    print(f"  PE array           : {cfg.array_k}x{cfg.array_k} ({cfg.num_pes} PEs)")
    print(f"  frequency          : {cfg.frequency_hz / 1e6:.0f} MHz")
    print(f"  MACs per PE        : {cfg.macs_per_pe}")
    print(f"  PE buffer          : {cfg.pe_buffer_bytes // 1024} KiB "
          f"(total {cfg.onchip_bytes / (1 << 20):.0f} MiB)")
    print(f"  peak throughput    : {cfg.peak_flops / 1e12:.1f} Tops/s")
    print(f"  DRAM bandwidth     : "
          f"{cfg.dram.bandwidth_bytes_per_sec / 1e9:.0f} GB/s")
    print(f"  reconfiguration    : {cfg.reconfiguration_cycles} cycles (2K-1)")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    model = get_model(args.model)
    profile = dataset_profile(args.dataset)
    dims = layer_plan(graph, args.hidden, args.layers, profile.num_classes)
    if args.device == "aurora":
        sim = AuroraSimulator(
            mapping_policy=args.mapping, tile_workers=args.tile_workers
        )
        result = sim.simulate(model, graph, dims)
    else:
        device = make_baseline(args.device)
        if not device.supports(model):
            print(
                f"warning: {args.device} does not support "
                f"{model.category.value} models; running with the "
                "scalarisation fallback penalty",
                file=sys.stderr,
            )
        result = device.simulate(model, graph, dims, strict=False)
    print(f"device          : {result.accelerator}")
    print(f"model / dataset : {args.model} / {graph.name}")
    print(f"execution time  : {result.total_seconds * 1e6:,.1f} us "
          f"({result.total_cycles:,.0f} cycles)")
    print(f"DRAM traffic    : {result.dram_bytes / 1e6:,.2f} MB")
    print(f"on-chip comm    : {result.onchip_comm_cycles:,} cycles")
    print(f"energy          : {result.energy.total * 1e3:,.3f} mJ")
    for key, value in sorted(result.energy.as_dict().items()):
        if key != "total":
            print(f"  - {key:<16}: {value * 1e3:,.3f} mJ")
    return 0


def _cmd_compare(args: argparse.Namespace, *, show_summary: bool = False) -> int:
    from .eval.harness import run_comparison
    from .eval.report import render_normalized_figure

    comp = run_comparison(
        model=args.model,
        datasets=tuple(args.datasets) if args.datasets else None,
        jobs=args.jobs,
        cache=args.cache or None,
    )
    print(
        render_normalized_figure(
            comp,
            args.metric,
            title=f"{args.metric} normalized to Aurora ({args.model})",
        )
    )
    if show_summary and comp.metrics is not None:
        print(comp.metrics.summary())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .eval.experiments import EXPERIMENTS, run_experiment, set_sweep_options

    set_sweep_options(jobs=args.jobs, cache=args.cache or None)

    ids = list(EXPERIMENTS) if args.experiment_id.lower() == "all" else [
        args.experiment_id
    ]
    for eid in ids:
        try:
            result = run_experiment(eid)
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"\n{result.experiment_id} — {result.title}")
        print(result.text)
    return 0


def _cmd_mutate(args: argparse.Namespace) -> int:
    import json as json_mod

    from .core.simulator import _BUFFER_UTIL
    from .graphs.delta import dirty_tiles, rewire_delta, tile_boundaries
    from .graphs.tiling import tile_graph

    if not 0.0 < args.dirty_fraction <= 1.0:
        print("error: --dirty-fraction must be in (0, 1]", file=sys.stderr)
        return 2
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    cfg = default_config()
    plan = tile_graph(
        graph,
        int(cfg.onchip_bytes * _BUFFER_UTIL),
        bytes_per_value=cfg.bytes_per_value,
    )
    boundaries = tile_boundaries(plan)
    num_tiles = len(plan.tiles)
    target = max(1, round(args.dirty_fraction * num_tiles))
    import numpy as np

    rng = np.random.default_rng(args.rewire_seed)
    chosen = sorted(
        rng.choice(num_tiles, size=min(target, num_tiles), replace=False).tolist()
    )
    rows: list[int] = []
    for t in chosen:
        start, end = int(boundaries[t]), int(boundaries[t + 1])
        span = np.arange(start, end)
        take = min(args.rows_per_tile, span.size)
        rows.extend(rng.choice(span, size=take, replace=False).tolist())
    delta = rewire_delta(graph, rows, seed=args.rewire_seed)
    payload = {
        "base": {
            "dataset": args.dataset,
            "scale": args.scale,
            "seed": args.seed,
        },
        "mutations": [delta.as_dict()],
    }
    if args.output:
        with open(args.output, "w") as handle:
            json_mod.dump(payload, handle, indent=2, sort_keys=True)
    if args.json:
        print(json_mod.dumps(payload, indent=2, sort_keys=True))
        return 0
    dirty = dirty_tiles(boundaries, delta)
    print(f"dataset       : {graph.name} ({graph.num_vertices:,} vertices)")
    print(f"tiles         : {num_tiles} ({len(dirty)} dirty, "
          f"{len(dirty) / num_tiles:.0%})")
    print(f"edits         : {delta.num_edits} "
          f"({len(delta.inserts)} insert / {len(delta.deletes)} delete)")
    print(f"delta key     : {delta.delta_key}")
    if args.output:
        print(f"wrote         : {args.output} (POST it to /simulate)")
    return 0


def _parse_dse_option(item: str) -> tuple[str, object]:
    """``k=v`` optimizer option with numeric/bool coercion."""
    key, sep, raw = item.partition("=")
    if not sep or not key:
        raise SystemExit(f"repro dse: malformed --option {item!r} (want K=V)")
    for convert in (int, float):
        try:
            return key, convert(raw)
        except ValueError:
            pass
    if raw in ("true", "false"):
        return key, raw == "true"
    return key, raw


def _cmd_dse(args: argparse.Namespace) -> int:
    import json as _json

    from .dse import (
        DSERunner,
        SearchSpec,
        build_grid,
        evaluate_grid,
        read_trajectory,
        render_best,
        render_trajectory,
        summarize_trajectory,
    )
    from .runtime.executor import get_executor

    executor = get_executor(args.jobs) if args.jobs > 1 else None
    cache = True if args.cache else None

    if args.grid is not None:
        grid_options: dict = {
            "model": args.model,
            "hidden": args.hidden,
            "num_layers": args.layers,
            "seed": args.workload_seed,
        }
        if args.datasets:
            grid_options["datasets"] = args.datasets
        if args.scale is not None:
            grid_options["scale"] = args.scale
        jobs, labels = build_grid(args.grid, **grid_options)
        result = evaluate_grid(
            jobs,
            objective=args.objective,
            cache=cache,
            executor=executor,
            batch=args.batch,
            trajectory_path=args.trajectory,
            labels=labels,
        )
    else:
        spec = SearchSpec(
            space=args.space,
            optimizer=args.optimizer,
            objective=args.objective,
            seed=args.seed,
            max_evaluations=args.budget,
            max_seconds=args.max_seconds,
            batch=args.batch,
            options=dict(_parse_dse_option(item) for item in args.option),
            workload={
                "dataset": args.dataset,
                "model": args.model,
                "scale": args.scale if args.scale is not None else 1.0,
                "hidden": args.hidden,
                "num_layers": args.layers,
                "seed": args.workload_seed,
            },
        )
        runner = DSERunner(
            spec,
            cache=cache,
            executor=executor,
            trajectory_path=args.trajectory,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
        )
        result = runner.run()

    if args.json:
        print(_json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"dse: {result.evaluations} evaluations "
            f"({result.executed} executed, {result.served} cache/dedup-served, "
            f"{result.served_fraction:.0%}) | stopped: {result.stopped} | "
            f"wall {result.wall_seconds:.2f}s"
        )
        _, records = read_trajectory(args.trajectory)
        summary = summarize_trajectory(records)
        print(render_best(summary, objective=args.objective))
        if args.show_trajectory:
            print(render_trajectory(records))
    if result.evaluations and result.errors == result.evaluations:
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf.bench import write_bench_json

    defaults = {
        "analytical": "BENCH_2.json",
        "cycle": "BENCH_3.json",
        "serve": "BENCH_4.json",
        "cluster": "BENCH_6.json",
        "fanout": "BENCH_7.json",
        "delta": "BENCH_8.json",
        "dse": "BENCH_9.json",
        "observe": "BENCH_10.json",
    }
    output = args.output or defaults[args.tier]
    snapshot = write_bench_json(
        output,
        repeat=args.repeat,
        tier=args.tier,
        telemetry=args.telemetry,
        tile_workers=getattr(args, "tile_workers", None),
        noc_engine=getattr(args, "noc_engine", None),
    )
    print(f"bench: wrote {output} ({snapshot['wall_seconds']:.2f}s wall)")
    for name, bench in snapshot["benches"].items():
        if "warm_mean_seconds" in bench:
            print(
                f"  {name:<12} cold {bench['cold_seconds'] * 1e3:7.1f} ms | "
                f"warm mean {bench['warm_mean_seconds'] * 1e3:7.1f} ms "
                f"(min {bench['warm_min_seconds'] * 1e3:.1f} ms, "
                f"x{snapshot['repeat']})"
            )
        if "speedup_vs_reference" in bench:
            print(
                f"  {'':<12} reference {bench['reference_seconds']:.2f} s → "
                f"{bench['speedup_vs_reference']:.2f}x | "
                f"{bench['packets_per_second']:,.0f} packets/s | "
                f"{bench['cycles_per_second']:,.0f} cycles/s"
            )
        if "shards" in bench:
            print(
                f"  {'':<12} {bench['num_tiles']} tiles in "
                f"{bench['shards']} shard(s) on "
                f"{bench['effective_workers']} worker(s), "
                f"engine {bench['noc_engine']}"
            )
        if "requests_per_second" in bench:
            print(
                f"  {name:<12} {bench['requests']} requests @ "
                f"{bench['concurrency']} concurrent → "
                f"{bench['requests_per_second']:,.0f} req/s"
            )
        if "shed_rate" in bench:
            print(
                f"  {name:<12} {bench['served']} served / "
                f"{bench['shed']} shed of {bench['requests']} "
                f"(shed rate {bench['shed_rate']:.0%}, "
                f"queue depth {bench['queue_depth']})"
            )
        if "failed" in bench:
            print(
                f"  {name:<12} {bench['requests']} requests, replica killed "
                f"mid-load → {bench['failed']} failed, "
                f"{bench['proxy_failovers']} failover(s), "
                f"recovered={bench['recovered']}"
            )
        if "overhead_fraction" in bench:
            print(
                f"  {name:<12} observer off {bench['off_mean_seconds'] * 1e3:6.1f} ms "
                f"| on {bench['on_mean_seconds'] * 1e3:6.1f} ms → "
                f"{bench['overhead_fraction']:+.1%} overhead "
                f"(budget {bench['overhead_budget']:.0%}, "
                f"within={bench['within_budget']}, "
                f"{bench['events_received']} events)"
            )
        if "dirty_fraction" in bench:
            print(
                f"  {name:<12} {bench['dirty_fraction']:.0%} dirty "
                f"({bench['dirty_tiles']}/{bench['num_tiles']} tiles) → "
                f"cold {bench['cold_seconds'] * 1e3:7.1f} ms | "
                f"warm {bench['warm_seconds'] * 1e3:7.1f} ms | "
                f"{bench['speedup_vs_cold']:.1f}x "
                f"(reused {bench['tiles_reused']}, "
                f"recomputed {bench['tiles_recomputed']}, "
                f"identical={bench['bit_identical']})"
            )
    scaling = snapshot.get("scaling_vs_1_replica")
    if scaling:
        print(
            "  scaling vs 1 replica: "
            + ", ".join(f"{k}x fleet = {v:.2f}x" for k, v in sorted(scaling.items()))
            + f" (cpu_count={snapshot['environment'].get('cpu_count')})"
        )
    hits = {
        k: v for k, v in snapshot["counters"].items() if k.endswith("cache_hit")
    }
    if hits:
        print("  cache hits: " + ", ".join(f"{k}={v}" for k, v in sorted(hits.items())))
    telemetry = snapshot.get("telemetry")
    if telemetry and telemetry.get("span_count"):
        top = ", ".join(
            f"{s['name']} {s['total_seconds'] * 1e3:.1f}ms"
            for s in telemetry["top_stages"]
        )
        print(
            f"  telemetry: {telemetry['span_count']} spans"
            + (f" | top stages: {top}" if top else "")
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .runtime.cache import ResultCache
    from .runtime.executor import get_executor
    from .serve.server import SimulationService, serve_forever
    from .telemetry import TRACER

    TRACER.configure(
        enabled=args.trace,
        sample_rate=args.trace_sample,
        buffer_size=args.trace_buffer,
    )
    cache = None
    tile_cache = None
    if args.cache:
        cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
        # Per-tile sub-cache lives beside the job cache; the env var is
        # how the job runner (and any pool workers it forks) find it.
        import os
        from pathlib import Path

        from .runtime.jobs import ENV_TILE_CACHE_DIR

        tiles_root = Path(cache.root) / "tiles"
        os.environ[ENV_TILE_CACHE_DIR] = str(tiles_root)
        tile_cache = ResultCache(root=tiles_root)
    executor = get_executor(args.jobs, timeout=args.timeout)
    observe = None
    if args.observe or args.observe_record:
        from .observe import ObserveState

        observe = ObserveState(
            record_path=args.observe_record,
            queue_size=args.observe_queue,
            max_drops=args.observe_max_drops,
            source="serve",
        )
    service = SimulationService(
        cache=cache,
        executor=executor,
        queue_depth=args.queue_depth,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        request_timeout=args.timeout,
        replica_id=args.replica_id,
        tile_cache=tile_cache,
        observe=observe,
    )
    return asyncio.run(
        serve_forever(
            service, args.host, args.port, drain_timeout=args.drain_timeout
        )
    )


def _cmd_cluster(args: argparse.Namespace) -> int:
    import asyncio
    import os
    from pathlib import Path

    from .cluster import (
        ClusterRouter,
        ReplicaConfig,
        ReplicaSupervisor,
        cluster_forever,
    )
    from .runtime.cache import DEFAULT_CACHE_DIR, ENV_CACHE_DIR, ResultCache

    base = Path(
        args.cache_dir
        or os.environ.get(ENV_CACHE_DIR)
        or DEFAULT_CACHE_DIR
    )
    serve_args = (
        "--queue-depth", str(args.queue_depth),
        "--jobs", str(args.jobs),
    )
    observe = None
    if args.observe or args.observe_record:
        from .observe import EventHub, ObserveState

        # Replicas stream their own /observe feed; the router relays
        # those into one fleet-wide feed on a private hub (the global
        # hub would pick up this process's own tracer, double-counting
        # spans that already arrive over the relay).
        serve_args = serve_args + ("--observe",)
        observe = ObserveState(
            record_path=args.observe_record,
            queue_size=args.observe_queue,
            max_drops=args.observe_max_drops,
            hub=EventHub(),
            source="cluster",
            install_hook=False,
        )
    configs = [
        ReplicaConfig(
            replica_id=i,
            host="127.0.0.1",
            cache_dir=base / f"shard-{i}",
            serve_args=serve_args,
        )
        for i in range(args.replicas)
    ]
    supervisor = ReplicaSupervisor(
        configs,
        probe_interval=args.probe_interval,
        fail_threshold=args.fail_threshold,
    )
    router = ClusterRouter(
        vnodes=args.vnodes,
        max_inflight_per_replica=args.max_inflight,
        lru_capacity=args.lru_capacity,
        proxy_timeout=args.proxy_timeout,
        observe=observe,
    )
    for cfg in configs:
        # The router reads replica shards directly (same host): a ring
        # change then finds results the previous owner already computed.
        router.tiers.add_shard(ResultCache(root=cfg.cache_dir))
    return asyncio.run(
        cluster_forever(
            router,
            supervisor,
            args.host,
            args.port,
            drain_timeout=args.drain_timeout,
        )
    )


def _cmd_request(args: argparse.Namespace) -> int:
    import json as json_mod

    from .serve.client import ServeClient, ServeError

    client = ServeClient(args.host, args.port, retries=args.retries)
    request = {
        "model": args.model,
        "dataset": args.dataset,
        "scale": args.scale,
        "hidden": args.hidden,
        "layers": args.layers,
        "seed": args.seed,
        "device": args.device,
        "mapping": args.mapping,
    }
    try:
        payload = client.simulate(request, deadline=args.deadline)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json_mod.dumps(payload, indent=2, sort_keys=True))
        return 0
    result = payload["result"]
    source = "cache" if payload["cached"] else (
        "in-flight join" if payload["joined"] else "simulated"
    )
    print(f"key             : {payload['key'][:16]}… ({source})")
    print(f"device          : {result['accelerator']}")
    print(f"model / dataset : {args.model} / {args.dataset}@{args.scale:g}")
    print(f"execution time  : {result['total_seconds'] * 1e6:,.1f} us")
    print(f"DRAM traffic    : {result['dram_bytes'] / 1e6:,.2f} MB")
    print(f"request latency : {payload['latency_seconds'] * 1e3:,.1f} ms")
    if args.trace:
        _print_request_trace(client, payload.get("trace_id"))
    return 0


def _print_request_trace(client, trace_id: str | None) -> None:
    """Fetch and print the request's span tree (``request --trace``)."""
    from .telemetry.export import format_summary, span_summary
    from .telemetry.trace import Span

    if not trace_id:
        print("trace           : none (server tracing disabled?)", file=sys.stderr)
        return
    print(f"trace id        : {trace_id}")
    try:
        doc = client.trace(trace_id)
    except Exception as exc:  # noqa: BLE001 — trace is best-effort extra
        print(f"trace           : fetch failed ({exc})", file=sys.stderr)
        return
    spans = [Span.from_dict(s) for s in doc.get("spans", [])]
    if not spans:
        print("trace           : no spans buffered (sampled out or evicted)")
        return
    print(format_summary(span_summary(spans)))


def _cmd_trace(args: argparse.Namespace) -> int:
    from .telemetry.export import (
        format_summary,
        read_spans_jsonl,
        span_summary,
        trace_roots,
        write_chrome_trace,
        write_spans_jsonl,
    )
    from .telemetry.trace import Span

    if args.input is not None:
        spans = read_spans_jsonl(args.input)
        if args.trace_id:
            spans = [s for s in spans if s.trace_id == args.trace_id]
    else:
        from .serve.client import ServeClient, ServeError

        client = ServeClient(args.host, args.port)
        try:
            doc = client.trace(args.trace_id)
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        spans = [Span.from_dict(s) for s in doc.get("spans", [])]
    if not spans:
        print("trace: no spans recorded", file=sys.stderr)
        return 1

    if args.trace_command == "summary":
        trees = trace_roots(spans)
        print(
            f"{len(spans)} spans across {len(trees)} complete trace(s)"
        )
        print(format_summary(span_summary(spans)))
        return 0
    if args.trace_command == "export":
        doc = write_chrome_trace(args.output, spans)
        print(
            f"trace: wrote {args.output} "
            f"({len(doc['traceEvents'])} events, "
            f"{len(trace_roots(spans))} complete trace(s))"
        )
        if args.jsonl:
            count = write_spans_jsonl(args.jsonl, spans)
            print(f"trace: wrote {args.jsonl} ({count} spans)")
        return 0
    raise AssertionError(
        f"unhandled trace command {args.trace_command}"
    )  # pragma: no cover


def _cmd_cache(args: argparse.Namespace) -> int:
    from .runtime.cache import ResultCache

    cache = ResultCache(args.dir) if args.dir else ResultCache()
    if args.cache_command == "stats":
        stats = cache.disk_stats()
        print(f"root        : {stats['root']}")
        print(f"fingerprint : {stats['fingerprint']}")
        print(f"entries     : {stats['entries']}")
        print(f"bytes       : {stats['bytes']:,}")
        if stats["oldest_mtime"] is not None:
            import time as time_mod

            age = time_mod.time() - stats["oldest_mtime"]
            print(f"oldest      : {age / 3600:.1f}h ago")
        tiles_root = cache.root / "tiles"
        if tiles_root.is_dir():
            tile_stats = ResultCache(root=tiles_root).disk_stats()
            print("tiles sub-cache (per-tile results):")
            print(f"  entries   : {tile_stats['entries']}")
            print(f"  bytes     : {tile_stats['bytes']:,}")
        return 0
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"cache: removed {removed} result(s) from {cache.root}")
        return 0
    if args.cache_command == "prune":
        if args.max_age is None and args.max_bytes is None:
            print(
                "error: prune needs --max-age and/or --max-bytes",
                file=sys.stderr,
            )
            return 2
        removed_old = removed_big = 0
        try:
            if args.max_age is not None:
                removed_old = cache.prune(parse_age(args.max_age))
            if args.max_bytes is not None:
                removed_big = cache.prune_bytes(parse_size(args.max_bytes))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.max_age is not None:
            print(
                f"cache: pruned {removed_old} result(s) older than "
                f"{args.max_age} from {cache.root}"
            )
        if args.max_bytes is not None:
            print(
                f"cache: evicted {removed_big} oldest result(s) to fit "
                f"{args.max_bytes} in {cache.root}"
            )
        return 0
    raise AssertionError(
        f"unhandled cache command {args.cache_command}"
    )  # pragma: no cover


def _cmd_observe(args: argparse.Namespace) -> int:
    import asyncio

    if args.observe_command in ("record", "tail"):
        coro = _observe_attach(args)
    elif args.observe_command == "replay":
        coro = _observe_replay(args)
    else:  # pragma: no cover
        raise AssertionError(f"unhandled observe command {args.observe_command}")
    try:
        return asyncio.run(coro)
    except KeyboardInterrupt:
        return 0


async def _observe_attach(args: argparse.Namespace) -> int:
    """``observe record`` / ``observe tail``: drain a live feed."""
    import json as json_mod

    from .observe import Event, SessionRecorder, stream_events
    from .observe.websocket import WebSocketError

    recorder = None
    if args.observe_command == "record":
        recorder = SessionRecorder(args.output, source="record")
    wanted = set(getattr(args, "types", None) or ()) or None
    count = 0
    try:
        async for event in stream_events(
            args.host,
            args.port,
            max_events=args.max_events,
            duration=getattr(args, "duration", None),
        ):
            if recorder is not None:
                recorder.emit(Event.from_dict(event))
                count += 1
                continue
            if wanted is not None and event.get("type") not in wanted:
                continue
            print(json_mod.dumps(event), flush=True)
            count += 1
    except (ConnectionError, OSError, WebSocketError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if recorder is not None:
            recorder.close()
            print(
                f"observe: recorded {count} event(s) to {args.output}",
                file=sys.stderr,
            )
    return 0


async def _observe_replay(args: argparse.Namespace) -> int:
    """``observe replay``: to stdout, or re-served over a broadcaster."""
    import asyncio
    import json as json_mod

    from .observe.replay import iter_session, replay_events

    try:
        events = iter_session(args.input)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not events:
        print("error: recording holds no events", file=sys.stderr)
        return 1

    if args.port is None:
        await replay_events(
            events,
            lambda event: print(
                json_mod.dumps(event.to_dict()), flush=True
            ),
            speed=args.speed,
        )
        return 0

    # Serve the replay: a broadcaster + dashboard with the recording as
    # the event source instead of a live service.
    from .observe import WebSocketBroadcaster
    from .observe.service import ui_asset
    from .serve.http import read_request, render_bytes, render_response

    broadcaster = WebSocketBroadcaster()
    broadcaster.bind(asyncio.get_running_loop())

    async def handle(reader, writer) -> None:
        try:
            request = await read_request(reader)
            if request is None:
                return
            path = request.path.partition("?")[0]
            if (
                path == "/observe"
                and "websocket" in request.headers.get("upgrade", "").lower()
            ):
                await broadcaster.handle_client(request, reader, writer)
                return
            if path == "/observer" or path.startswith("/observer/"):
                asset = ui_asset(path[len("/observer"):].lstrip("/"))
                if asset is not None:
                    body, content_type = asset
                    writer.write(render_bytes(200, body, content_type))
                else:
                    writer.write(
                        render_response(404, {"error": "no such asset"})
                    )
            else:
                writer.write(
                    render_response(
                        404,
                        {"error": "replay serves /observe and /observer only"},
                    )
                )
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    server = await asyncio.start_server(handle, args.host, args.port)
    host, port = server.sockets[0].getsockname()[:2]
    print(
        f"repro-observe: replaying {len(events)} event(s) on {host}:{port} "
        f"(dashboard http://{host}:{port}/observer, speed x{args.speed:g})",
        flush=True,
    )
    try:
        while True:
            await replay_events(events, broadcaster.emit, speed=args.speed)
            if not args.loop:
                break
    finally:
        await broadcaster.aclose()
        server.close()
        await server.wait_closed()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "models":
        return _cmd_models()
    if args.command == "info":
        return _cmd_info()
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "sweep":
        return _cmd_compare(args, show_summary=True)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "mutate":
        return _cmd_mutate(args)
    if args.command == "dse":
        return _cmd_dse(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "request":
        return _cmd_request(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "observe":
        return _cmd_observe(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover
