"""Tests for run_jobs orchestration: dedup, caching, metrics."""

import pytest

from repro.runtime import (
    FakeExecutor,
    ResultCache,
    SimJob,
    execute_job,
    run_jobs,
)

SMALL = dict(scale=0.1, hidden=8, num_layers=1)


class TestOrchestration:
    def test_outcomes_in_request_order(self):
        jobs = [SimJob(accelerator=a, **SMALL) for a in ("hygcn", "aurora")]
        report = run_jobs(jobs, executor=FakeExecutor())
        assert [o.job for o in report.outcomes] == jobs
        assert [o.result.accelerator for o in report.outcomes] == [
            "hygcn",
            "aurora",
        ]

    def test_duplicates_simulated_once(self):
        fake = FakeExecutor()
        job = SimJob(**SMALL)
        report = run_jobs([job, job, job], executor=fake)
        assert len(fake.calls) == 1
        assert report.metrics.total_jobs == 3
        assert report.metrics.unique_jobs == 1
        dicts = [o.result.to_dict() for o in report.outcomes]
        assert dicts[0] == dicts[1] == dicts[2]

    def test_error_isolation_and_accounting(self):
        fake = FakeExecutor(fail_when=lambda j: j.accelerator == "hygcn")
        jobs = [SimJob(accelerator=a, **SMALL) for a in ("aurora", "hygcn")]
        report = run_jobs(jobs, executor=fake)
        assert report.outcomes[0].ok
        assert not report.outcomes[1].ok
        assert report.metrics.errors == 1
        assert len(report.errors()) == 1
        with pytest.raises(RuntimeError, match="hygcn"):
            report.raise_on_error()

    def test_progress_callback_sees_every_outcome(self):
        seen = []
        jobs = [SimJob(accelerator=a, **SMALL) for a in ("aurora", "hygcn")]
        run_jobs(jobs, executor=FakeExecutor(), progress=seen.append)
        assert len(seen) == 2

    def test_jobs_n_builds_an_executor(self):
        report = run_jobs([SimJob(**SMALL)], jobs_n=1)
        assert report.outcomes[0].ok


class TestCaching:
    def test_second_sweep_is_all_hits(self, tmp_path):
        jobs = [SimJob(accelerator=a, **SMALL) for a in ("aurora", "hygcn")]
        cold = run_jobs(jobs, executor=FakeExecutor(), cache=ResultCache(tmp_path))
        assert cold.metrics.executed == 2
        assert cold.metrics.cache_misses == 2

        fake = FakeExecutor()
        warm = run_jobs(jobs, executor=fake, cache=ResultCache(tmp_path))
        assert warm.metrics.executed == 0
        assert warm.metrics.cache_hits == 2
        assert fake.calls == []
        assert [o.cached for o in warm.outcomes] == [True, True]
        assert [o.result.to_dict() for o in warm.outcomes] == [
            o.result.to_dict() for o in cold.outcomes
        ]

    def test_failed_jobs_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        fake = FakeExecutor(fail_when=lambda j: True)
        job = SimJob(**SMALL)
        run_jobs([job], executor=fake, cache=cache)
        assert len(cache) == 0
        retry = run_jobs([job], executor=FakeExecutor(), cache=cache)
        assert retry.outcomes[0].ok
        assert retry.metrics.executed == 1

    def test_stale_fingerprint_triggers_resimulation(self, tmp_path):
        job = SimJob(**SMALL)
        run_jobs(
            [job],
            executor=FakeExecutor(),
            cache=ResultCache(tmp_path, fingerprint="old"),
        )
        fake = FakeExecutor()
        fresh = run_jobs(
            [job], executor=fake, cache=ResultCache(tmp_path, fingerprint="new")
        )
        assert fresh.metrics.executed == 1
        assert len(fake.calls) == 1

    def test_cache_true_uses_default_location(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        run_jobs([SimJob(**SMALL)], executor=FakeExecutor(), cache=True)
        assert any((tmp_path / "c").rglob("*.json"))


class TestMetrics:
    def test_summary_reports_the_counts(self, tmp_path):
        jobs = [SimJob(**SMALL), SimJob(**SMALL)]
        report = run_jobs(jobs, executor=FakeExecutor(), cache=ResultCache(tmp_path))
        text = report.metrics.summary()
        assert "2 jobs" in text and "(1 unique)" in text
        assert "1 executed" in text
        assert "cache 0 hit / 1 miss" in text
        assert "wall" in text

    def test_per_job_seconds_recorded(self):
        job = SimJob(**SMALL)
        report = run_jobs([job], executor=FakeExecutor())
        assert set(report.metrics.job_seconds) == {report.outcomes[0].key}

    def test_results_accessor(self):
        report = run_jobs([SimJob(**SMALL)], executor=FakeExecutor())
        assert report.results()[0].total_seconds > 0


class TestRealExecutionPath:
    def test_execute_job_payload_round_trips(self):
        job = SimJob(**SMALL)
        payload = execute_job(job)
        report = run_jobs([job])
        assert report.outcomes[0].result.to_dict() == payload
