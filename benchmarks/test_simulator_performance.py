"""Simulator throughput bench: wall-time of the analytical tier itself.

This is the HPC-facing performance target: the analytical simulator must
sweep dataset-scale workloads in milliseconds (vectorised NumPy counting,
no per-edge Python), or the harness-level experiments would not be
tractable.  Regressions in the hot paths (tiling, mapping, traffic
extraction, link-load accumulation) show up here.

Wall-time assertions are scaled by ``$REPRO_BENCH_SLACK`` (default 1.0;
CI sets a larger factor) because shared runners are noisy — the asserts
exist to catch order-of-magnitude regressions, not to gate on machine
speed.  ``repro bench`` / ``BENCH_*.json`` is the instrument for real
numbers.
"""

import os

import pytest

from repro import AuroraSimulator, LayerDims, get_model, load_dataset

#: Multiplier on every wall-time bound; CI sets e.g. REPRO_BENCH_SLACK=4.
SLACK = float(os.environ.get("REPRO_BENCH_SLACK", "1.0"))


@pytest.fixture(scope="module")
def cora():
    return load_dataset("cora")


@pytest.fixture(scope="module")
def pubmed():
    return load_dataset("pubmed", scale=0.5)


def test_simulate_layer_cora(benchmark, cora):
    sim = AuroraSimulator()
    model = get_model("gcn")
    dims = LayerDims(cora.num_features, 64)
    result = benchmark(sim.simulate_layer, model, cora, dims)
    assert result.total_seconds > 0
    # Full-Cora layer simulation stays interactive (< 0.5 s per call).
    if benchmark.enabled:
        assert benchmark.stats["mean"] < 0.5 * SLACK


def test_simulate_layer_pubmed(benchmark, pubmed):
    sim = AuroraSimulator()
    model = get_model("gcn")
    dims = LayerDims(pubmed.num_features, 64)
    result = benchmark(sim.simulate_layer, model, pubmed, dims)
    assert result.total_seconds > 0
    if benchmark.enabled:
        assert benchmark.stats["mean"] < 1.0 * SLACK


def test_mapping_throughput(benchmark, cora):
    """Algorithm 1 on full Cora: the per-subgraph preprocessing path."""
    from repro.mapping import PERegion, degree_aware_map

    region = PERegion(0, 0, 32, 16, 32)
    cap = -(-cora.num_vertices // region.num_pes)
    mapping = benchmark(
        degree_aware_map, cora, region, pe_vertex_capacity=cap
    )
    assert mapping.num_vertices == cora.num_vertices
    if benchmark.enabled:
        assert benchmark.stats["mean"] < 0.25 * SLACK
