"""Tests for N-Queen S_PE placement."""

import pytest

from repro.mapping import can_place, fixed_pattern, solve_n_queens


def _valid_nqueen(positions):
    rows = [r for r, _ in positions]
    cols = [c for _, c in positions]
    if len(set(rows)) != len(rows) or len(set(cols)) != len(cols):
        return False
    for i, (r1, c1) in enumerate(positions):
        for r2, c2 in positions[i + 1 :]:
            if abs(r1 - r2) == abs(c1 - c2):
                return False
    return True


class TestSolver:
    @pytest.mark.parametrize("k", [1, 4, 5, 6, 8, 12, 16])
    def test_valid_solutions(self, k):
        positions = solve_n_queens(k)
        assert len(positions) == k
        assert _valid_nqueen(positions)

    def test_deterministic(self):
        assert solve_n_queens(8) == solve_n_queens(8)

    def test_unsolvable_sizes_fall_back(self):
        # k=2,3 have no N-Queen solution; fallback still gives one per row.
        for k in (2, 3):
            positions = solve_n_queens(k)
            assert len(positions) == k
            assert len({r for r, _ in positions}) == k

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            solve_n_queens(0)


class TestCanPlace:
    def test_same_column_rejected(self):
        assert not can_place([0], 1, 0)

    def test_diagonal_rejected(self):
        assert not can_place([0], 1, 1)

    def test_safe_square(self):
        assert can_place([0], 1, 2)


class TestFixedPattern:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 8, 16, 32])
    def test_one_per_row_distinct_columns(self, k):
        positions = fixed_pattern(k)
        assert len(positions) == k
        assert len({r for r, _ in positions}) == k
        assert len({c for _, c in positions}) == k

    def test_deterministic(self):
        assert fixed_pattern(32) == fixed_pattern(32)

    def test_invalid(self):
        with pytest.raises(ValueError):
            fixed_pattern(0)
