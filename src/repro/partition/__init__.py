"""Resource partitioning across GNN execution phases (Algorithm 2)."""

from .algorithm import PARTITION_CYCLES, PartitionStrategy, partition, split_regions

__all__ = ["PartitionStrategy", "partition", "split_regions", "PARTITION_CYCLES"]
