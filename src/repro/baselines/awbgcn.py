"""AWB-GCN (Geng et al., MICRO 2020) baseline model.

AWB-GCN executes GCN as sparse matrix multiplication on a unified PE pool
with *runtime workload autotuning* (distribution smoothing, remote
switching, evil-row remapping).  Published properties this model encodes:

* **Unified pool, sequential matmul phases** — no tandem engines
  (``engine_split = None``), and the two matmuls (A·X then ·W) serialise
  (``phase_pipelined = False``).
* **Runtime rebalancing** (``runtime_rebalancing = True``): the
  autotuner nearly eliminates degree-skew compute imbalance — its
  headline contribution.
* **No edge-update / C-GCN only** (Table I).
* **Column-wise product dataflow** keeps partial sums local, roughly
  halving on-chip message volume vs naive gathers
  (``traffic_factor = 0.5``), and evil-row handling spreads part of the
  hub ejection traffic (``hub_relief = 0.5``).
* **Weight duplication**: "the weight matrix needs to be duplicated in
  all processing elements" (paper §VI-B) — re-streamed per tile
  (``weight_reload_per_tile = True``).
* Omega-style multi-stage interconnect: more hops than a crossbar
  (``comm_hops = 5``), 64 lanes.
"""

from __future__ import annotations

from .base import BaselineAccelerator, BaselineTraits

__all__ = ["AWBGCN_TRAITS", "AWBGCN"]

AWBGCN_TRAITS = BaselineTraits(
    name="awb-gcn",
    supports_c_gnn=True,
    supports_a_gnn=False,
    supports_mp_gnn=False,
    flexible_pe=False,
    flexible_dataflow=False,
    flexible_noc=False,
    message_passing=False,
    supports_edge_update=False,
    engine_split=None,
    runtime_rebalancing=True,
    redundancy_elimination=0.0,
    phase_pipelined=False,
    imbalance_sensitivity=0.05,
    feature_reuse=0.7,
    weight_reload_per_tile=True,
    interphase_spill=True,
    buffer_traffic_factor=1.1,
    traffic_factor=1.0,
    comm_ports=100,
    comm_hops=5.0,
    hub_relief=0.5,
    comm_service_cycles=11.5,
)


class AWBGCN(BaselineAccelerator):
    """AWB-GCN scaled to Aurora's multiplier/bandwidth/storage budget."""

    def __init__(self, config=None, energy_table=None) -> None:
        super().__init__(AWBGCN_TRAITS, config, energy_table)
