"""Unit tests for NoC route computation."""

import pytest

from repro.arch.noc import (
    BypassSegment,
    FlexibleMeshTopology,
    RingConfig,
    bypass_route,
    compute_route,
    ring_route,
    xy_route,
)


@pytest.fixture
def mesh8():
    return FlexibleMeshTopology(8)


def _route_is_connected(topo, route):
    """Every consecutive pair must be a mesh neighbor or bypass endpoint."""
    pairs = {
        frozenset(topo.segment_endpoints(s)) for s in topo.bypass_segments
    }
    for a, b in zip(route, route[1:]):
        ok = b in topo.mesh_neighbors(a) or frozenset((a, b)) in pairs
        if not ok:
            return False
    return True


class TestXY:
    def test_endpoints(self, mesh8):
        r = xy_route(mesh8, 0, 63)
        assert r[0] == 0 and r[-1] == 63

    def test_length_is_manhattan(self, mesh8):
        r = xy_route(mesh8, 0, 63)
        assert len(r) - 1 == mesh8.manhattan(0, 63)

    def test_x_first(self, mesh8):
        r = xy_route(mesh8, 0, mesh8.node_id(3, 2))
        # First moves change x while y stays 0.
        xs = [mesh8.coords(n)[0] for n in r[:4]]
        ys = [mesh8.coords(n)[1] for n in r[:4]]
        assert xs == [0, 1, 2, 3]
        assert ys == [0, 0, 0, 0]

    def test_self_route(self, mesh8):
        assert xy_route(mesh8, 5, 5) == (5,)

    def test_connected(self, mesh8):
        for src, dst in [(0, 63), (7, 56), (12, 34)]:
            assert _route_is_connected(mesh8, xy_route(mesh8, src, dst))

    def test_negative_directions(self, mesh8):
        r = xy_route(mesh8, 63, 0)
        assert r[0] == 63 and r[-1] == 0
        assert len(r) - 1 == 14


class TestBypass:
    def test_bypass_shortens_long_row_route(self, mesh8):
        mesh8.add_bypass_segment(BypassSegment("row", 0, 0, 7))
        src, dst = mesh8.node_id(0, 0), mesh8.node_id(7, 0)
        r = bypass_route(mesh8, src, dst)
        assert len(r) - 1 == 1  # one express hop
        assert _route_is_connected(mesh8, r)

    def test_bypass_not_taken_when_longer(self, mesh8):
        mesh8.add_bypass_segment(BypassSegment("row", 7, 0, 7))
        src, dst = mesh8.node_id(0, 0), mesh8.node_id(1, 0)
        r = bypass_route(mesh8, src, dst)
        assert len(r) - 1 == 1  # plain XY wins

    def test_bypass_from_middle(self, mesh8):
        mesh8.add_bypass_segment(BypassSegment("row", 2, 1, 6))
        src = mesh8.node_id(1, 2)
        dst = mesh8.node_id(6, 4)
        r = bypass_route(mesh8, src, dst)
        assert len(r) - 1 == 3  # bypass hop + 2 down
        assert _route_is_connected(mesh8, r)

    def test_column_bypass(self, mesh8):
        mesh8.add_bypass_segment(BypassSegment("col", 0, 0, 7))
        r = bypass_route(mesh8, mesh8.node_id(0, 0), mesh8.node_id(0, 7))
        assert len(r) - 1 == 1

    def test_no_segments_equals_xy(self, mesh8):
        assert bypass_route(mesh8, 0, 63) == xy_route(mesh8, 0, 63)


class TestRing:
    def test_forward_route(self, mesh8):
        mesh8.add_ring_region(RingConfig(0, 0, 8, 2))
        src, dst = mesh8.node_id(1, 0), mesh8.node_id(5, 0)
        r = ring_route(mesh8, src, dst)
        assert len(r) - 1 == 4

    def test_wraparound(self, mesh8):
        mesh8.add_ring_region(RingConfig(0, 0, 8, 2))
        src, dst = mesh8.node_id(6, 0), mesh8.node_id(1, 0)
        r = ring_route(mesh8, src, dst)
        # 6 -> 7 -> wrap to 0 -> 1: three hops, never backwards.
        assert len(r) - 1 == 3

    def test_cross_row_within_ring(self, mesh8):
        mesh8.add_ring_region(RingConfig(0, 0, 8, 2))
        src, dst = mesh8.node_id(3, 0), mesh8.node_id(2, 1)
        r = ring_route(mesh8, src, dst)
        assert r[0] == src and r[-1] == dst

    def test_requires_shared_ring(self, mesh8):
        mesh8.add_ring_region(RingConfig(0, 0, 8, 2))
        with pytest.raises(ValueError, match="ring"):
            ring_route(mesh8, mesh8.node_id(0, 0), mesh8.node_id(0, 5))


class TestComputeRoute:
    def test_dispatches_to_ring(self, mesh8):
        mesh8.add_ring_region(RingConfig(0, 0, 8, 2))
        src, dst = mesh8.node_id(6, 0), mesh8.node_id(1, 0)
        assert len(compute_route(mesh8, src, dst)) - 1 == 3

    def test_dispatches_to_bypass(self, mesh8):
        mesh8.add_bypass_segment(BypassSegment("row", 0, 0, 7))
        r = compute_route(mesh8, 0, 7)
        assert len(r) - 1 == 1

    def test_allow_bypass_false(self, mesh8):
        mesh8.add_bypass_segment(BypassSegment("row", 0, 0, 7))
        r = compute_route(mesh8, 0, 7, allow_bypass=False)
        assert len(r) - 1 == 7

    def test_self(self, mesh8):
        assert compute_route(mesh8, 3, 3) == (3,)
