"""Energy model derived from the Horowitz energy tables.

The paper estimates energy from the counted on/off-chip communications and
computations "according to [Horowitz's] energy table" (§VI-A).  We do the
same: a table of per-event energies (scaled from the published 45 nm
figures to double precision) applied to the simulator's event counters.

The absolute joule values matter less than their *ratios* — DRAM access is
two orders of magnitude costlier than an SRAM access, which is an order
costlier than a MAC — because every reported result is normalised to
Aurora.  The ratios here follow Horowitz (ISSCC 2014): 32-bit DRAM access
≈ 640 pJ vs ≈ 5 pJ for an 8 KB SRAM read vs ≈ 4.6 pJ for an fp32 MAC.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["EnergyTable", "EnergyCounters", "EnergyBreakdown", "EnergyModel"]


@dataclass(frozen=True)
class EnergyTable:
    """Per-event energies in picojoules (fp64-scaled Horowitz figures)."""

    mac_pj: float = 17.0  # fp64 multiply (≈15 pJ) + add (≈2 pJ)
    add_pj: float = 2.0  # fp64 add only (reduction configs)
    ppu_op_pj: float = 1.0  # activation/concat lane op
    sram_pj_per_byte: float = 1.2  # distributed bank buffer access
    global_buffer_pj_per_byte: float = 12.0  # large monolithic buffer (baselines)
    reuse_fifo_pj_per_byte: float = 0.4  # small FIFO access
    link_pj_per_byte_per_hop: float = 0.6  # NoC wire traversal
    router_pj_per_flit: float = 1.5  # buffering + allocation + crossbar
    bypass_pj_per_byte: float = 0.25  # segmented wire, no router pipeline
    dram_pj_per_byte: float = 160.0  # ≈640 pJ / 4 B, Horowitz DRAM figure
    reconfig_pj_per_pe: float = 5.0  # datapath switch reprogramming
    control_pj_per_cycle: float = 30.0  # dispatcher + control units static/dyn

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ValueError(f"{f.name} must be non-negative")


@dataclass
class EnergyCounters:
    """Event counts a simulation run accumulates."""

    mac_ops: int = 0
    add_ops: int = 0
    ppu_ops: int = 0
    sram_bytes: int = 0
    global_buffer_bytes: int = 0
    reuse_fifo_bytes: int = 0
    link_byte_hops: int = 0
    router_flits: int = 0
    bypass_bytes: int = 0
    dram_bytes: int = 0
    reconfig_events_pe: int = 0
    active_cycles: int = 0

    def merge(self, other: "EnergyCounters") -> "EnergyCounters":
        """Element-wise sum (combining per-phase or per-tile counters)."""
        out = EnergyCounters()
        for f in fields(EnergyCounters):
            setattr(out, f.name, getattr(self, f.name) + getattr(other, f.name))
        return out

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(EnergyCounters)}

    @staticmethod
    def from_dict(data: dict) -> "EnergyCounters":
        known = {f.name for f in fields(EnergyCounters)}
        return EnergyCounters(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy per component, in joules."""

    compute: float
    sram: float
    noc: float
    dram: float
    control: float
    reconfiguration: float

    @property
    def total(self) -> float:
        return (
            self.compute
            + self.sram
            + self.noc
            + self.dram
            + self.control
            + self.reconfiguration
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "compute": self.compute,
            "sram": self.sram,
            "noc": self.noc,
            "dram": self.dram,
            "control": self.control,
            "reconfiguration": self.reconfiguration,
            "total": self.total,
        }

    @staticmethod
    def from_dict(data: dict) -> "EnergyBreakdown":
        """Inverse of :meth:`as_dict` (``total`` is derived, so ignored)."""
        return EnergyBreakdown(
            **{f.name: data[f.name] for f in fields(EnergyBreakdown)}
        )


class EnergyModel:
    """Applies an :class:`EnergyTable` to run counters."""

    def __init__(self, table: EnergyTable | None = None) -> None:
        self.table = table or EnergyTable()

    def evaluate(self, c: EnergyCounters) -> EnergyBreakdown:
        """Total system energy of a run, per component."""
        t = self.table
        pj = 1e-12
        compute = (
            c.mac_ops * t.mac_pj + c.add_ops * t.add_pj + c.ppu_ops * t.ppu_op_pj
        ) * pj
        sram = (
            c.sram_bytes * t.sram_pj_per_byte
            + c.global_buffer_bytes * t.global_buffer_pj_per_byte
            + c.reuse_fifo_bytes * t.reuse_fifo_pj_per_byte
        ) * pj
        noc = (
            c.link_byte_hops * t.link_pj_per_byte_per_hop
            + c.router_flits * t.router_pj_per_flit
            + c.bypass_bytes * t.bypass_pj_per_byte
        ) * pj
        dram = c.dram_bytes * t.dram_pj_per_byte * pj
        control = c.active_cycles * t.control_pj_per_cycle * pj
        reconfig = c.reconfig_events_pe * t.reconfig_pj_per_pe * pj
        return EnergyBreakdown(
            compute=compute,
            sram=sram,
            noc=noc,
            dram=dram,
            control=control,
            reconfiguration=reconfig,
        )
