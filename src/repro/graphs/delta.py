"""Edge-mutation streams over the CSR substrate.

Evolving graphs arrive as :class:`EdgeDelta` batches (edge inserts and
deletes).  Applying a delta rebuilds only the touched CSR rows and — via
the per-row digests of :func:`repro.graphs.csr.compute_row_digests` —
refreshes the graph's ``content_key`` incrementally, so a mutated graph
is immediately addressable by the content-keyed caches (mapping memo,
per-tile result cache) without re-hashing every edge.

:class:`MutationLog` names a graph as ``base_key + delta_chain`` so a
stream of mutations over one base snapshot has a stable, canonical
identity; :func:`dirty_tiles` predicts which tiles of a contiguous
vertex-range partition a delta invalidates (the tiles whose *rows* were
mutated — a range tile reads only its own CSR rows, so destination-only
changes elsewhere leave it clean).

Delta application is canonical: rows stay sorted and deduplicated, so
``apply_delta`` is bit-identical to rebuilding the CSR from the mutated
edge set with :func:`repro.graphs.csr.from_edge_list` (property-tested).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from .csr import CSRGraph, compute_row_digests
from .tiling import TilingPlan

__all__ = [
    "EdgeDelta",
    "MutationLog",
    "apply_delta",
    "apply_chain",
    "dirty_tiles",
    "tile_boundaries",
    "rewire_delta",
]

_Edges = tuple  # tuple[tuple[int, int], ...]


def _canonical_edges(edges, label: str) -> tuple:
    """Validate and canonicalize an edge list: sorted, deduplicated."""
    out = set()
    for pair in edges:
        try:
            u, v = pair
        except (TypeError, ValueError):
            raise ValueError(f"{label} entries must be (src, dst) pairs") from None
        if not all(isinstance(x, (int, np.integer)) for x in (u, v)):
            raise ValueError(f"{label} endpoints must be integers")
        u, v = int(u), int(v)
        if u < 0 or v < 0:
            raise ValueError(f"{label} endpoints must be non-negative ints")
        out.add((u, v))
    return tuple(sorted(out))


@dataclass(frozen=True)
class EdgeDelta:
    """One batch of edge mutations, canonical and hashable.

    ``deletes`` are applied before ``inserts``; an edge may not appear in
    both lists.  Construct through :meth:`make` (or :meth:`from_dict`),
    which sorts, deduplicates, and validates — two spellings of the same
    mutation batch therefore share a :attr:`delta_key`, keeping content
    hashes and dedup stable.
    """

    inserts: _Edges = field(default=())
    deletes: _Edges = field(default=())

    @classmethod
    def make(cls, inserts=(), deletes=()) -> "EdgeDelta":
        ins = _canonical_edges(inserts, "insert")
        dels = _canonical_edges(deletes, "delete")
        overlap = set(ins) & set(dels)
        if overlap:
            raise ValueError(
                f"edges appear in both insert and delete: {sorted(overlap)[:4]}"
            )
        return cls(inserts=ins, deletes=dels)

    @classmethod
    def from_dict(cls, data: dict) -> "EdgeDelta":
        if not isinstance(data, dict):
            raise ValueError("mutation batch must be an object")
        payload = dict(data)
        ins = payload.pop("insert", payload.pop("inserts", ()))
        dels = payload.pop("delete", payload.pop("deletes", ()))
        if payload:
            raise ValueError(f"unknown mutation fields: {sorted(payload)}")
        return cls.make(inserts=ins or (), deletes=dels or ())

    def as_dict(self) -> dict:
        return {
            "insert": [list(e) for e in self.inserts],
            "delete": [list(e) for e in self.deletes],
        }

    @property
    def delta_key(self) -> str:
        blob = json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:32]

    @property
    def num_edits(self) -> int:
        return len(self.inserts) + len(self.deletes)

    def touched_rows(self) -> np.ndarray:
        """Sorted unique source rows mutated by this delta."""
        rows = [u for u, _ in self.inserts] + [u for u, _ in self.deletes]
        return np.unique(np.asarray(rows, dtype=np.int64))

    def touched_columns(self) -> np.ndarray:
        """Sorted unique destination vertices of the mutated edges."""
        cols = [v for _, v in self.inserts] + [v for _, v in self.deletes]
        return np.unique(np.asarray(cols, dtype=np.int64))


@dataclass(frozen=True)
class MutationLog:
    """Addresses a graph as ``base_key + delta_chain``.

    The log never holds graph arrays — only the base snapshot's content
    key and the ordered deltas — so it is cheap to ship and store.  Two
    logs with the same base and the same canonical deltas share a
    :attr:`chain_key` regardless of how the deltas were spelled.
    """

    base_key: str
    deltas: tuple = field(default=())

    def append(self, delta: EdgeDelta) -> "MutationLog":
        return MutationLog(base_key=self.base_key, deltas=(*self.deltas, delta))

    @property
    def chain_key(self) -> str:
        h = hashlib.sha256(self.base_key.encode())
        for d in self.deltas:
            h.update(d.delta_key.encode())
        return h.hexdigest()[:32]

    def as_dict(self) -> dict:
        return {
            "base_key": self.base_key,
            "deltas": [d.as_dict() for d in self.deltas],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MutationLog":
        return cls(
            base_key=str(data["base_key"]),
            deltas=tuple(EdgeDelta.from_dict(d) for d in data.get("deltas", [])),
        )

    def __len__(self) -> int:
        return len(self.deltas)


def _group_by_row(edges: _Edges) -> dict:
    by_row: dict[int, list[int]] = {}
    for u, v in edges:
        by_row.setdefault(u, []).append(v)
    return {r: np.asarray(sorted(vs), dtype=np.int64) for r, vs in by_row.items()}


def apply_delta(
    graph: CSRGraph,
    delta: EdgeDelta,
    *,
    name: str | None = None,
    strict: bool = True,
) -> CSRGraph:
    """Apply one mutation batch, rebuilding only the touched rows.

    Deletes are applied before inserts.  With ``strict`` (the default) a
    delete of an absent edge or an insert of a present edge raises; with
    ``strict=False`` both degrade to set semantics (no-ops).  Rows are
    kept sorted and deduplicated, so the result is bit-identical to
    rebuilding the CSR from the mutated edge set from scratch.

    The returned graph's per-row digests are seeded from the parent and
    recomputed for touched rows only — its ``content_key`` is therefore
    incremental in the delta size, not the graph size.
    """
    n = graph.num_vertices
    for label, edges in (("insert", delta.inserts), ("delete", delta.deletes)):
        for u, v in edges:
            if u >= n or v >= n:
                raise ValueError(
                    f"{label} edge ({u}, {v}) out of range for {n} vertices"
                )
    touched = delta.touched_rows()
    if touched.size == 0:
        return graph

    indptr, indices = graph.indptr, graph.indices
    ins_map = _group_by_row(delta.inserts)
    del_map = _group_by_row(delta.deletes)

    new_rows: dict[int, np.ndarray] = {}
    for r in touched.tolist():
        cur = indices[indptr[r] : indptr[r + 1]]
        dels = del_map.get(r)
        if dels is not None:
            if strict:
                missing = dels[~np.isin(dels, cur)]
                if missing.size:
                    raise ValueError(
                        f"delete of absent edge ({r}, {int(missing[0])})"
                    )
            cur = np.setdiff1d(cur, dels, assume_unique=False)
        ins = ins_map.get(r)
        if ins is not None:
            if strict:
                dup = ins[np.isin(ins, cur)]
                if dup.size:
                    raise ValueError(
                        f"insert of existing edge ({r}, {int(dup[0])})"
                    )
            cur = np.union1d(cur, ins)
        new_rows[r] = np.ascontiguousarray(cur, dtype=np.int64)

    degrees = graph.degrees.copy()
    for r, arr in new_rows.items():
        degrees[r] = arr.size
    new_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=new_indptr[1:])

    # Splice: untouched row spans are copied in bulk between touched rows.
    pieces: list[np.ndarray] = []
    prev = 0
    for r in touched.tolist():
        pieces.append(indices[indptr[prev] : indptr[r]])
        pieces.append(new_rows[r])
        prev = r + 1
    pieces.append(indices[indptr[prev] :])
    new_indices = np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)

    child = CSRGraph(
        new_indptr,
        new_indices,
        num_features=graph.num_features,
        feature_density=graph.feature_density,
        edge_feature_dim=graph.edge_feature_dim,
        name=name if name is not None else f"{graph.name}+d",
    )
    digests = graph.row_digests.copy()
    mini_indptr = np.zeros(touched.size + 1, dtype=np.int64)
    np.cumsum(degrees[touched], out=mini_indptr[1:])
    mini_indices = np.concatenate([new_rows[r] for r in touched.tolist()])
    digests[touched] = compute_row_digests(mini_indptr, mini_indices)
    child._row_digests = digests
    child.derived_from = graph.content_key
    return child


def apply_chain(
    graph: CSRGraph,
    deltas,
    *,
    name: str | None = None,
    strict: bool = True,
) -> CSRGraph:
    """Apply a delta chain in order; see :func:`apply_delta`."""
    deltas = tuple(deltas)
    out = graph
    for delta in deltas:
        out = apply_delta(out, delta, strict=strict)
    if name is None and deltas:
        name = f"{graph.name}+{len(deltas)}d"
    if name is not None and out is not graph:
        out.name = name
    return out


def tile_boundaries(plan: TilingPlan) -> np.ndarray:
    """Vertex-range boundaries ``[b0, b1, ..., bT]`` of a contiguous plan."""
    tiles = plan.tiles
    if not tiles:
        return np.zeros(1, dtype=np.int64)
    bounds = [int(t.vertices[0]) for t in tiles]
    bounds.append(int(tiles[-1].vertices[-1]) + 1)
    return np.asarray(bounds, dtype=np.int64)


def dirty_tiles(
    boundaries: np.ndarray,
    delta: "EdgeDelta | np.ndarray",
    *,
    include_destinations: bool = False,
) -> np.ndarray:
    """Tile indices a delta invalidates under a contiguous partition.

    ``boundaries`` is the ``[b0, ..., bT]`` array of
    :func:`tile_boundaries`.  A contiguous vertex-range tile reads only
    its own CSR rows, so only tiles containing mutated *source* rows are
    dirty; ``include_destinations`` adds the tiles containing mutated
    destination vertices for conservative callers whose tile payloads
    also read in-edges.
    """
    boundaries = np.asarray(boundaries, dtype=np.int64)
    if isinstance(delta, EdgeDelta):
        rows = delta.touched_rows()
        if include_destinations:
            rows = np.union1d(rows, delta.touched_columns())
    else:
        rows = np.unique(np.asarray(delta, dtype=np.int64))
    if rows.size == 0:
        return np.empty(0, dtype=np.int64)
    t = np.searchsorted(boundaries, rows, side="right") - 1
    t = t[(t >= 0) & (t < boundaries.size - 1)]
    return np.unique(t)


def rewire_delta(
    graph: CSRGraph,
    rows,
    *,
    seed: int = 0,
) -> EdgeDelta:
    """Degree-preserving rewire: per row, delete one edge, insert another.

    For each given row with at least one out-edge and at least one
    absent destination, one existing destination is replaced by a fresh
    one chosen by a seeded RNG.  Degrees (hence ``indptr`` and any
    degree-driven tile boundaries) are unchanged, which makes this the
    canonical mutation generator for dirty-fraction benchmarks: the set
    of dirty tiles is exactly the set of tiles owning the given rows.
    """
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    inserts: list[tuple[int, int]] = []
    deletes: list[tuple[int, int]] = []
    for r in np.unique(np.asarray(rows, dtype=np.int64)).tolist():
        if not 0 <= r < n:
            raise ValueError(f"row {r} out of range")
        nbrs = graph.neighbors(r)
        if nbrs.size == 0 or nbrs.size >= n:
            continue
        old = int(nbrs[int(rng.integers(nbrs.size))])
        cand = None
        for _ in range(32):
            probe = int(rng.integers(n))
            pos = int(np.searchsorted(nbrs, probe))
            if pos >= nbrs.size or int(nbrs[pos]) != probe:
                cand = probe
                break
        if cand is None:
            absent = np.ones(n, dtype=bool)
            absent[nbrs] = False
            cand = int(np.argmax(absent))
        deletes.append((r, old))
        inserts.append((r, cand))
    return EdgeDelta.make(inserts=inserts, deletes=deletes)
