#!/usr/bin/env python3
"""Design-space exploration: array size, buffer capacity, mapping policy.

Sweeps the Aurora configuration knobs the paper fixes (32×32 PEs, 100 KB
per-PE buffers, degree-aware mapping) and reports how execution time and
energy respond — the kind of what-if study the simulator exists for.

All nine design points go through ``repro.runtime.run_jobs`` as one
batch: re-running the script hits the on-disk result cache and prints
instantly, and ``--jobs N`` fans the cold run out over N processes.

Run:  python examples/design_space_exploration.py [--jobs N] [--no-cache]
"""

import argparse

from repro.config import AcceleratorConfig
from repro.eval import format_table
from repro.runtime import SimJob, run_jobs

ARRAY_KS = (8, 16, 32)
BUFFER_KIB = (2, 8, 25, 50)
POLICIES = ("degree-aware", "hashing")


def build_jobs() -> list[SimJob]:
    """Every design point of the study, as pure data."""
    jobs = [
        SimJob(config=AcceleratorConfig(array_k=k), hidden=64, num_layers=2)
        for k in ARRAY_KS
    ]
    # Pubmed for the buffer sweep: its denser features make on-chip
    # capacity bind, so the tile count (and with it the boundary DRAM
    # traffic) responds.
    jobs += [
        SimJob(
            dataset="pubmed",
            scale=0.5,
            config=AcceleratorConfig(pe_buffer_bytes=kib * 1024),
            hidden=64,
            num_layers=2,
        )
        for kib in BUFFER_KIB
    ]
    jobs += [
        SimJob(mapping=policy, hidden=64, num_layers=2) for policy in POLICIES
    ]
    return jobs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True
    )
    args = parser.parse_args()

    report = run_jobs(build_jobs(), jobs_n=args.jobs, cache=args.cache or None)
    report.raise_on_error()
    results = report.results()
    by_array = results[: len(ARRAY_KS)]
    by_buffer = results[len(ARRAY_KS) : len(ARRAY_KS) + len(BUFFER_KIB)]
    by_policy = results[len(ARRAY_KS) + len(BUFFER_KIB) :]

    print(format_table(
        ["array", "cycles", "energy mJ", "tiles"],
        [
            [
                f"{k}x{k}",
                f"{r.total_cycles:,.0f}",
                f"{r.energy.total * 1e3:.2f}",
                str(r.num_tiles),
            ]
            for k, r in zip(ARRAY_KS, by_array)
        ],
        title="Sweep: PE array dimension (Cora, 2-layer GCN)",
    ))

    print()
    print(format_table(
        ["PE buffer", "cycles", "tiles", "DRAM MB"],
        [
            [
                f"{kib} KiB",
                f"{r.total_cycles:,.0f}",
                str(r.num_tiles),
                f"{r.dram_bytes / 1e6:.1f}",
            ]
            for kib, r in zip(BUFFER_KIB, by_buffer)
        ],
        title="Sweep: distributed buffer capacity (Pubmed@0.5)",
    ))

    print()
    print(format_table(
        ["mapping", "cycles", "on-chip comm cycles"],
        [
            [policy, f"{r.total_cycles:,.0f}", f"{r.onchip_comm_cycles:,}"]
            for policy, r in zip(POLICIES, by_policy)
        ],
        title="Sweep: mapping policy",
    ))

    print()
    print(report.metrics.summary())


if __name__ == "__main__":
    main()
