"""Tests for ASCII chart rendering."""

import pytest

from repro.eval.plotting import bar_chart, render_figure_bars


class TestBarChart:
    def test_scaled_to_max(self):
        out = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[1].count("█") == 10  # the max fills the width
        assert lines[0].count("█") == 5

    def test_labels_aligned(self):
        out = bar_chart(["x", "longer"], [1, 1])
        a, b = out.splitlines()
        assert a.index("|") == b.index("|")

    def test_title(self):
        out = bar_chart(["a"], [1.0], title="T")
        assert out.startswith("T\n")

    def test_zero_values(self):
        out = bar_chart(["a", "b"], [0.0, 0.0])
        assert "0.00" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])

    def test_empty(self):
        assert bar_chart([], [], title="T") == "T"


class TestFigureBars:
    def test_renders_all_groups(self):
        from repro.eval import run_comparison

        comp = run_comparison(
            model="gcn", datasets=("cora",), scales={"cora": 0.3}
        )
        out = render_figure_bars(comp, "execution_time", title="Fig")
        assert "[cora]" in out
        for acc in comp.accelerators:
            assert acc in out
        assert "█" in out
