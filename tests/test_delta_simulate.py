"""Incremental re-simulation: mutation streams are bit-identical to
from-scratch runs, dirty tiles recompute alone, and the supporting
machinery (tile memo tier, partition-signature keys, keep-alive pools)
behaves as documented.
"""

import os

import numpy as np
import pytest

from repro.config import default_config
from repro.core.cycle_layer import _tile_keys, run_cycle_layer
from repro.core.simulator import _BUFFER_UTIL
from repro.graphs.delta import rewire_delta, tile_boundaries
from repro.graphs.generators import power_law_graph
from repro.graphs.delta import apply_delta
from repro.graphs.tiling import tile_graph
from repro.models.workload import LayerDims
from repro.models.zoo import get_model
from repro.perf.bench import clear_hot_path_caches
from repro.runtime.cache import ResultCache
from repro.runtime.executor import ProcessExecutor
from repro.runtime.jobs import ENV_TILE_CACHE_DIR, SimJob, execute_job
from repro.runtime.shards import clear_tile_memo, run_tile_shards

SEEDS = range(20)


@pytest.fixture
def tile_env(tmp_path, monkeypatch):
    """Point the per-tile cache env at a temp root, cleaning hot caches."""
    monkeypatch.setenv(ENV_TILE_CACHE_DIR, str(tmp_path / "tiles"))
    clear_hot_path_caches()
    yield str(tmp_path / "tiles")
    clear_hot_path_caches()


def _delta_for(job: SimJob, seed: int):
    from repro.graphs.datasets import load_dataset

    cfg = job.config
    graph = load_dataset(job.dataset, scale=job.scale, seed=job.seed)
    plan = tile_graph(
        graph,
        int(cfg.onchip_bytes * _BUFFER_UTIL),
        bytes_per_value=cfg.bytes_per_value,
    )
    bounds = tile_boundaries(plan)
    rng = np.random.default_rng(seed)
    tiles = rng.choice(plan.num_tiles, size=2, replace=False)
    rows = [int(bounds[t]) for t in tiles]
    return rewire_delta(graph, rows, seed=seed), plan.num_tiles


class TestAnalyticalTierIdentity:
    """Warm incremental aurora-tier runs equal from-scratch runs."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_warm_equals_cold(self, seed, tile_env, monkeypatch):
        cfg = default_config().scaled(array_k=8, pe_buffer_bytes=1024)
        base = SimJob(dataset="cora", hidden=16, num_layers=2, config=cfg)
        delta, num_tiles = _delta_for(base, seed)
        assert num_tiles >= 4
        execute_job(base)  # seed the per-tile cache
        from dataclasses import replace

        job = replace(base, mutations=(delta,))
        warm = execute_job(job)
        meta = warm.pop("_exec")
        assert meta["tiles_reused"] > 0
        assert meta["tiles_reused"] + meta["tiles_recomputed"] == meta["tiles"]

        monkeypatch.delenv(ENV_TILE_CACHE_DIR)
        clear_hot_path_caches()
        cold = execute_job(job)
        assert "_exec" not in cold
        assert warm == cold

    def test_no_cache_env_means_no_exec_meta(self, monkeypatch):
        monkeypatch.delenv(ENV_TILE_CACHE_DIR, raising=False)
        cfg = default_config().scaled(array_k=8, pe_buffer_bytes=1024)
        payload = execute_job(
            SimJob(dataset="cora", scale=0.2, hidden=16, config=cfg)
        )
        assert "_exec" not in payload


class TestCycleTierIdentity:
    """Cached cycle-tier layers equal uncached runs on mutated graphs."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_warm_equals_cold(self, seed, tmp_path):
        clear_hot_path_caches()
        cfg = default_config().scaled(array_k=4, pe_buffer_bytes=1024)
        g = power_law_graph(
            120, 480, exponent=2.1, num_features=8,
            feature_density=0.5, seed=seed,
        )
        capacity = int(cfg.onchip_bytes * _BUFFER_UTIL)
        plan = tile_graph(g, capacity, bytes_per_value=cfg.bytes_per_value)
        assert plan.num_tiles >= 2
        model = get_model("gcn")
        dims = LayerDims(g.num_features, 8)
        cache = ResultCache(tmp_path / "tiles")
        run_cycle_layer(model, plan, dims, config=cfg, cache=cache)

        delta = rewire_delta(g, [0, 60], seed=seed)
        child = apply_delta(g, delta)
        mplan = tile_graph(child, capacity, bytes_per_value=cfg.bytes_per_value)
        warm = run_cycle_layer(model, mplan, dims, config=cfg, cache=cache)
        assert warm.fanout["cache_hits"] > 0
        clear_hot_path_caches()
        cold = run_cycle_layer(model, mplan, dims, config=cfg, cache=None)
        assert [t.to_payload() for t in warm.tiles] == [
            t.to_payload() for t in cold.tiles
        ]


class TestPartitionSignatureKeys:
    """Tiles cached under one tiling configuration never satisfy another."""

    def test_two_partition_settings_give_disjoint_keys(self):
        g = power_law_graph(60, 240, exponent=2.1, num_features=8, seed=1)
        cfg = default_config().scaled(array_k=4, pe_buffer_bytes=1024)
        model = get_model("gcn")
        dims = LayerDims(8, 8)
        sig_a = {"capacity_bytes": 4096, "bytes_per_value": 8}
        sig_b = {"capacity_bytes": 8192, "bytes_per_value": 8}
        keys_a = _tile_keys([g], model, dims, cfg, "degree-aware", sig_a)
        keys_b = _tile_keys([g], model, dims, cfg, "degree-aware", sig_b)
        keys_none = _tile_keys([g], model, dims, cfg, "degree-aware", None)
        assert not set(keys_a) & set(keys_b)
        assert not set(keys_a) & set(keys_none)

    def test_cross_setting_probe_misses_end_to_end(self, tmp_path):
        clear_hot_path_caches()
        cfg = default_config().scaled(array_k=4, pe_buffer_bytes=1024)
        g = power_law_graph(
            60, 240, exponent=2.1, num_features=8, feature_density=0.5, seed=2
        )
        model = get_model("gcn")
        dims = LayerDims(g.num_features, 8)
        cache = ResultCache(tmp_path / "tiles")
        sig_a = {"capacity_bytes": 4096, "bytes_per_value": 8}
        sig_b = {"capacity_bytes": 8192, "bytes_per_value": 8}
        first = run_cycle_layer(
            model, [g], dims, config=cfg, cache=cache, partition_signature=sig_a
        )
        assert first.fanout["cache_hits"] == 0
        again = run_cycle_layer(
            model, [g], dims, config=cfg, cache=cache, partition_signature=sig_a
        )
        assert again.fanout["cache_hits"] == 1
        other = run_cycle_layer(
            model, [g], dims, config=cfg, cache=cache, partition_signature=sig_b
        )
        assert other.fanout["cache_hits"] == 0


class TestTileMemoTier:
    def _run(self, cache, keys, n=3):
        def worker(job):
            return {"tiles": [{"i": i} for i in job.tile_indices]}

        return run_tile_shards(
            [{"p": i} for i in range(n)],
            worker,
            kind="memo-test",
            tile_keys=keys,
            cache=cache,
        )

    def test_memory_tier_fronts_disk(self, tmp_path):
        clear_tile_memo()
        cache = ResultCache(tmp_path / "a")
        keys = [f"k{i}" for i in range(3)]
        first = self._run(cache, keys)
        assert first.stats["cache_hits"] == 0
        second = self._run(cache, keys)
        assert second.stats["cache_hits"] == 3
        assert second.stats["memo_hits"] == 3  # served from memory
        clear_tile_memo()
        third = self._run(cache, keys)
        assert third.stats["cache_hits"] == 3
        assert third.stats["memo_hits"] == 0  # disk still authoritative
        assert first.payloads == second.payloads == third.payloads

    def test_distinct_roots_do_not_alias(self, tmp_path):
        clear_tile_memo()
        keys = [f"k{i}" for i in range(3)]
        self._run(ResultCache(tmp_path / "a"), keys)
        other = self._run(ResultCache(tmp_path / "b"), keys)
        assert other.stats["cache_hits"] == 0
        assert other.stats["memo_hits"] == 0


def _pid_task(_job):
    return os.getpid()


class TestKeepAlivePool:
    def test_pool_persists_across_runs(self):
        with ProcessExecutor(1, keep_alive=True) as pool:
            first = [r.payload for r in pool.run([1, 2], fn=_pid_task)]
            second = [r.payload for r in pool.run([3], fn=_pid_task)]
            assert set(first) == set(second)  # same worker process
            pool.close()
            third = [r.payload for r in pool.run([4], fn=_pid_task)]
            assert set(third) != set(first)  # fresh pool after close

    def test_default_pool_is_per_run(self):
        pool = ProcessExecutor(1)
        first = [r.payload for r in pool.run([1], fn=_pid_task)]
        second = [r.payload for r in pool.run([2], fn=_pid_task)]
        assert set(first) != set(second)
