"""Power reporting on top of the energy model.

The paper measures dynamic + static power with PrimeTime PX over switching
activity.  Our substitution integrates the same information the simulator
already has — per-component energies and the activity windows from the
phase breakdown — into average power, a component report, and a simple
time-binned power trace (the waveform-style view PrimeTime produces).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.results import SimulationResult

__all__ = ["PowerReport", "PowerModel"]


@dataclass(frozen=True)
class PowerReport:
    """Average and per-component power of one simulated run."""

    average_watts: float
    peak_watts: float
    component_watts: dict[str, float]
    trace_watts: np.ndarray  # time-binned total power
    bin_seconds: float

    @property
    def duration_seconds(self) -> float:
        return self.bin_seconds * self.trace_watts.size


class PowerModel:
    """Derives power figures from a :class:`SimulationResult`.

    Activity placement: compute and NoC energy dissipate while their
    subsystems are busy (overlapped across the run), DRAM energy during
    the memory windows, and control energy uniformly.  The trace spreads
    each component's energy over its activity fraction of the timeline —
    a first-order waveform, sufficient for peak/average reporting.
    """

    #: Static (leakage) floor as a fraction of average dynamic power;
    #: 40 nm-class designs leak noticeably but are dynamic-dominated.
    STATIC_FRACTION = 0.1

    def report(self, result: SimulationResult, *, bins: int = 64) -> PowerReport:
        if bins < 1:
            raise ValueError("bins must be >= 1")
        total_s = result.total_seconds
        if total_s <= 0:
            raise ValueError("result has no duration")
        energy = result.energy
        avg = energy.total / total_s

        # Activity fractions, clipped to the run duration.
        br = result.breakdown
        frac_compute = min(1.0, br.compute_seconds / total_s) or 1.0
        frac_noc = min(1.0, br.noc_seconds / total_s) or 1.0
        frac_dram = min(1.0, br.dram_seconds / total_s) or 1.0

        component_watts = {
            "compute": energy.compute / total_s,
            "sram": energy.sram / total_s,
            "noc": energy.noc / total_s,
            "dram": energy.dram / total_s,
            "control": energy.control / total_s,
            "reconfiguration": energy.reconfiguration / total_s,
        }

        # Build the trace: each component contributes its energy over its
        # active prefix of the timeline (compute/NoC overlap from t=0; DRAM
        # bursts concentrated early in each window approximated as a
        # leading block), control spread uniformly.
        trace = np.zeros(bins, dtype=np.float64)
        bin_s = total_s / bins

        def spread(e_joules: float, fraction: float) -> None:
            active_bins = max(1, int(round(fraction * bins)))
            trace[:active_bins] += e_joules / (active_bins * bin_s)

        spread(energy.compute + energy.sram, frac_compute)
        spread(energy.noc, frac_noc)
        spread(energy.dram, frac_dram)
        trace += (energy.control + energy.reconfiguration) / total_s

        static = self.STATIC_FRACTION * avg
        trace += static
        avg_total = avg * (1.0 + self.STATIC_FRACTION)

        return PowerReport(
            average_watts=avg_total,
            peak_watts=float(trace.max()),
            component_watts=component_watts,
            trace_watts=trace,
            bin_seconds=bin_s,
        )
