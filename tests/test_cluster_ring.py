"""The hash ring's two load-bearing properties, plus API contracts.

Balance and minimal disruption are what make the cluster's shard
affinity worth having: balance keeps replicas evenly loaded, minimal
disruption keeps surviving replicas' warm caches valid when one leaves.
Both are deterministic (blake2b) so exact bounds are safe to pin.
"""

from collections import Counter

import pytest

from repro.cluster import DEFAULT_VNODES, HashRing, ring_point

KEYS = [f"job-{i:05d}" for i in range(20_000)]


def shares(ring, keys=KEYS):
    counts = Counter(ring.owner(key) for key in keys)
    return counts


class TestRingPoint:
    def test_deterministic(self):
        assert ring_point("abc") == ring_point("abc")

    def test_64_bit_range(self):
        for token in ("", "a", "replica-0#63", "x" * 100):
            assert 0 <= ring_point(token) < 2**64

    def test_distinct_tokens_distinct_points(self):
        points = {ring_point(f"t{i}") for i in range(1000)}
        assert len(points) == 1000


class TestMembership:
    def test_empty_ring(self):
        ring = HashRing()
        assert len(ring) == 0
        assert ring.nodes == []
        assert ring.preference("k") == []
        with pytest.raises(LookupError):
            ring.owner("k")

    def test_add_remove_roundtrip(self):
        ring = HashRing(["a", "b"])
        assert ring.nodes == ["a", "b"]
        assert "a" in ring
        ring.remove("a")
        assert "a" not in ring
        assert ring.nodes == ["b"]

    def test_duplicate_add_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add("a")

    def test_remove_unknown_rejected(self):
        with pytest.raises(KeyError):
            HashRing(["a"]).remove("b")

    def test_vnodes_validated(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_point_count(self):
        ring = HashRing(["a", "b", "c"], vnodes=16)
        assert ring.snapshot() == {
            "vnodes": 16,
            "nodes": ["a", "b", "c"],
            "points": 48,
        }


class TestBalance:
    """Max/min key share stays within 1.5x at the default vnode count.

    This is the acceptance bound from the cluster issue; the replica
    names mirror what the supervisor actually registers (stringified
    integer ids).
    """

    @pytest.mark.parametrize("replicas", [1, 2, 4, 8])
    def test_within_bound(self, replicas):
        ring = HashRing([str(i) for i in range(replicas)], vnodes=DEFAULT_VNODES)
        counts = shares(ring)
        assert len(counts) == replicas  # every replica owns something
        assert max(counts.values()) <= 1.5 * min(counts.values()), counts

    def test_single_node_owns_everything(self):
        ring = HashRing(["0"])
        assert shares(ring, KEYS[:100]) == {"0": 100}


class TestMinimalDisruption:
    def test_removal_moves_only_departed_keys(self):
        ring = HashRing([str(i) for i in range(4)])
        before = {key: ring.owner(key) for key in KEYS}
        ring.remove("2")
        for key in KEYS:
            after = ring.owner(key)
            if before[key] != "2":
                assert after == before[key], key
            else:
                assert after != "2"

    def test_addition_only_steals_keys(self):
        ring = HashRing(["0", "1", "2"])
        before = {key: ring.owner(key) for key in KEYS}
        ring.add("3")
        moved = sum(1 for key in KEYS if ring.owner(key) != before[key])
        for key in KEYS:
            after = ring.owner(key)
            assert after == before[key] or after == "3", key
        # The newcomer takes roughly its fair share, never more than
        # double it (same spirit as the balance bound).
        assert 0 < moved < 2 * len(KEYS) / 4


class TestPreference:
    def test_owner_leads(self):
        ring = HashRing([str(i) for i in range(4)])
        for key in KEYS[:200]:
            pref = ring.preference(key)
            assert pref[0] == ring.owner(key)
            assert sorted(pref) == ring.nodes  # all distinct, all members

    def test_count_limits(self):
        ring = HashRing([str(i) for i in range(4)])
        assert len(ring.preference("k", 2)) == 2
        assert len(ring.preference("k", 99)) == 4

    def test_failover_order_survives_removal(self):
        """The second preference becomes the owner when the first dies."""
        ring = HashRing([str(i) for i in range(4)])
        for key in KEYS[:200]:
            first, second = ring.preference(key, 2)
            ring.remove(first)
            assert ring.owner(key) == second
            ring.add(first)
