"""Single-flight deduplication + micro-batching over the job runner.

Two layers of collapsing between the HTTP handlers and the simulators:

* **single-flight** — at most one execution per job content hash is in
  flight at any moment.  A request arriving while "its" job is already
  queued or running simply awaits the same future and shares the
  result, so a stampede of identical requests costs one simulation.
* **micro-batching** — admitted unique jobs accumulate for a short
  window (``batch_window`` seconds, or until ``max_batch`` jobs) and go
  through :func:`repro.runtime.run_jobs` as *one* batch, amortizing the
  cache probe and (with a process executor) pool spin-up across
  requests instead of paying them per request.

The batch itself runs on a worker thread (`run_jobs_async`), keeping
the event loop responsive for admission and shedding while simulations
execute.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

from ..observe.events import HUB
from ..perf import PERF
from ..runtime.budget import BUDGET
from ..runtime.cache import ResultCache
from ..runtime.jobs import SimJob, job_key
from ..runtime.runner import JobOutcome, SweepReport, run_jobs_async
from ..telemetry import TRACER

__all__ = ["JobBatcher"]

#: Runner signature: a list of unique jobs in, a SweepReport out.
AsyncRunner = Callable[[list[SimJob]], Awaitable[SweepReport]]


class JobBatcher:
    """Collect compatible jobs and drain them through ``run_jobs``."""

    def __init__(
        self,
        *,
        cache: ResultCache | None = None,
        executor=None,
        batch_window: float = 0.005,
        max_batch: int = 16,
        runner: AsyncRunner | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        self.cache = cache
        self.executor = executor
        self.batch_window = batch_window
        self.max_batch = max_batch
        self._runner = runner or self._default_runner
        self._inflight: dict[str, asyncio.Future] = {}
        self._pending: list[tuple[str, SimJob]] = []
        self._flush_task: asyncio.Task | None = None
        self.batches_run = 0
        self.jobs_run = 0
        self.singleflight_joins = 0
        self._pool_active = 0
        self._pool_saved: int | None = None

    async def _default_runner(self, jobs: list[SimJob]) -> SweepReport:
        return await run_jobs_async(jobs, executor=self.executor, cache=self.cache)

    # ------------------------------------------------------------------
    # The batch pool and intra-job tile sharding share one machine-wide
    # worker budget (repro.runtime.budget): the pool leases its workers
    # while at least one batch is running, so a concurrent tile fan-out
    # on this process only gets the remainder — and the pool itself only
    # spawns what the budget grants, instead of both sides independently
    # sizing to the whole CPU count.  Mutation of ``max_workers`` is
    # safe: both hooks run on the event-loop thread, never inside the
    # worker-thread that executes the batch.
    def _acquire_pool(self) -> None:
        want = getattr(self.executor, "max_workers", None)
        if not want:
            return
        if self._pool_active == 0:
            self._pool_saved = want
            self.executor.max_workers = BUDGET.lease("serve-batch", want)
        self._pool_active += 1

    def _release_pool(self) -> None:
        if self._pool_saved is None:
            return
        self._pool_active -= 1
        if self._pool_active == 0:
            self.executor.max_workers = self._pool_saved
            self._pool_saved = None
            BUDGET.release("serve-batch")

    # ------------------------------------------------------------------
    async def submit(self, job: SimJob) -> tuple[JobOutcome, bool]:
        """Resolve one job to its outcome; ``True`` flags an in-flight join.

        Callers that enforce a timeout must shield this coroutine
        (``asyncio.wait_for(asyncio.shield(batcher.submit(job)), t)``)
        so that one caller's deadline cannot cancel an execution other
        requests are waiting on.
        """
        key = job_key(job)
        existing = self._inflight.get(key)
        if existing is not None:
            self.singleflight_joins += 1
            PERF.incr("serve.singleflight_join")
            outcome = await asyncio.shield(existing)
            return outcome, True

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self._pending.append((key, job))
        if len(self._pending) >= self.max_batch:
            batch = self._take_pending()
            await self._execute(batch)
        else:
            if self._flush_task is None or self._flush_task.done():
                self._flush_task = loop.create_task(self._flush_after_window())
        outcome = await asyncio.shield(future)
        return outcome, False

    # ------------------------------------------------------------------
    def _take_pending(self) -> list[tuple[str, SimJob]]:
        batch, self._pending = self._pending, []
        return batch

    async def _flush_after_window(self) -> None:
        await asyncio.sleep(self.batch_window)
        # Loop until nothing is pending: jobs submitted *while* a batch
        # is executing see this task as live and schedule no flush of
        # their own (submit() only arms a flush when no task is
        # running), so this task must pick them up or they strand.
        while True:
            batch = self._take_pending()
            if not batch:
                return
            await self._execute(batch)

    async def _execute(self, batch: list[tuple[str, SimJob]]) -> None:
        jobs = [job for _, job in batch]
        self.batches_run += 1
        self.jobs_run += len(jobs)
        PERF.incr("serve.batch")
        PERF.incr("serve.batch_jobs", len(jobs))
        if HUB.enabled:
            HUB.emit(
                "batch.flush",
                {
                    "jobs": len(jobs),
                    "batches_run": self.batches_run,
                    "keys": [key[:12] for key, _ in batch],
                },
            )
        self._acquire_pool()
        try:
            with TRACER.span("batch", {"jobs": len(jobs)}):
                report = await self._runner(jobs)
            by_key = {outcome.key: outcome for outcome in report.outcomes}
        except Exception as exc:  # noqa: BLE001 — isolate a runner crash
            by_key = {
                key: JobOutcome(
                    job, key, None, error=f"{type(exc).__name__}: {exc}"
                )
                for key, job in batch
            }
        finally:
            self._release_pool()
        for key, job in batch:
            future = self._inflight.pop(key, None)
            if future is None or future.done():
                continue
            outcome = by_key.get(key) or JobOutcome(
                job, key, None, error="runner returned no outcome for job"
            )
            future.set_result(outcome)

    # ------------------------------------------------------------------
    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    async def drain(self) -> None:
        """Await every queued and in-flight execution (drain path)."""
        while self._pending or self._inflight:
            if self._flush_task is not None and not self._flush_task.done():
                await asyncio.wait({self._flush_task})
                continue
            futures = list(self._inflight.values())
            if futures:
                await asyncio.wait(futures)
            else:
                await asyncio.sleep(0)

    def snapshot(self) -> dict:
        """Stats view for ``/stats``."""
        return {
            "batch_window_seconds": self.batch_window,
            "max_batch": self.max_batch,
            "pending": len(self._pending),
            "inflight": len(self._inflight),
            "batches_run": self.batches_run,
            "jobs_run": self.jobs_run,
            "singleflight_joins": self.singleflight_joins,
            "pool_batches_active": self._pool_active,
        }
