"""Adversarial synthetic workloads: registry, shapes, determinism.

These graphs stress the mapper and NoC in ways the power-law datasets
do not (a single mega-hub, strict bipartite traffic, a dense near-clique
core), so they ride the DSE and regression sweeps as named workloads.
"""

import pytest

from repro.graphs import (
    ADVERSARIAL_DATASETS,
    bipartite_graph,
    list_adversarial_datasets,
    near_clique_hub_graph,
)
from repro.graphs.datasets import (
    DATASETS,
    dataset_profile,
    list_datasets,
    load_dataset,
)


class TestRegistry:
    def test_paper_registry_is_untouched(self):
        # The serving/CLI dataset list is pinned to the paper's five
        # datasets; adversarial workloads live in their own registry.
        assert list_datasets() == ["cora", "citeseer", "pubmed", "nell", "reddit"]
        assert not set(ADVERSARIAL_DATASETS) & set(DATASETS)

    def test_adversarial_names(self):
        assert list_adversarial_datasets() == [
            "adv-star",
            "adv-bipartite",
            "adv-hubclique",
        ]

    def test_profiles_resolve(self):
        for name in list_adversarial_datasets():
            prof = dataset_profile(name)
            assert prof.name == name
            assert prof.num_vertices > 0 and prof.num_edges > 0

    def test_unknown_name_lists_both_registries(self):
        with pytest.raises(KeyError, match="adv-star"):
            dataset_profile("nonesuch")


class TestShapes:
    @pytest.mark.parametrize("name", ["adv-star", "adv-bipartite", "adv-hubclique"])
    def test_scaled_load_matches_profile(self, name):
        prof = dataset_profile(name)
        graph = load_dataset(name, scale=0.25)
        assert graph.num_vertices == max(1, int(prof.num_vertices * 0.25))
        assert graph.num_features == prof.num_features
        assert graph.num_edges > 0

    def test_star_is_hub_dominated(self):
        graph = load_dataset("adv-star", scale=0.25)
        degrees = graph.degrees
        # One vertex touches essentially every edge endpoint.
        assert degrees.max() > 100 * degrees.mean()

    def test_bipartite_has_no_within_partition_edges(self):
        graph = bipartite_graph(32, 48, 256, seed=3)
        for v in range(32):
            assert all(u >= 32 for u in graph.neighbors(v))
        for v in range(32, 80):
            assert all(u < 32 for u in graph.neighbors(v))

    def test_near_clique_core_is_dense(self):
        clique = 16
        graph = near_clique_hub_graph(64, clique, seed=5)
        core_edges = sum(
            1
            for v in range(clique)
            for u in graph.neighbors(v)
            if u < clique
        )
        possible = clique * (clique - 1)
        assert core_edges / possible > 0.5


class TestDeterminism:
    @pytest.mark.parametrize("name", ["adv-star", "adv-bipartite", "adv-hubclique"])
    def test_content_key_is_stable(self, name):
        a = load_dataset(name, scale=0.25)
        b = load_dataset(name, scale=0.25)
        assert a.content_key == b.content_key

    def test_seed_changes_content(self):
        a = load_dataset("adv-bipartite", scale=0.25, seed=0)
        b = load_dataset("adv-bipartite", scale=0.25, seed=1)
        assert a.content_key != b.content_key

    def test_generators_deterministic_by_seed(self):
        a = bipartite_graph(32, 48, 256, seed=9)
        b = bipartite_graph(32, 48, 256, seed=9)
        assert a.content_key == b.content_key
        c = near_clique_hub_graph(64, 16, seed=9)
        d = near_clique_hub_graph(64, 16, seed=9)
        assert c.content_key == d.content_key
