"""Sensitivity analysis over the calibrated model constants.

The baseline models encode published dataflow properties plus a handful
of calibrated effective-bandwidth constants (DESIGN.md documents which is
which).  This module perturbs those constants systematically and reports
how the headline conclusions respond — the robustness check reviewers ask
for: *do the paper's qualitative results survive if a calibrated knob is
off by ±X%?*
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..baselines import BaselineTraits
from ..config import AcceleratorConfig
from ..runtime import ResultCache, SimJob, run_jobs

__all__ = ["SensitivityPoint", "SensitivityReport", "sweep_trait"]

#: Trait fields it makes sense to perturb multiplicatively.
NUMERIC_TRAITS = (
    "traffic_factor",
    "comm_ports",
    "comm_service_cycles",
    "feature_reuse",
    "imbalance_sensitivity",
    "redundancy_elimination",
    "buffer_traffic_factor",
)


@dataclass(frozen=True)
class SensitivityPoint:
    """One perturbed run of a baseline against the fixed Aurora result."""

    factor: float
    trait_value: float
    speedup_vs_aurora: float  # baseline_time / aurora_time


@dataclass(frozen=True)
class SensitivityReport:
    """Sweep of one trait of one baseline on one dataset."""

    baseline: str
    trait: str
    dataset: str
    points: tuple[SensitivityPoint, ...]

    @property
    def aurora_always_wins(self) -> bool:
        return all(p.speedup_vs_aurora >= 1.0 for p in self.points)

    @property
    def spread(self) -> float:
        """Max/min speedup ratio across the sweep (1.0 = insensitive)."""
        vals = [p.speedup_vs_aurora for p in self.points]
        return max(vals) / min(vals)

    def monotonic(self) -> bool:
        vals = [p.speedup_vs_aurora for p in self.points]
        increasing = all(b >= a - 1e-12 for a, b in zip(vals, vals[1:]))
        decreasing = all(b <= a + 1e-12 for a, b in zip(vals, vals[1:]))
        return increasing or decreasing


def _clip_trait(trait: str, value: float) -> float:
    """Keep perturbed values inside their semantic domain."""
    if trait in ("feature_reuse", "redundancy_elimination", "imbalance_sensitivity"):
        return min(max(value, 0.0), 0.99)
    if trait == "comm_ports":
        return max(1.0, value)
    return max(value, 1e-6)


def sweep_trait(
    traits: BaselineTraits,
    trait: str,
    *,
    dataset: str = "cora",
    scale: float = 1.0,
    factors: tuple[float, ...] = (0.5, 0.75, 1.0, 1.25, 1.5),
    config: AcceleratorConfig | None = None,
    hidden: int = 64,
    jobs: int = 1,
    cache: ResultCache | bool | None = None,
    executor=None,
) -> SensitivityReport:
    """Perturb one numeric trait of a baseline and re-run the comparison.

    Aurora's result is computed once; each factor rescales the trait and
    re-simulates the baseline.  The whole sweep is one
    :func:`repro.runtime.run_jobs` batch: factors whose clipped value
    coincides are simulated once, ``jobs``/``cache``/``executor`` choose
    how the batch executes without changing any number.
    """
    if trait not in NUMERIC_TRAITS:
        raise ValueError(
            f"trait {trait!r} is not sweepable; choose from {NUMERIC_TRAITS}"
        )
    common = dict(
        model="gcn",
        dataset=dataset,
        scale=scale,
        hidden=hidden,
        num_layers=2,
        config=config,
    )
    aurora_job = SimJob(accelerator="aurora", **common)

    base_value = getattr(traits, trait)
    values: list[float | int] = []
    for factor in factors:
        value = _clip_trait(trait, base_value * factor)
        if trait == "comm_ports":
            value = int(round(value))
        values.append(value)
    baseline_jobs = [
        SimJob(
            accelerator=traits.name,
            strict=False,
            baseline_traits=replace(traits, **{trait: value}),
            **common,
        )
        for value in values
    ]

    report = run_jobs(
        [aurora_job, *baseline_jobs], executor=executor, cache=cache, jobs_n=jobs
    )
    report.raise_on_error()
    aurora, *perturbed = report.results()
    points = [
        SensitivityPoint(
            factor=factor,
            trait_value=float(value),
            speedup_vs_aurora=result.total_seconds / aurora.total_seconds,
        )
        for factor, value, result in zip(factors, values, perturbed)
    ]
    return SensitivityReport(
        baseline=traits.name,
        trait=trait,
        dataset=dataset,
        points=tuple(points),
    )
