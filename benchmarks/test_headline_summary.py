"""E12 — the abstract's headline: average reductions vs each baseline.

Paper: 85/66/47/28/38 % execution-time reduction and 89/77/42/69/71 %
energy reduction vs HyGCN / AWB-GCN / GCNAX / ReGNN / FlowGNN.
"""

from conftest import emit

from repro.eval import render_headline_summary

PAPER_TIME = {"hygcn": 85, "awb-gcn": 66, "gcnax": 47, "regnn": 28, "flowgnn": 38}
PAPER_ENERGY = {"hygcn": 89, "awb-gcn": 77, "gcnax": 42, "regnn": 69, "flowgnn": 71}


def test_headline_summary(benchmark, sweep):
    text = benchmark(render_headline_summary, sweep)
    emit(text)
    time_reds = {
        b: sweep.average_reduction_vs("execution_time", b) for b in PAPER_TIME
    }
    energy_reds = {
        b: sweep.average_reduction_vs("energy", b) for b in PAPER_ENERGY
    }
    # Ordering of baselines matches the paper for both metrics.
    assert max(time_reds, key=time_reds.get) == "hygcn"
    assert max(energy_reds, key=energy_reds.get) == "hygcn"
    assert energy_reds["awb-gcn"] > energy_reds["gcnax"]
    # Energy reductions within 15 points of the published averages.
    for base, paper in PAPER_ENERGY.items():
        assert abs(energy_reds[base] - paper) < 15, (base, energy_reds[base])
    # Time reductions within 25 points (exec time folds every subsystem, so
    # it carries the largest modelling slack; ordering is the hard check).
    for base, paper in PAPER_TIME.items():
        assert abs(time_reds[base] - paper) < 25, (base, time_reds[base])
        assert time_reds[base] > 0  # Aurora always wins on average
