"""The simulation service: asyncio HTTP front end over the job runtime.

Request path::

    client ──HTTP──► admission (bounded, sheds 429)
                        │
                        ▼
                 protocol.parse  (canonical SimJob, 400 on bad input)
                        │
                        ▼
                 JobBatcher      (single-flight + micro-batch)
                        │
                        ▼
                 run_jobs on a worker thread
                 (ResultCache hit → no simulation at all)

Endpoints: ``POST /simulate``, ``GET /healthz``, ``GET /stats``,
``GET /metrics`` (Prometheus text), ``GET /trace`` (buffered spans),
``GET /result/<key>`` (cache-only lookup, the cluster peer-fetch tier).
Lifecycle: SIGTERM/SIGINT stop the listener, finish in-flight work
(bounded by ``drain_timeout``), then exit 0.

When run as a cluster replica (``repro serve --replica-id N``) the
service reports its identity in ``/healthz``/``/stats`` and as a
``repro_replica_info{replica="N"}`` gauge so the router's aggregated
telemetry can attribute every series to a shard.
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
from collections import deque
from urllib.parse import parse_qs

from ..dse.service import DSEManager
from ..observe.events import HUB
from ..observe.service import ui_asset
from ..perf import PERF
from ..runtime.budget import BUDGET
from ..runtime.cache import ResultCache
from ..runtime.jobs import SimJob
from ..telemetry import METRICS, TRACER
from ..telemetry.trace import valid_trace_id
from .admission import AdmissionController
from .batcher import JobBatcher
from .http import (
    HTTPError,
    HTTPRequest,
    RawResponse,
    read_request,
    render_bytes,
    render_response,
    render_text,
)
from .protocol import ProtocolError, encode_outcome, parse_simulation_request

__all__ = ["LatencyWindow", "SimulationService", "ServerThread", "serve_forever"]

#: Header carrying the client's remaining deadline budget (seconds); the
#: server caps its per-request timeout to it so work the client already
#: gave up on is cancelled instead of computed.
DEADLINE_HEADER = "x-repro-deadline"
#: Request/response header carrying the trace id: clients may supply one
#: (hex, ≤32 chars) to adopt; the server always echoes the request's
#: trace id back so the client can fetch its tree from ``/trace``.
TRACE_HEADER = "x-repro-trace-id"


def _nearest_rank(ordered: list[float], q: float) -> float | None:
    if not ordered:
        return None
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


class LatencyWindow:
    """Sliding window of request latencies with percentile readout.

    Thread-safe: ``add`` runs on the event loop but ``snapshot`` may be
    called from any thread (benches, tests), and a torn read of
    ``(samples, count)`` would report more samples than the window has
    seen.  One lock, one consistent copy per readout.
    """

    def __init__(self, size: int = 512) -> None:
        self._samples: deque[float] = deque(maxlen=size)
        self._lock = threading.Lock()
        self.count = 0

    def add(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)
            self.count += 1

    def percentile(self, q: float) -> float | None:
        """Nearest-rank percentile over the window, ``None`` when empty."""
        with self._lock:
            ordered = sorted(self._samples)
        return _nearest_rank(ordered, q)

    def snapshot(self) -> dict:
        with self._lock:
            window = list(self._samples)
            count = self.count
        ordered = sorted(window)
        return {
            "count": count,
            "window": len(window),
            "mean_seconds": sum(window) / len(window) if window else None,
            "p50_seconds": _nearest_rank(ordered, 0.50),
            "p95_seconds": _nearest_rank(ordered, 0.95),
        }


class SimulationService:
    """Routes, counters, and lifecycle for one service instance."""

    def __init__(
        self,
        *,
        cache: ResultCache | None = None,
        executor=None,
        queue_depth: int = 64,
        batch_window: float = 0.005,
        max_batch: int = 16,
        request_timeout: float | None = None,
        runner=None,
        replica_id: str | None = None,
        retry_after_hint: float = 0.1,
        tile_cache: ResultCache | None = None,
        dse_artifact_dir=None,
        max_dse_searches: int = 2,
        observe=None,
    ) -> None:
        self.cache = cache
        self.tile_cache = tile_cache
        #: Optional :class:`repro.observe.ObserveState`; when set, the
        #: service mounts ``GET /observe`` (WebSocket) + ``/observer``
        #: (dashboard) and publishes lifecycle events into its hub.
        self.observe = observe
        # Async design-space searches share this replica's result cache:
        # a search warms the serving path and vice versa.  Searches run
        # on their own daemon threads with a serial evaluator so they
        # never contend for the batcher's executor.
        self.dse = DSEManager(
            cache=cache,
            artifact_dir=dse_artifact_dir,
            max_active=max_dse_searches,
            replica_id=replica_id or "0",
        )
        # Aggregated per-tile reuse across every request this instance
        # served — the service-level view of incremental re-simulation.
        self.tile_counters = {"tiles_reused": 0, "tiles_recomputed": 0}
        self.request_timeout = request_timeout
        self.replica_id = replica_id
        self.retry_after_hint = retry_after_hint
        self.admission = AdmissionController(queue_depth)
        self.batcher = JobBatcher(
            cache=cache,
            executor=executor,
            batch_window=batch_window,
            max_batch=max_batch,
            runner=runner,
        )
        self.latency = LatencyWindow()
        self.counters = {
            "requests": 0,
            "completed": 0,
            "errors": 0,
            "timeouts": 0,
            "bad_requests": 0,
        }
        self._requests_total = METRICS.counter(
            "repro_requests_total",
            help="Simulation requests by response status",
            labelnames=("status",),
        )
        self._request_seconds = METRICS.histogram(
            "repro_request_seconds",
            help="End-to-end /simulate latency as observed by the server",
        )
        if replica_id is not None:
            METRICS.gauge(
                "repro_replica_info",
                help="Identity of this process as a cluster replica",
                labelnames=("replica",),
            ).labels(replica=replica_id).set(1)
        self._started = time.monotonic()

    # -- connection handling -------------------------------------------
    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection, one request, one ``Connection: close`` reply."""
        try:
            try:
                request = await read_request(reader)
            except HTTPError as exc:
                self.counters["bad_requests"] += 1
                writer.write(render_response(400, {"error": str(exc)}))
                await writer.drain()
                return
            if request is None:
                return
            # The WebSocket upgrade leaves HTTP entirely: the observe
            # broadcaster owns the raw streams for the connection's
            # lifetime instead of the one-reply dispatch below.
            if (
                self.observe is not None
                and request.path.partition("?")[0] == "/observe"
                and "websocket" in request.headers.get("upgrade", "").lower()
            ):
                await self.observe.broadcaster.handle_client(
                    request, reader, writer
                )
                return
            try:
                reply = await self.dispatch(request)
            except Exception as exc:  # noqa: BLE001 — a handler bug must
                # not kill the connection loop silently
                self.counters["errors"] += 1
                reply = 500, {"error": f"{type(exc).__name__}: {exc}"}
            # Handlers return (status, payload) or (status, payload, headers).
            if len(reply) == 3:
                status, payload, headers = reply
                headers = dict(headers) if headers else {}
            else:
                status, payload = reply
                headers = {}
            if isinstance(payload, RawResponse):
                writer.write(
                    render_bytes(
                        status, payload.body, payload.content_type,
                        headers=headers or None,
                    )
                )
            elif isinstance(payload, str):
                writer.write(render_text(status, payload))
            else:
                trace_id = payload.get("trace_id")
                if trace_id:
                    headers.setdefault("X-Repro-Trace-Id", str(trace_id))
                writer.write(
                    render_response(status, payload, headers=headers or None)
                )
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def dispatch(self, request: HTTPRequest) -> tuple:
        """Route one request; returns ``(status, payload[, headers])``."""
        path, _, query = request.path.partition("?")
        if path == "/healthz":
            if request.method != "GET":
                return 405, {"error": "healthz is GET-only"}
            return 200, self._healthz()
        if path == "/stats":
            if request.method != "GET":
                return 405, {"error": "stats is GET-only"}
            return 200, self.stats()
        if path == "/metrics":
            if request.method != "GET":
                return 405, {"error": "metrics is GET-only"}
            return 200, METRICS.render_prometheus()
        if path == "/trace":
            if request.method != "GET":
                return 405, {"error": "trace is GET-only"}
            return 200, self._trace(query)
        if path.startswith("/result/"):
            if request.method != "GET":
                return 405, {"error": "result is GET-only"}
            return self._result(path[len("/result/"):])
        if path == "/simulate":
            if request.method != "POST":
                return 405, {"error": "simulate is POST-only"}
            return await self._simulate(request)
        if path == "/dse":
            if request.method != "POST":
                return 405, {"error": "dse is POST-only"}
            return self._dse_start(request)
        if path.startswith("/dse/"):
            return self._dse_poll(request, path[len("/dse/"):])
        if path == "/observe":
            if self.observe is None:
                return 404, {"error": "observability is off (start with --observe)"}
            # Reaching dispatch means handle() saw no upgrade header.
            return 400, {"error": "GET /observe requires a websocket upgrade"}
        if path == "/observer" or path.startswith("/observer/"):
            if self.observe is None:
                return 404, {"error": "observability is off (start with --observe)"}
            return self._observer_asset(request, path)
        return 404, {"error": f"no such endpoint: {path}"}

    def _observer_asset(self, request: HTTPRequest, path: str) -> tuple:
        """Serve the static dashboard (whitelisted files only)."""
        if request.method != "GET":
            return 405, {"error": "observer is GET-only"}
        name = path[len("/observer"):].lstrip("/")
        asset = ui_asset(name)
        if asset is None:
            return 404, {"error": f"no such asset: {name}"}
        body, content_type = asset
        return 200, RawResponse(body, content_type)

    # -- endpoints ------------------------------------------------------
    def _healthz(self) -> dict:
        # ``inflight`` + ``uptime_seconds`` are the supervisor's health
        # contract: a *busy* replica answers with inflight > 0 and a
        # growing uptime, a *hung* one does not answer at all.
        payload = {
            "status": "draining" if self.admission.draining else "ok",
            "in_flight": self.admission.in_flight,
            "inflight": self.admission.in_flight,
            "uptime_seconds": time.monotonic() - self._started,
        }
        if self.replica_id is not None:
            payload["replica_id"] = self.replica_id
        return payload

    def _result(self, key: str) -> tuple[int, dict]:
        """Cache-only lookup by job content hash (the peer-fetch tier).

        Never computes: a miss is a 404, so peers can probe each other's
        warm shards cheaply before falling back to a real simulation.
        """
        if not key or len(key) > 128 or not all(
            c in "0123456789abcdef" for c in key
        ):
            return 400, {"error": f"malformed result key: {key[:80]!r}"}
        if self.cache is None:
            return 404, {"error": "no result cache configured", "key": key}
        result = self.cache.load(key)
        if result is None:
            return 404, {"error": "result not cached", "key": key}
        return 200, {"key": key, "cached": True, "result": result}

    def stats(self) -> dict:
        return {
            "status": "draining" if self.admission.draining else "ok",
            "replica_id": self.replica_id,
            "uptime_seconds": time.monotonic() - self._started,
            "requests": dict(self.counters),
            "admission": self.admission.snapshot(),
            "batcher": self.batcher.snapshot(),
            "cache": self.cache.stats.as_dict() if self.cache is not None else None,
            "tile_cache": self._tile_cache_stats(),
            "latency": self.latency.snapshot(),
            "telemetry": TRACER.snapshot(),
            "worker_budget": BUDGET.snapshot(),
            "dse": self.dse.stats(),
            "observe": (
                self.observe.snapshot() if self.observe is not None else None
            ),
        }

    def _tile_cache_stats(self) -> dict | None:
        """Per-tile sub-key reuse section of ``/stats``.

        Combines the service-level reuse counters (summed from each
        response's exec meta) with the tile cache's own hit/miss and
        on-disk footprint, when one is configured.
        """
        if self.tile_cache is None and not any(self.tile_counters.values()):
            return None
        payload: dict = dict(self.tile_counters)
        if self.tile_cache is not None:
            payload["stats"] = self.tile_cache.stats.as_dict()
            disk = self.tile_cache.disk_stats()
            payload["entries"] = disk["entries"]
            payload["bytes"] = disk["bytes"]
        return payload

    def _dse_start(self, request: HTTPRequest) -> tuple:
        """``POST /dse``: accept a budgeted async search, return its id.

        202 + a pollable ``/dse/<id>`` handle on success; 400 for a
        malformed or over-budget spec; 429 (with Retry-After) when the
        replica is already running its maximum concurrent searches.
        """
        try:
            body = request.json()
        except HTTPError as exc:
            self.counters["bad_requests"] += 1
            return 400, {"error": str(exc)}
        try:
            accepted = self.dse.start(body)
        except ValueError as exc:
            self.counters["bad_requests"] += 1
            return 400, {"error": str(exc)}
        except (KeyError, TypeError) as exc:
            self.counters["bad_requests"] += 1
            return 400, {"error": f"bad search spec: {exc}"}
        except RuntimeError as exc:
            return 429, {"error": str(exc)}, {
                "Retry-After": f"{self.retry_after_hint:.3f}"
            }
        return 202, accepted

    def _dse_poll(self, request: HTTPRequest, rest: str) -> tuple:
        """``GET /dse/<id>`` progress polling, ``POST /dse/<id>/cancel``."""
        if rest.endswith("/cancel"):
            if request.method != "POST":
                return 405, {"error": "cancel is POST-only"}
            search_id = rest[: -len("/cancel")]
            if self.dse.cancel(search_id):
                return 202, {"search_id": search_id, "status": "cancelling"}
            return 404, {"error": f"no such search: {search_id}"}
        if request.method != "GET":
            return 405, {"error": "dse status is GET-only"}
        payload = self.dse.status(rest)
        if payload is None:
            return 404, {"error": f"no such search: {rest}"}
        return 200, payload

    def _trace(self, query: str) -> dict:
        """Buffered spans, optionally filtered to one trace id."""
        params = parse_qs(query)
        trace_id = valid_trace_id((params.get("trace_id") or [None])[0])
        spans = TRACER.buffer.spans(trace_id=trace_id)
        try:
            limit = int((params.get("limit") or ["0"])[0])
        except ValueError:
            limit = 0
        if limit > 0:
            spans = spans[-limit:]
        return {
            "trace_id": trace_id,
            "count": len(spans),
            "spans": [span.to_dict() for span in spans],
        }

    async def _simulate(self, request: HTTPRequest) -> tuple:
        trace_id = valid_trace_id(request.headers.get(TRACE_HEADER))
        start = time.perf_counter()
        with TRACER.span(
            "http", {"method": request.method, "path": "/simulate"},
            trace_id=trace_id,
        ) as span:
            # The request id correlates the lifecycle events of one
            # request; the trace id doubles as it when tracing is on.
            rid = span.trace_id or f"r{self.counters['requests'] + 1}"
            if HUB.enabled:
                HUB.emit(
                    "request.received",
                    {"rid": rid, "path": "/simulate", "replica": self.replica_id},
                )
            reply = await self._simulate_admitted(request, rid)
            status, payload = reply[0], reply[1]
            span.set(status=status)
        self._requests_total.labels(status=str(status)).inc()
        self._request_seconds.observe(time.perf_counter() - start)
        if span.trace_id is not None and isinstance(payload, dict):
            payload.setdefault("trace_id", span.trace_id)
        return reply

    async def _simulate_admitted(self, request: HTTPRequest, rid: str) -> tuple:
        self.counters["requests"] += 1
        PERF.incr("serve.request")
        with TRACER.span("admission") as adm:
            admitted = self.admission.try_acquire()
            adm.set(admitted=admitted, in_flight=self.admission.in_flight)
        if not admitted:
            PERF.incr("serve.shed")
            status = 503 if self.admission.draining else 429
            if HUB.enabled:
                HUB.emit(
                    "request.shed",
                    {
                        "rid": rid,
                        "status": status,
                        "reason": "draining" if status == 503 else "queue_full",
                    },
                )
            # Retry-After tells the resilient client exactly how long to
            # back off instead of guessing with exponential delays.
            retry_after = {"Retry-After": f"{self.retry_after_hint:.3f}"}
            if status == 503:
                return 503, {"error": "service is draining"}, retry_after
            return 429, {
                "error": "queue full, request shed",
                "queue_depth": self.admission.max_pending,
            }, retry_after
        if HUB.enabled:
            HUB.emit(
                "request.admitted",
                {"rid": rid, "in_flight": self.admission.in_flight},
            )
        try:
            try:
                body = request.json()
                job = parse_simulation_request(body)
            except (HTTPError, ProtocolError) as exc:
                self.counters["bad_requests"] += 1
                if HUB.enabled:
                    HUB.emit(
                        "request.rejected",
                        {"rid": rid, "status": 400, "error": str(exc)},
                    )
                return 400, {"error": str(exc)}
            return await self._run(job, self._effective_timeout(request), rid)
        finally:
            self.admission.release()

    def _effective_timeout(self, request: HTTPRequest) -> float | None:
        """Per-request budget: server default capped by the client header."""
        budgets = []
        if self.request_timeout is not None:
            budgets.append(self.request_timeout)
        header = request.headers.get(DEADLINE_HEADER)
        if header:
            try:
                budgets.append(max(0.0, float(header)))
            except ValueError:
                pass
        return min(budgets) if budgets else None

    async def _run(
        self, job: SimJob, timeout: float | None, rid: str = ""
    ) -> tuple[int, dict]:
        start = time.perf_counter()
        try:
            with PERF.timer("serve.request"), TRACER.span(
                "batcher", {"key": job.key[:12]}
            ):
                # Shield: a timeout abandons *this* request, never the
                # shared execution other single-flight waiters joined.
                outcome, joined = await asyncio.wait_for(
                    asyncio.shield(self.batcher.submit(job)), timeout
                )
        except asyncio.TimeoutError:
            self.counters["timeouts"] += 1
            PERF.incr("serve.timeout")
            if HUB.enabled:
                HUB.emit(
                    "request.timeout",
                    {"rid": rid, "timeout_seconds": timeout, "key": job.key},
                )
            return 504, {
                "error": f"request exceeded its {timeout:g}s budget",
                "key": job.key,
            }
        latency = time.perf_counter() - start
        self.latency.add(latency)
        if not outcome.ok:
            self.counters["errors"] += 1
            PERF.incr("serve.error")
            if HUB.enabled:
                HUB.emit(
                    "request.error",
                    {"rid": rid, "error": outcome.error, "key": outcome.key},
                )
            return 500, {"error": outcome.error, "key": outcome.key}
        self.counters["completed"] += 1
        if HUB.enabled:
            HUB.emit(
                "request.completed",
                {
                    "rid": rid,
                    "status": 200,
                    "latency_seconds": latency,
                    "cached": outcome.cached,
                    "joined": joined,
                    "key": outcome.key,
                },
            )
        PERF.incr("serve.cache_hit" if outcome.cached else "serve.cache_miss")
        if outcome.exec_meta is not None:
            self.tile_counters["tiles_reused"] += outcome.exec_meta.get(
                "tiles_reused", 0
            )
            self.tile_counters["tiles_recomputed"] += outcome.exec_meta.get(
                "tiles_recomputed", 0
            )
        return 200, encode_outcome(outcome, joined=joined, latency_seconds=latency)

    # -- lifecycle ------------------------------------------------------
    def observe_startup(self) -> None:
        """Attach the observe sinks on the serving loop (if configured)."""
        if self.observe is not None:
            self.observe.startup(
                asyncio.get_running_loop(), stats_fn=self._observe_stats
            )

    async def observe_shutdown(self) -> None:
        if self.observe is not None:
            await self.observe.shutdown()

    def _observe_stats(self) -> dict:
        """The ``stats.tick`` payload: gauge state, not cumulative dumps."""
        return {
            "admission": self.admission.snapshot(),
            "batcher": self.batcher.snapshot(),
            "latency": self.latency.snapshot(),
            "worker_budget": BUDGET.snapshot(),
        }

    def begin_drain(self) -> None:
        self.admission.begin_drain()

    async def drain(self, timeout: float | None = None) -> bool:
        """Finish in-flight work; ``False`` if ``timeout`` expired first."""
        deadline = None if timeout is None else time.monotonic() + timeout
        remaining = timeout
        drained = await self.admission.wait_drained(remaining)
        if not drained:
            return False
        if deadline is not None:
            remaining = max(0.0, deadline - time.monotonic())
        try:
            await asyncio.wait_for(self.batcher.drain(), remaining)
        except asyncio.TimeoutError:
            return False
        return True


async def serve_forever(
    service: SimulationService,
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    drain_timeout: float = 30.0,
    install_signals: bool = True,
    ready: "asyncio.Event | None" = None,
) -> int:
    """Run the service until SIGTERM/SIGINT, drain, and return exit 0.

    Prints one ``listening on host:port`` line so wrappers (the CI
    smoke script, the e2e tests) can discover an ephemeral port.
    """
    server = await asyncio.start_server(service.handle, host, port)
    service.observe_startup()
    bound_host, bound_port = server.sockets[0].getsockname()[:2]
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    if install_signals:
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without signal support
    print(f"repro-serve: listening on {bound_host}:{bound_port}", flush=True)
    if ready is not None:
        ready.set()
    await stop.wait()
    print("repro-serve: draining", flush=True)
    service.begin_drain()
    server.close()
    await server.wait_closed()
    clean = await service.drain(timeout=drain_timeout)
    await service.observe_shutdown()
    print(
        "repro-serve: drained, exiting"
        if clean
        else "repro-serve: drain timed out, exiting",
        flush=True,
    )
    return 0 if clean else 1


class ServerThread:
    """Host a service on a background thread (tests and benches).

    The thread runs its own event loop; :meth:`start` blocks until the
    listener is bound and returns ``(host, port)``, :meth:`stop`
    triggers the same drain path SIGTERM takes and joins the thread.
    """

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        drain_timeout: float = 30.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        self.address: tuple[str, int] | None = None
        self.exit_code: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._started = threading.Event()
        self._thread: threading.Thread | None = None

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main() -> int:
            self._stop = asyncio.Event()
            server = await asyncio.start_server(
                self.service.handle, self.host, self.port
            )
            self.service.observe_startup()
            self.address = server.sockets[0].getsockname()[:2]
            self._started.set()
            await self._stop.wait()
            self.service.begin_drain()
            server.close()
            await server.wait_closed()
            clean = await self.service.drain(timeout=self.drain_timeout)
            await self.service.observe_shutdown()
            return 0 if clean else 1

        try:
            self.exit_code = self._loop.run_until_complete(main())
        finally:
            self._started.set()  # unblock start() even on a crash
            self._loop.close()

    def start(self, timeout: float = 10.0) -> tuple[str, int]:
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("server thread failed to start in time")
        if self.address is None:
            raise RuntimeError("server thread crashed during startup")
        return self.address

    def stop(self, timeout: float = 30.0) -> int | None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout)
        return self.exit_code

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
