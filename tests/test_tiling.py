"""Unit tests for graph tiling."""

import numpy as np
import pytest

from repro.graphs import (
    chain_graph,
    power_law_graph,
    tile_footprint_bytes,
    tile_graph,
)


class TestFootprint:
    def test_feature_dominated(self):
        fp = tile_footprint_bytes(10, 0, 100)
        assert fp == 10 * 100 * 8 + 11 * 8

    def test_edges_add_structure(self):
        with_edges = tile_footprint_bytes(10, 50, 100)
        without = tile_footprint_bytes(10, 0, 100)
        assert with_edges == without + 50 * 8

    def test_edge_embeddings(self):
        fp = tile_footprint_bytes(4, 6, 8, edge_feature_dim=3)
        assert fp == 4 * 8 * 8 + 11 * 8 + 6 * 3 * 8

    def test_fp32_halves_features(self):
        fp64 = tile_footprint_bytes(10, 0, 100, bytes_per_value=8)
        fp32 = tile_footprint_bytes(10, 0, 100, bytes_per_value=4)
        assert fp32 < fp64


class TestTileGraph:
    def test_single_tile_when_fits(self, medium_graph):
        plan = tile_graph(medium_graph, 1 << 30)
        assert plan.num_tiles == 1
        assert plan.tiles[0].num_vertices == medium_graph.num_vertices

    def test_tiles_cover_all_vertices(self, medium_graph):
        plan = tile_graph(medium_graph, 20_000)
        covered = np.concatenate([t.vertices for t in plan])
        assert np.array_equal(covered, np.arange(medium_graph.num_vertices))

    def test_tiles_are_contiguous_ranges(self, medium_graph):
        plan = tile_graph(medium_graph, 20_000)
        for t in plan:
            assert np.array_equal(
                t.vertices, np.arange(t.vertices[0], t.vertices[-1] + 1)
            )

    def test_edges_partition(self, medium_graph):
        """Internal + boundary edges across tiles equals total edges."""
        plan = tile_graph(medium_graph, 20_000)
        internal = sum(t.num_edges for t in plan)
        assert internal + plan.total_boundary_edges == medium_graph.num_edges

    def test_external_vertices_bounded_by_boundary(self, medium_graph):
        plan = tile_graph(medium_graph, 20_000)
        for t in plan:
            assert t.external_vertices <= t.boundary_edges
            if t.boundary_edges:
                assert t.external_vertices >= 1

    def test_smaller_capacity_more_tiles(self, medium_graph):
        big = tile_graph(medium_graph, 100_000)
        small = tile_graph(medium_graph, 10_000)
        assert small.num_tiles >= big.num_tiles

    def test_chain_no_internal_loss(self):
        g = chain_graph(100, num_features=1)
        plan = tile_graph(g, 700)
        # Each cut loses exactly one chain edge to the boundary.
        assert plan.total_boundary_edges == plan.num_tiles - 1

    def test_min_tile_vertices(self, medium_graph):
        plan = tile_graph(medium_graph, 1, min_tile_vertices=4)
        for t in plan.tiles[:-1]:
            assert t.num_vertices >= 4

    def test_invalid_capacity(self, medium_graph):
        with pytest.raises(ValueError, match="capacity"):
            tile_graph(medium_graph, 0)

    def test_density_aware_capacity(self):
        """Sparse features let far more vertices fit per tile."""
        dense = power_law_graph(
            300, 900, num_features=256, feature_density=1.0, seed=1
        )
        sparse = power_law_graph(
            300, 900, num_features=256, feature_density=0.01, seed=1
        )
        cap = 64 * 1024
        assert tile_graph(sparse, cap).num_tiles < tile_graph(dense, cap).num_tiles

    def test_tile_subgraph_consistency(self, medium_graph):
        plan = tile_graph(medium_graph, 20_000)
        t = plan.tiles[0]
        lo, hi = int(t.vertices[0]), int(t.vertices[-1]) + 1
        ref = medium_graph.induced_subgraph(np.arange(lo, hi))
        assert t.subgraph.num_edges == ref.num_edges
        assert np.array_equal(t.subgraph.indptr, ref.indptr)

    def test_plan_iteration(self, medium_graph):
        plan = tile_graph(medium_graph, 50_000)
        assert len(list(plan)) == plan.num_tiles

    def test_total_external(self, medium_graph):
        plan = tile_graph(medium_graph, 20_000)
        assert plan.total_external_vertices == sum(
            t.external_vertices for t in plan
        )
