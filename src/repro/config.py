"""Central hardware configuration for Aurora and the scaled baselines.

Defaults follow the paper's §VI-A accelerator modeling: a 32×32 PE array at
700 MHz, 100 KB of distributed bank buffer per PE (≈100 MB on-chip), double
precision throughout, and baselines scaled to the same multiplier count,
DRAM bandwidth, and on-chip storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["AcceleratorConfig", "NoCConfig", "DRAMConfig", "default_config", "small_config"]


@dataclass(frozen=True)
class NoCConfig:
    """Flexible NoC parameters (paper §III-B/C)."""

    flit_bytes: int = 16  # link width per cycle
    vcs_per_port: int = 2  # virtual channels per input port
    vc_depth: int = 4  # flits per VC buffer
    router_pipeline_stages: int = 2  # two-stage switch design
    link_latency: int = 1  # cycles per mesh hop link traversal
    bypass_links_per_row: int = 1  # one bi-directional bypass per row
    bypass_links_per_col: int = 1  # and per column
    bypass_segment_latency: int = 1  # cycles to traverse one bypass segment

    def __post_init__(self) -> None:
        if self.flit_bytes < 1:
            raise ValueError("flit_bytes must be >= 1")
        if self.vcs_per_port < 1 or self.vc_depth < 1:
            raise ValueError("VC parameters must be >= 1")
        if self.router_pipeline_stages < 1:
            raise ValueError("router pipeline must have >= 1 stage")


@dataclass(frozen=True)
class DRAMConfig:
    """Off-package memory model parameters (DRAMSim2 substitute)."""

    bandwidth_bytes_per_sec: float = 256e9  # aggregate (HBM-class, as HyGCN)
    channels: int = 8
    banks_per_channel: int = 8
    row_buffer_bytes: int = 2048
    t_row_hit_ns: float = 15.0  # CAS latency for an open-row access
    t_row_miss_ns: float = 45.0  # precharge + activate + CAS
    burst_bytes: int = 64

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_sec <= 0:
            raise ValueError("bandwidth must be positive")
        if self.channels < 1 or self.banks_per_channel < 1:
            raise ValueError("channel/bank counts must be >= 1")
        if self.burst_bytes < 1 or self.row_buffer_bytes < self.burst_bytes:
            raise ValueError("row buffer must hold at least one burst")


@dataclass(frozen=True)
class AcceleratorConfig:
    """Top-level accelerator parameters shared by Aurora and baselines."""

    array_k: int = 32  # K×K PE array
    frequency_hz: float = 700e6
    macs_per_pe: int = 16  # flexible MAC units per PE (Fig. 5)
    pe_buffer_bytes: int = 100 * 1024  # distributed bank buffer per PE
    reuse_fifo_bytes: int = 2 * 1024  # inter-PE reuse FIFO (double buffer)
    ppu_lanes: int = 8  # post-processing unit lanes per PE
    bytes_per_value: int = 8  # uniform double precision
    noc: NoCConfig = field(default_factory=NoCConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)

    def __post_init__(self) -> None:
        if self.array_k < 2:
            raise ValueError("array_k must be >= 2")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.macs_per_pe < 1:
            raise ValueError("macs_per_pe must be >= 1")
        if self.pe_buffer_bytes < 1024:
            raise ValueError("pe_buffer_bytes must be >= 1 KiB")
        if self.bytes_per_value not in (4, 8):
            raise ValueError("bytes_per_value must be 4 (fp32) or 8 (fp64)")

    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        return self.array_k * self.array_k

    @property
    def total_multipliers(self) -> int:
        """Multiplier budget used to scale baselines fairly."""
        return self.num_pes * self.macs_per_pe

    @property
    def onchip_bytes(self) -> int:
        """Aggregate distributed-buffer capacity (≈100 MB at defaults)."""
        return self.num_pes * self.pe_buffer_bytes

    @property
    def flops_per_pe_per_cycle(self) -> int:
        """Peak ops/cycle of one PE (multiply + add per MAC)."""
        return 2 * self.macs_per_pe

    @property
    def peak_flops(self) -> float:
        """Peak ops/sec of the whole array (Algorithm 2's P × Flops)."""
        return self.num_pes * self.flops_per_pe_per_cycle * self.frequency_hz

    @property
    def reconfiguration_cycles(self) -> int:
        """Array reconfiguration latency: 2K−1 cycles (63 for K=32, §VI-D)."""
        return 2 * self.array_k - 1

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.frequency_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        return seconds * self.frequency_hz

    def scaled(self, **overrides) -> "AcceleratorConfig":
        """Copy with overridden fields (baseline scaling helper)."""
        return replace(self, **overrides)


def default_config() -> AcceleratorConfig:
    """The paper's evaluated configuration (32×32 PEs, 700 MHz)."""
    return AcceleratorConfig()


def small_config(array_k: int = 8) -> AcceleratorConfig:
    """A small array for cycle-tier tests and fast examples."""
    return AcceleratorConfig(array_k=array_k, pe_buffer_bytes=16 * 1024)
