"""Multi-request scheduling across GNN applications.

The paper's controller accepts a stream of host requests and
reconfigures the accelerator between them (the "versatile" in the title:
one device serving GCN, GAT, EdgeConv... back to back).  This module
executes a request queue, charging the inter-request reconfiguration
that the per-layer simulation hides (a model change reprograms every
PE's datapath and the NoC: ``2K−1`` cycles + per-PE switch events),
while the mapping/partition of each request's first tile overlaps the
previous request's drain, per §VI-D.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import AcceleratorConfig, default_config
from .accelerator import layer_plan
from .controller import GNNRequest
from .results import SimulationResult
from .simulator import AuroraSimulator

__all__ = ["ScheduledRequest", "BatchResult", "BatchScheduler"]


@dataclass(frozen=True)
class ScheduledRequest:
    """One completed request with its schedule placement."""

    index: int
    model_name: str
    graph_name: str
    start_seconds: float
    reconfig_seconds: float
    result: SimulationResult

    @property
    def end_seconds(self) -> float:
        return self.start_seconds + self.reconfig_seconds + self.result.total_seconds


@dataclass
class BatchResult:
    """A drained request queue."""

    scheduled: list[ScheduledRequest] = field(default_factory=list)

    @property
    def makespan_seconds(self) -> float:
        return self.scheduled[-1].end_seconds if self.scheduled else 0.0

    @property
    def total_reconfig_seconds(self) -> float:
        return sum(s.reconfig_seconds for s in self.scheduled)

    @property
    def reconfig_fraction(self) -> float:
        """Share of the makespan spent reconfiguring between requests —
        the paper reports reconfiguration energy <3%; time behaves alike."""
        if self.makespan_seconds == 0:
            return 0.0
        return self.total_reconfig_seconds / self.makespan_seconds

    @property
    def total_energy_joules(self) -> float:
        return sum(s.result.energy.total for s in self.scheduled)


class BatchScheduler:
    """Runs a queue of :class:`GNNRequest` objects back to back."""

    def __init__(self, config: AcceleratorConfig | None = None) -> None:
        self.config = config or default_config()
        self.simulator = AuroraSimulator(self.config)

    def _reconfig_seconds(
        self, prev: GNNRequest | None, nxt: GNNRequest
    ) -> float:
        """Inter-request reconfiguration time.

        Same model back to back: only the per-subgraph work, already
        charged inside the simulation → 0 here.  A model change
        reprograms the array: ``2K−1`` cycles of wavefront configuration
        (it cannot overlap — the *previous* workload is gone).
        """
        if prev is None or prev.model.name == nxt.model.name:
            return 0.0
        return self.config.reconfiguration_cycles / self.config.frequency_hz

    def run(self, requests: list[GNNRequest]) -> BatchResult:
        """Execute the queue in order."""
        if not requests:
            return BatchResult()
        out = BatchResult()
        clock = 0.0
        prev: GNNRequest | None = None
        for index, request in enumerate(requests):
            reconfig = self._reconfig_seconds(prev, request)
            dims = [request.dims]
            if request.num_layers > 1:
                dims = layer_plan(
                    request.graph,
                    request.dims.out_features,
                    request.num_layers,
                    request.dims.out_features,
                )
                dims[0] = request.dims
            result = self.simulator.simulate(request.model, request.graph, dims)
            out.scheduled.append(
                ScheduledRequest(
                    index=index,
                    model_name=request.model.name,
                    graph_name=request.graph.name,
                    start_seconds=clock,
                    reconfig_seconds=reconfig,
                    result=result,
                )
            )
            clock += reconfig + result.total_seconds
            prev = request
        return out
