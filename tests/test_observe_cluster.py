"""Fleet observability: the router's merged /trace and event relays.

A replica's ``/observe`` stream is re-emitted by the router with a
``replica`` tag onto one totally ordered fleet feed, and ``GET /trace``
on the router fans out to every replica and merges spans by
``(trace_id, span_id)`` — all exercised here over loopback sockets
with in-process replicas, no subprocesses.
"""

import asyncio
import http.client
import json
import time

import pytest

from repro.cluster import ClusterRouter
from repro.observe.client import ObserveClient
from repro.observe.events import HUB, REQUEST_LIFECYCLE, EventHub
from repro.observe.service import ObserveState
from repro.runtime import run_jobs
from repro.serve.client import ServeClient
from repro.serve.server import ServerThread, SimulationService
from repro.telemetry import TRACER

SMALL = {"dataset": "cora", "scale": 0.1, "hidden": 8, "layers": 1}


@pytest.fixture(autouse=True)
def clean_global_hub():
    yield
    HUB.reset()
    TRACER.on_span = None


def make_runner():
    async def runner(jobs):
        return await asyncio.to_thread(lambda: run_jobs(jobs))

    return runner


def raw_get(address, path):
    conn = http.client.HTTPConnection(*address, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def router_observe_state():
    # Mirrors _cmd_cluster: a private hub, no tracer bridge — fleet
    # events arrive over the relayed WebSocket streams only.
    return ObserveState(hub=EventHub(), source="cluster", install_hook=False)


class TestFleetTrace:
    def test_trace_merges_replica_spans_by_identity(self):
        services = [
            SimulationService(replica_id=str(i), runner=make_runner())
            for i in range(2)
        ]
        with TRACER.session(enabled=True, sample_rate=1.0):
            threads = [ServerThread(s) for s in services]
            router = ClusterRouter()
            try:
                for i, thread in enumerate(threads):
                    thread.start()
                    router.replica_up(str(i), *thread.address)
                with ServerThread(router) as router_thread:
                    client = ServeClient(*router_thread.address, timeout=60.0)
                    client.simulate(SMALL)

                    status, single = raw_get(threads[0].address, "/trace")
                    assert status == 200
                    status, merged = raw_get(router_thread.address, "/trace")
                    assert status == 200
            finally:
                for thread in threads:
                    thread.stop()

        # In-process replicas share one tracer buffer, so every replica
        # reports the same spans — the merge must dedup them down to
        # exactly one copy per (trace_id, span_id).
        assert merged["count"] == single["count"] > 0
        identities = [
            (s["trace_id"], s["span_id"]) for s in merged["spans"]
        ]
        assert len(identities) == len(set(identities))
        assert set(merged["replicas"]) == {"0", "1"}
        assert all(
            r["count"] == single["count"] for r in merged["replicas"].values()
        )
        starts = [s["start_time"] for s in merged["spans"]]
        assert starts == sorted(starts)

    def test_trace_id_filter_round_trips_through_the_router(self):
        service = SimulationService(replica_id="0", runner=make_runner())
        with TRACER.session(enabled=True, sample_rate=1.0):
            with ServerThread(service) as replica:
                router = ClusterRouter()
                router.replica_up("0", *replica.address)
                with ServerThread(router) as router_thread:
                    ServeClient(*router_thread.address, timeout=60.0).simulate(
                        SMALL
                    )
                    _status, everything = raw_get(
                        router_thread.address, "/trace"
                    )
                    wanted = everything["spans"][0]["trace_id"]
                    _status, filtered = raw_get(
                        router_thread.address, f"/trace?trace_id={wanted}"
                    )
        assert filtered["trace_id"] == wanted
        assert filtered["count"] > 0
        assert all(s["trace_id"] == wanted for s in filtered["spans"])


class TestRelays:
    def test_replica_events_reach_the_fleet_feed_tagged(self):
        service = SimulationService(
            replica_id="0",
            runner=make_runner(),
            observe=ObserveState(flush_interval=0.0, tick_interval=0.0),
        )
        router = ClusterRouter(observe=router_observe_state())
        with ServerThread(service) as replica:
            router.replica_up("0", *replica.address)
            with ServerThread(router) as router_thread:
                # The relay is a WebSocket client of the replica; wait
                # until it is attached before producing events.
                deadline = time.monotonic() + 10
                while (
                    service.observe.broadcaster.snapshot()["clients"] < 1
                ):
                    assert time.monotonic() < deadline, "relay never attached"
                    time.sleep(0.02)

                host, port = router_thread.address

                async def run():
                    events = []
                    observer = ObserveClient(host, port)
                    await observer.connect()
                    request = asyncio.create_task(
                        asyncio.to_thread(
                            lambda: ServeClient(
                                host, port, timeout=60.0
                            ).simulate(SMALL)
                        )
                    )
                    try:
                        while True:
                            event = await asyncio.wait_for(
                                observer.next_event(), timeout=60
                            )
                            assert event is not None
                            events.append(event)
                            if event["type"] == "request.completed":
                                break
                    finally:
                        await observer.close()
                    return await request, events

                result, events = asyncio.run(run())

        assert result["result"]["accelerator"] == "aurora"
        types = [e["type"] for e in events]
        positions = [types.index(t) for t in REQUEST_LIFECYCLE]
        assert positions == sorted(positions), types
        # Every relayed event carries the replica tag and a fresh,
        # strictly increasing fleet sequence.
        assert all(e["data"]["replica"] == "0" for e in events)
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert router.relay_events >= len(events)

    def test_router_stats_and_dashboard(self):
        router = ClusterRouter(observe=router_observe_state())
        with ServerThread(router) as thread:
            status, stats = raw_get(thread.address, "/stats")
            assert status == 200
            observe = stats["router"]["observe"]
            assert observe["enabled"] is True
            assert observe["relays"] == []
            assert observe["relay_events"] == 0
            assert "relay_reconnects" in observe

            status, _body = raw_get(thread.address, "/observe")
            assert status == 400  # upgrade required, not 404: it's on

            conn = http.client.HTTPConnection(*thread.address, timeout=30)
            try:
                conn.request("GET", "/observer")
                response = conn.getresponse()
                assert response.status == 200
                assert response.read().startswith(b"<!")
            finally:
                conn.close()

    def test_observe_off_router_404s(self):
        router = ClusterRouter()
        with ServerThread(router) as thread:
            assert raw_get(thread.address, "/observe")[0] == 404
            assert raw_get(thread.address, "/observer")[0] == 404
            stats = raw_get(thread.address, "/stats")[1]
            assert stats["router"]["observe"] is None

    def test_replica_up_outside_a_loop_skips_the_relay(self):
        # Supervisor callbacks can fire before the router loop exists
        # (and tests register replicas synchronously): membership must
        # still update, with no relay task and no crash.
        router = ClusterRouter(observe=router_observe_state())
        router.replica_up("9", "127.0.0.1", 1)
        assert "9" in router.ring
        assert router._relays == {}
        router.replica_down("9")
        assert "9" not in router.ring
