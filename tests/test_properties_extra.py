"""Additional property-based tests over the newer subsystems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.dataflow import plan_ring_dataflow
from repro.arch.noc import FlexibleMeshTopology
from repro.arch.noc.multicast import build_tree
from repro.config import default_config
from repro.core.pipeline import pipeline_time

CFG = default_config()


class TestPipelineProperties:
    @given(
        st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
        st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_flow_shop_bounds(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        t = pipeline_time(a, b)
        # Lower bounds: each machine's serial work plus the other's
        # boundary stage; upper bound: fully serial execution.
        assert t >= max(sum(a) + b[-1], a[0] + sum(b)) - 1e-9
        assert t <= sum(a) + sum(b) + 1e-9

    @given(
        st.floats(min_value=0.1, max_value=50, allow_nan=False),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_constant_stages_exact_makespan(self, stage, n):
        """Constant equal A/B stages: makespan = fill + n·interval exactly."""
        t = pipeline_time([stage] * n, [stage] * n)
        assert t == pytest.approx(stage + n * stage)


class TestMulticastTreeProperties:
    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=1_000_000),
        st.sets(st.integers(min_value=0, max_value=99), min_size=1, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_tree_invariants(self, k, src_seed, dst_seed):
        topo = FlexibleMeshTopology(k)
        n = k * k
        src = src_seed % n
        dsts = sorted({d % n for d in dst_seed})
        tree = build_tree(topo, src, dsts)
        # Parent uniqueness (tree property).
        parents: dict[int, int] = {}
        for parent, kids in tree.children.items():
            for kid in kids:
                assert kid not in parents
                parents[kid] = parent
        # Every consumer is reachable from the source.
        for dst in tree.consumers:
            node, hops = dst, 0
            while node != src:
                node = parents[node]
                hops += 1
                assert hops <= 2 * k  # no cycles, bounded depth
        # Tree never larger than the union of path lengths.
        assert tree.num_edges <= sum(
            topo.manhattan(src, d) for d in tree.consumers
        )


class TestRingScheduleProperties:
    @given(
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=1, max_value=2048),
        st.integers(min_value=1, max_value=512),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=80, deadline=None)
    def test_schedule_invariants(self, width, f_in, f_out, n):
        s = plan_ring_dataflow(CFG, width, f_in, f_out)
        assert s.slice_in * width >= f_in
        assert s.stage_interval >= 1
        assert s.total_cycles(n) >= n * s.stage_interval - s.stage_interval + (
            s.vertex_latency if n else 0
        ) - 1e-9
        assert 0.0 <= s.utilization(n) <= 1.0
        # Makespan is monotone in the vertex count.
        if n > 0:
            assert s.total_cycles(n) > s.total_cycles(n - 1) or n == 1
