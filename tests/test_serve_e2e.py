"""Subprocess end-to-end test: the real `repro serve` process.

Boots ``python -m repro serve`` on an ephemeral port, exercises the
client against it, and checks the SIGTERM contract: in-flight work is
completed (drain) and the process exits 0.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.serve.client import ServeClient

REPO_ROOT = Path(__file__).resolve().parents[1]
SMALL = {"dataset": "cora", "scale": 0.1, "hidden": 8, "layers": 1}


@pytest.fixture
def server(tmp_path):
    """A real `repro serve` subprocess; yields (process, client)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--queue-depth",
            "8",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=tmp_path,
    )
    try:
        port = None
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line and process.poll() is not None:
                raise RuntimeError("server died during startup")
            if "listening on" in line:
                port = int(line.rsplit(":", 1)[1])
                break
        if port is None:
            raise RuntimeError("server never reported its port")
        yield process, ServeClient("127.0.0.1", port, timeout=60.0)
    finally:
        if process.poll() is None:
            process.kill()
        process.stdout.close()
        process.wait()


class TestSubprocessE2E:
    def test_cold_then_warm_then_sigterm_drains_exit_0(self, server):
        process, client = server
        assert client.healthz()["status"] == "ok"

        cold = client.simulate(SMALL)
        assert cold["cached"] is False
        warm = client.simulate(SMALL)
        assert warm["cached"] is True
        assert warm["key"] == cold["key"]

        # Fire a request and SIGTERM while it is (likely) in flight:
        # the drain contract says it completes and the process exits 0.
        payloads = []
        request = {**SMALL, "scale": 0.5, "hidden": 64, "layers": 2}
        worker = threading.Thread(
            target=lambda: payloads.append(client.simulate(request))
        )
        worker.start()
        time.sleep(0.05)
        process.send_signal(signal.SIGTERM)
        worker.join(timeout=30.0)
        assert process.wait(timeout=30.0) == 0

        assert len(payloads) == 1
        assert payloads[0]["result"]["accelerator"] == "aurora"

    def test_concurrent_identical_requests_share_one_execution(self, server):
        process, client = server
        payloads = []
        lock = threading.Lock()

        def fire():
            payload = client.simulate({**SMALL, "seed": 21})
            with lock:
                payloads.append(payload)

        threads = [threading.Thread(target=fire) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(payloads) == 2
        assert payloads[0]["key"] == payloads[1]["key"]
        # Either the requests overlapped (one joined / one executed) or
        # the loser of the race was served from the result cache — both
        # mean exactly one simulation ran.
        stats = client.stats()
        assert stats["batcher"]["jobs_run"] <= 1 + stats["cache"]["hits"]
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30.0) == 0
