"""E7 — regenerate the §VI-F area analysis."""

from conftest import emit

from repro.eval import run_experiment


def test_area_breakdown(benchmark):
    result = benchmark(run_experiment, "E7")
    emit(result.text)
    pe = result.data["pe"]
    chip = result.data["chip"]
    # Paper: MAC array 7.1% of PE, memory 82.9%, chip PE-array 62.74%,
    # flexible interconnect 5.2%, controller 0.9%.
    assert abs(pe.fraction("mac_array") - 0.071) < 0.02
    assert abs(pe.fraction("memory") - 0.829) < 0.06
    assert abs(chip.fraction("pe_array") - 0.6274) < 0.05
    assert abs(chip.fraction("flexible_interconnect") - 0.052) < 0.015
    assert abs(chip.fraction("controller") - 0.009) < 0.006
