#!/usr/bin/env python3
"""Define a custom baseline accelerator and benchmark it against Aurora.

Shows the extension path a downstream user takes: describe a design's
dataflow properties as :class:`BaselineTraits`, get a full behavioural
model for free, and compare it on the paper's workloads.  The example
sketches a hypothetical "TensorGNN": a combination-first systolic design
with great buffers but a rigid fabric.

Run:  python examples/custom_accelerator.py
"""

from repro import AuroraSimulator, BaselineTraits, get_model, load_dataset
from repro.baselines import BaselineAccelerator
from repro.core.accelerator import layer_plan
from repro.eval import format_table
from repro.eval.plotting import bar_chart

TENSORGNN = BaselineTraits(
    name="tensorgnn",
    supports_c_gnn=True,
    supports_a_gnn=True,
    supports_mp_gnn=False,
    message_passing=False,
    supports_edge_update=False,
    engine_split=None,  # one big systolic pool
    phase_pipelined=False,  # strict phase serialisation
    combination_first=True,  # transforms before aggregation
    imbalance_sensitivity=0.15,
    feature_reuse=0.85,  # excellent tiling
    weight_reload_per_tile=False,
    interphase_spill=False,
    buffer_traffic_factor=0.5,
    traffic_factor=0.4,
    comm_ports=96,
    comm_hops=1.0,
    hub_relief=0.1,
    comm_service_cycles=6.0,
)


def main() -> None:
    device = BaselineAccelerator(TENSORGNN)
    model = get_model("gcn")
    rows = []
    ratios = []
    names = []
    for ds, scale in (("cora", 1.0), ("citeseer", 1.0), ("pubmed", 0.25)):
        graph = load_dataset(ds, scale=scale)
        dims = layer_plan(graph, 64, 2)
        aurora = AuroraSimulator().simulate(model, graph, dims)
        custom = device.simulate(model, graph, dims, strict=False)
        ratio = custom.total_seconds / aurora.total_seconds
        rows.append(
            [
                ds,
                f"{aurora.total_seconds * 1e6:.1f}",
                f"{custom.total_seconds * 1e6:.1f}",
                f"{ratio:.2f}x",
                f"{custom.energy.total / aurora.energy.total:.2f}x",
            ]
        )
        names.append(ds)
        ratios.append(ratio)

    print(
        format_table(
            ["dataset", "aurora us", "tensorgnn us", "time ratio", "energy ratio"],
            rows,
            title="Custom 'TensorGNN' baseline vs Aurora (2-layer GCN)",
        )
    )
    print()
    print(bar_chart(names, ratios, unit="x",
                    title="TensorGNN slowdown vs Aurora"))
    print(
        "\nNote: TensorGNN's combination-first systolic pool is strong on "
        "C-GNNs, but it cannot run MP-GNN models at all — Table I's "
        "versatility column is where Aurora's headroom is."
    )


if __name__ == "__main__":
    main()
