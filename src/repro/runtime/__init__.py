"""Execution layer for simulation sweeps.

Turns every many-run workload in the repo — accelerator × dataset grids,
the experiment registry, sensitivity/DSE sweeps — into batches of frozen
:class:`SimJob` specs drained by a pluggable executor behind a
content-addressed result cache:

* :mod:`.jobs` — the job spec, its canonical content hash, execution;
* :mod:`.cache` — on-disk JSON result cache keyed by job hash and a
  source-tree fingerprint;
* :mod:`.executor` — serial / process-pool / scripted-fake executors
  with per-job failure isolation and timeouts;
* :mod:`.runner` — :func:`run_jobs` orchestration plus sweep metrics.
"""

from .budget import BUDGET, WorkerBudget, in_pool_worker
from .cache import CacheStats, ResultCache, as_cache, code_fingerprint
from .executor import (
    ExecutionRecord,
    FakeExecutor,
    ProcessExecutor,
    SerialExecutor,
    get_executor,
)
from .jobs import SimJob, execute_job, job_key, run_job
from .runner import (
    JobOutcome,
    SweepMetrics,
    SweepReport,
    run_jobs,
    run_jobs_async,
)
from .shards import (
    TileShardJob,
    TileShardPlanner,
    run_tile_shards,
    tile_sub_key,
)

__all__ = [
    "SimJob",
    "job_key",
    "run_job",
    "execute_job",
    "ResultCache",
    "CacheStats",
    "as_cache",
    "code_fingerprint",
    "SerialExecutor",
    "ProcessExecutor",
    "FakeExecutor",
    "ExecutionRecord",
    "get_executor",
    "JobOutcome",
    "SweepMetrics",
    "SweepReport",
    "run_jobs",
    "run_jobs_async",
    "BUDGET",
    "WorkerBudget",
    "in_pool_worker",
    "TileShardJob",
    "TileShardPlanner",
    "run_tile_shards",
    "tile_sub_key",
]
