"""E1 — regenerate Table I: GNN coverage and features per accelerator."""

from conftest import emit

from repro.eval import run_experiment


def test_table1_coverage(benchmark):
    result = benchmark(run_experiment, "E1")
    emit(result.text)
    # Aurora covers everything; HyGCN/AWB-GCN/GCNAX are C-GNN only.
    assert all(result.data["aurora"].values())
    for name in ("hygcn", "awb-gcn", "gcnax"):
        assert result.data[name]["c_gnn"]
        assert not result.data[name]["mp_gnn"]
        assert not result.data[name]["flexible_noc"]
    assert result.data["flowgnn"]["mp_gnn"]
