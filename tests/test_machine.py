"""Tests for the instruction-stream interpreter."""

import pytest

from repro.core import (
    AdaptiveWorkflowGenerator,
    Instruction,
    Opcode,
    lower_layer_program,
)
from repro.core.machine import IllegalProgram, Machine, MachineState
from repro.models import get_model


def _program(model="gcn", tiles=2, weights=True):
    wf = AdaptiveWorkflowGenerator().generate(get_model(model))
    return lower_layer_program(wf, num_tiles=tiles, needs_weights=weights)


class TestValidPrograms:
    @pytest.mark.parametrize("model", ["gcn", "gin", "ggcn", "edgeconv-1"])
    @pytest.mark.parametrize("tiles", [1, 3])
    def test_lowered_programs_are_legal(self, model, tiles):
        records = Machine().run(_program(model, tiles))
        assert len(records) > 0

    def test_final_state_idle(self):
        m = Machine()
        m.run(_program())
        assert m.state is MachineState.IDLE  # BARRIER closes the layer

    def test_tile_order(self):
        m = Machine()
        m.run(_program(tiles=3))
        assert m.executed_tiles == [0, 1, 2]

    def test_overlap_annotation(self):
        """Tile 0 overlaps nothing; later tiles' config/load do."""
        m = Machine()
        m.run(_program(tiles=2))
        by_tile: dict[int, list] = {}
        for r in m.records:
            tile = r.instruction.operand("tile")
            if r.instruction.opcode is Opcode.LOAD_GRAPH:
                by_tile[tile] = r.overlappable
        assert by_tile[0] is False
        assert by_tile[1] is True
        assert 0 < m.overlappable_fraction < 1

    def test_edgeconv_program_has_no_forward(self):
        m = Machine()
        m.run(_program("edgeconv-1"))
        opcodes = [r.instruction.opcode for r in m.records]
        assert Opcode.FORWARD not in opcodes


class TestIllegalPrograms:
    def test_exec_before_config(self):
        with pytest.raises(IllegalProgram, match="loaded"):
            Machine().run(
                [Instruction(Opcode.EXEC_PHASE, {"sub_accelerator": "A"})]
            )

    def test_config_pe_before_noc(self):
        with pytest.raises(IllegalProgram, match="CONFIG_NOC"):
            Machine().run([Instruction(Opcode.CONFIG_PE, {"tile": 0})])

    def test_load_graph_unconfigured(self):
        with pytest.raises(IllegalProgram, match="configured"):
            Machine().run([Instruction(Opcode.LOAD_GRAPH, {"tile": 0})])

    def test_b_phase_without_forward(self):
        prog = [
            Instruction(Opcode.CONFIG_NOC, {"tile": 0}),
            Instruction(Opcode.CONFIG_PE, {"tile": 0}),
            Instruction(Opcode.LOAD_GRAPH, {"tile": 0}),
            Instruction(Opcode.EXEC_PHASE, {"sub_accelerator": "B"}),
        ]
        with pytest.raises(IllegalProgram, match="FORWARD"):
            Machine().run(prog)

    def test_forward_without_a_phase(self):
        prog = [
            Instruction(Opcode.CONFIG_NOC, {"tile": 0}),
            Instruction(Opcode.CONFIG_PE, {"tile": 0}),
            Instruction(Opcode.LOAD_GRAPH, {"tile": 0}),
            Instruction(Opcode.FORWARD, {"tile": 0}),
        ]
        with pytest.raises(IllegalProgram, match="A-phase"):
            Machine().run(prog)

    def test_store_without_exec(self):
        prog = [
            Instruction(Opcode.CONFIG_NOC, {"tile": 0}),
            Instruction(Opcode.CONFIG_PE, {"tile": 0}),
            Instruction(Opcode.LOAD_GRAPH, {"tile": 0}),
            Instruction(Opcode.STORE, {"tile": 0}),
        ]
        with pytest.raises(IllegalProgram, match="STORE"):
            Machine().run(prog)

    def test_late_weight_load(self):
        prog = _program(tiles=1, weights=False)
        prog.insert(len(prog) - 1, Instruction(Opcode.LOAD_WEIGHTS, {}))
        with pytest.raises(IllegalProgram, match="stationary"):
            Machine().run(prog)

    def test_bad_sub_accelerator_operand(self):
        prog = [
            Instruction(Opcode.CONFIG_NOC, {"tile": 0}),
            Instruction(Opcode.CONFIG_PE, {"tile": 0}),
            Instruction(Opcode.LOAD_GRAPH, {"tile": 0}),
            Instruction(Opcode.EXEC_PHASE, {"sub_accelerator": "C"}),
        ]
        with pytest.raises(IllegalProgram, match="'A' or 'B'"):
            Machine().run(prog)

    def test_nothing_after_halt(self):
        with pytest.raises(IllegalProgram, match="after HALT"):
            Machine().run(
                [Instruction(Opcode.HALT), Instruction(Opcode.BARRIER)]
            )


class TestFacadeIntegration:
    def test_prepared_program_executes(self, medium_graph):
        """Every program the facade emits must pass the machine."""
        from repro import AuroraAccelerator, LayerDims, get_model
        from repro.core import GNNRequest

        acc = AuroraAccelerator()
        _, program = acc.prepare(
            GNNRequest(get_model("gcn"), medium_graph, LayerDims(32, 8))
        )
        Machine().run(program)
