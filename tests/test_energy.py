"""Unit tests for the energy model."""

import pytest

from repro.arch import EnergyCounters, EnergyModel, EnergyTable


class TestTable:
    def test_defaults_valid(self):
        EnergyTable()  # must not raise

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyTable(mac_pj=-1)

    def test_horowitz_ordering(self):
        """DRAM >> global buffer > bank buffer > FIFO; MAC > add."""
        t = EnergyTable()
        assert t.dram_pj_per_byte > 10 * t.global_buffer_pj_per_byte
        assert t.global_buffer_pj_per_byte > t.sram_pj_per_byte
        assert t.sram_pj_per_byte > t.reuse_fifo_pj_per_byte
        assert t.mac_pj > t.add_pj


class TestCounters:
    def test_merge_adds(self):
        a = EnergyCounters(mac_ops=5, dram_bytes=100)
        b = EnergyCounters(mac_ops=3, sram_bytes=7)
        c = a.merge(b)
        assert c.mac_ops == 8
        assert c.dram_bytes == 100
        assert c.sram_bytes == 7

    def test_merge_does_not_mutate(self):
        a = EnergyCounters(mac_ops=5)
        a.merge(EnergyCounters(mac_ops=3))
        assert a.mac_ops == 5


class TestModel:
    def test_zero_counters_zero_energy(self):
        assert EnergyModel().evaluate(EnergyCounters()).total == 0.0

    def test_compute_component(self):
        table = EnergyTable()
        e = EnergyModel(table).evaluate(EnergyCounters(mac_ops=1_000_000))
        assert e.compute == pytest.approx(1_000_000 * table.mac_pj * 1e-12)
        assert e.dram == 0.0

    def test_dram_component(self):
        table = EnergyTable()
        e = EnergyModel(table).evaluate(EnergyCounters(dram_bytes=1_000_000))
        assert e.dram == pytest.approx(1_000_000 * table.dram_pj_per_byte * 1e-12)

    def test_total_is_sum(self):
        c = EnergyCounters(
            mac_ops=10,
            add_ops=20,
            ppu_ops=5,
            sram_bytes=100,
            global_buffer_bytes=50,
            reuse_fifo_bytes=10,
            link_byte_hops=30,
            router_flits=4,
            bypass_bytes=8,
            dram_bytes=1000,
            reconfig_events_pe=2,
            active_cycles=100,
        )
        e = EnergyModel().evaluate(c)
        assert e.total == pytest.approx(
            e.compute + e.sram + e.noc + e.dram + e.control + e.reconfiguration
        )

    def test_as_dict(self):
        d = EnergyModel().evaluate(EnergyCounters(mac_ops=1)).as_dict()
        assert set(d) == {
            "compute",
            "sram",
            "noc",
            "dram",
            "control",
            "reconfiguration",
            "total",
        }

    def test_bypass_cheaper_than_routed(self):
        """Moving a byte over a bypass wire costs less than link+router."""
        t = EnergyTable()
        routed = t.link_pj_per_byte_per_hop
        assert t.bypass_pj_per_byte < routed

    def test_custom_table(self):
        t = EnergyTable(mac_pj=100.0)
        e = EnergyModel(t).evaluate(EnergyCounters(mac_ops=1))
        assert e.compute == pytest.approx(100e-12)
