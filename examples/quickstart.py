#!/usr/bin/env python3
"""Quickstart: simulate a 2-layer GCN on Cora with Aurora and one baseline.

Run:  python examples/quickstart.py
"""

from repro import AuroraAccelerator, get_model, load_dataset, make_baseline
from repro.core.accelerator import layer_plan


def main() -> None:
    # 1. A synthetic stand-in for Cora with the published statistics.
    graph = load_dataset("cora")
    print(f"dataset: {graph}  (mean degree {graph.degrees.mean():.1f})")

    # 2. Aurora: dynamic partitioning + degree-aware mapping + flexible NoC.
    aurora = AuroraAccelerator()
    model = get_model("gcn")
    result = aurora.run(model, graph, hidden=64, num_layers=2, num_classes=7)
    print("\n=== Aurora ===")
    print(f"execution time : {result.total_seconds * 1e6:9.1f} us")
    print(f"cycles         : {result.total_cycles:12,.0f}")
    print(f"DRAM traffic   : {result.dram_bytes / 1e6:9.2f} MB")
    print(f"energy         : {result.energy.total * 1e3:9.3f} mJ")
    print(f"tiles          : {result.num_tiles}")

    # 3. Compare against a scaled baseline (same multipliers, bandwidth,
    #    and on-chip storage, per the paper's methodology).
    hygcn = make_baseline("hygcn")
    dims = layer_plan(graph, 64, 2, 7)
    base = hygcn.simulate(model, graph, dims)
    print("\n=== HyGCN (scaled baseline) ===")
    print(f"execution time : {base.total_seconds * 1e6:9.1f} us")
    print(f"DRAM traffic   : {base.dram_bytes / 1e6:9.2f} MB")
    print(f"energy         : {base.energy.total * 1e3:9.3f} mJ")

    print(
        f"\nAurora speedup over HyGCN: "
        f"{base.total_seconds / result.total_seconds:.2f}x, "
        f"energy reduction: "
        f"{100 * (1 - result.energy.total / base.energy.total):.0f}%"
    )


if __name__ == "__main__":
    main()
