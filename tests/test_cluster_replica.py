"""Supervisor behaviour against fake replicas (no subprocesses).

The injectable ``factory`` and ``probe`` hooks let these tests exercise
the full lifecycle — announce, crash-restart, hung-vs-busy, drain,
backoff — in milliseconds.
"""

import asyncio

import pytest

from repro.cluster import ReplicaConfig, ReplicaSupervisor
from repro.cluster.replica import healthz_probe


class FakeProcess:
    """A replica the test can crash, hang, or slow down at will."""

    ports = iter(range(20_000, 30_000))

    def __init__(self, config):
        self.config = config
        self.pid = 1000 + int(config.replica_id)
        self.exited = None
        self.healthy = True
        self.started = 0

    def start(self, timeout=60.0):
        self.started += 1
        self.exited = None
        self.healthy = True
        self.address = ("127.0.0.1", next(self.ports))
        return self.address

    def poll(self):
        return self.exited

    def terminate(self):
        self.exited = 0

    def kill(self):
        self.exited = -9

    def wait(self, timeout=None):
        return self.exited

    def close(self):
        pass


def make_supervisor(n=2, *, processes=None, probe=None, **kwargs):
    """A supervisor over FakeProcesses; returns (supervisor, processes, events)."""
    if processes is None:
        processes = {}

    def factory(config):
        # Reuse the same FakeProcess per slot so tests can poke at it.
        process = processes.get(config.name)
        if process is None or kwargs.get("fresh_processes"):
            process = FakeProcess(config)
            processes[config.name] = process
        return process

    kwargs.pop("fresh_processes", None)
    events = []

    async def default_probe(host, port, timeout):
        process = next(
            p for p in processes.values()
            if getattr(p, "address", None) == (host, port)
        )
        if not process.healthy:
            raise OSError("probe refused")
        return {"status": "ok", "inflight": 0, "uptime_seconds": 1.0}

    supervisor = ReplicaSupervisor(
        [ReplicaConfig(replica_id=i) for i in range(n)],
        factory=factory,
        probe=probe or default_probe,
        probe_interval=0.02,
        probe_timeout=0.1,
        fail_threshold=2,
        restart_backoff=0.01,
        backoff_cap=0.05,
        start_timeout=5.0,
        on_up=lambda name, host, port: events.append(("up", name)),
        on_down=lambda name: events.append(("down", name)),
        **kwargs,
    )
    return supervisor, processes, events


def run(coro):
    return asyncio.run(coro)


class TestLifecycle:
    def test_start_announces_every_replica(self):
        async def scenario():
            supervisor, processes, events = make_supervisor(3)
            await supervisor.start()
            assert supervisor.states() == {"0": "up", "1": "up", "2": "up"}
            await supervisor.stop(drain_timeout=1.0)
            return events

        events = run(scenario())
        assert sorted(e for e in events if e[0] == "up") == [
            ("up", "0"), ("up", "1"), ("up", "2"),
        ]
        # stop() unroutes all of them too.
        assert sorted(e for e in events if e[0] == "down") == [
            ("down", "0"), ("down", "1"), ("down", "2"),
        ]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            ReplicaSupervisor(
                [ReplicaConfig(replica_id=0), ReplicaConfig(replica_id=0)]
            )

    def test_fail_threshold_validated(self):
        with pytest.raises(ValueError):
            ReplicaSupervisor([ReplicaConfig(replica_id=0)], fail_threshold=0)

    def test_stop_reports_stopped_states(self):
        async def scenario():
            supervisor, _, _ = make_supervisor(2)
            await supervisor.start()
            await supervisor.stop(drain_timeout=1.0)
            return supervisor.states()

        assert run(scenario()) == {"0": "stopped", "1": "stopped"}


class TestRestart:
    def test_crashed_replica_restarts(self):
        async def scenario():
            supervisor, processes, events = make_supervisor(1)
            await supervisor.start()
            processes["0"].exited = 1  # simulate a crash
            for _ in range(200):
                await asyncio.sleep(0.02)
                if processes["0"].started >= 2 and supervisor.states()["0"] == "up":
                    break
            states = supervisor.states()
            restarts = supervisor.restarts_total
            await supervisor.stop(drain_timeout=1.0)
            return states, restarts, events

        states, restarts, events = run(scenario())
        assert states == {"0": "up"}
        assert restarts >= 1
        assert ("down", "0") in events
        assert events.count(("up", "0")) >= 2

    def test_hung_replica_restarts_after_threshold(self):
        """Silent probes (no answer at all) count toward the threshold."""
        async def scenario():
            supervisor, processes, events = make_supervisor(1)
            await supervisor.start()
            processes["0"].healthy = False  # probes now raise
            for _ in range(200):
                await asyncio.sleep(0.02)
                if processes["0"].started >= 2:
                    break
            restarted = processes["0"].started >= 2
            await supervisor.stop(drain_timeout=1.0)
            return restarted

        assert run(scenario())

    def test_busy_replica_is_not_restarted(self):
        """A replica that answers (inflight > 0) is busy, not hung."""
        async def scenario():
            async def busy_probe(host, port, timeout):
                return {"status": "ok", "inflight": 7, "uptime_seconds": 2.0}

            supervisor, processes, _ = make_supervisor(1, probe=busy_probe)
            await supervisor.start()
            await asyncio.sleep(0.3)  # many probe intervals
            started = processes["0"].started
            health = supervisor.snapshot()["replicas"]["0"]["last_health"]
            await supervisor.stop(drain_timeout=1.0)
            return started, health

        started, health = run(scenario())
        assert started == 1  # never restarted
        assert health["inflight"] == 7

    def test_probe_blip_resets_failure_streak(self):
        """One failed probe followed by a success never trips the threshold."""
        async def scenario():
            calls = [0]

            async def flaky_probe(host, port, timeout):
                calls[0] += 1
                if calls[0] % 2:  # every other probe fails
                    raise OSError("blip")
                return {"status": "ok", "inflight": 0, "uptime_seconds": 1.0}

            supervisor, processes, _ = make_supervisor(1, probe=flaky_probe)
            await supervisor.start()
            await asyncio.sleep(0.3)
            started = processes["0"].started
            await supervisor.stop(drain_timeout=1.0)
            return started

        assert run(scenario()) == 1


class TestDrain:
    def test_drain_unroutes_and_stops(self):
        async def scenario():
            supervisor, processes, events = make_supervisor(2)
            await supervisor.start()
            snapshot = await supervisor.drain_replica("0", drain_timeout=1.0)
            await asyncio.sleep(0.1)  # no restart may happen
            states = supervisor.states()
            started = processes["0"].started
            await supervisor.stop(drain_timeout=1.0)
            return snapshot, states, started, events

        snapshot, states, started, events = run(scenario())
        assert snapshot["state"] == "stopped"
        assert states["0"] == "stopped"
        assert states["1"] == "up"
        assert started == 1  # drained replicas stay down
        assert ("down", "0") in events

    def test_drained_replica_restarts_on_request(self):
        async def scenario():
            supervisor, processes, events = make_supervisor(1)
            await supervisor.start()
            await supervisor.drain_replica("0", drain_timeout=1.0)
            await supervisor.start_replica("0")
            for _ in range(100):
                await asyncio.sleep(0.02)
                if supervisor.states()["0"] == "up":
                    break
            states = supervisor.states()
            await supervisor.stop(drain_timeout=1.0)
            return states, processes["0"].started

        states, started = run(scenario())
        assert states == {"0": "up"}
        assert started == 2

    def test_unknown_replica_rejected(self):
        async def scenario():
            supervisor, _, _ = make_supervisor(1)
            await supervisor.start()
            try:
                with pytest.raises(KeyError):
                    await supervisor.drain_replica("9")
            finally:
                await supervisor.stop(drain_timeout=1.0)

        run(scenario())


class TestSnapshot:
    def test_snapshot_shape(self):
        async def scenario():
            supervisor, _, _ = make_supervisor(2)
            await supervisor.start()
            snap = supervisor.snapshot()
            await supervisor.stop(drain_timeout=1.0)
            return snap

        snap = run(scenario())
        assert set(snap["replicas"]) == {"0", "1"}
        slot = snap["replicas"]["0"]
        assert slot["state"] == "up"
        assert slot["pid"] == 1000
        assert slot["address"][0] == "127.0.0.1"
        assert snap["restarts_total"] == 0
        assert snap["fail_threshold"] == 2


class TestHealthzProbe:
    def test_raises_on_connection_refused(self):
        with pytest.raises(OSError):
            # Port 1 on loopback: nothing listens there.
            asyncio.run(healthz_probe("127.0.0.1", 1, 0.5))
