"""Times the full five-dataset × six-accelerator comparison sweep.

This is the workload behind Figs. 7-10: 2-layer GCN inference simulated
on Aurora and all five baselines over (scaled) Cora, Citeseer, Pubmed,
Nell, and Reddit.
"""

from repro.eval import run_comparison


def test_full_sweep(benchmark):
    comp = benchmark.pedantic(
        run_comparison, kwargs={"model": "gcn"}, rounds=1, iterations=1
    )
    assert len(comp.results) == 5 * 6
    for r in comp.results.values():
        assert r.total_seconds > 0
