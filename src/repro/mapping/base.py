"""Common mapping types: the result of placing a subgraph on a PE region."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arch.noc.topology import BypassSegment

__all__ = ["PERegion", "MappingResult"]


@dataclass(frozen=True)
class PERegion:
    """A rectangular region of the PE array assigned to a sub-accelerator.

    Coordinates are half-open: columns ``[x0, x1)``, rows ``[y0, y1)`` of
    the global K×K array.
    """

    x0: int
    y0: int
    x1: int
    y1: int
    array_k: int

    def __post_init__(self) -> None:
        if not (0 <= self.x0 < self.x1 <= self.array_k):
            raise ValueError("invalid x extent")
        if not (0 <= self.y0 < self.y1 <= self.array_k):
            raise ValueError("invalid y extent")

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0

    @property
    def num_pes(self) -> int:
        return self.width * self.height

    def node_ids(self) -> np.ndarray:
        """Global node ids of the region's PEs, row-major."""
        xs = np.arange(self.x0, self.x1)
        ys = np.arange(self.y0, self.y1)
        grid = ys[:, None] * self.array_k + xs[None, :]
        return grid.ravel()

    def local_to_node(self, local_index: int) -> int:
        """Map a region-local PE index (row-major) to a global node id."""
        if not 0 <= local_index < self.num_pes:
            raise IndexError("local index out of region")
        ly, lx = divmod(local_index, self.width)
        return (self.y0 + ly) * self.array_k + (self.x0 + lx)

    def contains_node(self, node: int) -> bool:
        x, y = node % self.array_k, node // self.array_k
        return self.x0 <= x < self.x1 and self.y0 <= y < self.y1


@dataclass(frozen=True)
class MappingResult:
    """Placement of one subgraph tile onto a PE region.

    ``vertex_to_pe`` maps each (tile-local) vertex id to a *global* NoC
    node id.  ``s_pe_nodes`` and ``high_degree_vertices`` are empty for
    mapping policies without degree awareness.
    """

    policy: str
    region: PERegion
    vertex_to_pe: np.ndarray
    s_pe_nodes: tuple[int, ...] = ()
    high_degree_vertices: tuple[int, ...] = ()
    bypass_segments: tuple[BypassSegment, ...] = ()
    algorithm_cycles: int = 0  # preprocessing cost (overlappable, §IV)

    def __post_init__(self) -> None:
        v2p = np.asarray(self.vertex_to_pe)
        if v2p.ndim != 1:
            raise ValueError("vertex_to_pe must be 1-D")
        region_nodes = set(self.region.node_ids().tolist())
        if v2p.size and not set(np.unique(v2p).tolist()) <= region_nodes:
            raise ValueError("mapping places vertices outside its region")

    @property
    def num_vertices(self) -> int:
        return int(self.vertex_to_pe.size)

    def pe_loads(self) -> np.ndarray:
        """Vertices per PE (indexed by global node id)."""
        k = self.region.array_k
        loads = np.zeros(k * k, dtype=np.int64)
        if self.vertex_to_pe.size:
            np.add.at(loads, self.vertex_to_pe, 1)
        return loads

    def communication_loads(self, graph_degrees: np.ndarray) -> np.ndarray:
        """Messages each PE must absorb: sum of degrees of its vertices."""
        k = self.region.array_k
        loads = np.zeros(k * k, dtype=np.int64)
        if self.vertex_to_pe.size:
            np.add.at(loads, self.vertex_to_pe, graph_degrees)
        return loads
