"""Design-space declarations: typed axes, constraints, job encoding.

A :class:`DesignSpace` is an ordered list of finite axes plus constraint
predicates.  Every axis — categorical, integer or log-float — is
quantised to an explicit grid, so a candidate design is just a tuple of
grid indices.  That finiteness is what makes the search cache-amplified:
``to_job`` maps a candidate deterministically onto a :class:`SimJob`,
whose content hash then addresses the result in the on-disk
:class:`~repro.runtime.cache.ResultCache`.  Two optimizers (or two runs,
or a search and the serving path) that touch the same design pay for it
once.

Spaces are registered by name (:data:`SPACES`) so the CLI, the serve
endpoint and the bench tier can all ask for ``"aurora-core"`` and mean
the same axes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from ..config import AcceleratorConfig, NoCConfig, default_config
from ..runtime.jobs import MAPPING_POLICIES, SimJob

__all__ = [
    "Categorical",
    "IntGrid",
    "LogFloat",
    "Constraint",
    "DesignSpace",
    "SPACES",
    "build_space",
    "list_spaces",
]


@dataclass(frozen=True)
class Categorical:
    """Unordered choice axis (mapping policy, topology variant, …)."""

    name: str
    choices: tuple

    def __post_init__(self) -> None:
        if len(self.choices) < 1:
            raise ValueError(f"axis {self.name!r} needs at least one choice")
        if len(set(self.choices)) != len(self.choices):
            raise ValueError(f"axis {self.name!r} has duplicate choices")

    @property
    def size(self) -> int:
        return len(self.choices)

    #: Ordered axes support ±1 neighbourhood moves; categorical ones
    #: treat every other choice as a neighbour.
    ordered = False

    def value(self, index: int):
        return self.choices[index]

    def index(self, value) -> int:
        return self.choices.index(value)

    def describe(self) -> dict:
        return {"kind": "categorical", "name": self.name, "choices": list(self.choices)}


@dataclass(frozen=True)
class IntGrid:
    """Ordered integer axis over an explicit grid (e.g. powers of two)."""

    name: str
    grid: tuple[int, ...]
    ordered = True

    def __post_init__(self) -> None:
        if len(self.grid) < 1:
            raise ValueError(f"axis {self.name!r} needs at least one value")
        if list(self.grid) != sorted(set(self.grid)):
            raise ValueError(f"axis {self.name!r} grid must be strictly increasing")

    @property
    def size(self) -> int:
        return len(self.grid)

    def value(self, index: int) -> int:
        return self.grid[index]

    def index(self, value) -> int:
        return self.grid.index(int(value))

    def describe(self) -> dict:
        return {"kind": "int", "name": self.name, "grid": list(self.grid)}


def _geomspace(lo: float, hi: float, steps: int) -> tuple[float, ...]:
    if steps == 1:
        return (float(lo),)
    ratio = (hi / lo) ** (1.0 / (steps - 1))
    return tuple(float(lo * ratio**i) for i in range(steps))


@dataclass(frozen=True)
class LogFloat:
    """Ordered float axis quantised onto a geometric grid.

    Quantisation (rather than a continuous range) keeps every candidate
    content-addressable: two optimizers proposing "roughly 1 GHz" land
    on the *same* grid value, the same job hash, and one cache entry.
    """

    name: str
    lo: float
    hi: float
    steps: int
    grid: tuple[float, ...] = field(init=False)
    ordered = True

    def __post_init__(self) -> None:
        if self.lo <= 0 or self.hi < self.lo:
            raise ValueError(f"axis {self.name!r} needs 0 < lo <= hi")
        if self.steps < 1:
            raise ValueError(f"axis {self.name!r} needs steps >= 1")
        object.__setattr__(self, "grid", _geomspace(self.lo, self.hi, self.steps))

    @property
    def size(self) -> int:
        return self.steps

    def value(self, index: int) -> float:
        return self.grid[index]

    def index(self, value) -> int:
        target = float(value)
        best = min(range(self.steps), key=lambda i: abs(self.grid[i] - target))
        return best

    def describe(self) -> dict:
        return {
            "kind": "log-float",
            "name": self.name,
            "lo": self.lo,
            "hi": self.hi,
            "steps": self.steps,
        }


@dataclass(frozen=True)
class Constraint:
    """Named feasibility predicate over a decoded ``{axis: value}`` dict."""

    label: str
    predicate: Callable[[dict], bool]

    def __call__(self, values: dict) -> bool:
        return bool(self.predicate(values))


#: Axis-name prefixes route decoded values into the job spec: ``noc.*``
#: targets :class:`NoCConfig`, plain accelerator fields target
#: :class:`AcceleratorConfig`, and ``job.*`` targets ``SimJob`` fields
#: (``job.mapping``, ``job.hidden``, …).
_JOB_FIELDS = ("mapping", "hidden", "num_layers", "model")


class DesignSpace:
    """Finite, constrained design space bound to a base workload job.

    ``base_job`` carries everything the search does *not* vary — model,
    dataset, scale, seed.  ``to_job`` overlays a decoded candidate onto
    it, producing the content-addressed spec the runtime executes.
    """

    def __init__(
        self,
        name: str,
        axes: Sequence,
        *,
        base_job: SimJob | None = None,
        constraints: Sequence[Constraint] = (),
    ) -> None:
        if not axes:
            raise ValueError("a design space needs at least one axis")
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate axis names")
        self.name = name
        self.axes = tuple(axes)
        self.base_job = base_job or SimJob()
        self.constraints = tuple(constraints)
        self._axis_by_name = {axis.name: axis for axis in self.axes}

    # -- geometry ------------------------------------------------------
    @property
    def size(self) -> int:
        """Total grid cardinality (ignoring constraints)."""
        total = 1
        for axis in self.axes:
            total *= axis.size
        return total

    def decode(self, indices: Sequence[int]) -> dict:
        """Grid indices → ``{axis name: value}``."""
        if len(indices) != len(self.axes):
            raise ValueError("index vector length mismatch")
        return {
            axis.name: axis.value(int(i)) for axis, i in zip(self.axes, indices)
        }

    def encode(self, values: dict) -> tuple[int, ...]:
        """``{axis name: value}`` → grid indices (inverse of decode)."""
        return tuple(axis.index(values[axis.name]) for axis in self.axes)

    def is_feasible(self, indices: Sequence[int]) -> bool:
        values = self.decode(indices)
        return all(constraint(values) for constraint in self.constraints)

    def random_point(self, rng) -> tuple[int, ...]:
        """Uniform feasible sample (rejection sampling, bounded)."""
        for _ in range(1000):
            indices = tuple(rng.randrange(axis.size) for axis in self.axes)
            if self.is_feasible(indices):
                return indices
        raise RuntimeError(
            f"could not sample a feasible point in space {self.name!r}"
        )

    def neighbors(self, indices: Sequence[int]) -> list[tuple[int, ...]]:
        """Feasible single-axis moves (±1 for ordered axes, any other
        choice for categorical ones) — the hill-climb neighbourhood."""
        indices = tuple(int(i) for i in indices)
        out: list[tuple[int, ...]] = []
        for pos, axis in enumerate(self.axes):
            if getattr(axis, "ordered", False):
                steps = [indices[pos] - 1, indices[pos] + 1]
            else:
                steps = [i for i in range(axis.size) if i != indices[pos]]
            for step in steps:
                if 0 <= step < axis.size:
                    cand = indices[:pos] + (step,) + indices[pos + 1 :]
                    if self.is_feasible(cand):
                        out.append(cand)
        return out

    # -- job encoding --------------------------------------------------
    def to_job(self, values: dict, *, fidelity: float = 1.0) -> SimJob:
        """Overlay a decoded candidate onto the base workload job.

        ``fidelity`` in (0, 1] multiplies the base job's dataset scale —
        the successive-halving rungs evaluate the same design on a
        proportionally smaller graph before promoting it to the full
        workload.
        """
        if not 0.0 < fidelity <= 1.0:
            raise ValueError("fidelity must be in (0, 1]")
        config = self.base_job.config or default_config()
        cfg_fields = {f for f in AcceleratorConfig.__dataclass_fields__}
        noc_overrides: dict = {}
        cfg_overrides: dict = {}
        job_overrides: dict = {}
        for name, value in values.items():
            if name.startswith("noc."):
                noc_overrides[name[4:]] = value
            elif name in _JOB_FIELDS:
                job_overrides[name] = value
            elif name in cfg_fields:
                cfg_overrides[name] = value
            else:
                raise KeyError(f"axis {name!r} maps to no known field")
        if noc_overrides:
            cfg_overrides["noc"] = replace(config.noc, **noc_overrides)
        if cfg_overrides:
            config = replace(config, **cfg_overrides)
        scale = self.base_job.scale * fidelity
        # SimJob requires scale in (0, 1]; clamp the low end only.
        scale = max(scale, 1e-6)
        return replace(
            self.base_job, config=config, scale=scale, **job_overrides
        )

    def job_for(
        self, indices: Sequence[int], *, fidelity: float = 1.0
    ) -> SimJob:
        return self.to_job(self.decode(indices), fidelity=fidelity)

    # -- identity ------------------------------------------------------
    def describe(self) -> dict:
        """Canonical JSON description (the basis of :meth:`signature`)."""
        return {
            "name": self.name,
            "axes": [axis.describe() for axis in self.axes],
            "constraints": [c.label for c in self.constraints],
            "base_job": self.base_job.as_dict(),
        }

    def signature(self) -> str:
        """Content hash of the space + workload; stamped into checkpoints
        and trajectories so a resume against different axes is refused."""
        blob = json.dumps(self.describe(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Named spaces


def _multiplier_budget(values: dict) -> bool:
    """Keep candidate arrays within the paper's 32×32×16 multiplier budget."""
    k = values.get("array_k", 32)
    macs = values.get("macs_per_pe", 16)
    return k * k * macs <= 32 * 32 * 16


def _buffer_budget(values: dict) -> bool:
    """Aggregate on-chip buffer must not exceed the paper's ~100 MB."""
    k = values.get("array_k", 32)
    per_pe = values.get("pe_buffer_bytes", 100 * 1024)
    return k * k * per_pe <= 32 * 32 * 100 * 1024


def _core_space(base_job: SimJob) -> DesignSpace:
    """The headline search: array shape, buffers, clock, NoC, mapping."""
    kib = 1024
    return DesignSpace(
        "aurora-core",
        [
            IntGrid("array_k", (8, 16, 32)),
            IntGrid("macs_per_pe", (4, 8, 16)),
            IntGrid(
                "pe_buffer_bytes", (16 * kib, 32 * kib, 64 * kib, 100 * kib)
            ),
            LogFloat("frequency_hz", 350e6, 1.4e9, 5),
            IntGrid("noc.flit_bytes", (8, 16, 32)),
            IntGrid("noc.vcs_per_port", (1, 2, 4)),
            IntGrid("noc.bypass_links_per_row", (0, 1, 2)),
            Categorical("mapping", MAPPING_POLICIES),
        ],
        base_job=base_job,
        constraints=(
            Constraint("multiplier-budget", _multiplier_budget),
            Constraint("buffer-budget", _buffer_budget),
        ),
    )


def _noc_space(base_job: SimJob) -> DesignSpace:
    """NoC-only ablation: fixed array, vary the interconnect."""
    return DesignSpace(
        "aurora-noc",
        [
            IntGrid("noc.flit_bytes", (8, 16, 32, 64)),
            IntGrid("noc.vcs_per_port", (1, 2, 4)),
            IntGrid("noc.vc_depth", (2, 4, 8)),
            IntGrid("noc.bypass_links_per_row", (0, 1, 2)),
            IntGrid("noc.bypass_links_per_col", (0, 1, 2)),
            Categorical("mapping", MAPPING_POLICIES),
        ],
        base_job=base_job,
    )


def _mini_space(base_job: SimJob) -> DesignSpace:
    """Tiny 24-point space for benches, smoke tests and CI: small enough
    that a 200-candidate search revisits designs constantly, which is
    exactly what the cache-amplification bench measures."""
    return DesignSpace(
        "aurora-mini",
        [
            IntGrid("array_k", (8, 16)),
            IntGrid("noc.flit_bytes", (8, 16, 32)),
            IntGrid("noc.bypass_links_per_row", (0, 1)),
            Categorical("mapping", MAPPING_POLICIES),
        ],
        base_job=base_job,
    )


SPACES: dict[str, Callable[[SimJob], DesignSpace]] = {
    "aurora-core": _core_space,
    "aurora-noc": _noc_space,
    "aurora-mini": _mini_space,
}


def list_spaces() -> list[str]:
    return list(SPACES)


def build_space(name: str, base_job: SimJob | None = None) -> DesignSpace:
    """Instantiate a named space over ``base_job`` (default workload:
    the ``SimJob`` defaults — GCN on cora)."""
    try:
        builder = SPACES[name]
    except KeyError:
        raise KeyError(
            f"unknown design space {name!r}; available: {', '.join(SPACES)}"
        ) from None
    return builder(base_job or SimJob())
