"""Unit tests for the reconfigurable PE model."""

import pytest

from repro.arch import PE, PEConfig, PECycleModel, PEDatapath, datapath_for_op
from repro.config import small_config
from repro.models import OpKind


@pytest.fixture
def pe(cfg8):
    return PE(0, 0, cfg8)


class TestDatapathMapping:
    @pytest.mark.parametrize(
        "kind,dp",
        [
            (OpKind.MATRIX_VECTOR, PEDatapath.MAC_CHAIN),
            (OpKind.VECTOR_VECTOR, PEDatapath.MAC_CHAIN),
            (OpKind.DOT, PEDatapath.MAC_CHAIN),
            (OpKind.SCALAR_VECTOR, PEDatapath.MUL_ONLY),
            (OpKind.ELEMENTWISE, PEDatapath.MUL_ONLY),
            (OpKind.ACCUMULATE, PEDatapath.ADD_ONLY),
            (OpKind.MAX_REDUCE, PEDatapath.ADD_ONLY),
            (OpKind.ACTIVATION, PEDatapath.IDLE),
            (OpKind.CONCAT, PEDatapath.IDLE),
        ],
    )
    def test_fig6_configurations(self, kind, dp):
        assert datapath_for_op(kind) is dp


class TestCycleModel:
    def test_mac_chain_full_throughput(self, cfg8):
        m = PECycleModel(cfg8)
        assert m.throughput(PEDatapath.MAC_CHAIN) == 2 * cfg8.macs_per_pe

    def test_partial_datapaths_half_throughput(self, cfg8):
        m = PECycleModel(cfg8)
        assert m.throughput(PEDatapath.MUL_ONLY) == cfg8.macs_per_pe
        assert m.throughput(PEDatapath.ADD_ONLY) == cfg8.macs_per_pe

    def test_idle_no_throughput(self, cfg8):
        assert PECycleModel(cfg8).throughput(PEDatapath.IDLE) == 0

    def test_cycles_include_pipeline_fill(self, cfg8):
        m = PECycleModel(cfg8)
        rate = 2 * cfg8.macs_per_pe
        assert m.cycles_for_ops(OpKind.MATRIX_VECTOR, rate) == (
            PECycleModel.PIPELINE_FILL + 1
        )

    def test_cycles_ceil_division(self, cfg8):
        m = PECycleModel(cfg8)
        rate = 2 * cfg8.macs_per_pe
        assert m.cycles_for_ops(OpKind.MATRIX_VECTOR, rate + 1) == (
            PECycleModel.PIPELINE_FILL + 2
        )

    def test_zero_ops_zero_cycles(self, cfg8):
        assert PECycleModel(cfg8).cycles_for_ops(OpKind.DOT, 0) == 0

    def test_ppu_rate(self, cfg8):
        m = PECycleModel(cfg8)
        cycles = m.cycles_for_ops(OpKind.ACTIVATION, cfg8.ppu_lanes * 3)
        assert cycles == PECycleModel.PIPELINE_FILL + 3

    def test_negative_ops(self, cfg8):
        with pytest.raises(ValueError):
            PECycleModel(cfg8).cycles_for_ops(OpKind.DOT, -1)


class TestPE:
    def test_initial_idle(self, pe):
        assert pe.pe_config.datapath is PEDatapath.IDLE

    def test_configure_switch_penalty(self, pe):
        penalty = pe.configure(PEConfig(PEDatapath.MAC_CHAIN))
        assert penalty == PECycleModel.SWITCH_PENALTY
        assert pe.reconfig_count == 1

    def test_reconfigure_same_datapath_free(self, pe):
        pe.configure(PEConfig(PEDatapath.MAC_CHAIN))
        assert pe.configure(PEConfig(PEDatapath.MAC_CHAIN)) == 0
        assert pe.reconfig_count == 1

    def test_execute_requires_matching_datapath(self, pe):
        pe.configure(PEConfig(PEDatapath.ADD_ONLY))
        with pytest.raises(RuntimeError, match="configured"):
            pe.execute(OpKind.MATRIX_VECTOR, 10)

    def test_execute_counts(self, pe):
        pe.configure(PEConfig(PEDatapath.MAC_CHAIN))
        cycles = pe.execute(OpKind.MATRIX_VECTOR, 100)
        assert cycles > 0
        assert pe.busy_cycles == cycles
        assert pe.ops_executed[OpKind.MATRIX_VECTOR] == 100

    def test_ppu_runs_regardless_of_datapath(self, pe):
        pe.configure(PEConfig(PEDatapath.ADD_ONLY))
        assert pe.execute(OpKind.ACTIVATION, 8) > 0

    def test_weight_allocation(self, pe, cfg8):
        pe.configure(
            PEConfig(PEDatapath.MAC_CHAIN, stationary_weight_bytes=4096)
        )
        assert pe.buffer.region_bytes("weights") == 4096

    def test_supports_everything(self, pe):
        for kind in OpKind:
            if kind is not OpKind.NULL:
                assert pe.supports(kind)
        assert not pe.supports(OpKind.NULL)

    def test_invalid_weight_bytes(self):
        with pytest.raises(ValueError):
            PEConfig(PEDatapath.MAC_CHAIN, stationary_weight_bytes=-1)
