"""Intra-job tile fan-out: shard planning and the fan-out driver.

A single simulation request walks a layer's tiles serially; this module
lets it use the whole machine instead.  Tiles are independent, so the
driver:

1. probes the per-tile :class:`~repro.runtime.cache.ResultCache` sub-keys
   (content-addressed by tile subgraph + workload + config — a dirty
   tile recomputes alone, clean siblings are served from disk),
2. batches the cold tiles into contiguous shards with
   :class:`TileShardPlanner` (small tiles are grouped so process-pool
   dispatch overhead amortizes; contiguity keeps result order — and the
   order-sensitive float accumulations built on it — deterministic),
3. fans the shards out through the existing :mod:`repro.runtime`
   executors, propagating the caller's telemetry trace context so each
   shard's spans merge back into one request tree,
4. recovers from crashed/timed-out shards by recomputing them serially
   in-process (one bad worker degrades throughput, never correctness),
5. returns per-tile payloads *in tile order*.

Worker-count discipline comes from :mod:`repro.runtime.budget`: the
driver leases workers from the shared budget, and inside a pool worker
(e.g. a tile fan-out nested under ``repro serve``'s batch pool) the
lease collapses to 1 so the machine is never oversubscribed.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

from ..perf import PERF
from ..telemetry import TRACER
from .budget import BUDGET
from .cache import ResultCache
from .executor import ProcessExecutor, SerialExecutor

__all__ = [
    "TILE_SHARD_SCHEMA_VERSION",
    "TILE_MEMO_MAX",
    "TileShard",
    "TileShardJob",
    "TileShardPlanner",
    "tile_sub_key",
    "run_tile_shards",
    "clear_tile_memo",
]

#: Bump when the per-tile cache payload layout changes incompatibly.
TILE_SHARD_SCHEMA_VERSION = 1

#: Memory tier over the disk tile cache.  A persistent process serving a
#: mutation stream probes the same clean-tile sub-keys request after
#: request; parsing their JSON blobs off disk every time costs more than
#: the dirty-tile recompute.  Entries are small per-tile payload dicts
#: (~1 KiB), shared read-only between probes, and scoped to the disk
#: cache root they mirror so distinct caches never alias.
TILE_MEMO_MAX = 8192

_TILE_MEMO: "OrderedDict[tuple[str, str], dict]" = OrderedDict()


def clear_tile_memo() -> None:
    """Drop the in-process tile payload memo (tests, cold benches)."""
    _TILE_MEMO.clear()


def _memo_put(memo_key: tuple[str, str], payload) -> None:
    _TILE_MEMO[memo_key] = payload
    _TILE_MEMO.move_to_end(memo_key)
    while len(_TILE_MEMO) > TILE_MEMO_MAX:
        _TILE_MEMO.popitem(last=False)


def tile_sub_key(kind: str, parts: dict) -> str:
    """Content-addressed cache sub-key for one tile of one job.

    ``parts`` must be JSON-serializable and capture everything the tile
    result depends on (tile subgraph content key, workload dims, config
    digest, policy knobs).  The engine choice is deliberately *not* part
    of the key: all NoC engines are property-tested bit-identical, so a
    tile result is a property of the workload, not of which engine
    computed it.
    """
    blob = json.dumps(
        {"version": TILE_SHARD_SCHEMA_VERSION, "kind": kind, **parts},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class TileShard:
    """A contiguous run of tile positions executed by one worker."""

    index: int
    tile_indices: tuple[int, ...]
    cost: float


class TileShardPlanner:
    """Batches tiles into contiguous, cost-balanced shards.

    ``shards_per_worker`` controls load-balance granularity (more shards
    → better balance, more dispatch overhead); ``min_shard_cost`` keeps
    tiny tiles from becoming tiny shards — a shard is only closed early
    once it has accumulated at least this much cost.  Costs are unitless
    (callers typically pass edge counts or packet estimates).

    Planning is deterministic: same costs + same worker count → same
    shards, and shard order concatenates back to tile order.
    """

    def __init__(
        self, *, shards_per_worker: int = 2, min_shard_cost: float = 0.0
    ) -> None:
        if shards_per_worker < 1:
            raise ValueError("shards_per_worker must be >= 1")
        self.shards_per_worker = shards_per_worker
        self.min_shard_cost = min_shard_cost

    def plan(
        self, costs: Sequence[float], workers: int
    ) -> list[TileShard]:
        n = len(costs)
        if n == 0:
            return []
        workers = max(1, workers)
        if workers == 1:
            return [TileShard(0, tuple(range(n)), float(sum(costs)))]
        total = float(sum(costs))
        target_shards = min(n, workers * self.shards_per_worker)
        target_cost = max(total / target_shards, self.min_shard_cost)
        shards: list[TileShard] = []
        start = 0
        acc = 0.0
        for i, cost in enumerate(costs):
            acc += float(cost)
            remaining_tiles = n - i - 1
            # Close the shard once it is full — unless the tail would
            # then be left without tiles to form at least one shard.
            if acc >= target_cost and remaining_tiles >= 0 and i + 1 > start:
                shards.append(
                    TileShard(len(shards), tuple(range(start, i + 1)), acc)
                )
                start = i + 1
                acc = 0.0
        if start < n:
            shards.append(
                TileShard(len(shards), tuple(range(start, n)), acc)
            )
        return shards


@dataclass(frozen=True)
class TileShardJob:
    """One executor job: a shard's worth of per-tile payloads.

    ``payloads`` are opaque picklable per-tile job descriptions consumed
    by the worker function; ``route_memo`` optionally carries the
    caller's exported NoC route memo so worker processes skip route
    derivation for topologies the parent has already seen.
    """

    kind: str
    shard_index: int
    tile_indices: tuple[int, ...]
    payloads: tuple
    route_memo: tuple | None = None

    def label(self) -> str:
        first, last = self.tile_indices[0], self.tile_indices[-1]
        return f"{self.kind}:shard{self.shard_index}[{first}..{last}]"


@dataclass
class TileFanout:
    """Per-tile payloads in tile order, plus how they were obtained."""

    payloads: list
    stats: dict


def run_tile_shards(
    payloads: "Sequence | int",
    worker_fn: Callable[[TileShardJob], dict],
    *,
    kind: str,
    tile_workers: int = 1,
    costs: Sequence[float] | None = None,
    tile_keys: Sequence[str | None] | None = None,
    cache: ResultCache | None = None,
    planner: TileShardPlanner | None = None,
    route_memo: dict | None = None,
    timeout: float | None = None,
    executor=None,
    payload_builder: Callable[[list], Sequence] | None = None,
) -> TileFanout:
    """Run one per-tile payload each through ``worker_fn``, sharded.

    ``worker_fn`` must be a module-level (picklable) callable taking a
    :class:`TileShardJob` and returning ``{"tiles": [payload, ...]}``
    with one JSON-serializable payload per ``tile_indices`` entry, in
    order.  Returns the per-tile payloads in tile order.

    With ``payload_builder``, ``payloads`` is the tile *count* (or any
    sized sequence used only for its length) and the builder is called
    once — after the cache probe — with the sorted cold tile indices,
    returning one payload per cold tile.  Callers with expensive payload
    construction (tile mapping, batched traffic extraction) use this so
    a mostly-warm incremental re-simulation never pays for clean tiles.

    A shard whose worker crashes or times out is recomputed serially in
    this process — the mid-shard-crash property tests pin that the
    result is byte-identical either way.
    """
    n = payloads if isinstance(payloads, int) else len(payloads)
    results: list = [None] * n
    cache_hits = 0
    memo_hits = 0
    if n == 0:
        return TileFanout(
            [], {"tiles": 0, "shards": 0, "cache_hits": 0, "memo_hits": 0}
        )

    # ---- per-tile cache probe (memory tier, then disk sub-keys) -------
    keys = list(tile_keys) if tile_keys is not None else [None] * n
    if cache is not None:
        root = str(cache.root)
        for i, key in enumerate(keys):
            if key is None:
                continue
            memo_key = (root, key)
            hit = _TILE_MEMO.get(memo_key)
            if hit is not None:
                _TILE_MEMO.move_to_end(memo_key)
                results[i] = hit
                cache_hits += 1
                memo_hits += 1
                continue
            hit = cache.load(key)
            if hit is not None:
                results[i] = hit
                cache_hits += 1
                _memo_put(memo_key, hit)

    cold = [i for i in range(n) if results[i] is None]
    PERF.incr("tiles.cache_hit", cache_hits)
    PERF.incr("tiles.memo_hit", memo_hits)
    PERF.incr("tiles.cache_miss", len(cold))
    if not cold:
        return TileFanout(
            results,
            {
                "tiles": n,
                "shards": 0,
                "cache_hits": cache_hits,
                "memo_hits": memo_hits,
                "workers": 0,
                "recovered_shards": 0,
            },
        )

    # ---- build cold payloads (lazy path) or index the eager ones ------
    if payload_builder is not None:
        built = list(payload_builder(list(cold)))
        if len(built) != len(cold):
            raise RuntimeError(
                f"payload_builder returned {len(built)} payloads for "
                f"{len(cold)} cold tiles"
            )
        cold_payloads = dict(zip(cold, built))
    elif isinstance(payloads, int):
        raise TypeError("payload_builder required when payloads is a count")
    else:
        cold_payloads = {i: payloads[i] for i in cold}

    # ---- shard the cold tiles, lease workers from the shared budget ---
    planner = planner or TileShardPlanner()
    workers = BUDGET.lease("tile-fanout", max(1, tile_workers))
    try:
        cold_costs = (
            [float(costs[i]) for i in cold] if costs is not None
            else [1.0] * len(cold)
        )
        shards = planner.plan(cold_costs, workers)
        memo_export = tuple(route_memo.items()) if route_memo else None
        jobs = [
            TileShardJob(
                kind=kind,
                shard_index=shard.index,
                tile_indices=tuple(cold[j] for j in shard.tile_indices),
                payloads=tuple(
                    cold_payloads[cold[j]] for j in shard.tile_indices
                ),
                route_memo=memo_export,
            )
            for shard in shards
        ]

        if executor is None:
            # ``executor`` is an injection point for tests (e.g. a
            # FakeExecutor scripting a mid-shard worker crash).
            if workers == 1 or len(jobs) == 1:
                executor = SerialExecutor()
            else:
                executor = ProcessExecutor(workers, timeout=timeout)
        trace_ctx = TRACER.current_context()
        with TRACER.span(
            "tiles.fanout",
            {
                "kind": kind,
                "tiles": n,
                "cold": len(cold),
                "shards": len(jobs),
                "workers": workers,
                "executor": executor.name,
            },
        ):
            records = executor.run(jobs, fn=worker_fn, trace_ctx=trace_ctx)
    finally:
        BUDGET.release("tile-fanout")

    # ---- merge, recovering failed shards serially ----------------------
    recovered = 0
    for job, record in zip(jobs, records):
        if record.ok:
            if record.spans:
                TRACER.merge(record.spans)
            shard_payload = record.payload
        else:
            # Worker crashed or timed out: the tiles are still needed,
            # so recompute the shard here.  Any exception now is real
            # and propagates.
            recovered += 1
            with TRACER.span(
                "tiles.recover_shard",
                {"kind": kind, "shard": job.shard_index, "error": record.error},
            ):
                shard_payload = worker_fn(job)
        tiles = shard_payload["tiles"]
        if len(tiles) != len(job.tile_indices):
            raise RuntimeError(
                f"shard {job.shard_index} returned {len(tiles)} tiles, "
                f"expected {len(job.tile_indices)}"
            )
        for tile_index, payload in zip(job.tile_indices, tiles):
            results[tile_index] = payload
            key = keys[tile_index]
            if cache is not None and key is not None:
                cache.store(key, payload)
                _memo_put((str(cache.root), key), payload)

    return TileFanout(
        results,
        {
            "tiles": n,
            "shards": len(jobs),
            "cache_hits": cache_hits,
            "memo_hits": memo_hits,
            "workers": workers,
            "recovered_shards": recovered,
        },
    )
