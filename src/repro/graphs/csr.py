"""Compressed Sparse Row (CSR) graph substrate.

The paper stores graph data in CSR format and feeds its metadata (row and
edge indices) to the mapping and partitioning units.  This module provides
the CSR container used throughout the simulator: adjacency in CSR (and a
lazily built CSC transpose), per-vertex degrees, and light-weight metadata
queries the preprocessing units rely on.

All index arrays are contiguous ``int64`` NumPy arrays so that downstream
vectorised traffic/op counting never copies.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "CSRGraph",
    "GraphMeta",
    "from_edge_list",
    "from_dense_adjacency",
    "compute_row_digests",
]

# splitmix64 finalizer constants; the mixer runs over whole arrays so the
# per-row digests below are fully vectorised.
_MIX_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX_M1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_M2 = np.uint64(0x94D049BB133111EB)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over a uint64 array (wrapping arithmetic)."""
    z = x.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        z += _MIX_GOLDEN
        z ^= z >> _S30
        z *= _MIX_M1
        z ^= z >> _S27
        z *= _MIX_M2
        z ^= z >> _S31
    return z


def compute_row_digests(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Order-independent 64-bit digest of each CSR row's neighbor list.

    Digest of row ``v`` is a function of its degree and the multiset of
    its destinations only, so a mutation touching row ``v`` invalidates
    exactly that row's digest.  ``CSRGraph.content_key`` hashes the digest
    array (position encodes the row id), which lets
    :mod:`repro.graphs.delta` update a graph's content key by re-digesting
    only mutated rows instead of re-hashing every edge.
    """
    n = indptr.size - 1
    mixed = _mix64(np.asarray(indices, dtype=np.int64))
    with np.errstate(over="ignore"):
        cum = np.zeros(mixed.size + 1, dtype=np.uint64)
        np.cumsum(mixed, out=cum[1:])
        row_sums = cum[indptr[1:]] - cum[indptr[:-1]]
        degrees = (indptr[1:] - indptr[:-1]).astype(np.uint64)
        return _mix64(row_sums + _mix64(degrees))


@dataclass(frozen=True)
class GraphMeta:
    """Structural metadata extracted from CSR indices.

    This is the "auxiliary information" the request dispatcher forwards to
    the adaptive workflow generator, partition algorithm, and degree-aware
    mapping algorithm (paper Fig. 3).
    """

    num_vertices: int
    num_edges: int
    max_degree: int
    min_degree: int
    mean_degree: float
    degree_p99: float
    density: float

    @property
    def is_power_law_like(self) -> bool:
        """Heuristic: heavy-tailed if the p99 degree dwarfs the mean."""
        if self.mean_degree == 0:
            return False
        return self.degree_p99 >= 4.0 * self.mean_degree


class CSRGraph:
    """Directed graph in CSR form with dataset attributes.

    Parameters
    ----------
    indptr:
        ``int64`` array of shape ``(num_vertices + 1,)``; row pointers.
    indices:
        ``int64`` array of shape ``(num_edges,)``; column indices
        (out-neighbors of each vertex, i.e. edge destinations).
    num_features:
        Width of the per-vertex feature vectors (``F``).
    feature_density:
        Fraction of nonzero entries in the feature matrix; drives DRAM
        traffic for feature loads (the paper notes Reddit's >50% density).
    edge_feature_dim:
        Width of per-edge embeddings (``E_f``), 0 when the model family
        does not use edge embeddings.
    name:
        Dataset name for reporting.
    """

    __slots__ = (
        "indptr",
        "indices",
        "num_features",
        "feature_density",
        "edge_feature_dim",
        "name",
        "_degrees",
        "_in_degrees",
        "_csc",
        "_meta",
        "_content_key",
        "_row_digests",
        "derived_from",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        num_features: int = 1,
        feature_density: float = 1.0,
        edge_feature_dim: int = 0,
        name: str = "graph",
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D arrays")
        if indptr.size == 0:
            raise ValueError("indptr must have at least one entry")
        if indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if indptr[-1] != indices.size:
            raise ValueError(
                f"indptr[-1]={indptr[-1]} does not match len(indices)={indices.size}"
            )
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("edge destinations out of range")
        if num_features < 1:
            raise ValueError("num_features must be >= 1")
        if not (0.0 < feature_density <= 1.0):
            raise ValueError("feature_density must be in (0, 1]")
        if edge_feature_dim < 0:
            raise ValueError("edge_feature_dim must be >= 0")

        self.indptr = indptr
        self.indices = indices
        self.num_features = int(num_features)
        self.feature_density = float(feature_density)
        self.edge_feature_dim = int(edge_feature_dim)
        self.name = name
        self._degrees: np.ndarray | None = None
        self._in_degrees: np.ndarray | None = None
        self._csc: tuple[np.ndarray, np.ndarray] | None = None
        self._meta: GraphMeta | None = None
        self._content_key: str | None = None
        self._row_digests: np.ndarray | None = None
        #: Content key of the graph this one was derived from by an edge
        #: delta (set by :func:`repro.graphs.delta.apply_delta`), else
        #: ``None``.  Advisory provenance only — never part of the
        #: content hash — letting content-keyed caches attempt
        #: incremental updates from the parent's entry.
        self.derived_from: str | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        return self.indices.size

    @property
    def row_digests(self) -> np.ndarray:
        """Per-row structure digests (cached; see :func:`compute_row_digests`).

        :func:`repro.graphs.delta.apply_delta` seeds a mutated graph's
        digest array from its parent, re-digesting only touched rows —
        the array is treated as immutable by every reader.
        """
        if self._row_digests is None:
            self._row_digests = compute_row_digests(self.indptr, self.indices)
        return self._row_digests

    @property
    def content_key(self) -> str:
        """Content hash of the graph *structure* (name excluded).

        Two tiles with identical CSR arrays and dataset attributes share a
        key even when their reporting names differ — the identity the
        tile-mapping memo (:mod:`repro.mapping.memo`) caches on.  The hash
        covers the per-row digest array rather than the raw CSR bytes so
        that edge deltas can refresh it by re-digesting touched rows only
        (the digest's position encodes the row id).  Computed once and
        cached; CSR arrays are treated as immutable repo-wide.
        """
        if self._content_key is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(
                f"{self.num_features}|{self.feature_density!r}|"
                f"{self.edge_feature_dim}|{self.indptr.size}|".encode()
            )
            h.update(self.row_digests.tobytes())
            self._content_key = h.hexdigest()
        return self._content_key

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of each vertex (cached)."""
        if self._degrees is None:
            self._degrees = np.diff(self.indptr)
        return self._degrees

    @property
    def in_degrees(self) -> np.ndarray:
        """In-degree of each vertex (cached)."""
        if self._in_degrees is None:
            self._in_degrees = np.bincount(
                self.indices, minlength=self.num_vertices
            ).astype(np.int64)
        return self._in_degrees

    def renamed(self, name: str) -> "CSRGraph":
        """An O(1) view of this graph under a different reporting name.

        Shares the CSR arrays and every content-derived cache — the
        content key excludes the name — so no validation or hashing is
        repeated.  Used by incremental re-tiling to re-label a reused
        tile subgraph under the mutated parent's name.
        """
        g = CSRGraph.__new__(CSRGraph)
        g.indptr = self.indptr
        g.indices = self.indices
        g.num_features = self.num_features
        g.feature_density = self.feature_density
        g.edge_feature_dim = self.edge_feature_dim
        g.name = name
        g._degrees = self._degrees
        g._in_degrees = self._in_degrees
        g._csc = self._csc
        g._meta = self._meta
        g._content_key = self._content_key
        g._row_digests = self._row_digests
        g.derived_from = self.derived_from
        return g

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors of vertex ``v`` (a view, not a copy)."""
        if not 0 <= v < self.num_vertices:
            raise IndexError(f"vertex {v} out of range")
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        if not 0 <= v < self.num_vertices:
            raise IndexError(f"vertex {v} out of range")
        return int(self.indptr[v + 1] - self.indptr[v])

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate ``(src, dst)`` pairs in CSR order."""
        src = np.repeat(np.arange(self.num_vertices), self.degrees)
        return zip(src.tolist(), self.indices.tolist())

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array of ``(src, dst)`` rows."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees)
        return np.column_stack((src, self.indices))

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def csc(self) -> tuple[np.ndarray, np.ndarray]:
        """Transpose adjacency as ``(indptr, indices)`` over in-edges."""
        if self._csc is None:
            order = np.argsort(self.indices, kind="stable")
            src = np.repeat(
                np.arange(self.num_vertices, dtype=np.int64), self.degrees
            )
            col_indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(self.indices, minlength=self.num_vertices),
                out=col_indptr[1:],
            )
            self._csc = (col_indptr, np.ascontiguousarray(src[order]))
        return self._csc

    def reverse(self) -> "CSRGraph":
        """Graph with every edge reversed."""
        indptr, indices = self.csc()
        return CSRGraph(
            indptr.copy(),
            indices.copy(),
            num_features=self.num_features,
            feature_density=self.feature_density,
            edge_feature_dim=self.edge_feature_dim,
            name=f"{self.name}-rev",
        )

    def meta(self) -> GraphMeta:
        """Structural metadata (cached); used by mapping/partition units."""
        if self._meta is None:
            deg = self.degrees
            n = self.num_vertices
            m = self.num_edges
            self._meta = GraphMeta(
                num_vertices=n,
                num_edges=m,
                max_degree=int(deg.max()) if n else 0,
                min_degree=int(deg.min()) if n else 0,
                mean_degree=float(deg.mean()) if n else 0.0,
                degree_p99=float(np.percentile(deg, 99)) if n else 0.0,
                density=float(m) / (n * n) if n else 0.0,
            )
        return self._meta

    # ------------------------------------------------------------------
    # Subgraph extraction (used by tiling)
    # ------------------------------------------------------------------
    def induced_subgraph(self, vertices: Sequence[int] | np.ndarray) -> "CSRGraph":
        """Subgraph induced on ``vertices`` with relabelled, compacted ids.

        Edges whose destination falls outside the vertex set are dropped,
        matching the paper's tiling scheme where cross-tile edges are
        handled by boundary feature loads, not on-chip traffic.
        """
        verts = np.asarray(vertices, dtype=np.int64)
        if verts.size != np.unique(verts).size:
            raise ValueError("vertex list contains duplicates")
        if verts.size and (verts.min() < 0 or verts.max() >= self.num_vertices):
            raise ValueError("vertex ids out of range")
        lookup = np.full(self.num_vertices, -1, dtype=np.int64)
        lookup[verts] = np.arange(verts.size)

        new_indptr = np.zeros(verts.size + 1, dtype=np.int64)
        chunks: list[np.ndarray] = []
        for new_id, v in enumerate(verts):
            nbrs = lookup[self.neighbors(int(v))]
            nbrs = nbrs[nbrs >= 0]
            chunks.append(nbrs)
            new_indptr[new_id + 1] = new_indptr[new_id] + nbrs.size
        new_indices = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )
        return CSRGraph(
            new_indptr,
            new_indices,
            num_features=self.num_features,
            feature_density=self.feature_density,
            edge_feature_dim=self.edge_feature_dim,
            name=f"{self.name}-sub{verts.size}",
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"CSRGraph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, F={self.num_features})"
        )


def from_edge_list(
    num_vertices: int,
    edges: Sequence[tuple[int, int]] | np.ndarray,
    *,
    num_features: int = 1,
    feature_density: float = 1.0,
    edge_feature_dim: int = 0,
    name: str = "graph",
    dedup: bool = True,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from ``(src, dst)`` pairs.

    Self-loops are kept (GCN aggregation includes the vertex itself);
    duplicate edges are removed when ``dedup`` is set.
    """
    arr = np.asarray(edges, dtype=np.int64)
    if arr.size == 0:
        arr = arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError("edges must be an (m, 2) array of (src, dst) pairs")
    if arr.size and (arr.min() < 0 or arr.max() >= num_vertices):
        raise ValueError("edge endpoints out of range")
    if dedup and arr.shape[0]:
        arr = np.unique(arr, axis=0)
    order = np.lexsort((arr[:, 1], arr[:, 0]))
    arr = arr[order]
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(np.bincount(arr[:, 0], minlength=num_vertices), out=indptr[1:])
    return CSRGraph(
        indptr,
        np.ascontiguousarray(arr[:, 1]),
        num_features=num_features,
        feature_density=feature_density,
        edge_feature_dim=edge_feature_dim,
        name=name,
    )


def from_dense_adjacency(
    adj: np.ndarray,
    *,
    num_features: int = 1,
    feature_density: float = 1.0,
    edge_feature_dim: int = 0,
    name: str = "graph",
) -> CSRGraph:
    """Build a :class:`CSRGraph` from a dense 0/1 adjacency matrix."""
    adj = np.asarray(adj)
    if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
        raise ValueError("adjacency must be square")
    src, dst = np.nonzero(adj)
    return from_edge_list(
        adj.shape[0],
        np.column_stack((src, dst)),
        num_features=num_features,
        feature_density=feature_density,
        edge_feature_dim=edge_feature_dim,
        name=name,
        dedup=False,
    )
