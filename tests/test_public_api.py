"""Public API surface tests: exports resolve and stay importable."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_all_entries_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.graphs",
            "repro.models",
            "repro.arch",
            "repro.arch.noc",
            "repro.mapping",
            "repro.partition",
            "repro.core",
            "repro.baselines",
            "repro.eval",
            "repro.cli",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_quickstart_snippet(self):
        """The README quickstart must work verbatim (scaled down)."""
        from repro import AuroraAccelerator, get_model, load_dataset

        acc = AuroraAccelerator()
        result = acc.run(
            get_model("gcn"),
            load_dataset("cora", scale=0.2),
            hidden=16,
            num_layers=2,
            num_classes=7,
        )
        assert result.total_seconds > 0
        assert result.dram_bytes > 0
        assert result.energy.total > 0


class TestDocumentationConsistency:
    def test_docs_exist(self):
        from pathlib import Path

        root = Path(repro.__file__).resolve().parents[2]
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (root / name).exists(), name
        for name in ("architecture.md", "noc.md", "calibration.md", "simulator.md"):
            assert (root / "docs" / name).exists(), name

    def test_experiments_doc_covers_registry(self):
        from pathlib import Path

        from repro.eval import list_experiments

        root = Path(repro.__file__).resolve().parents[2]
        text = (root / "EXPERIMENTS.md").read_text()
        for eid in list_experiments():
            assert f"## {eid} " in text or f"## {eid}—" in text or f"## {eid} —" in text, eid

    def test_readme_examples_exist(self):
        import re
        from pathlib import Path

        root = Path(repro.__file__).resolve().parents[2]
        text = (root / "README.md").read_text()
        for match in re.finditer(r"python (examples/\w+\.py)", text):
            assert (root / match.group(1)).exists(), match.group(1)

    def test_design_lists_every_bench(self):
        from pathlib import Path

        root = Path(repro.__file__).resolve().parents[2]
        design = (root / "DESIGN.md").read_text()
        for bench in sorted((root / "benchmarks").glob("test_*.py")):
            # Every paper-artifact bench (E1-E12) is indexed in DESIGN.md.
            if bench.stem in (
                "test_full_sweep",
                "test_simulator_performance",
                "test_cycle_tier_performance",
                "test_fanout_performance",
                "test_delta_performance",
                "test_noc_characterization",
            ):
                continue  # performance/infrastructure benches
            assert bench.name in design, bench.name
