"""Property tests for intra-job tile parallelism.

Pins the contract the tentpole rests on: shard planning is deterministic
and order-preserving, the fan-out driver returns per-tile results in
tile order with bit-identical aggregates under serial / sharded / cached
execution (analytical and cycle tiers, every NoC engine), a mid-shard
worker crash degrades to serial recovery without changing a single bit,
and the shared worker budget stops serve's pool and tile fan-out from
oversubscribing the machine together.
"""

import json
import random

import pytest

from repro.config import AcceleratorConfig, NoCConfig
from repro.core.cycle_layer import run_cycle_layer
from repro.core.simulator import AuroraSimulator
from repro.graphs.generators import power_law_graph
from repro.graphs.tiling import tile_graph
from repro.models.workload import LayerDims
from repro.models.zoo import get_model
from repro.runtime.budget import _WORKER_ENV, BUDGET, WorkerBudget
from repro.runtime.cache import ResultCache
from repro.runtime.executor import FakeExecutor
from repro.runtime.shards import (
    TileShardPlanner,
    run_tile_shards,
    tile_sub_key,
)


def _shard_echo(job):
    """Module-level worker (picklable): tags each tile with its shard."""
    return {
        "tiles": [
            {"value": payload * 10, "shard": job.shard_index}
            for payload in job.payloads
        ]
    }


class TestTileShardPlanner:
    @pytest.mark.parametrize("seed", range(20))
    def test_shards_concatenate_to_tile_order(self, seed):
        rng = random.Random(seed)
        costs = [rng.randint(1, 1000) for _ in range(rng.randint(1, 60))]
        workers = rng.randint(1, 8)
        planner = TileShardPlanner(
            shards_per_worker=rng.randint(1, 3),
            min_shard_cost=rng.choice([0.0, 100.0]),
        )
        shards = planner.plan(costs, workers)
        flat = [i for shard in shards for i in shard.tile_indices]
        assert flat == list(range(len(costs)))
        assert [s.index for s in shards] == list(range(len(shards)))
        # Deterministic: same inputs, same plan.
        again = planner.plan(costs, workers)
        assert [s.tile_indices for s in again] == [
            s.tile_indices for s in shards
        ]

    def test_single_worker_is_one_shard(self):
        shards = TileShardPlanner().plan([5, 5, 5], workers=1)
        assert len(shards) == 1
        assert shards[0].tile_indices == (0, 1, 2)

    def test_min_shard_cost_batches_small_tiles(self):
        # 16 unit-cost tiles, 4 workers: without a floor this would make
        # 8 shards; a floor of 8 allows only ceil(16/8) = 2.
        planner = TileShardPlanner(shards_per_worker=2, min_shard_cost=8.0)
        shards = planner.plan([1.0] * 16, workers=4)
        assert len(shards) == 2

    def test_empty(self):
        assert TileShardPlanner().plan([], workers=4) == []


class TestRunTileShards:
    @pytest.fixture(autouse=True)
    def _four_workers(self, monkeypatch):
        # The CI box may be single-core; the fan-out paths under test
        # need the shared budget to actually grant parallel workers.
        monkeypatch.setattr(BUDGET, "total", 4)
        monkeypatch.delenv(_WORKER_ENV, raising=False)

    def test_results_in_tile_order(self):
        payloads = list(range(13))
        out = run_tile_shards(
            payloads,
            _shard_echo,
            kind="echo",
            tile_workers=4,
            executor=FakeExecutor(fn=_shard_echo),
        )
        assert [p["value"] for p in out.payloads] == [
            v * 10 for v in payloads
        ]

    def test_mid_shard_crash_recovers_serially(self):
        payloads = list(range(12))
        clean = run_tile_shards(
            payloads,
            _shard_echo,
            kind="echo",
            tile_workers=4,
            executor=FakeExecutor(fn=_shard_echo),
        )
        assert clean.stats["shards"] > 1

        # Crash one middle shard: its tiles must come back identical via
        # the in-process serial retry.
        crashed = run_tile_shards(
            payloads,
            _shard_echo,
            kind="echo",
            tile_workers=4,
            executor=FakeExecutor(
                fn=_shard_echo, fail_when=lambda job: job.shard_index == 1
            ),
        )
        assert crashed.stats["recovered_shards"] == 1
        assert crashed.payloads == clean.payloads

    def test_cache_probe_and_store(self, tmp_path):
        cache = ResultCache(tmp_path)
        payloads = [1, 2, 3, 4]
        keys = [tile_sub_key("echo", {"p": p}) for p in payloads]
        cold = run_tile_shards(
            payloads, _shard_echo, kind="echo", tile_keys=keys, cache=cache
        )
        assert cold.stats["cache_hits"] == 0
        warm = run_tile_shards(
            payloads, _shard_echo, kind="echo", tile_keys=keys, cache=cache
        )
        assert warm.stats["cache_hits"] == 4
        assert warm.stats["shards"] == 0
        assert [p["value"] for p in warm.payloads] == [
            p["value"] for p in cold.payloads
        ]


def _graph(seed: int):
    rng = random.Random(seed)
    return power_law_graph(
        rng.randint(300, 900),
        rng.randint(1200, 4000),
        num_features=rng.choice([16, 64]),
        seed=seed,
        name=f"fanout-{seed}",
    )


class TestAnalyticalFanoutIdentity:
    """Serial vs sharded vs cached AuroraSimulator: bit-identical."""

    @pytest.mark.parametrize("seed", range(20))
    def test_serial_vs_sharded_bit_identical(self, seed, monkeypatch):
        monkeypatch.setattr(BUDGET, "total", 4)
        monkeypatch.delenv(_WORKER_ENV, raising=False)
        g = _graph(seed)
        model = get_model(
            random.Random(seed).choice(["gcn", "gin", "graphsage-mean"])
        )
        dims = LayerDims(g.num_features, 8)
        # Small buffer so the graph splits into several tiles.
        cfg = AcceleratorConfig(array_k=4, pe_buffer_bytes=2048)
        serial = AuroraSimulator(cfg).simulate_layer(model, g, dims)
        sharded = AuroraSimulator(cfg, tile_workers=3).simulate_layer(
            model, g, dims
        )
        assert serial.num_tiles > 1
        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            sharded.to_dict(), sort_keys=True
        )

    def test_cached_rerun_bit_identical(self, tmp_path, monkeypatch):
        monkeypatch.setattr(BUDGET, "total", 4)
        g = _graph(99)
        model = get_model("gcn")
        dims = LayerDims(g.num_features, 8)
        cfg = AcceleratorConfig(array_k=4, pe_buffer_bytes=2048)
        cache = ResultCache(tmp_path)
        serial = AuroraSimulator(cfg).simulate_layer(model, g, dims)
        cold = AuroraSimulator(
            cfg, tile_workers=2, tile_cache=cache
        ).simulate_layer(model, g, dims)
        warm = AuroraSimulator(
            cfg, tile_workers=2, tile_cache=cache
        ).simulate_layer(model, g, dims)
        ref = json.dumps(serial.to_dict(), sort_keys=True)
        assert json.dumps(cold.to_dict(), sort_keys=True) == ref
        assert json.dumps(warm.to_dict(), sort_keys=True) == ref


class TestCycleLayerIdentity:
    """run_cycle_layer: serial vs sharded vs engines, all bit-identical."""

    def _setup(self):
        g = power_law_graph(
            240, 900, num_features=16, seed=7, name="cycle-fanout"
        )
        plan = tile_graph(g, 40_000)
        assert plan.num_tiles > 1
        cfg = AcceleratorConfig(array_k=8, noc=NoCConfig())
        return get_model("gcn"), plan, LayerDims(16, 16), cfg

    def test_serial_vs_sharded_vs_engines(self, monkeypatch):
        monkeypatch.setattr(BUDGET, "total", 4)
        model, plan, dims, cfg = self._setup()
        serial = run_cycle_layer(model, plan, dims, config=cfg)
        sharded = run_cycle_layer(
            model, plan, dims, config=cfg, tile_workers=4
        )
        fused = run_cycle_layer(
            model, plan, dims, config=cfg, noc_engine="fused"
        )
        numba = run_cycle_layer(
            model, plan, dims, config=cfg, noc_engine="numba", tile_workers=4
        )
        base = [t.to_payload() for t in serial.tiles]
        for other in (sharded, fused, numba):
            assert [t.to_payload() for t in other.tiles] == base

    def test_engine_agnostic_cache_keys(self, tmp_path, monkeypatch):
        monkeypatch.setattr(BUDGET, "total", 2)
        model, plan, dims, cfg = self._setup()
        cache = ResultCache(tmp_path)
        first = run_cycle_layer(
            model, plan, dims, config=cfg, cache=cache, noc_engine="event"
        )
        second = run_cycle_layer(
            model, plan, dims, config=cfg, cache=cache, noc_engine="fused"
        )
        assert second.fanout["cache_hits"] == plan.num_tiles
        assert [t.to_payload() for t in second.tiles] == [
            t.to_payload() for t in first.tiles
        ]


class TestWorkerBudget:
    def test_lease_grants_remainder(self):
        budget = WorkerBudget(total=8)
        assert budget.lease("serve-batch", 6) == 6
        assert budget.lease("tile-fanout", 6) == 2
        snap = budget.snapshot()
        assert snap["leased"] == 8
        assert snap["available"] == 0
        budget.release("serve-batch")
        assert budget.lease("tile-fanout", 6) == 6

    def test_lease_never_below_one(self):
        budget = WorkerBudget(total=2)
        assert budget.lease("a", 2) == 2
        assert budget.lease("b", 4) == 1  # serial is always allowed

    def test_pool_worker_always_serial(self, monkeypatch):
        budget = WorkerBudget(total=16)
        monkeypatch.setenv(_WORKER_ENV, "1")
        assert budget.lease("tile-fanout", 8) == 1
        assert budget.snapshot()["in_pool_worker"] is True

    def test_relesase_replaces_not_accumulates(self):
        budget = WorkerBudget(total=8)
        assert budget.lease("a", 4) == 4
        assert budget.lease("a", 8) == 8  # replaces the old lease
        assert budget.snapshot()["leases"] == {"a": 8}
