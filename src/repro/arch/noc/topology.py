"""The flexible NoC topology (paper §III-B).

Built on a conventional K×K mesh with one bi-directional bypassing link
per row and per column.  Each bypassing link runs the full length of its
row/column and contains a link switch at every node position, so it can be
*segmented* into multiple short express links of arbitrary extent.  A
configured segment bridges two routers directly (one traversal regardless
of distance), and the same physical wires double as the wrap-around links
when a region is configured as rings for the weight-stationary dataflow.

Coordinates: node ``(x, y)`` with ``x`` the column and ``y`` the row;
node id = ``y * K + x``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BypassSegment", "RingConfig", "FlexibleMeshTopology"]


@dataclass(frozen=True)
class BypassSegment:
    """One configured segment of a row/column bypass link.

    ``axis`` is ``"row"`` (link along x at fixed y) or ``"col"``.  The
    segment directly bridges positions ``start`` and ``end`` (inclusive
    coordinates along the axis) and is bi-directional.
    """

    axis: str
    line: int  # which row (for axis="row") or column (for axis="col")
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.axis not in ("row", "col"):
            raise ValueError("axis must be 'row' or 'col'")
        if self.start >= self.end:
            raise ValueError("segment must span at least one hop (start < end)")
        if self.start < 0:
            raise ValueError("segment coordinates must be non-negative")

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "BypassSegment") -> bool:
        """Two segments on the same physical link cannot overlap."""
        if self.axis != other.axis or self.line != other.line:
            return False
        return not (self.end <= other.start or other.end <= self.start)


@dataclass(frozen=True)
class RingConfig:
    """A rectangular PE region configured as rings (weight-stationary).

    Each row of the region becomes a unidirectional ring: the mesh links
    carry the forward direction and the row's bypass link provides the
    wrap-around from the region's right edge back to its left edge.
    """

    x0: int
    y0: int
    x1: int  # exclusive
    y1: int  # exclusive

    def __post_init__(self) -> None:
        if self.x0 >= self.x1 or self.y0 >= self.y1:
            raise ValueError("ring region must be non-empty")
        if self.x0 < 0 or self.y0 < 0:
            raise ValueError("region coordinates must be non-negative")

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0

    def contains(self, x: int, y: int) -> bool:
        return self.x0 <= x < self.x1 and self.y0 <= y < self.y1


class FlexibleMeshTopology:
    """K×K mesh + configurable bypass segments + ring regions."""

    def __init__(self, k: int) -> None:
        if k < 2:
            raise ValueError("mesh dimension must be >= 2")
        self.k = k
        self._row_segments: list[BypassSegment] = []
        self._col_segments: list[BypassSegment] = []
        self._rings: list[RingConfig] = []

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.k * self.k

    def node_id(self, x: int, y: int) -> int:
        if not (0 <= x < self.k and 0 <= y < self.k):
            raise ValueError(f"({x},{y}) outside {self.k}x{self.k} mesh")
        return y * self.k + x

    def coords(self, node: int) -> tuple[int, int]:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        return (node % self.k, node // self.k)

    def mesh_neighbors(self, node: int) -> list[int]:
        x, y = self.coords(node)
        out = []
        if x > 0:
            out.append(self.node_id(x - 1, y))
        if x < self.k - 1:
            out.append(self.node_id(x + 1, y))
        if y > 0:
            out.append(self.node_id(x, y - 1))
        if y < self.k - 1:
            out.append(self.node_id(x, y + 1))
        return out

    def manhattan(self, a: int, b: int) -> int:
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        return abs(ax - bx) + abs(ay - by)

    # ------------------------------------------------------------------
    # Bypass configuration
    # ------------------------------------------------------------------
    def clear_configuration(self) -> None:
        self._row_segments.clear()
        self._col_segments.clear()
        self._rings.clear()

    def add_bypass_segment(self, segment: BypassSegment) -> None:
        """Configure one segment; rejects overlaps on the same wire and
        out-of-range coordinates (only one physical link per row/column)."""
        if segment.line < 0 or segment.line >= self.k:
            raise ValueError("segment line outside mesh")
        if segment.end >= self.k:
            raise ValueError("segment end outside mesh")
        pool = self._row_segments if segment.axis == "row" else self._col_segments
        for existing in pool:
            if segment.overlaps(existing):
                raise ValueError(
                    f"segment {segment} overlaps configured segment {existing} "
                    "on the same physical bypass link"
                )
        pool.append(segment)

    @property
    def bypass_segments(self) -> list[BypassSegment]:
        return self._row_segments + self._col_segments

    def signature(self) -> tuple:
        """Hashable routing identity of the configuration.

        Two topologies with equal signatures route identically (the
        analytical model only consults ``k`` and the configured bypass
        segments), so the signature keys the memoized
        :meth:`repro.arch.noc.analytical.AnalyticalNoCModel.cached`
        instances.  Must be recomputed after any reconfiguration.
        """
        return (
            self.k,
            tuple(
                sorted(
                    (seg.axis, seg.line, seg.start, seg.end)
                    for seg in self._row_segments + self._col_segments
                )
            ),
        )

    def segment_endpoints(self, segment: BypassSegment) -> tuple[int, int]:
        """Node ids bridged by a segment."""
        if segment.axis == "row":
            return (
                self.node_id(segment.start, segment.line),
                self.node_id(segment.end, segment.line),
            )
        return (
            self.node_id(segment.line, segment.start),
            self.node_id(segment.line, segment.end),
        )

    # ------------------------------------------------------------------
    # Ring configuration
    # ------------------------------------------------------------------
    def add_ring_region(self, ring: RingConfig) -> None:
        if ring.x1 > self.k or ring.y1 > self.k:
            raise ValueError("ring region outside mesh")
        for existing in self._rings:
            if not (
                ring.x1 <= existing.x0
                or existing.x1 <= ring.x0
                or ring.y1 <= existing.y0
                or existing.y1 <= ring.y0
            ):
                raise ValueError("ring regions must not overlap")
        # The wrap-around consumes the row bypass across the region span.
        for y in range(ring.y0, ring.y1):
            self.add_bypass_segment(
                BypassSegment("row", y, ring.x0, ring.x1 - 1)
            )
        self._rings.append(ring)

    @property
    def ring_regions(self) -> list[RingConfig]:
        return list(self._rings)

    def ring_for(self, node: int) -> RingConfig | None:
        x, y = self.coords(node)
        for ring in self._rings:
            if ring.contains(x, y):
                return ring
        return None

    # ------------------------------------------------------------------
    # Adjacency under the current configuration
    # ------------------------------------------------------------------
    def links_from(self, node: int) -> list[tuple[int, str]]:
        """Outgoing links as ``(neighbor, kind)``; kind ∈ {mesh, bypass}.

        Ring wrap-arounds appear as their underlying bypass segments.
        """
        out = [(n, "mesh") for n in self.mesh_neighbors(node)]
        x, y = self.coords(node)
        for seg in self._row_segments:
            if seg.line == y and x in (seg.start, seg.end):
                other = seg.end if x == seg.start else seg.start
                out.append((self.node_id(other, y), "bypass"))
        for seg in self._col_segments:
            if seg.line == x and y in (seg.start, seg.end):
                other = seg.end if y == seg.start else seg.start
                out.append((self.node_id(x, other), "bypass"))
        return out
