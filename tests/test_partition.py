"""Tests for the partition algorithm (Algorithm 2)."""

import pytest

from repro.config import default_config
from repro.graphs import from_edge_list, power_law_graph
from repro.models import LayerDims, extract_workload, get_model
from repro.partition import PartitionStrategy, partition, split_regions

CFG = default_config()
FLOPS = CFG.flops_per_pe_per_cycle * CFG.frequency_hz


@pytest.fixture
def graph():
    return power_law_graph(300, 1500, num_features=64, seed=1)


class TestPartition:
    def test_full_model_splits(self, graph):
        wl = extract_workload(get_model("gcn"), graph, LayerDims(64, 32))
        s = partition(wl, CFG.num_pes, FLOPS)
        assert s.a + s.b == CFG.num_pes
        assert s.a >= 1 and s.b >= 1
        assert not s.single_accelerator

    def test_balance_minimised(self, graph):
        """No neighbouring split should balance better than the chosen one."""
        wl = extract_workload(get_model("gcn"), graph, LayerDims(64, 32))
        s = partition(wl, CFG.num_pes, FLOPS)
        from repro.partition.algorithm import _t_a, _t_b

        chosen = abs(
            _t_a(wl, s.a, FLOPS) - _t_b(wl, CFG.num_pes - s.a, FLOPS)
        )
        for a in (s.a - 1, s.a + 1):
            if 1 <= a < CFG.num_pes:
                other = abs(
                    _t_a(wl, a, FLOPS) - _t_b(wl, CFG.num_pes - a, FLOPS)
                )
                assert chosen <= other + 1e-12

    def test_no_vertex_update_single_accelerator(self, graph):
        """EdgeConv has no vertex update: only one accelerator is formed."""
        wl = extract_workload(get_model("edgeconv-1"), graph, LayerDims(64, 32))
        s = partition(wl, CFG.num_pes, FLOPS)
        assert s.single_accelerator
        assert s.a == CFG.num_pes
        assert s.b == 0
        assert s.t_b_seconds == 0.0

    def test_no_edge_update_acomp1_zero(self, graph):
        """GIN starts at aggregation; AComp1 contributes nothing."""
        wl = extract_workload(get_model("gin"), graph, LayerDims(64, 32))
        assert wl.O_ue == 0
        s = partition(wl, CFG.num_pes, FLOPS)
        assert s.a >= 1  # aggregation still needs resources

    def test_heavier_vertex_update_gets_more_pes(self, graph):
        wl_small = extract_workload(get_model("gcn"), graph, LayerDims(64, 8))
        wl_big = extract_workload(get_model("gcn"), graph, LayerDims(64, 256))
        s_small = partition(wl_small, CFG.num_pes, FLOPS)
        s_big = partition(wl_big, CFG.num_pes, FLOPS)
        assert s_big.b > s_small.b

    def test_pipeline_interval(self, graph):
        wl = extract_workload(get_model("gcn"), graph, LayerDims(64, 32))
        s = partition(wl, CFG.num_pes, FLOPS)
        assert s.pipeline_interval == max(s.t_a_seconds, s.t_b_seconds)
        assert 0 <= s.imbalance < 1

    def test_validation(self, graph):
        wl = extract_workload(get_model("gcn"), graph, LayerDims(8, 4))
        with pytest.raises(ValueError):
            partition(wl, 0, FLOPS)
        with pytest.raises(ValueError):
            partition(wl, 16, 0)

    def test_ef_in_t_a(self):
        """Edge-feature models include the AComp3 term (E_f·m traffic)."""
        g = from_edge_list(6, [(i, (i + 1) % 6) for i in range(6)], num_features=16)
        wl = extract_workload(get_model("agnn"), g, LayerDims(16, 8))
        assert wl.E_f == 16
        s = partition(wl, 64, FLOPS)
        assert s.t_a_seconds > 0


class TestSplitRegions:
    def test_two_bands(self, graph):
        wl = extract_workload(get_model("gcn"), graph, LayerDims(64, 32))
        s = partition(wl, CFG.num_pes, FLOPS)
        ra, rb = split_regions(CFG.array_k, s)
        assert rb is not None
        assert ra.num_pes + rb.num_pes == CFG.num_pes
        assert ra.y1 == rb.y0  # adjacent bands

    def test_single_accelerator_whole_array(self, graph):
        wl = extract_workload(get_model("edgeconv-1"), graph, LayerDims(64, 32))
        s = partition(wl, CFG.num_pes, FLOPS)
        ra, rb = split_regions(CFG.array_k, s)
        assert rb is None
        assert ra.num_pes == CFG.num_pes

    def test_wrong_total_rejected(self):
        s = PartitionStrategy(a=10, b=10, t_a_seconds=1, t_b_seconds=1, single_accelerator=False)
        with pytest.raises(ValueError, match="covers"):
            split_regions(32, s)

    def test_minimum_one_row_each(self, graph):
        """Even extreme splits keep at least one row per band."""
        wl = extract_workload(get_model("gcn"), graph, LayerDims(8, 512))
        s = partition(wl, CFG.num_pes, FLOPS)
        ra, rb = split_regions(CFG.array_k, s)
        assert ra.height >= 1
        if rb is not None:
            assert rb.height >= 1
