"""Detailed virtual-channel router microarchitecture (paper Fig. 4).

The default cycle simulator (:mod:`.network`) models routers as
credit-bounded FIFOs with a lumped pipeline latency — fast and adequate
for drain/contention studies.  This module is the faithful
microarchitecture: the five classic components as explicit per-cycle
pipeline stages,

* **RC** — route computation for head flits entering a VC,
* **VA** — virtual-channel allocation: a head flit must win a free VC on
  its output port before competing for the switch,
* **SA** — switch allocation with separable input-first/output-second
  round-robin arbitration,
* **ST** — switch traversal through the *two-stage* switch (horizontal
  then vertical stage, the paper's cheap decomposable crossbar), then
  link traversal into the downstream VC,

with credit-based flow control per VC.  The two-stage switch constraint
is structural: in one cycle a horizontal output (E/W) accepts at most
one flit from the horizontal stage and a vertical/eject output (N/S/L)
at most one from the vertical stage, and flits turning from a horizontal
input to a vertical output pass both stages (modelled by the extra
``TURN_LATENCY`` cycle, matching the hardware's staged traversal).

:class:`VCNetworkSimulator` runs a mesh of these routers end to end; the
tests cross-validate it against the lumped simulator.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from ...config import NoCConfig
from .drain import DrainTracker
from .packet import Flit, Packet
from .network import memo_route
from .topology import FlexibleMeshTopology

__all__ = ["PortDir", "VirtualChannel", "VCRouter", "VCNetworkSimulator"]


class PortDir(enum.Enum):
    """Router port directions; LOCAL is injection/ejection."""

    EAST = "E"
    WEST = "W"
    NORTH = "N"
    SOUTH = "S"
    LOCAL = "L"
    BYPASS = "B"

    @property
    def is_horizontal(self) -> bool:
        return self in (PortDir.EAST, PortDir.WEST)


@dataclass
class VirtualChannel:
    """One VC: a flit FIFO plus allocation state."""

    capacity: int
    flits: deque = field(default_factory=deque)
    # Output port + output VC this channel is allocated to (None until VA).
    out_port: PortDir | None = None
    out_vc: int | None = None
    route_ready: bool = False  # RC done for the head packet

    @property
    def occupancy(self) -> int:
        return len(self.flits)

    @property
    def has_space(self) -> bool:
        return len(self.flits) < self.capacity

    @property
    def head(self) -> Flit | None:
        return self.flits[0] if self.flits else None

    def release(self) -> None:
        """Tail flit left: the VC returns to the free pool."""
        self.out_port = None
        self.out_vc = None
        self.route_ready = False


class VCRouter:
    """One router: per-port VCs + RC/VA/SA/ST pipeline state."""

    #: Extra cycle for flits crossing both switch stages (a turn).
    TURN_LATENCY = 1

    def __init__(self, node_id: int, config: NoCConfig) -> None:
        self.node_id = node_id
        self.config = config
        self.vcs: dict[PortDir, list[VirtualChannel]] = {
            port: [
                VirtualChannel(config.vc_depth)
                for _ in range(config.vcs_per_port)
            ]
            for port in PortDir
        }
        # Downstream credit counters per (output port, output VC).
        self.credits: dict[tuple[PortDir, int], int] = {
            (port, v): config.vc_depth
            for port in PortDir
            for v in range(config.vcs_per_port)
        }
        # Output-VC allocation table: which (in_port, in_vc) holds it.
        self.out_vc_owner: dict[tuple[PortDir, int], tuple[PortDir, int] | None] = {
            (port, v): None
            for port in PortDir
            for v in range(config.vcs_per_port)
        }
        self._rr_input_counter = 0
        # Stats
        self.sa_conflicts = 0
        self.va_stalls = 0
        self.flits_routed = 0

    # ------------------------------------------------------------------
    def free_input_vc(self, port: PortDir) -> int | None:
        """A VC on ``port`` able to accept a new packet's head flit."""
        for i, vc in enumerate(self.vcs[port]):
            if vc.occupancy == 0 and vc.out_port is None:
                return i
        return None

    def accept_flit(self, port: PortDir, vc_index: int, flit: Flit) -> bool:
        vc = self.vcs[port][vc_index]
        if not vc.has_space:
            return False
        vc.flits.append(flit)
        return True

    # ------------------------------------------------------------------
    # Pipeline stages (invoked by the network each cycle)
    # ------------------------------------------------------------------
    def stage_rc(self, next_hop_of) -> None:
        """Route computation for head flits in unrouted VCs."""
        for port, vcs in self.vcs.items():
            for vc in vcs:
                head = vc.head
                if head is None or vc.route_ready:
                    continue
                if not head.is_head and vc.out_port is not None:
                    vc.route_ready = True
                    continue
                vc.out_port = next_hop_of(self.node_id, head)
                vc.route_ready = True

    def stage_va(self) -> None:
        """Allocate a free output VC to routed head flits lacking one."""
        for port, vcs in self.vcs.items():
            for vc_index, vc in enumerate(vcs):
                if not vc.route_ready or vc.out_vc is not None:
                    continue
                if vc.head is None or vc.out_port is None:
                    continue
                granted = False
                for out_vc in range(self.config.vcs_per_port):
                    key = (vc.out_port, out_vc)
                    if self.out_vc_owner[key] is None:
                        self.out_vc_owner[key] = (port, vc_index)
                        vc.out_vc = out_vc
                        granted = True
                        break
                if not granted:
                    self.va_stalls += 1

    def stage_sa(self) -> list[tuple[PortDir, int]]:
        """Switch allocation: pick one winning (port, vc) per output port.

        Separable allocation: round-robin over input ports, then over the
        VCs of the winning input; the two-stage switch adds the
        constraint that each output accepts one flit per cycle.
        """
        winners: list[tuple[PortDir, int]] = []
        taken_outputs: set[PortDir] = set()
        ports = list(PortDir)
        for offset in range(len(ports)):
            port = ports[(self._rr_input_counter + offset) % len(ports)]
            for vc_index, vc in enumerate(self.vcs[port]):
                head = vc.head
                if (
                    head is None
                    or vc.out_vc is None
                    or vc.out_port is None
                    or vc.out_port in taken_outputs
                ):
                    if head is not None and vc.out_port in taken_outputs:
                        self.sa_conflicts += 1
                    continue
                if self.credits[(vc.out_port, vc.out_vc)] <= 0:
                    continue
                winners.append((port, vc_index))
                taken_outputs.add(vc.out_port)
                break  # one grant per input port per cycle
        self._rr_input_counter += 1
        return winners

    def pop_winner(self, port: PortDir, vc_index: int) -> tuple[Flit, PortDir, int, int]:
        """Remove the winning flit; returns (flit, out_port, out_vc, latency).

        Latency covers switch traversal: +1 for the extra stage when the
        flit turns between the horizontal and vertical switch stages.
        """
        vc = self.vcs[port][vc_index]
        flit = vc.flits.popleft()
        out_port, out_vc = vc.out_port, vc.out_vc
        assert out_port is not None and out_vc is not None
        self.credits[(out_port, out_vc)] -= 1
        turn = port.is_horizontal != out_port.is_horizontal
        latency = self.TURN_LATENCY if turn else 0
        self.flits_routed += 1
        if flit.is_tail:
            self.out_vc_owner[(out_port, out_vc)] = None
            vc.release()
        return flit, out_port, out_vc, latency

    def return_credit(self, port: PortDir, vc_index: int) -> None:
        self.credits[(port, vc_index)] += 1


class VCNetworkSimulator(DrainTracker):
    """Mesh of :class:`VCRouter` nodes with full pipeline semantics."""

    def __init__(
        self, topology: FlexibleMeshTopology, config: NoCConfig | None = None
    ) -> None:
        self.topology = topology
        self.config = config or NoCConfig()
        self._topo_sig = topology.signature()
        self.routers = [
            VCRouter(n, self.config) for n in range(topology.num_nodes)
        ]
        self.cycle = 0
        self._next_pid = 0
        self._drain_init()
        # Flits currently buffered in any router VC; kept incrementally so
        # the idle check in :meth:`run` is O(1).
        self._resident = 0
        self.delivered: list[Packet] = []
        self._in_flight: list[tuple[int, int, PortDir, int, Flit]] = []
        # (arrival_cycle, router, port, vc, flit)
        self._inject_queues: dict[int, deque] = {}
        self._credit_returns: list[tuple[int, int, PortDir, int]] = []

    # ------------------------------------------------------------------
    def _direction(self, here: int, there: int) -> PortDir:
        hx, hy = self.topology.coords(here)
        tx, ty = self.topology.coords(there)
        if ty == hy:
            if tx == hx + 1:
                return PortDir.EAST
            if tx == hx - 1:
                return PortDir.WEST
        if tx == hx:
            if ty == hy + 1:
                return PortDir.SOUTH
            if ty == hy - 1:
                return PortDir.NORTH
        return PortDir.BYPASS  # non-adjacent: a configured express segment

    def _next_hop(self, node: int, flit: Flit) -> PortDir:
        if flit.at_destination:
            return PortDir.LOCAL
        nxt = flit.packet.route[flit.hop + 1]
        return self._direction(node, nxt)

    # ------------------------------------------------------------------
    def inject(self, src: int, dst: int, size_bytes: int) -> Packet:
        # Shared process-wide memo: identical topologies across tiles,
        # shards, and engine kinds resolve each (src, dst) route once.
        route = memo_route(self.topology, src, dst, topo_sig=self._topo_sig)
        packet = Packet(
            pid=self._next_pid,
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            inject_cycle=self.cycle,
            route=route,
        )
        self._next_pid += 1
        packet.num_flits = max(1, -(-size_bytes // self.config.flit_bytes))
        self._drain_register(packet.pid, packet.num_flits)
        queue = self._inject_queues.setdefault(src, deque())
        for i in range(packet.num_flits):
            queue.append(Flit(packet=packet, index=i, hop=0, ready_cycle=self.cycle))
        return packet

    # ------------------------------------------------------------------
    def step(self) -> None:
        now = self.cycle

        # Deliver in-flight flits whose link latency elapsed.
        still: list = []
        for arrival, node, port, vc_index, flit in self._in_flight:
            if arrival > now:
                still.append((arrival, node, port, vc_index, flit))
                continue
            if self.routers[node].accept_flit(port, vc_index, flit):
                self._resident += 1
            else:
                # Should not happen under credits; retry next cycle.
                still.append((arrival + 1, node, port, vc_index, flit))
        self._in_flight = still

        # Source injection: move flits into LOCAL input VCs.
        for node, queue in self._inject_queues.items():
            router = self.routers[node]
            while queue:
                flit = queue[0]
                if flit.is_head:
                    vc_index = router.free_input_vc(PortDir.LOCAL)
                    if vc_index is None:
                        break
                    queue.popleft()
                    router.accept_flit(PortDir.LOCAL, vc_index, flit)
                    self._resident += 1
                    flit.packet.notes_vc = vc_index
                else:
                    vc_index = flit.packet.notes_vc
                    if vc_index is None:
                        break
                    vc = router.vcs[PortDir.LOCAL][vc_index]
                    if not vc.has_space:
                        break
                    queue.popleft()
                    router.accept_flit(PortDir.LOCAL, vc_index, flit)
                    self._resident += 1
                    continue  # body flits stream at one per cycle... per VC
                break  # at most one new head per cycle per source

        # Router pipelines.
        for router in self.routers:
            router.stage_rc(lambda node, f: self._next_hop(node, f))
            router.stage_va()
            winners = router.stage_sa()
            for port, vc_index in winners:
                flit, out_port, out_vc, turn_lat = router.pop_winner(port, vc_index)
                self._resident -= 1
                if out_port is PortDir.LOCAL:
                    self._eject(flit, now)
                    router.return_credit(out_port, out_vc)
                    continue
                nxt = flit.packet.route[flit.hop + 1]
                flit.hop += 1
                link_lat = (
                    self.config.bypass_segment_latency
                    if out_port is PortDir.BYPASS
                    else self.config.link_latency
                )
                in_port = self._reverse_port(out_port, router.node_id, nxt)
                self._in_flight.append(
                    (now + 1 + link_lat + turn_lat, nxt, in_port, out_vc, flit)
                )
                # Credit returns when the downstream VC drains; simplified:
                # return after the flit is delivered plus one cycle.
                self._credit_returns.append(
                    (now + 2 + link_lat + turn_lat, router.node_id, out_port, out_vc)
                )

        # Credit return processing.
        remaining = []
        for when, node, port, vc_index in self._credit_returns:
            if when <= now:
                self.routers[node].return_credit(port, vc_index)
            else:
                remaining.append((when, node, port, vc_index))
        self._credit_returns = remaining

        self.cycle += 1

    def _reverse_port(self, out_port: PortDir, here: int, there: int) -> PortDir:
        """Input port on the downstream router fed by ``out_port``."""
        opposite = {
            PortDir.EAST: PortDir.WEST,
            PortDir.WEST: PortDir.EAST,
            PortDir.NORTH: PortDir.SOUTH,
            PortDir.SOUTH: PortDir.NORTH,
            PortDir.BYPASS: PortDir.BYPASS,
        }
        return opposite.get(out_port, PortDir.LOCAL)

    def _eject(self, flit: Flit, now: int) -> None:
        if self._drain_eject(flit.packet.pid):
            flit.packet.done_cycle = now + 1
            self.delivered.append(flit.packet)

    # ------------------------------------------------------------------
    # all_delivered()/undelivered() come from DrainTracker (O(1) counters
    # instead of the historical per-cycle dict scan).

    def run(self, *, max_cycles: int = 500_000) -> int:
        """Run to drain; returns the cycle count.

        Cycles during which every flit is mid-link (no flit buffered in
        any router and no injection pending) are fast-forwarded to the
        next arrival.  Skipped cycles still advance each router's SA
        round-robin counter — the reference steps it unconditionally every
        cycle — and release link credits that fell due, so arbitration
        after the jump is bit-identical to stepping through the gap.
        """
        while not self.all_delivered():
            if self.cycle >= max_cycles:
                raise self._deadlock(
                    f"VC network did not drain within {max_cycles} cycles "
                    f"({self.undelivered()} packets outstanding)",
                    cycle=self.cycle,
                )
            if (
                self._resident == 0
                and self._in_flight
                and not any(self._inject_queues.values())
            ):
                nxt = min(item[0] for item in self._in_flight)
                target = min(nxt, max_cycles)
                if target > self.cycle:
                    skipped = target - self.cycle
                    for router in self.routers:
                        router._rr_input_counter += skipped
                    # Credits returned strictly before ``target`` would
                    # have been processed by earlier steps; release them
                    # now so stage SA at ``target`` sees them.
                    remaining = []
                    for when, node, port, vc_index in self._credit_returns:
                        if when < target:
                            self.routers[node].return_credit(port, vc_index)
                        else:
                            remaining.append((when, node, port, vc_index))
                    self._credit_returns = remaining
                    self.cycle = target
                    continue
            self.step()
        return self.cycle

    def _queue_depths(self) -> dict[int, int]:
        depths: dict[int, int] = {}
        for router in self.routers:
            occ = sum(
                vc.occupancy for vcs in router.vcs.values() for vc in vcs
            )
            if occ:
                depths[router.node_id] = occ
        return depths

    # ------------------------------------------------------------------
    @property
    def total_va_stalls(self) -> int:
        return sum(r.va_stalls for r in self.routers)

    @property
    def total_sa_conflicts(self) -> int:
        return sum(r.sa_conflicts for r in self.routers)

    @property
    def avg_latency(self) -> float:
        if not self.delivered:
            return 0.0
        return sum(p.latency for p in self.delivered) / len(self.delivered)
