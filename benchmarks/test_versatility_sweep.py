"""E13 (extension) — Aurora's versatility: all Table-II models on one device.

Quantifies the Table-I coverage argument: the unified PE + adaptive
workflow run every model, with the partition tracking the phase mix
(C-GNNs give sub-accelerator A few PEs, edge-heavy MP-GNNs most of
them), while a C-GNN-only baseline aborts or pays the fallback penalty.
"""

from conftest import emit

from repro.eval import run_experiment


def test_versatility_sweep(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("E13",), rounds=1, iterations=1
    )
    emit(result.text)
    assert len(result.data) == 10  # all Table-II models execute
    # The partition tracks the phase mix.
    assert result.data["gcn"]["partition_a"] < result.data["ggcn"]["partition_a"]
    # EdgeConv (no vertex update) takes the whole array.
    assert result.data["edgeconv-1"]["partition_a"] == 1024
    # HyGCN only runs the C-GNN rows natively.
    for name in ("gcn", "gin", "graphsage-mean", "commnet"):
        assert result.data[name]["hygcn"] == "runs"
    for name in ("ggcn", "edgeconv-1", "agnn"):
        assert "unsupported" in result.data[name]["hygcn"]
