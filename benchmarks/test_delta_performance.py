"""Incremental re-simulation bench: delta-warm requests vs cold runs.

This PR's tentpole made mutated-graph re-simulation incremental: a
degree-preserving edge delta dirties only the tiles it touches, clean
tiles resolve from the per-tile cache (fronted by an in-process memo),
and the partition/tiling planners patch their cached parent state
instead of recomputing.  The contract is a >=5x warm-over-cold speedup
on the multi-tile pubmed job (the BENCH_8.json workload) at <=10% dirty
tiles, with the warm result bit-identical to the from-scratch run.
This module is the CI guard on that contract.

Like the other gates, the speedup assert is a ratio of two runs on the
same machine, relaxed by ``$REPRO_BENCH_SLACK`` against runner jitter.
``repro bench --tier delta`` / ``BENCH_8.json`` is the instrument for
real numbers.
"""

import os

from repro.perf.bench import DELTA_BENCHES, _run_delta_case

#: Multiplier on every bound; CI sets e.g. REPRO_BENCH_SLACK=4.
SLACK = float(os.environ.get("REPRO_BENCH_SLACK", "1.0"))

#: Locked contract from ISSUE/BENCH_8: warm incremental re-run vs cold
#: from-scratch run of the mutated job, at <=10% dirty tiles.  Measured
#: 16.6x at 1% and 6.9x at 10% on the development box.
MIN_SPEEDUP = 5.0


def test_delta_warm_speedup_vs_cold():
    """One bench pass per dirty fraction; the bit-identity flag comes
    from comparing the full warm and cold result payloads, so a
    diverging tile fails before any timing assert matters."""
    benches = _run_delta_case(DELTA_BENCHES[0], repeat=1)
    low_dirty = [
        b for b in benches.values() if b["dirty_fraction"] <= 0.10
    ]
    assert low_dirty, "bench case must include a <=10% dirty fraction"
    for bench in benches.values():
        assert bench["bit_identical"] is True
        assert bench["tiles_reused"] + bench["tiles_recomputed"] == (
            bench["tiles"]
        )
    for bench in low_dirty:
        assert bench["speedup_vs_cold"] >= MIN_SPEEDUP / SLACK
        # Absolute sanity: the job must be the many-tile standard one
        # and reuse must dominate at low dirty fractions.
        assert bench["num_tiles"] >= 10
        assert bench["tiles_reused"] > bench["tiles_recomputed"]
