"""Tests that the model zoo matches the paper's Table II exactly."""

import pytest

from repro.models import (
    MODEL_ZOO,
    ModelCategory,
    OpKind,
    Phase,
    get_model,
    list_models,
)


class TestRegistry:
    TABLE_II = (
        "gcn",
        "graphsage-mean",
        "gin",
        "commnet",
        "vanilla-attention",
        "agnn",
        "ggcn",
        "graphsage-pool",
        "edgeconv-1",
        "edgeconv-5",
    )

    def test_table_ii_models_registered(self):
        for name in self.TABLE_II:
            assert name in MODEL_ZOO
        assert list(MODEL_ZOO)[:10] == list(self.TABLE_II)

    def test_lookup_case_insensitive(self):
        assert get_model("GCN").name == "gcn"

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown model"):
            get_model("transformer")

    def test_list_order_matches_table(self):
        assert list_models()[:4] == ["gcn", "graphsage-mean", "gin", "commnet"]


class TestCategories:
    @pytest.mark.parametrize(
        "name,cat",
        [
            ("gcn", ModelCategory.C_GNN),
            ("graphsage-mean", ModelCategory.C_GNN),
            ("gin", ModelCategory.C_GNN),
            ("commnet", ModelCategory.C_GNN),
            ("vanilla-attention", ModelCategory.A_GNN),
            ("agnn", ModelCategory.A_GNN),
            ("ggcn", ModelCategory.MP_GNN),
            ("graphsage-pool", ModelCategory.MP_GNN),
            ("edgeconv-1", ModelCategory.MP_GNN),
            ("edgeconv-5", ModelCategory.MP_GNN),
        ],
    )
    def test_category(self, name, cat):
        assert get_model(name).category is cat


class TestTableII:
    """Row-by-row checks against the paper's Table II."""

    def test_gcn(self):
        m = get_model("gcn")
        assert m.edge_update.op_kinds() == (OpKind.SCALAR_VECTOR,)
        assert m.aggregation.op_kinds() == (OpKind.ACCUMULATE,)
        assert OpKind.MATRIX_VECTOR in m.vertex_update.op_kinds()
        assert OpKind.ACTIVATION in m.vertex_update.op_kinds()

    @pytest.mark.parametrize("name", ["graphsage-mean", "gin", "commnet"])
    def test_null_edge_update_rows(self, name):
        m = get_model(name)
        assert m.edge_update.is_null
        assert m.aggregation.op_kinds() == (OpKind.ACCUMULATE,)
        assert OpKind.MATRIX_VECTOR in m.vertex_update.op_kinds()

    @pytest.mark.parametrize("name", ["vanilla-attention", "agnn"])
    def test_attention_rows(self, name):
        m = get_model(name)
        kinds = set(m.edge_update.op_kinds())
        assert kinds == {OpKind.DOT, OpKind.SCALAR_VECTOR}
        assert OpKind.ACTIVATION in m.vertex_update.op_kinds()

    def test_ggcn(self):
        m = get_model("ggcn")
        kinds = set(m.edge_update.op_kinds())
        assert OpKind.MATRIX_VECTOR in kinds
        assert OpKind.ELEMENTWISE in kinds
        assert OpKind.ACTIVATION in kinds

    def test_graphsage_pool(self):
        m = get_model("graphsage-pool")
        assert m.aggregation.op_kinds() == (OpKind.MAX_REDUCE,)
        assert OpKind.CONCAT in m.vertex_update.op_kinds()

    @pytest.mark.parametrize("name", ["edgeconv-1", "edgeconv-5"])
    def test_edgeconv_no_vertex_update(self, name):
        m = get_model(name)
        assert m.vertex_update.is_null
        assert OpKind.MATRIX_VECTOR in m.edge_update.op_kinds()
        assert m.aggregation.op_kinds() == (OpKind.MAX_REDUCE,)

    def test_edgeconv5_deeper_than_edgeconv1(self):
        e1 = get_model("edgeconv-1").edge_update.ops[0]
        e5 = get_model("edgeconv-5").edge_update.ops[0]
        assert e5.repeat == 5
        assert e1.repeat == 1

    def test_gin_mlp(self):
        mv = get_model("gin").vertex_update.ops[0]
        assert mv.repeat == 2  # two-layer MLP

    def test_edge_embedding_flags(self):
        assert not get_model("gcn").uses_edge_embeddings
        assert get_model("ggcn").uses_edge_embeddings
        assert get_model("agnn").uses_edge_embeddings

    def test_all_models_valid_phases(self):
        for m in MODEL_ZOO.values():
            assert m.aggregation.phase is Phase.AGGREGATION
            assert not m.aggregation.is_null
