"""Tests for the NoC/PE configuration unit."""

import pytest

from repro.arch.pe import PEDatapath
from repro.config import small_config
from repro.core import AdaptiveWorkflowGenerator, ConfigurationUnit
from repro.mapping import PERegion, degree_aware_map
from repro.models import get_model


@pytest.fixture
def setup(medium_graph, cfg8):
    region_a = PERegion(0, 0, 8, 4, 8)
    region_b = PERegion(0, 4, 8, 8, 8)
    cap = -(-medium_graph.num_vertices // region_a.num_pes)
    mapping = degree_aware_map(medium_graph, region_a, pe_vertex_capacity=cap)
    return cfg8, mapping, region_a, region_b


class TestConfigure:
    def test_bypass_segments_installed(self, setup):
        cfg, mapping, ra, rb = setup
        wf = AdaptiveWorkflowGenerator().generate(get_model("gcn"))
        plan = ConfigurationUnit(cfg).configure(wf, mapping, ra, rb)
        assert len(plan.topology.bypass_segments) > 0

    def test_rings_for_region_b(self, setup):
        cfg, mapping, ra, rb = setup
        wf = AdaptiveWorkflowGenerator().generate(get_model("gcn"))
        plan = ConfigurationUnit(cfg).configure(wf, mapping, ra, rb)
        assert plan.ring_rows in (0, rb.height)
        if plan.ring_rows:
            assert len(plan.topology.ring_regions) == 1

    def test_no_region_b_no_rings(self, setup):
        cfg, mapping, ra, _ = setup
        wf = AdaptiveWorkflowGenerator().generate(get_model("edgeconv-1"))
        plan = ConfigurationUnit(cfg).configure(wf, mapping, ra, None)
        assert plan.ring_rows == 0
        assert plan.region_b is None

    def test_reconfiguration_cycles(self, setup):
        cfg, mapping, ra, rb = setup
        wf = AdaptiveWorkflowGenerator().generate(get_model("gcn"))
        plan = ConfigurationUnit(cfg).configure(wf, mapping, ra, rb)
        assert plan.reconfiguration_cycles == 2 * cfg.array_k - 1

    def test_gcn_datapath_sequences(self, setup):
        cfg, mapping, ra, rb = setup
        wf = AdaptiveWorkflowGenerator().generate(get_model("gcn"))
        plan = ConfigurationUnit(cfg).configure(wf, mapping, ra, rb)
        # A: Scalar×V (MUL_ONLY) then ΣV (ADD_ONLY); B: M×V (MAC_CHAIN).
        assert [c.datapath for c in plan.pe_configs_a] == [
            PEDatapath.MUL_ONLY,
            PEDatapath.ADD_ONLY,
        ]
        assert [c.datapath for c in plan.pe_configs_b] == [PEDatapath.MAC_CHAIN]

    def test_ppu_ops_need_no_datapath(self, setup):
        """Activation-only phases add no MAC-array configuration."""
        cfg, mapping, ra, rb = setup
        wf = AdaptiveWorkflowGenerator().generate(get_model("graphsage-mean"))
        plan = ConfigurationUnit(cfg).configure(wf, mapping, ra, rb)
        # B ops = single M×V, no activation row for sage-mean.
        assert len(plan.pe_configs_b) == 1

    def test_switch_count(self, setup):
        cfg, mapping, ra, rb = setup
        wf = AdaptiveWorkflowGenerator().generate(get_model("gcn"))
        plan = ConfigurationUnit(cfg).configure(wf, mapping, ra, rb)
        assert plan.num_datapath_switches == 1  # MUL->ADD within A

    def test_consecutive_same_datapath_collapsed(self, setup):
        cfg, mapping, ra, rb = setup
        wf = AdaptiveWorkflowGenerator().generate(get_model("gin"))
        plan = ConfigurationUnit(cfg).configure(wf, mapping, ra, rb)
        # GIN aggregation only on A: one ADD_ONLY config.
        assert [c.datapath for c in plan.pe_configs_a] == [PEDatapath.ADD_ONLY]
