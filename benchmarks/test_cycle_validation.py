"""E14 (extension) — analytical-vs-cycle-tier NoC validation.

The full-dataset sweeps run on the analytical (counting) tier, exactly
as the paper's simulator derives time from counts; this bench checks the
counting model against the flit-level simulator on matched tiles.
"""

from conftest import emit

from repro.eval import run_experiment


def test_cycle_validation(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("E14",), rounds=1, iterations=1
    )
    emit(result.text)
    for seed, row in result.data.items():
        # The analytical drain stays within 3x of the measured drain and
        # is conservative (never underestimates by more than 3x either).
        assert 1 / 3 < row["ratio"] < 3, (seed, row)
