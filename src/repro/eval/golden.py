"""Golden-number regression for the calibrated evaluation.

The comparison results are deterministic (seeded generators, analytical
models), so key figures can be pinned.  ``compute_golden_metrics``
produces the pinned dictionary; ``tests/test_golden.py`` compares a fresh
run against the checked-in ``goldens.json`` within tight tolerances, so
any change that silently shifts the paper reproduction fails loudly and
the goldens file update shows up in review.

Regenerate after an intentional model change with::

    python -m repro.eval.golden > src/repro/eval/goldens.json
"""

from __future__ import annotations

import json
from pathlib import Path

from .harness import run_comparison

__all__ = ["GOLDENS_PATH", "compute_golden_metrics", "load_goldens"]

GOLDENS_PATH = Path(__file__).with_name("goldens.json")

_METRICS = ("execution_time", "dram_accesses", "onchip_latency", "energy")
_BASELINES = ("hygcn", "awb-gcn", "gcnax", "regnn", "flowgnn")


def compute_golden_metrics() -> dict:
    """The pinned view: per-metric average reductions and per-dataset
    normalized execution-time ratios for the default GCN sweep."""
    comp = run_comparison(model="gcn")
    out: dict = {"average_reduction_percent": {}, "normalized_execution_time": {}}
    for metric in _METRICS:
        out["average_reduction_percent"][metric] = {
            base: round(comp.average_reduction_vs(metric, base), 2)
            for base in _BASELINES
        }
    grid = comp.normalized_grid("execution_time")
    out["normalized_execution_time"] = {
        ds: {acc: round(v, 3) for acc, v in row.items()}
        for ds, row in grid.items()
    }
    return out


def load_goldens() -> dict:
    with GOLDENS_PATH.open() as fh:
        return json.load(fh)


if __name__ == "__main__":  # pragma: no cover - regeneration helper
    print(json.dumps(compute_golden_metrics(), indent=1, sort_keys=True))
