"""Tests for the extension models and the zoo's extensibility."""

import pytest

from repro import AuroraSimulator, LayerDims, get_model
from repro.graphs import power_law_graph
from repro.models import ModelCategory, OpKind
from repro.models.extensions import (
    APPNP,
    EXTENSION_ZOO,
    GAT_2HEAD,
    GCNII,
    register_extensions,
)


@pytest.fixture(scope="module", autouse=True)
def _clean_registry():
    """Registering extensions mutates the global zoo; undo afterwards so
    other test modules see the pristine Table-II registry."""
    from repro.models.zoo import MODEL_ZOO

    yield
    for name in ("gat-2head", "appnp", "gcnii"):
        MODEL_ZOO.pop(name, None)


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(
        150, 700, num_features=32, locality=0.5, seed=5
    )


class TestSpecs:
    def test_gat_heads(self):
        dots = [op for op in GAT_2HEAD.edge_update.ops if op.kind is OpKind.DOT]
        assert dots[0].repeat == 2
        assert OpKind.CONCAT in GAT_2HEAD.vertex_update.op_kinds()
        assert GAT_2HEAD.category is ModelCategory.A_GNN

    def test_appnp_no_weight_matrix(self):
        assert OpKind.MATRIX_VECTOR not in APPNP.required_op_kinds()
        assert APPNP.has_vertex_update  # but it is all vector ops

    def test_gcnii_residual_ops(self):
        kinds = GCNII.vertex_update.op_kinds()
        assert OpKind.MATRIX_VECTOR in kinds
        assert OpKind.SCALAR_VECTOR in kinds

    def test_three_extensions(self):
        assert set(EXTENSION_ZOO) == {"gat-2head", "appnp", "gcnii"}


class TestRegistration:
    def test_register_makes_models_loadable(self):
        register_extensions()
        assert get_model("gat-2head").name == "gat-2head"
        assert get_model("appnp") is APPNP

    def test_idempotent(self):
        register_extensions()
        register_extensions()
        assert get_model("gcnii") is GCNII


class TestSimulation:
    """Extension models must run through the whole stack unchanged."""

    @pytest.mark.parametrize("model", [GAT_2HEAD, APPNP, GCNII])
    def test_simulates(self, model, graph):
        r = AuroraSimulator().simulate_layer(model, graph, LayerDims(32, 16))
        assert r.total_seconds > 0
        assert r.energy.total > 0

    def test_gat_heavier_than_gcn(self, graph):
        """Two attention heads cost more edge work than GCN's scalar norm."""
        from repro.models import extract_workload

        gat = extract_workload(GAT_2HEAD, graph, LayerDims(32, 16))
        gcn = extract_workload(get_model("gcn"), graph, LayerDims(32, 16))
        assert gat.O_ue > 2 * gcn.O_ue

    def test_appnp_partition_is_aggregation_heavy(self, graph):
        """Without a dense vertex transform, sub-accelerator A gets most
        of the array."""
        r = AuroraSimulator().simulate_layer(APPNP, graph, LayerDims(32, 32))
        assert r.notes["partition_a"] > r.notes["partition_b"]

    def test_workflow_generation(self):
        from repro.core import AdaptiveWorkflowGenerator

        wf = AdaptiveWorkflowGenerator().generate(GAT_2HEAD)
        assert wf.needs_two_sub_accelerators
        assert wf.uses_edge_embeddings

    def test_machine_accepts_extension_programs(self):
        from repro.core import AdaptiveWorkflowGenerator, lower_layer_program
        from repro.core.machine import Machine

        wf = AdaptiveWorkflowGenerator().generate(GCNII)
        program = lower_layer_program(wf, num_tiles=2, needs_weights=True)
        Machine().run(program)
