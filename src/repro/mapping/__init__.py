"""Workload mapping: degree-aware (Algorithm 1) and hashing baseline."""

from .base import MappingResult, PERegion
from .degree_aware import ALGORITHM_CYCLES, degree_aware_map
from .hashing import hashing_map
from .memo import clear_mapping_cache, map_tile
from .nqueen import can_place, fixed_pattern, solve_n_queens
from .traffic import aggregate_flows, batched_multicast_flows, edge_flows

__all__ = [
    "MappingResult",
    "PERegion",
    "degree_aware_map",
    "hashing_map",
    "map_tile",
    "clear_mapping_cache",
    "ALGORITHM_CYCLES",
    "solve_n_queens",
    "fixed_pattern",
    "can_place",
    "edge_flows",
    "aggregate_flows",
    "batched_multicast_flows",
]
