"""Robustness bench: the headline conclusion vs calibrated-constant error.

Sweeps the calibrated effective-bandwidth knob of each baseline over
0.5x-1.5x at the paper's operating point (full Cora, hidden=64).  The
claims asserted mirror how strongly the paper itself states them:

* HyGCN and AWB-GCN lose to Aurora across the whole sweep (their paper
  margins are 85% / 66% — far beyond any plausible calibration error);
* the near-tie baselines (GCNAX / ReGNN / FlowGNN, paper margins
  28-47%) must lose at the calibrated point and never win by more than
  ~10% even when granted 50% extra fabric bandwidth.
"""

from conftest import emit

from repro.baselines import BASELINE_TRAITS
from repro.eval.report import format_table
from repro.eval.sensitivity import sweep_trait

ROBUST = ("hygcn", "awb-gcn")


def _run_sweeps():
    return [
        sweep_trait(traits, "comm_ports", dataset="cora", scale=1.0, hidden=64)
        for traits in BASELINE_TRAITS
    ]


def test_sensitivity_headline_robust(benchmark):
    reports = benchmark.pedantic(_run_sweeps, rounds=1, iterations=1)
    rows = []
    for rep in reports:
        speedups = [f"{p.speedup_vs_aurora:.2f}" for p in rep.points]
        rows.append(
            [rep.baseline, *speedups, "yes" if rep.aurora_always_wins else "near-tie"]
        )
    emit(
        format_table(
            ["baseline", "0.5x", "0.75x", "1.0x", "1.25x", "1.5x", "robust"],
            rows,
            title="Speedup vs Aurora under comm_ports perturbation (Cora)",
        )
    )
    for rep in reports:
        nominal = next(p for p in rep.points if p.factor == 1.0)
        assert nominal.speedup_vs_aurora >= 1.0, rep.baseline
        assert rep.monotonic(), rep.baseline
        if rep.baseline in ROBUST:
            assert rep.aurora_always_wins, rep.baseline
        else:
            assert all(p.speedup_vs_aurora > 0.9 for p in rep.points), rep.baseline
